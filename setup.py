"""Shim for legacy editable installs (offline environments without `wheel`).

All real metadata lives in pyproject.toml's [project] table; setuptools >= 61
reads it from there.
"""

from setuptools import setup

setup()
