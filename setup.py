"""Packaging metadata for the reproduction library.

Kept as a plain ``setup.py`` (no build-time dependencies beyond
setuptools) so editable installs work in offline environments without
``wheel``; CI installs via ``pip install -e ".[test]"`` and reproduces the
local numpy/scipy environment from the pins below.
"""

from setuptools import find_packages, setup

setup(
    name="repro-bidirectional-coded-cooperation",
    version="1.2.0",
    description=(
        "Performance bounds for bi-directional coded cooperation "
        "protocols: capacity regions, LP-optimal sum rates, fading "
        "campaigns and a link-level simulator"
    ),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.25",
        "scipy>=1.10",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
        ],
        "lint": [
            "ruff==0.8.4",
        ],
    },
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
