"""Ablation `abl-batched-link`: the frames-axis-batched simulation kernel.

The operational check of the paper's claims — link-level FER/goodput of
the concrete DF system — historically ran one Python round at a time.
This bench measures the batched pipeline (vectorized GF(2) encoding,
table-driven CRC, batched Viterbi ACS, one noise draw per phase) against
the per-round reference loop, asserting both the >= 5x speedup and exact
equality of every :class:`SimulationReport` field, and writes the
machine-readable trajectory to ``BENCH_link.json`` at the repo root (the
artifact CI uploads).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.linkcodec import default_codec
from repro.simulation.montecarlo import simulate_protocol

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWER = 10 ** 1.2  # 12 dB: the codec's comfortable operating point
CODEC = default_codec(128)  # the production pipeline: CRC-16 + NASA K=7
N_ROUNDS = 120
PROTOCOLS = (Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC)
MIN_SPEEDUP = 5.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_link.json"


def _run(protocol: Protocol, method: str):
    """One full campaign of the protocol; identical seeds per method."""
    return simulate_protocol(
        protocol, GAINS, POWER, N_ROUNDS, np.random.default_rng(41),
        codec=CODEC, method=method,
    )


@pytest.fixture(scope="module")
def method_comparison():
    """Best-of-2 timings and reports of both execution methods."""
    results = {}
    for protocol in PROTOCOLS:
        timings = {}
        reports = {}
        for method in ("reference", "batched"):
            best = np.inf
            for _ in range(2):
                start = time.perf_counter()
                reports[method] = _run(protocol, method)
                best = min(best, time.perf_counter() - start)
            timings[method] = best
        results[protocol] = (timings, reports)
    return results


def test_batched_speedup_and_exact_equality(method_comparison):
    """The acceptance gate: >= 5x faster, every report field identical."""
    rows = []
    trajectory = {}
    total_reference = 0.0
    total_batched = 0.0
    for protocol, (timings, reports) in method_comparison.items():
        assert reports["batched"] == reports["reference"], (
            f"{protocol}: batched report differs from the per-round "
            "reference"
        )
        speedup = timings["reference"] / timings["batched"]
        total_reference += timings["reference"]
        total_batched += timings["batched"]
        rows.append([protocol.name, timings["reference"],
                     timings["batched"], speedup,
                     reports["batched"].sum_goodput])
        trajectory[protocol.name] = {
            "reference_s": timings["reference"],
            "batched_s": timings["batched"],
            "speedup": speedup,
            "sum_goodput": reports["batched"].sum_goodput,
        }
    aggregate = total_reference / total_batched
    emit(render_table(
        ["protocol", "per-round [s]", "batched [s]", "speedup",
         "goodput [b/sym]"],
        rows,
        title=(f"abl-batched-link: {N_ROUNDS} rounds, production codec, "
               f"P=12 dB — aggregate speedup {aggregate:.1f}x")))
    BENCH_JSON.write_text(json.dumps({
        "bench": "abl-batched-link",
        "n_rounds": N_ROUNDS,
        "payload_bits": CODEC.payload_bits,
        "code": "nasa",
        "min_speedup_asserted": MIN_SPEEDUP,
        "aggregate_speedup": aggregate,
        "protocols": trajectory,
    }, indent=2) + "\n")
    assert aggregate >= MIN_SPEEDUP, (
        f"batched kernel only {aggregate:.2f}x faster than the per-round "
        f"reference ({total_batched:.3f}s vs {total_reference:.3f}s)"
    )


def test_goodput_still_below_bounds(method_comparison):
    """Batching must not change physics: goodput <= the analytic bound."""
    from repro.core.capacity import optimal_sum_rate
    from repro.core.gaussian import GaussianChannel

    for protocol, (_, reports) in method_comparison.items():
        bound = optimal_sum_rate(
            protocol, GaussianChannel(gains=GAINS, power=POWER)
        ).sum_rate
        assert reports["batched"].sum_goodput <= bound + 1e-9


def test_bench_batched_campaign(benchmark):
    """Time the batched fast path on one MABC campaign."""
    report = benchmark(_run, Protocol.MABC, "batched")
    assert report.n_rounds == N_ROUNDS


def test_bench_operational_scenario(benchmark):
    """Time the registered operational scenario through the facade."""
    from repro.api import evaluate

    result = benchmark(evaluate, "operational-goodput", cache=False)
    assert result.values.shape == (4, 1, 1, 1)
