"""Ablation `abl-durations`: how much does duration optimization matter?

DESIGN.md commits to exact LP optimization of the phase durations Δ (the
paper's approach). This ablation quantifies the alternative: how much sum
rate is lost by naive duration choices (uniform split) or by mis-tuning
around the optimum — justifying the LP machinery rather than a heuristic.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.core.bounds import bound_for
from repro.core.optimize import max_sum_rate, sum_rate_fixed_durations
from repro.core.protocols import Protocol
from repro.core.terms import BoundKind
from repro.experiments.tables import render_table

PROTOCOLS = (Protocol.MABC, Protocol.TDBC, Protocol.HBC)


@pytest.fixture(scope="module")
def evaluated_bounds(paper_channel_high):
    return {
        protocol: paper_channel_high.evaluate(
            bound_for(protocol, BoundKind.INNER)
        )
        for protocol in PROTOCOLS
    }


def _uniform(n: int) -> tuple:
    return tuple(1.0 / n for _ in range(n))


def test_uniform_vs_optimal_table(evaluated_bounds):
    rows = []
    for protocol, evaluated in evaluated_bounds.items():
        optimal = max_sum_rate(evaluated)
        uniform = sum_rate_fixed_durations(
            evaluated, _uniform(evaluated.n_phases)
        )
        loss = 100.0 * (1.0 - uniform / optimal.sum_rate)
        rows.append([protocol.name, optimal.sum_rate, uniform, loss])
    emit(render_table(
        ["protocol", "LP-optimal", "uniform durations", "loss %"],
        rows,
        title="abl-durations: uniform vs optimized phase split (P=10 dB)"))


def test_uniform_split_is_strictly_suboptimal(evaluated_bounds):
    for protocol, evaluated in evaluated_bounds.items():
        optimal = max_sum_rate(evaluated).sum_rate
        uniform = sum_rate_fixed_durations(
            evaluated, _uniform(evaluated.n_phases)
        )
        assert uniform <= optimal + 1e-9
        if protocol is Protocol.MABC:
            # On the asymmetric Fig. 4 channel the 50/50 split is
            # measurably bad (> 2% loss).
            assert uniform < optimal * 0.98


def test_perturbation_sensitivity(evaluated_bounds):
    """Small mis-tuning around the optimum costs at most first-order loss."""
    evaluated = evaluated_bounds[Protocol.MABC]
    best = max_sum_rate(evaluated)
    d_opt = np.array(tuple(best.durations))
    for delta in (0.01, 0.05):
        perturbed = np.clip(d_opt + np.array([delta, -delta]), 0.0, 1.0)
        perturbed = perturbed / perturbed.sum()
        value = sum_rate_fixed_durations(evaluated, tuple(perturbed))
        assert value <= best.sum_rate + 1e-9
        # Loss is Lipschitz in the shift: at most the sum of the two
        # binding constraints' MI slopes (~8.5 bits/unit here).
        assert best.sum_rate - value <= 10.0 * delta


def test_bench_fixed_duration_evaluation(benchmark, evaluated_bounds):
    evaluated = evaluated_bounds[Protocol.HBC]
    value = benchmark(
        sum_rate_fixed_durations, evaluated, (0.25, 0.25, 0.25, 0.25)
    )
    assert value > 0
