"""Ablation `abl-placement`: winner map vs relay position and path loss.

How sensitive is the Fig. 3 picture to the reconstruction choices (relay
position, path-loss exponent)? This bench sweeps both, prints the winning
protocol per cell, and asserts the structural claims hold across the grid:
HBC never loses, and the MABC/TDBC ordering flips across the sweep.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.channels.pathloss import linear_relay_gains
from repro.core.capacity import compare_protocols
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.experiments.config import FIG3_DEFAULT
from repro.experiments.tables import render_table

POSITIONS = (0.2, 0.35, 0.5, 0.65, 0.8)
EXPONENTS = (2.0, 3.0, 4.0)


@pytest.fixture(scope="module")
def winner_grid():
    grid = {}
    for exponent in EXPONENTS:
        for position in POSITIONS:
            channel = GaussianChannel(
                gains=linear_relay_gains(position, exponent=exponent),
                power=FIG3_DEFAULT.power,
            )
            grid[(exponent, position)] = compare_protocols(channel)
    return grid


def test_winner_map_printed(winner_grid):
    rows = []
    for exponent in EXPONENTS:
        row = [f"alpha={exponent:g}"]
        for position in POSITIONS:
            comparison = winner_grid[(exponent, position)]
            rates = comparison.as_row()
            mabc_vs_tdbc = "M" if rates["MABC"] >= rates["TDBC"] else "T"
            row.append(f"{rates['HBC']:.2f}({mabc_vs_tdbc})")
        rows.append(row)
    emit(render_table(
        ["exponent"] + [f"d={p:g}" for p in POSITIONS], rows,
        title=("abl-placement: HBC sum rate (M/T = better of MABC/TDBC) "
               f"at P={FIG3_DEFAULT.power_db:g} dB")))


def test_hbc_never_loses_across_grid(winner_grid):
    for comparison in winner_grid.values():
        rates = comparison.as_row()
        assert rates["HBC"] >= rates["MABC"] - 1e-7
        assert rates["HBC"] >= rates["TDBC"] - 1e-7


def test_mabc_tdbc_ordering_depends_on_geometry(winner_grid):
    """Both orderings must appear somewhere on the grid."""
    mabc_wins = tdbc_wins = False
    for comparison in winner_grid.values():
        rates = comparison.as_row()
        if rates["MABC"] > rates["TDBC"] + 1e-6:
            mabc_wins = True
        if rates["TDBC"] > rates["MABC"] + 1e-6:
            tdbc_wins = True
    assert mabc_wins and tdbc_wins


def test_bench_one_grid_cell(benchmark):
    channel = GaussianChannel(
        gains=linear_relay_gains(0.65, exponent=3.0),
        power=FIG3_DEFAULT.power,
    )
    comparison = benchmark(compare_protocols, channel)
    assert comparison.sum_rates[Protocol.HBC].sum_rate > 0
