"""Ablation `abl-fused-cells`: the (cells × rounds) fused campaign kernel.

Operational campaigns historically evaluated one grid cell at a time —
rounds batched *within* the cell, but the trellis recursion, CRC sweep
and LLR arithmetic re-run per cell. This bench measures the cells-fused
kernel (one decode pipeline pass serving every cell of a 36-cell
SNR × geometry grid) against that per-cell batched path in the
many-cells × short-waves regime that fading-FER campaigns with adaptive
budgets live in, asserting both the >= 3x speedup and exact equality of
every :class:`~repro.simulation.montecarlo.SimulationReport` field per
cell, and writes the machine-readable trajectory to ``BENCH_cells.json``
at the repo root (the artifact CI uploads).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.channels.pathloss import linear_relay_gains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.linkcodec import default_codec
from repro.simulation.montecarlo import simulate_protocol, simulate_protocol_cells

CODEC = default_codec(128)  # the production pipeline: CRC-16 + NASA K=7
N_ROUNDS = 8  # a first adaptive wave: the regime fusion exists for
SEED = 29
PROTOCOLS = (Protocol.MABC, Protocol.TDBC)
MIN_SPEEDUP = 3.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_cells.json"

#: The grid: 6 relay placements x 6 transmit powers = 36 cells per
#: protocol, spanning the codec's waterfall so the fused kernel sees
#: both error-free and error-dominated cells.
GAINS = tuple(linear_relay_gains(f, exponent=3.0) for f in
              (0.15, 0.3, 0.45, 0.6, 0.75, 0.9))
POWERS = tuple(10 ** (p / 10.0) for p in
               (6.0, 7.2, 8.4, 9.6, 10.8, 12.0))
CELLS = tuple((g, p) for g in GAINS for p in POWERS)


def _cell_rngs():
    """Fresh per-cell generators, seeded exactly like campaign cells."""
    return [np.random.default_rng([SEED, i]) for i in range(len(CELLS))]


def _run_per_cell(protocol: Protocol):
    """The PR 4 path: one batched simulate_protocol campaign per cell."""
    return [
        simulate_protocol(protocol, gains, power, N_ROUNDS, rng, codec=CODEC)
        for (gains, power), rng in zip(CELLS, _cell_rngs())
    ]


def _run_fused(protocol: Protocol):
    """The fused path: every cell through one cells x rounds kernel."""
    return simulate_protocol_cells(
        protocol,
        [gains for gains, _ in CELLS],
        [power for _, power in CELLS],
        N_ROUNDS,
        _cell_rngs(),
        codec=CODEC,
    )


@pytest.fixture(scope="module")
def path_comparison():
    """Best-of-2 timings and per-cell reports of both execution paths."""
    results = {}
    for protocol in PROTOCOLS:
        timings = {}
        reports = {}
        for label, runner in (("per-cell", _run_per_cell), ("fused", _run_fused)):
            best = np.inf
            for _ in range(2):
                start = time.perf_counter()
                reports[label] = runner(protocol)
                best = min(best, time.perf_counter() - start)
            timings[label] = best
        results[protocol] = (timings, reports)
    return results


def test_fused_speedup_and_exact_equality(path_comparison):
    """The acceptance gate: >= 3x faster, every report field identical."""
    rows = []
    trajectory = {}
    total_per_cell = 0.0
    total_fused = 0.0
    for protocol, (timings, reports) in path_comparison.items():
        assert reports["fused"] == reports["per-cell"], (
            f"{protocol}: fused reports differ from the per-cell batched "
            "path"
        )
        speedup = timings["per-cell"] / timings["fused"]
        total_per_cell += timings["per-cell"]
        total_fused += timings["fused"]
        mean_goodput = float(
            np.mean([report.sum_goodput for report in reports["fused"]])
        )
        rows.append([protocol.name, timings["per-cell"], timings["fused"],
                     speedup, mean_goodput])
        trajectory[protocol.name] = {
            "per_cell_s": timings["per-cell"],
            "fused_s": timings["fused"],
            "speedup": speedup,
            "mean_goodput": mean_goodput,
        }
    aggregate = total_per_cell / total_fused
    emit(render_table(
        ["protocol", "per-cell [s]", "fused [s]", "speedup",
         "mean goodput [b/sym]"],
        rows,
        title=(f"abl-fused-cells: {len(CELLS)} cells x {N_ROUNDS} rounds, "
               f"production codec — aggregate speedup {aggregate:.1f}x")))
    BENCH_JSON.write_text(json.dumps({
        "bench": "abl-fused-cells",
        "n_cells": len(CELLS),
        "n_rounds": N_ROUNDS,
        "payload_bits": CODEC.payload_bits,
        "code": "nasa",
        "min_speedup_asserted": MIN_SPEEDUP,
        "aggregate_speedup": aggregate,
        "protocols": trajectory,
    }, indent=2) + "\n")
    assert aggregate >= MIN_SPEEDUP, (
        f"fused kernel only {aggregate:.2f}x faster than the per-cell "
        f"batched path ({total_fused:.3f}s vs {total_per_cell:.3f}s)"
    )


def test_fused_matches_campaign_seeding(path_comparison):
    """Fused cell values equal the campaign adapter's, seed for seed."""
    from repro.campaign.spec import LinkSimSpec
    from repro.simulation.montecarlo import fused_link_values

    link = LinkSimSpec(n_rounds=N_ROUNDS, payload_bits=128, seed=SEED)
    values = fused_link_values(
        Protocol.MABC,
        np.array([g.gab for g, _ in CELLS]),
        np.array([g.gar for g, _ in CELLS]),
        np.array([g.gbr for g, _ in CELLS]),
        np.array([p for _, p in CELLS]),
        link=link,
        indices=np.arange(len(CELLS)),
    )
    _, reports = path_comparison[Protocol.MABC]
    expected = np.array([r.sum_goodput for r in reports["per-cell"]])
    assert values.tobytes() == expected.tobytes()


def test_bench_fused_campaign(benchmark):
    """Time the fused fast path on the MABC cell grid."""
    reports = benchmark(_run_fused, Protocol.MABC)
    assert len(reports) == len(CELLS)
