"""Ablation `abl-hbc-corr`: the Theorem-6 evaluation the paper declined.

The paper does not evaluate the HBC outer bound numerically because the
optimal correlated phase-3 input is unknown. This ablation evaluates the
natural jointly-Gaussian candidate across the correlation coefficient ρ,
quantifying how much slack correlation adds over the independent-input
proxy at the Fig. 4 operating points — and confirming the Theorem-5
achievable region stays inside the envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.core.bounds import hbc_outer
from repro.core.capacity import optimal_sum_rate
from repro.core.hbc_correlated import (
    evaluate_hbc_outer_correlated,
    hbc_outer_correlated_sum_rate,
)
from repro.core.optimize import max_sum_rate
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table

RHOS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.95)


@pytest.fixture(scope="module")
def rho_sweep(paper_channel_high):
    return {
        rho: max_sum_rate(
            evaluate_hbc_outer_correlated(paper_channel_high, rho)
        )
        for rho in RHOS
    }


def test_rho_sweep_table(rho_sweep, paper_channel_high):
    inner = optimal_sum_rate(Protocol.HBC, paper_channel_high).sum_rate
    rows = [[rho, point.sum_rate, point.sum_rate - inner]
            for rho, point in rho_sweep.items()]
    emit(render_table(
        ["rho", "Thm-6 Gaussian eval sum rate", "slack over Thm-5 inner"],
        rows,
        title="abl-hbc-corr: correlated-input Theorem 6 at P=10 dB",
        float_format=".5f"))


def test_envelope_dominates_inner_and_independent(rho_sweep,
                                                  paper_channel_high):
    inner = optimal_sum_rate(Protocol.HBC, paper_channel_high).sum_rate
    independent = max_sum_rate(
        paper_channel_high.evaluate(hbc_outer())
    ).sum_rate
    envelope = max(point.sum_rate for point in rho_sweep.values())
    assert envelope >= independent - 1e-9
    assert envelope >= inner - 1e-8
    assert rho_sweep[0.0].sum_rate == pytest.approx(independent, abs=1e-9)


def test_bench_rho_envelope(benchmark, paper_channel_high):
    point, best_rho = benchmark(
        hbc_outer_correlated_sum_rate, paper_channel_high,
        rhos=np.linspace(0.0, 0.9, 10),
    )
    assert 0.0 <= best_rho <= 0.9
    assert point.sum_rate > 0
