"""Ablation `abl-boundary`: boundary-trace resolution vs region-area error.

The Fig. 4 curves are traced with a weighted-sum LP sweep; the number of
weight directions is a fidelity/runtime knob. This bench measures the area
error against a high-resolution reference and times traces at several
resolutions, demonstrating that the default (33 directions) is converged.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.capacity import achievable_region
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table

RESOLUTIONS = (5, 9, 17, 33, 65)


@pytest.fixture(scope="module")
def hbc_region(paper_channel_high):
    return achievable_region(Protocol.HBC, paper_channel_high)


@pytest.fixture(scope="module")
def reference_area(hbc_region):
    return hbc_region.area(129)


def test_area_convergence_table(hbc_region, reference_area):
    rows = []
    previous_error = float("inf")
    for n_points in RESOLUTIONS:
        area = hbc_region.area(n_points)
        error = abs(area - reference_area)
        rows.append([n_points, area, error])
        # Error shrinks (weakly) as resolution grows.
        assert error <= previous_error + 1e-9
        previous_error = error
    emit(render_table(
        ["directions", "area", "abs error vs n=129"],
        rows, title="abl-boundary: HBC region area vs trace resolution",
        float_format=".6f"))
    # The default resolution used by the figures is converged to < 1e-3.
    assert abs(hbc_region.area(33) - reference_area) < 1e-3


@pytest.mark.parametrize("n_points", [9, 33])
def test_bench_boundary_trace(benchmark, hbc_region, n_points):
    boundary = benchmark(hbc_region.boundary, n_points)
    assert boundary.shape[0] >= 2
