"""Bench `fig4b`: regenerate Fig. 4 bottom panel (rate regions at P = 10 dB).

The paper's headline lives in this panel: achievable HBC points outside the
outer bounds of both MABC and TDBC. The bench asserts the set is non-empty,
prints it, and times the full panel regeneration.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments.config import FIG4_P10
from repro.experiments.fig4 import run_fig4
from repro.experiments.runner import fig4_report


@pytest.fixture(scope="module")
def panel():
    return run_fig4(FIG4_P10)


def test_fig4b_full_report(panel):
    report = fig4_report(FIG4_P10, "fig4b", result=panel)
    emit(report.render())
    assert report.all_checks_pass(), report.checks


def test_fig4b_headline_hbc_outside_both(panel):
    assert panel.hbc_points_outside_both, (
        "expected achievable HBC points outside both the MABC capacity "
        "region and the TDBC outer bound at P = 10 dB"
    )
    for ra, rb in panel.hbc_points_outside_both:
        assert ra > 0 and rb > 0


def test_fig4b_high_snr_ordering(panel):
    # TDBC overtakes MABC in region area and single-user corner ...
    assert panel.traces["TDBC inner"].area > panel.traces["MABC"].area
    assert panel.traces["TDBC inner"].max_ra > panel.traces["MABC"].max_ra
    # ... while MABC keeps the better sum rate at these gains.
    assert panel.traces["MABC"].max_sum_rate > \
        panel.traces["TDBC inner"].max_sum_rate


def test_bench_fig4b_full_panel(benchmark):
    """Time the entire bottom-panel regeneration (5 region traces)."""
    result = benchmark(run_fig4, FIG4_P10)
    assert set(result.traces) == {"DT", "MABC", "TDBC inner",
                                  "TDBC outer", "HBC"}
