"""Ablation `abl-importance-sampling`: twisted-noise rare-event FER.

Adaptive round allocation (PR 5) made moderate-FER cells affordable, but
a deep-fade cell near FER 2e-5 still needs hundreds of thousands of
vanilla rounds before its estimate resolves. This bench runs the
importance-sampled fused kernel — a mild variance inflation plus a
transmit-aware mean shift, with exact per-row likelihood-ratio
reweighting — on such a cell and asserts the >= 10x sample-efficiency
gain at a fixed ``target_rel_error``:

* the per-trial relative variance of the weighted estimator, pooled
  over replicate fixed-budget runs (the weighted second moment is
  heavy-tailed, so single runs are noisy; the replicate seeds are fixed,
  making the pooled figure deterministic), is >= 10x below the vanilla
  binomial variance at the same FER — and the variance ratio *is* the
  asymptotic rounds-to-target ratio, free of the wave controller's
  round-doubling quantization; and
* the vanilla adaptive path, handed exactly the round budget the
  importance-sampled run resolved within, exhausts it unresolved.

It also checks unbiasedness on a moderate-FER cell where vanilla Monte
Carlo is affordable (agreement within 3 combined standard errors), and
writes the machine-readable trajectory to ``BENCH_is.json`` at the repo
root (the artifact CI uploads).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.linkcodec import default_codec
from repro.simulation.montecarlo import simulate_protocol
from repro.simulation.sampling import ImportanceSamplingSpec

CODEC = default_codec(16)  # short frames: the rare-event regime's codec
SEED = 101
MIN_GAIN = 10.0
TARGET = 0.35
MAX_ROUNDS = 1 << 18
REPLICATES = 4
ROUNDS_PER_REPLICATE = 1 << 15
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_is.json"

#: The deep-fade cell: a direct link just below the codec waterfall and
#: relay links faded to nothing, leaving DT at an FER near 2e-5 — the
#: regime where vanilla adaptive campaigns exhaust their budgets.
DEEP_CELL = LinkGains(1.4, 1e-3, 1e-3)
#: The moderate cell (FER ~ 4e-3) where vanilla Monte Carlo is cheap
#: enough to cross-check the weighted estimator's unbiasedness.
MODERATE_CELL = LinkGains(0.9, 1e-3, 1e-3)
SAMPLING = ImportanceSamplingSpec(noise_scale=1.05, noise_shift=0.2)


def _simulate(cell, *, sampling=None, seed_index=0, **kwargs):
    return simulate_protocol(
        Protocol.DT,
        cell,
        1.0,
        kwargs.pop("n_rounds", 4096),
        np.random.default_rng([SEED, seed_index]),
        codec=CODEC,
        importance_sampling=sampling,
        **kwargs,
    )


@pytest.fixture(scope="module")
def pooled_measurement():
    """Replicate fixed-budget IS runs, moments pooled across all trials."""
    frames = 0
    weighted_errors = 0.0
    weighted_sq_errors = 0.0
    max_weight = 0.0
    per_seed_gain = []
    for seed_index in range(REPLICATES):
        report = _simulate(
            DEEP_CELL,
            sampling=SAMPLING,
            seed_index=seed_index,
            n_rounds=ROUNDS_PER_REPLICATE,
        )
        counter = report.sampling
        frames += counter.frames
        weighted_errors += counter.weighted_errors
        weighted_sq_errors += counter.weighted_sq_errors
        max_weight = max(max_weight, counter.max_weight)
        p = counter.weighted_fer
        m2 = counter.weighted_sq_errors / counter.frames
        per_seed_gain.append(((1.0 - p) / p) / ((m2 - p * p) / (p * p)))
    p_hat = weighted_errors / frames
    second_moment = weighted_sq_errors / frames
    relvar_biased = (second_moment - p_hat**2) / p_hat**2
    relvar_vanilla = (1.0 - p_hat) / p_hat
    return {
        "frames": frames,
        "p_hat": p_hat,
        "relvar_biased": relvar_biased,
        "relvar_vanilla": relvar_vanilla,
        "variance_ratio": relvar_vanilla / relvar_biased,
        "max_weight": max_weight,
        "per_seed_gain": per_seed_gain,
    }


@pytest.fixture(scope="module")
def adaptive_runs():
    """The importance-sampled resolve and the budget-matched vanilla run."""
    start = time.perf_counter()
    biased = _simulate(
        DEEP_CELL,
        sampling=SAMPLING,
        seed_index=0,
        target_rel_error=TARGET,
        max_rounds=MAX_ROUNDS,
    )
    t_biased = time.perf_counter() - start
    assert biased.resolved, "importance-sampled cell must resolve"
    start = time.perf_counter()
    vanilla = _simulate(
        DEEP_CELL,
        seed_index=1,
        n_rounds=max(biased.n_rounds // 4, 1),
        target_rel_error=TARGET,
        max_rounds=biased.n_rounds,
    )
    t_vanilla = time.perf_counter() - start
    return biased, vanilla, t_biased, t_vanilla


def test_variance_reduction_and_budget(pooled_measurement, adaptive_runs):
    """The acceptance gate: >= 10x sample-efficiency at fixed target."""
    m = pooled_measurement
    biased, vanilla, t_biased, t_vanilla = adaptive_runs
    # Rounds each estimator needs to reach TARGET (two trials per round).
    rounds_biased = m["relvar_biased"] / TARGET**2 / 2.0
    rounds_vanilla = m["relvar_vanilla"] / TARGET**2 / 2.0
    emit(render_table(
        ["estimator", "relvar/trial", "rounds to target", "adaptive run"],
        [
            ["importance-sampled", m["relvar_biased"], rounds_biased,
             f"{biased.n_rounds} rounds, resolved"],
            ["vanilla (binomial)", m["relvar_vanilla"], rounds_vanilla,
             f"{vanilla.n_rounds} rounds, unresolved"],
        ],
        title=(f"abl-importance-sampling: deep-fade DT cell "
               f"(FER {m['p_hat']:.2e}), target_rel_error {TARGET} — "
               f"variance reduction {m['variance_ratio']:.1f}x"),
        float_format=".4g",
    ))
    BENCH_JSON.write_text(json.dumps({
        "bench": "abl-importance-sampling",
        "cell": {"gab": DEEP_CELL.gab, "gar": DEEP_CELL.gar,
                 "gbr": DEEP_CELL.gbr, "power": 1.0,
                 "payload_bits": CODEC.payload_bits},
        "proposal": SAMPLING.to_dict(),
        "target_rel_error": TARGET,
        "pooled_trials": m["frames"],
        "weighted_fer": m["p_hat"],
        "max_weight": m["max_weight"],
        "min_variance_ratio_asserted": MIN_GAIN,
        "variance_ratio": m["variance_ratio"],
        "per_seed_variance_ratio": m["per_seed_gain"],
        "rounds_to_target": {"importance_sampled": rounds_biased,
                             "vanilla": rounds_vanilla},
        "adaptive": {"importance_sampled_rounds": biased.n_rounds,
                     "importance_sampled_seconds": t_biased,
                     "vanilla_budget": vanilla.n_rounds,
                     "vanilla_seconds": t_vanilla,
                     "vanilla_resolved": vanilla.resolved},
    }, indent=2) + "\n")
    assert m["variance_ratio"] >= MIN_GAIN, (
        f"importance sampling only cut per-trial variance by "
        f"{m['variance_ratio']:.1f}x (relvar {m['relvar_biased']:.0f} vs "
        f"binomial {m['relvar_vanilla']:.0f})"
    )
    # The empirical face of the same gain: vanilla burns the entire
    # budget the importance-sampled run resolved within and still
    # cannot meet the target.
    assert vanilla.resolved is False, (
        f"vanilla resolved within the importance-sampled budget "
        f"({vanilla.n_rounds} rounds) — the deep-fade cell is not deep "
        "enough to ablate"
    )
    assert vanilla.n_rounds == biased.n_rounds


def test_weighted_estimator_unbiased():
    """IS and vanilla agree on a moderate cell within 3 standard errors."""
    n_rounds = 24_000
    vanilla = _simulate(MODERATE_CELL, seed_index=11, n_rounds=n_rounds)
    biased = _simulate(
        MODERATE_CELL, sampling=SAMPLING, seed_index=12, n_rounds=n_rounds
    )
    counter = biased.sampling
    n_trials = 2 * n_rounds
    se_vanilla = np.sqrt(vanilla.fer * (1.0 - vanilla.fer) / n_trials)
    se_biased = counter.rel_std_error * counter.weighted_fer
    gap = abs(counter.weighted_fer - vanilla.fer)
    tolerance = 3.0 * float(np.hypot(se_vanilla, se_biased))
    assert gap <= tolerance, (
        f"weighted FER {counter.weighted_fer:.4e} vs vanilla "
        f"{vanilla.fer:.4e}: gap {gap:.2e} exceeds 3 SE ({tolerance:.2e})"
    )


def test_bench_importance_sampled_resolve(benchmark, adaptive_runs):
    """Time one adaptive importance-sampled resolve of the deep-fade cell."""
    biased, _, _, _ = adaptive_runs

    def resolve():
        return _simulate(
            DEEP_CELL,
            sampling=SAMPLING,
            seed_index=0,
            target_rel_error=TARGET,
            max_rounds=MAX_ROUNDS,
        )

    report = benchmark.pedantic(resolve, rounds=1, iterations=1)
    assert report.n_rounds == biased.n_rounds
