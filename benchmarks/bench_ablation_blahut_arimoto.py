"""Ablation `abl-ba`: Blahut-Arimoto on the discrete substrate.

The paper's theorems are stated for discrete memoryless channels; the
discrete example path maximizes mutual information with Blahut-Arimoto.
This bench validates BA against closed forms (BSC/BEC) and times it.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.channels.dmc import binary_erasure_channel, binary_symmetric_channel
from repro.experiments.tables import render_table
from repro.information.blahut_arimoto import blahut_arimoto
from repro.information.functions import binary_entropy


def test_ba_closed_form_table():
    rows = []
    for p in (0.01, 0.05, 0.11, 0.25):
        result = blahut_arimoto(binary_symmetric_channel(p).matrix)
        closed = 1 - binary_entropy(p)
        rows.append([f"BSC({p:g})", result.capacity, closed,
                     result.iterations])
        assert result.capacity == pytest.approx(closed, abs=1e-7)
    for e in (0.1, 0.3, 0.5):
        result = blahut_arimoto(binary_erasure_channel(e).matrix)
        rows.append([f"BEC({e:g})", result.capacity, 1 - e, result.iterations])
        assert result.capacity == pytest.approx(1 - e, abs=1e-7)
    emit(render_table(
        ["channel", "BA capacity", "closed form", "iterations"],
        rows, title="abl-ba: Blahut-Arimoto vs closed forms",
        float_format=".6f"))


def test_bench_ba_bsc(benchmark):
    matrix = binary_symmetric_channel(0.11).matrix
    result = benchmark(blahut_arimoto, matrix)
    assert result.gap < 1e-10


def test_bench_ba_random_8x8(benchmark):
    rng = np.random.default_rng(31)
    raw = rng.random((8, 8)) + 1e-2
    matrix = raw / raw.sum(axis=1, keepdims=True)
    result = benchmark(blahut_arimoto, matrix, tol=1e-8)
    assert 0.0 <= result.capacity <= 3.0
