"""Ablation `abl-lp`: built-in simplex vs scipy HiGHS on the paper's LPs.

DESIGN.md calls out the LP backend as a swappable design choice; this bench
quantifies the cost of the self-contained simplex against scipy on exactly
the LPs the reproduction solves (support points of the HBC region), and
asserts the two agree to LP tolerance.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.bounds import hbc_inner
from repro.core.optimize import max_sum_rate, support_point
from repro.experiments.tables import render_table


@pytest.fixture(scope="module")
def evaluated(paper_channel_high):
    return paper_channel_high.evaluate(hbc_inner())


def test_backends_agree_on_paper_lp(evaluated):
    rows = []
    for mu in ((1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (2.0, 1.0), (1.0, 3.0)):
        scipy_point = support_point(evaluated, *mu, backend="scipy")
        simplex_point = support_point(evaluated, *mu, backend="simplex")
        rows.append([f"{mu}", scipy_point.ra, scipy_point.rb,
                     simplex_point.ra, simplex_point.rb])
        assert scipy_point.ra == pytest.approx(simplex_point.ra, abs=1e-6)
        assert scipy_point.rb == pytest.approx(simplex_point.rb, abs=1e-6)
    emit(render_table(
        ["mu", "scipy Ra", "scipy Rb", "simplex Ra", "simplex Rb"],
        rows, title="abl-lp: backend agreement on HBC support points"))


def test_bench_scipy_backend(benchmark, evaluated):
    point = benchmark(max_sum_rate, evaluated, backend="scipy")
    assert point.sum_rate > 0


def test_bench_simplex_backend(benchmark, evaluated):
    point = benchmark(max_sum_rate, evaluated, backend="simplex")
    assert point.sum_rate > 0
