"""Ablation `abl-fading`: ergodic vs outage sum rates under Rayleigh fading.

Section IV's channel model is quasi-static fading with full CSI; the bounds
are evaluated per realization and durations re-optimized. This bench
estimates ergodic means and 10%-outage rates for every protocol at the
Fig. 4 gains, times one Monte-Carlo evaluation, and measures the campaign
engine's vectorized executor against the serial reference — asserting both
the >= 3x speedup and bitwise-identical output.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.montecarlo import fading_sum_rate_statistics

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWER = 10.0
N_DRAWS = 150


@pytest.fixture(scope="module")
def fading_stats():
    return {
        protocol: fading_sum_rate_statistics(protocol, GAINS, POWER, N_DRAWS,
                                   np.random.default_rng(17))
        for protocol in Protocol
    }


def test_fading_table_printed(fading_stats):
    rows = []
    for protocol, stats in fading_stats.items():
        rows.append([protocol.name, stats.mean, stats.std_error,
                     stats.quantile(0.10), stats.quantile(0.50)])
    emit(render_table(
        ["protocol", "ergodic mean", "std err", "10%-outage", "median"],
        rows,
        title=f"abl-fading: Rayleigh, P=10 dB, {N_DRAWS} draws"))


def test_hbc_dominates_under_fading(fading_stats):
    """HBC >= max(MABC, TDBC) holds per realization, hence in the mean."""
    hbc = fading_stats[Protocol.HBC]
    assert hbc.mean >= fading_stats[Protocol.MABC].mean - 1e-9
    assert hbc.mean >= fading_stats[Protocol.TDBC].mean - 1e-9


def test_outage_below_ergodic(fading_stats):
    for stats in fading_stats.values():
        assert stats.quantile(0.10) <= stats.mean + 1e-9


def test_bench_ergodic_evaluation(benchmark):
    stats = benchmark(
        fading_sum_rate_statistics, Protocol.MABC, GAINS, POWER, 25,
        np.random.default_rng(23),
    )
    assert stats.mean > 0


def _time_ensemble(executor: str, n_draws: int) -> tuple:
    """Best-of-3 wall time of a full 5-protocol ensemble evaluation."""
    timings = []
    samples = None
    for _ in range(3):
        start = time.perf_counter()
        samples = np.stack([
            fading_sum_rate_statistics(protocol, GAINS, POWER, n_draws,
                             np.random.default_rng(31),
                             executor=executor).samples
            for protocol in Protocol
        ])
        timings.append(time.perf_counter() - start)
    return min(timings), samples


def test_vectorized_executor_speedup_and_identity():
    """The campaign fast path: >= 3x over serial, bitwise-identical output.

    This is the acceptance gate of the campaign engine — the vectorized
    executor batches every draw's phase-duration LP into stacked linear
    algebra and must (a) beat the per-draw serial reference by >= 3x on the
    paper's fading ensemble and (b) reproduce its values exactly.
    """
    n_draws = 400
    serial_time, serial_samples = _time_ensemble("serial", n_draws)
    vectorized_time, vectorized_samples = _time_ensemble("vectorized",
                                                         n_draws)
    speedup = serial_time / vectorized_time
    emit(render_table(
        ["executor", "best-of-3 [s]", "units", "units/s"],
        [["serial", serial_time, 5 * n_draws,
          5 * n_draws / serial_time],
         ["vectorized", vectorized_time, 5 * n_draws,
          5 * n_draws / vectorized_time],
         [f"speedup {speedup:.1f}x", 0.0, 0, 0.0]],
        title=f"abl-fading: executor comparison, {n_draws} draws x "
              f"{len(Protocol)} protocols"))
    assert np.array_equal(serial_samples, vectorized_samples), \
        "vectorized executor must be bitwise-identical to serial"
    assert speedup >= 3.0, (
        f"vectorized executor only {speedup:.2f}x faster than serial "
        f"({vectorized_time:.3f}s vs {serial_time:.3f}s)"
    )


def test_bench_vectorized_campaign_ensemble(benchmark):
    """Time the default (vectorized) fast path on the full paper ensemble."""
    stats = benchmark(
        fading_sum_rate_statistics, Protocol.HBC, GAINS, POWER, N_DRAWS,
        np.random.default_rng(17), executor="vectorized",
    )
    assert stats.mean > 0
