"""Ablation `abl-fading`: ergodic vs outage sum rates under Rayleigh fading.

Section IV's channel model is quasi-static fading with full CSI; the bounds
are evaluated per realization and durations re-optimized. This bench
estimates ergodic means and 10%-outage rates for every protocol at the
Fig. 4 gains and times one Monte-Carlo evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.montecarlo import ergodic_sum_rate

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWER = 10.0
N_DRAWS = 150


@pytest.fixture(scope="module")
def fading_stats():
    return {
        protocol: ergodic_sum_rate(protocol, GAINS, POWER, N_DRAWS,
                                   np.random.default_rng(17))
        for protocol in Protocol
    }


def test_fading_table_printed(fading_stats):
    rows = []
    for protocol, stats in fading_stats.items():
        rows.append([protocol.name, stats.mean, stats.std_error,
                     stats.quantile(0.10), stats.quantile(0.50)])
    emit(render_table(
        ["protocol", "ergodic mean", "std err", "10%-outage", "median"],
        rows,
        title=f"abl-fading: Rayleigh, P=10 dB, {N_DRAWS} draws"))


def test_hbc_dominates_under_fading(fading_stats):
    """HBC >= max(MABC, TDBC) holds per realization, hence in the mean."""
    hbc = fading_stats[Protocol.HBC]
    assert hbc.mean >= fading_stats[Protocol.MABC].mean - 1e-9
    assert hbc.mean >= fading_stats[Protocol.TDBC].mean - 1e-9


def test_outage_below_ergodic(fading_stats):
    for stats in fading_stats.values():
        assert stats.quantile(0.10) <= stats.mean + 1e-9


def test_bench_ergodic_evaluation(benchmark):
    stats = benchmark(
        ergodic_sum_rate, Protocol.MABC, GAINS, POWER, 25,
        np.random.default_rng(23),
    )
    assert stats.mean > 0
