"""Bench `fig3`: regenerate the paper's Fig. 3 (optimal sum rates).

Regenerates both reconstructed sweeps (relay placement and symmetric relay
gain) at the paper's parameters ``P = 15 dB, G_ab = 0 dB``, prints the
series, asserts the paper's qualitative claims, and times one full sweep
point (four LP optimizations, one per protocol).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.capacity import compare_protocols
from repro.core.gaussian import GaussianChannel
from repro.channels.pathloss import linear_relay_gains
from repro.experiments.config import FIG3_DEFAULT, Fig3Config
from repro.experiments.fig3 import fig3_result as compute_fig3
from repro.experiments.fig3 import fig3_shape_checks
from repro.experiments.runner import fig3_report


@pytest.fixture(scope="module")
def fig3_result():
    return compute_fig3(FIG3_DEFAULT)


def test_fig3_full_report(fig3_result):
    """Regenerate and print the complete Fig. 3 tables (not timed)."""
    report = fig3_report(fig3_result)
    emit(report.render())
    assert report.all_checks_pass()


def test_fig3_shape_claims(fig3_result):
    checks = fig3_shape_checks(fig3_result)
    failing = [name for name, ok in checks.items() if not ok]
    assert not failing, f"paper claims not reproduced: {failing}"


def test_bench_fig3_single_sweep_point(benchmark):
    """Time the per-point work of Fig. 3: four duration-optimization LPs."""
    channel = GaussianChannel(
        gains=linear_relay_gains(0.65, exponent=3.0),
        power=FIG3_DEFAULT.power,
    )

    result = benchmark(compare_protocols, channel)
    assert result.best_protocol().name == "HBC"


def test_bench_fig3_full_placement_sweep(benchmark):
    """Time the whole placement sweep at reduced resolution."""
    config = Fig3Config(
        relay_fractions=tuple(i / 10 for i in range(1, 10)),
        symmetric_gains_db=(),
    )

    result = benchmark(compute_fig3, config)
    assert len(result.placement_rows) == 9
