"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates a paper artifact (or an ablation of one) and
*prints* the series it produced, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's tables/figures as text while timing the computation
that generates them. Printed output is captured by pytest unless ``-s`` is
given; the numbers are asserted either way.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the shared test helpers importable when running `pytest benchmarks/`.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def emit(report_text: str) -> None:
    """Print a rendered experiment report block (visible with -s)."""
    print()
    print(report_text)


@pytest.fixture(scope="session")
def paper_channel_low():
    """Fig. 4 top-panel channel (P = 0 dB)."""
    from repro.experiments.config import FIG4_P0

    return FIG4_P0.channel()


@pytest.fixture(scope="session")
def paper_channel_high():
    """Fig. 4 bottom-panel channel (P = 10 dB)."""
    from repro.experiments.config import FIG4_P10

    return FIG4_P10.channel()
