"""Ablation `abl-randcode`: the Theorem-2 phase transition, empirically.

Runs the paper's random-coding construction at increasing block lengths
for one rate pair inside the Theorem-2 region and one outside it. Inside,
the error rate falls with block length (the achievability direction);
outside, it stays pinned near one (the converse direction) — the two
halves of the theorem, observed in Monte Carlo.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.channels.binary_relay import BinaryRelayChannel
from repro.experiments.tables import render_table
from repro.simulation.random_coding import (
    mabc_rate_pair_feasible,
    simulate_mabc_random_coding,
)

CHANNEL = BinaryRelayChannel(pab=0.4, par=0.05, pbr=0.05)
BLOCKS = (16, 32, 64)
INSIDE = {"bits_a": 3, "bits_b": 3}      # 6 bits; capacity ~0.71/use
OUTSIDE = {"bits_a": 8, "bits_b": 8}     # 16 bits through 16-use MAC: out


@pytest.fixture(scope="module")
def transition():
    rows = {}
    for n in BLOCKS:
        inside = simulate_mabc_random_coding(
            CHANNEL, n_mac=n, n_broadcast=n, n_trials=40,
            rng=np.random.default_rng(100 + n), **INSIDE,
        )
        rows[n] = inside
    outside = simulate_mabc_random_coding(
        CHANNEL, n_mac=16, n_broadcast=16, n_trials=40,
        rng=np.random.default_rng(999), **OUTSIDE,
    )
    return rows, outside


def test_phase_transition_table(transition):
    inside_rows, outside = transition
    rows = []
    for n, report in inside_rows.items():
        rows.append([f"inside, n_mac={n}", report.relay_error_rate,
                     report.max_error_rate])
    rows.append(["outside, n_mac=16", outside.relay_error_rate,
                 outside.max_error_rate])
    emit(render_table(
        ["configuration", "relay pair error", "end-to-end error"],
        rows, title="abl-randcode: Theorem 2 random coding phase transition"))


def test_inside_rates_improve_with_block_length(transition):
    inside_rows, _ = transition
    errors = [report.max_error_rate for report in inside_rows.values()]
    assert errors[-1] <= errors[0] + 1e-9
    assert errors[-1] <= 0.1


def test_outside_rate_fails(transition):
    _, outside = transition
    assert not mabc_rate_pair_feasible(CHANNEL, 16, 16, **OUTSIDE)
    assert outside.relay_error_rate >= 0.5


def test_bench_random_coding_trial(benchmark):
    report = benchmark(
        simulate_mabc_random_coding, CHANNEL,
        n_mac=32, n_broadcast=32, bits_a=3, bits_b=3, n_trials=5,
        rng=np.random.default_rng(7),
    )
    assert report.n_trials == 5
