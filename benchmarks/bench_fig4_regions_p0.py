"""Bench `fig4a`: regenerate Fig. 4 top panel (rate regions at P = 0 dB).

Traces the DT / MABC / TDBC-inner / TDBC-outer / HBC boundaries at the
paper's low-SNR operating point, prints them, asserts the low-SNR claims
(MABC beats TDBC in area and sum rate) and times one boundary trace.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.capacity import achievable_region
from repro.core.protocols import Protocol
from repro.experiments.config import FIG4_P0, FIG4_P10
from repro.experiments.fig4 import run_fig4
from repro.experiments.runner import fig4_report


@pytest.fixture(scope="module")
def panel():
    return run_fig4(FIG4_P0)


def test_fig4a_full_report(panel):
    report = fig4_report(FIG4_P0, "fig4a", result=panel)
    emit(report.render())
    assert report.all_checks_pass(), report.checks


def test_fig4a_low_snr_ordering(panel):
    assert panel.traces["MABC"].area > panel.traces["TDBC inner"].area
    assert panel.traces["MABC"].max_sum_rate > \
        panel.traces["TDBC inner"].max_sum_rate


def test_fig4a_region_nesting(panel):
    assert panel.traces["HBC"].area >= panel.traces["MABC"].area - 1e-9
    assert panel.traces["TDBC outer"].area >= \
        panel.traces["TDBC inner"].area - 1e-9


def test_bench_fig4a_hbc_boundary(benchmark, paper_channel_low):
    """Time the HBC boundary trace (33 support-point LPs, lexicographic)."""
    region = achievable_region(Protocol.HBC, paper_channel_low)

    boundary = benchmark(region.boundary, 33)
    assert boundary.shape[1] == 2
