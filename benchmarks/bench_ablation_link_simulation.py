"""Ablation `abl-sim`: operational DF goodput vs the analytic bounds.

Runs the concrete link-level system (CRC + convolutional code + BPSK + SIC
+ XOR network coding) for every protocol at the Fig. 4 high-SNR operating
point, prints goodput next to the corresponding capacity bound, and times
one protocol round. The operational system must stay below the bound and
preserve the MABC-beats-TDBC symbol-efficiency ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.convolutional import NASA_CODE
from repro.simulation.crc import CRC16_CCITT
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.montecarlo import simulate_protocol

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWER = 10 ** 1.2  # 12 dB: comfortably above the codec's operating point
CODEC = LinkCodec(payload_bits=128, code=NASA_CODE, crc=CRC16_CCITT)
N_ROUNDS = 30


@pytest.fixture(scope="module")
def campaign_reports():
    return {
        protocol: simulate_protocol(protocol, GAINS, POWER, N_ROUNDS,
                                    np.random.default_rng(41), codec=CODEC)
        for protocol in Protocol
    }


def test_goodput_vs_bound_table(campaign_reports):
    rows = []
    for protocol, report in campaign_reports.items():
        bound = optimal_sum_rate(
            protocol, GaussianChannel(gains=GAINS, power=POWER)
        ).sum_rate
        rows.append([protocol.name, report.sum_goodput, bound,
                     report.a_to_b.fer, report.b_to_a.fer])
        assert report.sum_goodput <= bound + 1e-9
    emit(render_table(
        ["protocol", "goodput [b/sym]", "capacity bound", "FER a->b",
         "FER b->a"],
        rows,
        title=f"abl-sim: operational DF vs bounds (P=12 dB, {N_ROUNDS} rounds)"))


def test_network_coding_gain(campaign_reports):
    """MABC spends 2 frames/exchange vs TDBC's 3: goodput ratio ~= 3/2."""
    mabc = campaign_reports[Protocol.MABC]
    tdbc = campaign_reports[Protocol.TDBC]
    if mabc.a_to_b.fer == 0 and tdbc.a_to_b.fer == 0:
        assert mabc.sum_goodput == pytest.approx(1.5 * tdbc.sum_goodput,
                                                 rel=1e-6)


def test_bench_mabc_round(benchmark):
    from repro.channels.halfduplex import HalfDuplexMedium
    from repro.simulation.bits import random_bits
    from repro.simulation.engine import ProtocolEngine

    rng = np.random.default_rng(43)
    engine = ProtocolEngine(medium=HalfDuplexMedium(gains=GAINS),
                            codec=CODEC, power=POWER)
    wa = random_bits(rng, CODEC.payload_bits)
    wb = random_bits(rng, CODEC.payload_bits)

    result = benchmark(engine.run_mabc_round, wa, wb, rng)
    assert result.n_symbols == 2 * CODEC.n_symbols


def test_bench_viterbi_decode(benchmark, rng=None):
    """Microbench: soft Viterbi on the production K=7 code."""
    generator = np.random.default_rng(47)
    info = generator.integers(0, 2, size=144, dtype=np.uint8)
    coded = NASA_CODE.encode(info).astype(float)
    llrs = (1.0 - 2.0 * coded) * 8.0

    decoded = benchmark(NASA_CODE.decode, llrs, 144)
    np.testing.assert_array_equal(decoded, info)
