"""Chaos smoke: the fault-tolerance guarantee, measured and reported.

Each scenario arms one deterministic fault class from :mod:`repro.faults`
against a real campaign and asserts the headline guarantee of
``docs/robustness.md``: the run either completes **bitwise-identical**
to its fault-free reference or fails with a **single typed error** — no
torn caches, no silently wrong numbers, no hangs.  The per-scenario
outcomes and recovery counters are written to ``CHAOS_report.json`` at
the repo root (the artifact the CI ``chaos-smoke`` job uploads).

Scenarios:

``worker-kill``
    A pool worker dies (``os._exit``) mid-chunk; the executor rebuilds
    the pool and the engine re-dispatches exactly the failed chunk.
``torn-write``
    Every chunk entry the store publishes is immediately truncated;
    digest verification refuses them all and the in-memory result never
    depends on the store.
``socket-drop``
    The daemon severs the result frame mid-stream; the client
    reconnects and is served the identical grid from the store.
``retry-exhaustion``
    A permanently failing chunk demonstrates the *other* arm of the
    guarantee: one typed :class:`ChunkRetryExhaustedError`, with every
    completed chunk checkpointed for the next attempt.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path

import pytest

from repro.api import evaluate
from repro.campaign.cache import CampaignCache
from repro.campaign.engine import RetryPolicy, _cache_key, run_campaign
from repro.campaign.executors import MultiprocessExecutor
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import ChunkRetryExhaustedError
from repro.faults import FaultPlan, FaultRule, chunk_site
from repro.serve import CampaignServer, ServeClient, ServeConfig, ServeError

SEED = 11
GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
CHAOS_JSON = Path(__file__).resolve().parent.parent / "CHAOS_report.json"

#: Zero backoff: the report measures recovery mechanics, not sleeps.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def _spec() -> CampaignSpec:
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC),
        powers_db=(0.0, 10.0),
        gains=(GAINS,),
        fading=FadingSpec(n_draws=12, seed=SEED),
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


@pytest.fixture(scope="module")
def reference():
    """The fault-free grid every recovered run must reproduce exactly."""
    return run_campaign(_spec(), executor="vectorized")


@pytest.fixture(scope="module")
def report():
    """Mutable per-scenario records; flushed to CHAOS_report.json."""
    records: dict[str, dict] = {}
    yield records
    CHAOS_JSON.write_text(
        json.dumps(
            {
                "bench": "chaos-smoke",
                "guarantee": "bitwise-identical or one typed error",
                "grid_units": _spec().n_units,
                "scenarios": records,
            },
            indent=2,
        )
        + "\n"
    )


def test_worker_kill_heals_and_converges(reference, report, tmp_path):
    plan = FaultPlan(
        rules=(FaultRule(kind="worker-death", site=chunk_site(16, 32)),)
    )
    executor = MultiprocessExecutor(processes=2)
    result, elapsed = _timed(
        lambda: run_campaign(
            _spec(),
            executor=executor,
            cache=tmp_path,
            chunk_size=16,
            fault_plan=plan,
            retry=FAST_RETRY,
        )
    )
    identical = result.values.tobytes() == reference.values.tobytes()
    report["worker-kill"] = {
        "outcome": "recovered",
        "bitwise_identical": identical,
        "pool_rebuilds": result.pool_rebuilds,
        "chunk_retries": result.chunk_retries,
        "elapsed_s": elapsed,
    }
    assert identical
    assert result.pool_rebuilds == 1
    assert result.chunk_retries == 1


def test_torn_writes_never_reach_the_result(reference, report, tmp_path):
    # Truncate *every* chunk entry either run publishes, forever.
    plan = FaultPlan(
        rules=(FaultRule(kind="torn-write", site="units-", times=None),)
    )
    cache = CampaignCache(tmp_path)
    result, elapsed = _timed(
        lambda: run_campaign(
            _spec(), executor="serial", cache=cache, chunk_size=16, fault_plan=plan
        )
    )
    identical = result.values.tobytes() == reference.values.tobytes()
    # The store self-repairs once the chaos stops.
    rerun = run_campaign(_spec(), cache=cache, chunk_size=16)
    rerun_identical = rerun.values.tobytes() == reference.values.tobytes()
    report["torn-write"] = {
        "outcome": "recovered",
        "bitwise_identical": identical,
        "clean_rerun_identical": rerun_identical,
        "elapsed_s": elapsed,
    }
    assert identical
    assert rerun_identical


def test_socket_drop_is_retried_to_the_same_bytes(reference, report, tmp_path):
    del reference  # the serve scenario has its own local reference
    plan = FaultPlan(rules=(FaultRule(kind="socket-drop", site="result"),))
    config = ServeConfig(
        socket_path=str(tmp_path / "chaos.sock"),
        cache=str(tmp_path / "serve-cache"),
        processes=2,
    )
    server = CampaignServer(config, fault_plan=plan)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    client = ServeClient(config.socket_path, timeout=120, retries=2)
    deadline = time.monotonic() + 30
    while True:
        try:
            client.ping()
            break
        except ServeError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)
    try:
        served, elapsed = _timed(lambda: client.evaluate("fig4-operating-points"))
        local = evaluate("fig4-operating-points")
        identical = served.values.tobytes() == local.values.tobytes()
        faults = client.health()["faults_injected"]
        report["socket-drop"] = {
            "outcome": "recovered",
            "bitwise_identical": identical,
            "served_from": served.served_from,
            "faults_injected": faults,
            "elapsed_s": elapsed,
        }
        assert identical
        assert faults == {"socket-drop": 1}
    finally:
        try:
            client.shutdown()
        except ServeError:
            pass
        thread.join(timeout=30)
        assert not thread.is_alive()


def test_exhausted_retries_fail_with_one_typed_error(report, tmp_path):
    # A chunk that fails on every attempt: the guarantee's other arm.
    plan = FaultPlan(
        rules=(
            FaultRule(kind="chunk-error", site=chunk_site(16, 32), times=None),
        )
    )
    with pytest.raises(ChunkRetryExhaustedError) as excinfo:
        run_campaign(
            _spec(),
            executor="serial",
            cache=tmp_path,
            chunk_size=16,
            fault_plan=plan,
            retry=FAST_RETRY,
        )
    # Completed chunks were checkpointed before the failure surfaced.
    cache = CampaignCache(tmp_path)
    checkpointed = sum(
        stop - start for start, stop, _ in cache.iter_chunks(_cache_key(_spec()))
    )
    report["retry-exhaustion"] = {
        "outcome": "typed-error",
        "error": type(excinfo.value).__name__,
        "failed_chunk": list(excinfo.value.chunk),
        "attempts": excinfo.value.attempts,
        "cells_checkpointed": checkpointed,
    }
    assert excinfo.value.chunk == (16, 32)
    assert excinfo.value.attempts == FAST_RETRY.max_attempts
    assert checkpointed >= 16
