"""Ablation `abl-traffic`: batched frame outcomes under the event layer.

A traffic simulation consumes link-layer outcomes one served round at a
time, which invites the naive implementation: run one
:class:`~repro.simulation.engine.ProtocolEngine` round per frame as the
scheduler asks for it. The production
:class:`~repro.traffic.outcomes.FrameOutcomeStream` instead realizes
outcomes in batched chunks through the
:class:`~repro.simulation.engine.BatchedProtocolEngine` — same pre-drawn
payload block, same per-phase noise streams, so the event trace and
every reported metric are bitwise identical; only the wall clock moves.
This bench runs full queueing simulations (arrivals, FIFO buffers, ARQ,
scheduling) both ways, asserting the >= 3x speedup and exact equality of
every :class:`~repro.traffic.simulator.TrafficReport`, and writes the
trajectory to ``BENCH_traffic.json`` at the repo root (the artifact CI
uploads).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.campaign.spec import LinkSimSpec, TrafficSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.traffic import simulate_traffic

SEED = 31
N_SLOTS = 256
POWER = 10.0
GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
PROTOCOLS = (Protocol.MABC, Protocol.TDBC)
MIN_SPEEDUP = 3.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_traffic.json"

#: Two asymmetrically loaded pairs on the arXiv:1002.0123 topology,
#: heavily enough loaded that most slots serve a round (the regime where
#: outcome realization dominates the wall clock).
LINK = LinkSimSpec(
    n_rounds=N_SLOTS,
    payload_bits=64,
    seed=SEED,
    metric="latency",
    traffic=TrafficSpec(
        rates=(0.6, 0.3),
        scheduler="longest-queue",
        buffer_frames=12,
        arq_limit=4,
        pair_offsets_db=((0.0, 0.0, 0.0), (-2.0, 3.0, -3.0)),
    ),
)


def _run(protocol: Protocol, method: str):
    """One full queueing simulation with the given outcome realization."""
    return simulate_traffic(
        protocol,
        GAINS,
        POWER,
        link=LINK,
        rng=np.random.default_rng([SEED, 0]),
        method=method,
    )


@pytest.fixture(scope="module")
def method_comparison():
    """Best-of-2 timings and reports of both outcome realizations."""
    results = {}
    for protocol in PROTOCOLS:
        timings = {}
        reports = {}
        for method in ("per-frame", "batched"):
            best = np.inf
            for _ in range(2):
                start = time.perf_counter()
                reports[method] = _run(protocol, method)
                best = min(best, time.perf_counter() - start)
            timings[method] = best
        results[protocol] = (timings, reports)
    return results


def test_batched_speedup_and_exact_equality(method_comparison):
    """The acceptance gate: >= 3x faster, every report field identical."""
    rows = []
    trajectory = {}
    total_per_frame = 0.0
    total_batched = 0.0
    for protocol, (timings, reports) in method_comparison.items():
        assert reports["batched"] == reports["per-frame"], (
            f"{protocol}: batched traffic report differs from the "
            "per-frame reference loop"
        )
        speedup = timings["per-frame"] / timings["batched"]
        total_per_frame += timings["per-frame"]
        total_batched += timings["batched"]
        report = reports["batched"]
        p95 = report.latency_quantile(0.95)
        rows.append([protocol.name, timings["per-frame"], timings["batched"],
                     speedup, report.delivered, p95])
        trajectory[protocol.name] = {
            "per_frame_s": timings["per-frame"],
            "batched_s": timings["batched"],
            "speedup": speedup,
            "delivered": report.delivered,
            "served_rounds": report.served_rounds,
            "latency_p95_slots": p95,
        }
    aggregate = total_per_frame / total_batched
    emit(render_table(
        ["protocol", "per-frame [s]", "batched [s]", "speedup",
         "delivered", "p95 latency [slots]"],
        rows,
        title=(f"abl-traffic: 2 pairs x {N_SLOTS} slots, ARQ + "
               f"longest-queue — aggregate speedup {aggregate:.1f}x")))
    BENCH_JSON.write_text(json.dumps({
        "bench": "abl-traffic",
        "n_slots": N_SLOTS,
        "n_pairs": LINK.traffic.n_pairs,
        "payload_bits": LINK.payload_bits,
        "scheduler": LINK.traffic.scheduler,
        "min_speedup_asserted": MIN_SPEEDUP,
        "aggregate_speedup": aggregate,
        "protocols": trajectory,
    }, indent=2) + "\n")
    assert aggregate >= MIN_SPEEDUP, (
        f"batched outcome stream only {aggregate:.2f}x faster than the "
        f"per-frame loop ({total_batched:.3f}s vs {total_per_frame:.3f}s)"
    )


def test_bench_traffic_simulation(benchmark):
    """Time the batched production path on the MABC configuration."""
    report = benchmark(_run, Protocol.MABC, "batched")
    assert report.n_slots == N_SLOTS
