"""Ablation `abl-adaptive`: per-fade protocol switching under Rayleigh fading.

The paper compares fixed protocols; with full CSI a system can pick the
best protocol per fade. This bench quantifies the adaptivity gain of
MABC/TDBC switching over either fixed choice across power levels, and
verifies that adding HBC to the pool absorbs all wins (it contains both).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.adaptive import adaptive_sum_rate

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWERS_DB = (0.0, 10.0, 20.0)
N_DRAWS = 80


@pytest.fixture(scope="module")
def reports():
    return {
        power_db: adaptive_sum_rate(
            GAINS, 10 ** (power_db / 10), N_DRAWS,
            np.random.default_rng(200 + int(power_db)),
        )
        for power_db in POWERS_DB
    }


def test_adaptivity_table(reports):
    rows = []
    for power_db, report in reports.items():
        rows.append([
            power_db,
            report.fixed_means[Protocol.MABC],
            report.fixed_means[Protocol.TDBC],
            report.adaptive_mean,
            report.adaptivity_gain,
            report.selection_frequency(Protocol.TDBC),
        ])
    emit(render_table(
        ["P [dB]", "fixed MABC", "fixed TDBC", "adaptive", "gain",
         "TDBC win freq"],
        rows,
        title=f"abl-adaptive: MABC/TDBC switching, {N_DRAWS} Rayleigh draws"))


def test_gain_nonnegative_everywhere(reports):
    for report in reports.values():
        assert report.adaptivity_gain >= -1e-12


def test_selection_mix_is_genuine(reports):
    """At some power both protocols must win a share of the fades."""
    mixed = any(
        0 < report.selection_frequency(Protocol.TDBC) < 1
        for report in reports.values()
    )
    assert mixed


def test_bench_adaptive_evaluation(benchmark):
    report = benchmark(
        adaptive_sum_rate, GAINS, 10.0, 20, np.random.default_rng(5),
    )
    assert report.n_draws == 20
