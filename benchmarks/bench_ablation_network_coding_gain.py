"""Ablation `abl-netcode`: what does network coding actually buy?

The paper's Fig. 1 narrative: naive relaying needs four phases; network
coding merges the two relay transmissions (TDBC, 3 phases); joint MAC
transmission merges the terminal phases too (MABC, 2 phases). This bench
quantifies that progression in optimal sum rate across a power sweep,
analytically and operationally.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.channels.gains import LinkGains
from repro.core.capacity import compare_protocols, optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWERS_DB = (0.0, 5.0, 10.0, 15.0)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for power_db in POWERS_DB:
        channel = GaussianChannel(gains=GAINS, power=10 ** (power_db / 10))
        results[power_db] = compare_protocols(channel)
    return results


def test_progression_table(sweep):
    rows = []
    for power_db, comparison in sweep.items():
        rates = comparison.as_row()
        rows.append([
            power_db, rates["NAIVE4"], rates["TDBC"], rates["MABC"],
            rates["HBC"], rates["MABC"] / rates["NAIVE4"],
        ])
    emit(render_table(
        ["P [dB]", "naive 4-phase", "TDBC", "MABC", "HBC",
         "MABC/naive gain"],
        rows,
        title="abl-netcode: the Fig. 1 progression in optimal sum rate"))


def test_every_coded_protocol_beats_naive(sweep):
    for comparison in sweep.values():
        rates = comparison.as_row()
        for name in ("MABC", "TDBC", "HBC"):
            assert rates[name] > rates["NAIVE4"] + 1e-6


def test_gain_exceeds_half_log_factor(sweep):
    """MABC halves the phase count vs naive relaying on these channels.

    The improvement is not exactly 2x (the MAC sum constraint bites), but
    must exceed ~1.3x across the sweep.
    """
    for comparison in sweep.values():
        rates = comparison.as_row()
        assert rates["MABC"] / rates["NAIVE4"] > 1.3


def test_bench_naive4_optimization(benchmark):
    channel = GaussianChannel(gains=GAINS, power=10.0)
    point = benchmark(optimal_sum_rate, Protocol.NAIVE4, channel)
    assert point.sum_rate > 0
