"""The Lemma-1 cut-set bound engine.

Lemma 1 of the paper: if rates ``{R_{i,j}}`` are achievable for a protocol
with relative phase durations ``{Δ_ℓ}``, then for every cut ``S``::

    R_{S,S^c} <= sum_ℓ Δ_ℓ · I(X_S^(ℓ); Y_{S^c}^(ℓ) | X_{S^c}^(ℓ), Q)

In a half-duplex protocol where only the nodes in ``T_ℓ`` transmit during
phase ``ℓ`` (everyone else holds the ``∅`` symbol), the mutual-information
term collapses: inputs exist only for transmitters, outputs only for
listeners, so with ``A = S ∩ T_ℓ`` (cut-side transmitters),
``B = S^c \\ T_ℓ`` (far-side listeners) and ``C = S^c ∩ T_ℓ`` (far-side
transmitters, conditioned away)::

    I(X_S; Y_{S^c} | X_{S^c}) = I(X_A; Y_B | X_C)

This module mechanically generates one linear constraint per cut from a
protocol schedule and a mutual-information oracle. For the Gaussian oracle
below (independent per-phase Gaussian inputs, full CSI, unit noise) the
engine reproduces, term by term, the outer bounds of Theorems 2, 4 and 6 —
the unit tests assert exactly that against the hand-coded theorem builders
in :mod:`repro.core.bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol as TypingProtocol

import numpy as np

from ..channels.gains import LinkGains
from ..exceptions import InvalidParameterError, InvalidProtocolError
from .cuts import cuts_with_crossing_rate
from .model import NetworkModel

__all__ = [
    "PhaseSpec",
    "ProtocolSchedule",
    "MutualInformationOracle",
    "GaussianMIOracle",
    "CutConstraint",
    "cutset_outer_bound",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a half-duplex protocol: who transmits.

    Attributes
    ----------
    transmitters:
        The nodes transmitting in this phase; everyone else listens.
    label:
        Human-readable phase name for reports.
    """

    transmitters: frozenset
    label: str = ""

    def __init__(self, transmitters, label: str = "") -> None:
        object.__setattr__(self, "transmitters", frozenset(transmitters))
        object.__setattr__(self, "label", label or "+".join(sorted(transmitters)))
        if not self.transmitters:
            raise InvalidProtocolError("a phase needs at least one transmitter")


@dataclass(frozen=True)
class ProtocolSchedule:
    """An ordered list of phases over a node set."""

    nodes: tuple
    phases: tuple

    def __init__(self, nodes, phases) -> None:
        node_tuple = tuple(nodes)
        phase_tuple = tuple(phases)
        object.__setattr__(self, "nodes", node_tuple)
        object.__setattr__(self, "phases", phase_tuple)
        if not phase_tuple:
            raise InvalidProtocolError("a protocol needs at least one phase")
        node_set = set(node_tuple)
        for phase in phase_tuple:
            if not phase.transmitters <= node_set:
                raise InvalidProtocolError(
                    f"phase {phase.label!r} transmitters {sorted(phase.transmitters)} "
                    f"are not all in the node set {sorted(node_set)}"
                )

    @property
    def n_phases(self) -> int:
        """Number of phases."""
        return len(self.phases)


class MutualInformationOracle(TypingProtocol):
    """Evaluates the collapsed per-phase MI term ``I(X_A; Y_B | X_C)``."""

    def mutual_information(self, phase_index: int, sources: frozenset,
                           listeners: frozenset,
                           conditioned: frozenset) -> float:
        """MI in bits for phase ``phase_index``; 0 if either set is empty."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class GaussianMIOracle:
    """Gaussian evaluation of the collapsed cut MI terms.

    Assumes independent per-phase complex Gaussian inputs of power ``power``
    at every node, unit-power noise and full CSI — the evaluation model of
    Section IV. With ``A`` the cut-side transmitters and ``B`` the far-side
    listeners, the term is the log-det of the SIMO/MIMO Gram matrix::

        I(X_A; Y_B | X_C) = log2 det( I_|B| + P * sum_{i in A} h_i h_i^H )

    where ``h_i[j] = g_{ij}`` for ``j in B``. Conditioning on ``X_C``
    removes the far-side transmitters' (known) contribution, so ``C`` does
    not appear in the value — exactly the simplification the paper performs
    in (9)–(15).

    Note: with *correlated* inputs (allowed by Theorem 6's
    ``p^(3)(x_a, x_b | q)``) the true bound can be larger; this oracle is
    the independent-input evaluation, which is exact for Theorems 2 and 4
    and a documented proxy for Theorem 6.
    """

    gains: LinkGains
    power: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise InvalidParameterError(f"power must be non-negative, got {self.power}")

    def mutual_information(self, phase_index: int, sources: frozenset,
                           listeners: frozenset,
                           conditioned: frozenset) -> float:
        """See :class:`MutualInformationOracle`."""
        if not sources or not listeners:
            return 0.0
        listener_list = sorted(listeners)
        gram = np.eye(len(listener_list))
        for source in sorted(sources):
            h = np.array(
                [np.sqrt(self.gains.gain(source, j)) for j in listener_list]
            )
            gram = gram + self.power * np.outer(h, h)
        sign, logdet = np.linalg.slogdet(gram)
        if sign <= 0:  # pragma: no cover - Gram matrices are PD by construction
            raise InvalidParameterError("non-positive-definite Gram matrix")
        return float(logdet / np.log(2.0))


@dataclass(frozen=True)
class CutConstraint:
    """One linear cut-set constraint.

    Encodes ``sum of rates of `message_names` <= sum_ℓ Δ_ℓ * phase_mi[ℓ]``.

    Attributes
    ----------
    cut:
        The node subset ``S`` generating the constraint.
    message_names:
        Names of the messages whose rates add on the left-hand side.
    phase_mi:
        Per-phase MI coefficients (bits) multiplying the durations ``Δ_ℓ``.
    """

    cut: frozenset
    message_names: tuple
    phase_mi: tuple

    def bound_value(self, durations) -> float:
        """Right-hand side evaluated at concrete phase durations."""
        durations = tuple(durations)
        if len(durations) != len(self.phase_mi):
            raise InvalidParameterError(
                f"expected {len(self.phase_mi)} durations, got {len(durations)}"
            )
        return float(sum(d * mi for d, mi in zip(durations, self.phase_mi)))


def cutset_outer_bound(network: NetworkModel, schedule: ProtocolSchedule,
                       oracle: MutualInformationOracle) -> list[CutConstraint]:
    """Generate every non-vacuous Lemma-1 constraint for the protocol.

    Parameters
    ----------
    network:
        Nodes and messages (with multi-destination semantics for DF).
    schedule:
        The protocol's phases (transmitter sets, in order).
    oracle:
        Per-phase mutual-information evaluator.

    Returns
    -------
    list[CutConstraint]
        One constraint per cut crossed by at least one message, in the
        deterministic cut-enumeration order.
    """
    if set(network.nodes) != set(schedule.nodes):
        raise InvalidProtocolError(
            f"network nodes {sorted(network.nodes)} differ from schedule nodes "
            f"{sorted(schedule.nodes)}"
        )
    constraints = []
    all_nodes = network.node_set
    for cut, crossing in cuts_with_crossing_rate(network):
        complement = all_nodes - cut
        mi_per_phase = []
        for index, phase in enumerate(schedule.phases):
            sources = cut & phase.transmitters
            listeners = complement - phase.transmitters
            conditioned = complement & phase.transmitters
            mi_per_phase.append(
                oracle.mutual_information(index, frozenset(sources),
                                          frozenset(listeners),
                                          frozenset(conditioned))
            )
        constraints.append(
            CutConstraint(
                cut=cut,
                message_names=tuple(m.name for m in crossing),
                phase_mi=tuple(mi_per_phase),
            )
        )
    return constraints
