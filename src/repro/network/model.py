"""The m-node network model of Section II-A.

Nodes form a set ``M = {1, ..., m}``; node ``i`` holds a message ``W_{i,j}``
for node ``j``. In the decode-and-forward protocols the same terminal
message is demanded by *several* nodes (the opposite terminal **and** the
relay — Section II-C sets ``W_{a,r} = W_a``), so messages here carry a
source and a *set* of destinations. ``R_{S,S^c}`` then counts each message
whose source lies in ``S`` and that has at least one destination outside
``S`` exactly once, which is what makes the Lemma-1 sum-rate constraint for
the cut ``S = {a, b}`` appear (and disappear when the relay is not required
to decode, exactly as the paper's remarks state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError

__all__ = ["Message", "NetworkModel", "bidirectional_relay_network"]


@dataclass(frozen=True)
class Message:
    """An independent message in the network.

    Attributes
    ----------
    name:
        Identifier used as the rate-variable key (e.g. ``"Ra"``).
    source:
        Originating node.
    destinations:
        Nodes that must decode the message (non-empty, source excluded).
    """

    name: str
    source: str
    destinations: frozenset

    def __init__(self, name: str, source: str, destinations) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "destinations", frozenset(destinations))
        if not self.name:
            raise InvalidParameterError("message name must be non-empty")
        if not self.destinations:
            raise InvalidParameterError(
                f"message {name!r} needs at least one destination"
            )
        if self.source in self.destinations:
            raise InvalidParameterError(
                f"message {name!r} cannot be destined to its own source {source!r}"
            )

    def crosses_cut(self, cut: frozenset) -> bool:
        """Whether the message must cross from ``cut`` to its complement.

        True iff the source is inside the cut and some destination is
        outside it.
        """
        return self.source in cut and not self.destinations <= cut


@dataclass(frozen=True)
class NetworkModel:
    """A set of nodes and the independent messages exchanged between them."""

    nodes: tuple
    messages: tuple = field(default_factory=tuple)

    def __init__(self, nodes, messages) -> None:
        node_tuple = tuple(nodes)
        message_tuple = tuple(messages)
        object.__setattr__(self, "nodes", node_tuple)
        object.__setattr__(self, "messages", message_tuple)
        if len(set(node_tuple)) != len(node_tuple):
            raise InvalidParameterError(f"duplicate nodes in {node_tuple!r}")
        if len(node_tuple) < 2:
            raise InvalidParameterError("a network needs at least two nodes")
        names = [m.name for m in message_tuple]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate message names in {names!r}")
        node_set = set(node_tuple)
        for m in message_tuple:
            if m.source not in node_set or not m.destinations <= node_set:
                raise InvalidParameterError(
                    f"message {m.name!r} references nodes outside the network"
                )

    @property
    def node_set(self) -> frozenset:
        """The node set as a frozenset."""
        return frozenset(self.nodes)

    def message_by_name(self, name: str) -> Message:
        """Look up a message by its rate-variable name."""
        for m in self.messages:
            if m.name == name:
                return m
        raise InvalidParameterError(f"no message named {name!r}")

    def crossing_messages(self, cut) -> tuple:
        """Messages whose rate appears in ``R_{S,S^c}`` for ``S = cut``."""
        cut_set = frozenset(cut)
        if not cut_set <= self.node_set:
            raise InvalidParameterError(
                f"cut {sorted(cut_set)!r} contains unknown nodes"
            )
        return tuple(m for m in self.messages if m.crosses_cut(cut_set))


def bidirectional_relay_network(*, relay_decodes: bool = True) -> NetworkModel:
    """The paper's three-node bidirectional relay network.

    Parameters
    ----------
    relay_decodes:
        ``True`` (decode-and-forward, the paper's protocols): each terminal
        message is demanded by both the opposite terminal and the relay,
        which activates the ``S = {a, b}`` sum-rate cut. ``False``: only the
        opposite terminal must decode, matching the paper's remarks about
        dropping the sum-rate constraint.
    """
    destinations_a = {"b", "r"} if relay_decodes else {"b"}
    destinations_b = {"a", "r"} if relay_decodes else {"a"}
    return NetworkModel(
        nodes=("a", "b", "r"),
        messages=(
            Message("Ra", "a", destinations_a),
            Message("Rb", "b", destinations_b),
        ),
    )
