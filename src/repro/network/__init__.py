"""Network model substrate: nodes, messages, cuts, Lemma-1 engine, groups."""

from .cuts import cuts_with_crossing_rate, enumerate_cuts
from .cutset import (
    CutConstraint,
    GaussianMIOracle,
    MutualInformationOracle,
    PhaseSpec,
    ProtocolSchedule,
    cutset_outer_bound,
)
from .groups import CyclicGroup, RandomBinning, XorGroup, relay_combine, relay_resolve
from .model import Message, NetworkModel, bidirectional_relay_network

__all__ = [
    "cuts_with_crossing_rate",
    "enumerate_cuts",
    "CutConstraint",
    "GaussianMIOracle",
    "MutualInformationOracle",
    "PhaseSpec",
    "ProtocolSchedule",
    "cutset_outer_bound",
    "CyclicGroup",
    "RandomBinning",
    "XorGroup",
    "relay_combine",
    "relay_resolve",
    "Message",
    "NetworkModel",
    "bidirectional_relay_network",
]
