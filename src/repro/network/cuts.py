"""Cut enumeration for cut-set bounds.

A *cut* is a non-empty proper subset ``S`` of the node set; the cut-set
bound constrains the total rate of messages crossing from ``S`` to its
complement. The paper enumerates all six cuts of the three-node network in
the converse of Theorem 2 (``S1 = {a}`` ... ``S6 = {b, r}``); this module
provides the same enumeration for arbitrary node sets.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from ..exceptions import InvalidParameterError
from .model import NetworkModel

__all__ = ["enumerate_cuts", "cuts_with_crossing_rate"]


def enumerate_cuts(nodes) -> Iterator[frozenset]:
    """Yield every non-empty proper subset of ``nodes`` (deterministic order).

    Subsets are emitted by increasing size, then lexicographically by sorted
    node names, matching the S1..S6 ordering of the paper for
    ``nodes = ('a', 'b', 'r')`` up to relabeling.
    """
    node_list = sorted(set(nodes))
    if len(node_list) < 2:
        raise InvalidParameterError("need at least two nodes to form a cut")
    for size in range(1, len(node_list)):
        for subset in itertools.combinations(node_list, size):
            yield frozenset(subset)


def cuts_with_crossing_rate(network: NetworkModel) -> list[tuple[frozenset, tuple]]:
    """All cuts of the network paired with the messages that cross them.

    Cuts crossed by no message are omitted (they yield the vacuous
    constraint ``0 <= ...``, the paper's "N/A" entry for ``S3 = {r}``).
    """
    result = []
    for cut in enumerate_cuts(network.nodes):
        crossing = network.crossing_messages(cut)
        if crossing:
            result.append((cut, crossing))
    return result
