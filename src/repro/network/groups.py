"""Finite group algebra for network coding and random binning.

The paper's achievability schemes combine messages algebraically at the
relay:

* **MABC (Theorem 2)**: the relay forwards ``w_r = ŵ_a ⊕ ŵ_b`` in the
  additive group ``L = max(⌊2^{nRa}⌋, ⌊2^{nRb}⌋)``; each terminal knows its
  own message, so the received group element pins down the partner's.
* **TDBC (Theorem 3)**: the relay forwards a sum of *bin indices*
  ``s_a(ŵ_a) ⊕ s_b(ŵ_b)`` where ``s_a`` is a random binning (partition) of
  ``a``'s message set.

This module implements both ingredients: cyclic additive groups ``Z_L``,
the bit-vector group ``GF(2)^k`` (component-wise XOR, the form used by the
coded-bidirectional references [4], [5]), and reproducible random binning
partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["CyclicGroup", "XorGroup", "RandomBinning", "relay_combine", "relay_resolve"]


@dataclass(frozen=True)
class CyclicGroup:
    """The additive group ``Z_L`` of integers modulo ``order``."""

    order: int

    def __post_init__(self) -> None:
        if self.order < 1:
            raise InvalidParameterError(f"group order must be >= 1, got {self.order}")

    def contains(self, element: int) -> bool:
        """Membership test."""
        return 0 <= int(element) < self.order

    def _check(self, *elements: int) -> None:
        for e in elements:
            if not self.contains(e):
                raise InvalidParameterError(
                    f"{e} is not an element of Z_{self.order}"
                )

    def add(self, x: int, y: int) -> int:
        """Group operation ``x + y (mod L)``."""
        self._check(x, y)
        return (int(x) + int(y)) % self.order

    def negate(self, x: int) -> int:
        """Additive inverse."""
        self._check(x)
        return (-int(x)) % self.order

    def subtract(self, x: int, y: int) -> int:
        """``x - y (mod L)``; resolves a partner message from a relay sum."""
        self._check(x, y)
        return (int(x) - int(y)) % self.order

    @property
    def identity(self) -> int:
        """The neutral element."""
        return 0


@dataclass(frozen=True)
class XorGroup:
    """The group ``GF(2)^k`` under component-wise XOR, elements as ints."""

    n_bits: int

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise InvalidParameterError(f"bit width must be >= 1, got {self.n_bits}")

    @property
    def order(self) -> int:
        """Number of elements, ``2^k``."""
        return 1 << self.n_bits

    def contains(self, element: int) -> bool:
        """Membership test."""
        return 0 <= int(element) < self.order

    def _check(self, *elements: int) -> None:
        for e in elements:
            if not self.contains(e):
                raise InvalidParameterError(
                    f"{e} is not an element of GF(2)^{self.n_bits}"
                )

    def add(self, x: int, y: int) -> int:
        """Group operation: bitwise XOR (self-inverse)."""
        self._check(x, y)
        return int(x) ^ int(y)

    def negate(self, x: int) -> int:
        """Additive inverse (XOR is an involution, so this is the identity map)."""
        self._check(x)
        return int(x)

    def subtract(self, x: int, y: int) -> int:
        """Same as :meth:`add` since every element is its own inverse."""
        return self.add(x, y)

    @property
    def identity(self) -> int:
        """The neutral element."""
        return 0


@dataclass(frozen=True)
class RandomBinning:
    """A uniform random partition of ``{0..n_messages-1}`` into bins.

    Implements the paper's ``s_a(w_a)`` (proof of Theorem 3): every message
    index is independently and uniformly assigned one of ``n_bins`` bin
    indices. The partition is drawn once from the supplied RNG and then
    fixed (codebook knowledge shared by all nodes).
    """

    n_messages: int
    n_bins: int
    assignment: np.ndarray

    def __init__(self, n_messages: int, n_bins: int, rng: np.random.Generator) -> None:
        if n_messages < 1:
            raise InvalidParameterError(f"need at least one message, got {n_messages}")
        if n_bins < 1:
            raise InvalidParameterError(f"need at least one bin, got {n_bins}")
        assignment = rng.integers(0, n_bins, size=n_messages)
        object.__setattr__(self, "n_messages", int(n_messages))
        object.__setattr__(self, "n_bins", int(n_bins))
        object.__setattr__(self, "assignment", assignment)

    def bin_index(self, message: int) -> int:
        """``s(w)``: the bin index of a message."""
        if not 0 <= int(message) < self.n_messages:
            raise InvalidParameterError(
                f"message {message} outside {{0..{self.n_messages - 1}}}"
            )
        return int(self.assignment[int(message)])

    def bin_members(self, bin_idx: int) -> np.ndarray:
        """All messages assigned to a bin (the decoder's candidate list)."""
        if not 0 <= int(bin_idx) < self.n_bins:
            raise InvalidParameterError(
                f"bin {bin_idx} outside {{0..{self.n_bins - 1}}}"
            )
        return np.flatnonzero(self.assignment == int(bin_idx))


def relay_combine(group, w_a: int, w_b: int) -> int:
    """The relay's network-coded transmission content ``w_a ⊕ w_b``."""
    return group.add(w_a, w_b)


def relay_resolve(group, combined: int, own_message: int) -> int:
    """Recover the partner's message from the relay sum and own message.

    In ``Z_L``: ``w_partner = combined - own``; in ``GF(2)^k`` the same
    expression with XOR. This is the side-information decoding step of
    Theorem 2's decoder ("since ``w_r = w_a ⊕ w_b`` and ``a`` knows
    ``w_a``...").
    """
    return group.subtract(combined, own_message)
