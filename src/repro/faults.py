"""Deterministic fault injection for campaigns, caches, and the serve daemon.

The chaos suite's contract is that every injected failure is *replayable*:
given the same :class:`FaultPlan` and the same campaign, the same faults fire
at the same sites in the same order, with no wall-clock randomness anywhere.
Three ingredients make that true:

* **Sites are logical, not temporal.**  A chunk fault site is the global unit
  range ``[lo, hi)`` of the chunk plus the zero-based retry ``attempt``; a
  cache-write site is the entry filename plus the per-file write ordinal; a
  socket site is the frame's event kind plus the per-kind send ordinal.
* **Probabilistic rules hash, they do not sample.**  A rule with
  ``probability < 1`` fires iff a SHA-256 hash of
  ``(seed, kind, site, attempt)`` — mapped to ``[0, 1)`` — falls below the
  probability.  Two processes evaluating the same site agree without sharing
  any RNG state.
* **Plans are inert data.**  A plan is a frozen, JSON-serializable value that
  does nothing until a hook seam consults it: ``run_campaign(fault_plan=)``,
  ``CampaignServer(fault_plan=)``, or the ``REPRO_FAULT_PLAN`` environment
  variable (read by both, so subprocess tests can arm faults without
  plumbing arguments through the CLI).  Production code paths never pay for
  injection when no plan is armed.

Fault kinds
-----------

``chunk-error``
    Raise :class:`InjectedChunkError` (a :class:`RetryableChunkError`) from
    chunk evaluation — in the pool worker for process executors, engine-side
    for in-process executors.
``worker-death``
    ``os._exit`` inside the pool worker evaluating the chunk, breaking the
    process pool.  Only fires inside a worker (``in_worker=True``); for
    in-process executors it is a no-op rather than killing the test runner.
``torn-write``
    Sabotage a cache entry write.  ``mode="crash"`` simulates a writer dying
    before publication (the temp file is discarded and ``os.replace`` never
    runs); ``mode="corrupt"`` (the default) truncates the entry *after*
    publication, which SHA-256 verification must catch on the next read.
``socket-drop``
    Write roughly half of an outbound serve frame, then sever the
    connection mid-frame.
``socket-close``
    Sever the connection before the frame is written at all.
``socket-delay``
    Sleep ``delay_seconds`` before writing the frame (exercises client-side
    socket timeouts without touching the transport's integrity).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass

from .exceptions import InvalidParameterError, RetryableChunkError

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "TORN_WRITE_MODES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultToken",
    "InjectedChunkError",
    "chunk_site",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_KINDS = (
    "chunk-error",
    "worker-death",
    "torn-write",
    "socket-drop",
    "socket-close",
    "socket-delay",
)

TORN_WRITE_MODES = ("corrupt", "crash")


class InjectedChunkError(RetryableChunkError):
    """The transient chunk failure raised by ``chunk-error`` fault rules."""


def chunk_site(lo: int, hi: int) -> str:
    """Canonical site string for the chunk covering global units [lo, hi)."""

    return f"chunk[{int(lo)},{int(hi)})"


@dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger: fire ``kind`` at matching sites/attempts.

    ``site`` is a substring filter on the canonical site string (``None``
    matches every site).  The rule is eligible on attempts ``after <=
    attempt < after + times`` (``times=None`` means every attempt from
    ``after`` on).  ``probability`` thins eligible firings via the plan's
    seeded hash; 1.0 always fires.  ``mode`` selects the ``torn-write``
    flavor, ``delay_seconds`` parameterizes ``socket-delay``, and
    ``exit_code`` is the ``os._exit`` status for ``worker-death``.
    """

    kind: str
    site: str | None = None
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    mode: str | None = None
    delay_seconds: float = 0.0
    exit_code: int = 23

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise InvalidParameterError("FaultRule.after must be >= 0")
        if self.times is not None and self.times < 1:
            raise InvalidParameterError("FaultRule.times must be >= 1 or None")
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidParameterError("FaultRule.probability must lie in [0, 1]")
        if self.mode is not None and self.mode not in TORN_WRITE_MODES:
            raise InvalidParameterError(
                f"unknown torn-write mode {self.mode!r}; "
                f"expected one of {TORN_WRITE_MODES}"
            )
        if self.delay_seconds < 0.0:
            raise InvalidParameterError("FaultRule.delay_seconds must be >= 0")

    def matches(self, site: str, attempt: int) -> bool:
        """Whether this rule is eligible at ``site`` on ``attempt``.

        Probability thinning is *not* applied here — that needs the plan's
        seed — only the site filter and the attempt window.
        """

        if self.site is not None and self.site not in site:
            return False
        if attempt < self.after:
            return False
        if self.times is not None and attempt >= self.after + self.times:
            return False
        return True

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        # Only drop fields whose *default* is None — for ``times``, None is
        # meaningful (unbounded) and must survive the round trip.
        for key in ("site", "mode"):
            if payload[key] is None:
                del payload[key]
        return payload


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded collection of :class:`FaultRule` triggers.

    The plan is pure data: hashable, picklable (it rides into pool workers
    inside :class:`FaultToken`), and JSON round-trippable so subprocess
    tests can arm it through the :data:`FAULT_PLAN_ENV` environment
    variable.  ``decide`` is a pure function of ``(seed, rules, kind, site,
    attempt)`` — calling it twice, in two processes, yields the same answer.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def has(self, *kinds: str) -> bool:
        """Whether any rule targets one of ``kinds`` (cheap arming check)."""

        return any(rule.kind in kinds for rule in self.rules)

    def _chance(self, kind: str, site: str, attempt: int) -> float:
        token = f"{self.seed}|{kind}|{site}|{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide(self, kind: str, site: str, attempt: int) -> FaultRule | None:
        """First rule of ``kind`` that fires at ``(site, attempt)``, if any."""

        for rule in self.rules:
            if rule.kind != kind or not rule.matches(site, attempt):
                continue
            if rule.probability >= 1.0:
                return rule
            if self._chance(kind, site, attempt) < rule.probability:
                return rule
        return None

    def chunk_guard(self, chunk_range, attempt: int, *, in_worker: bool = False):
        """Apply chunk-level faults for ``chunk_range`` on ``attempt``.

        ``worker-death`` only fires when ``in_worker`` is true — in-process
        executors must not take the whole interpreter down.  ``chunk-error``
        raises :class:`InjectedChunkError` wherever evaluation runs.
        """

        lo, hi = chunk_range
        site = chunk_site(lo, hi)
        rule = self.decide("worker-death", site, attempt)
        if rule is not None and in_worker:
            os._exit(rule.exit_code)
        rule = self.decide("chunk-error", site, attempt)
        if rule is not None:
            raise InjectedChunkError(
                f"injected transient fault at {site} on attempt {attempt}"
            )

    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> FaultPlan:
        if not isinstance(payload, dict):
            raise InvalidParameterError("fault plan payload must be a JSON object")
        rules = payload.get("rules", ())
        if not isinstance(rules, (list, tuple)):
            raise InvalidParameterError("fault plan 'rules' must be a list")
        return cls(
            rules=tuple(FaultRule(**rule) for rule in rules),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise InvalidParameterError(f"invalid fault plan JSON: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_env(cls, environ=None) -> FaultPlan | None:
        """Plan armed via :data:`FAULT_PLAN_ENV`, or ``None`` when unset.

        The value is either inline JSON (starts with ``{``) or the path of a
        JSON file — the latter keeps shell quoting sane in CI scripts.
        """

        value = (environ if environ is not None else os.environ).get(FAULT_PLAN_ENV)
        if not value:
            return None
        value = value.strip()
        if not value.startswith("{"):
            with open(value, "r", encoding="utf-8") as handle:
                value = handle.read()
        return cls.from_json(value)


@dataclass(frozen=True)
class FaultToken:
    """A plan bound to one chunk attempt, picklable into pool workers.

    Pool executors forward the token to their worker entry point, which
    calls :meth:`apply` before evaluating — so ``worker-death`` genuinely
    kills a pool process and ``chunk-error`` raises from inside the worker,
    exercising the real failure paths rather than simulations of them.
    """

    plan: FaultPlan
    chunk: tuple[int, int]
    attempt: int

    def apply(self, *, in_worker: bool = True):
        self.plan.chunk_guard(self.chunk, self.attempt, in_worker=in_worker)


class FaultInjector:
    """Stateful plan evaluator for sites that need occurrence counting.

    Chunk sites carry their own attempt number, but cache writes and socket
    sends do not — their "attempt" is *how many times this site has been
    visited*, which is inherently per-run state.  The injector keeps those
    ordinals (and a tally of fired faults, keyed by kind) so a fresh
    injector replays a run's faults exactly.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._ordinals: dict[tuple[str, str], int] = {}
        self.fired: dict[str, int] = {}

    def _next_ordinal(self, group: str, site: str) -> int:
        key = (group, site)
        ordinal = self._ordinals.get(key, 0)
        self._ordinals[key] = ordinal + 1
        return ordinal

    def _record(self, kind: str):
        self.fired[kind] = self.fired.get(kind, 0) + 1

    def cache_write(self, name: str) -> FaultRule | None:
        """Torn-write rule for the ``name``-th entry write, if one fires."""

        ordinal = self._next_ordinal("cache-write", name)
        rule = self.plan.decide("torn-write", name, ordinal)
        if rule is not None:
            self._record("torn-write")
        return rule

    def socket_event(self, event: str) -> tuple[str, FaultRule] | None:
        """Socket fault for the next outbound frame of ``event`` kind.

        Returns ``(kind, rule)`` for the first socket rule that fires, or
        ``None``.  All three socket kinds share the per-event ordinal so a
        plan can reason about "the second result frame" unambiguously.
        """

        ordinal = self._next_ordinal("socket", event)
        for kind in ("socket-close", "socket-drop", "socket-delay"):
            rule = self.plan.decide(kind, event, ordinal)
            if rule is not None:
                self._record(kind)
                return kind, rule
        return None
