"""Traffic generators: deterministic per-flow arrival processes.

Each flow's arrivals are materialized up front as a tuple of real-valued
arrival times in ``[0, horizon)`` from that flow's own spawned stream.
The draw pattern is fixed — one scalar exponential per inter-arrival
gap, in arrival order — so the times (and therefore the whole event
schedule) are a pure function of the stream state, regardless of how the
simulation later interleaves flows.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["ARRIVAL_KINDS", "arrival_times"]

#: Supported arrival processes.
#:
#: * ``poisson`` — memoryless arrivals at ``rate`` frames/slot
#:   (exponential inter-arrival gaps);
#: * ``periodic`` — deterministic arrivals every ``1/rate`` slots,
#:   phase-offset by half a period; consumes **no** randomness;
#: * ``bursty`` — batched Poisson: bursts of ``burst_size`` simultaneous
#:   frames arriving as a Poisson process of rate ``rate / burst_size``,
#:   so the long-run frame rate still equals ``rate``.
ARRIVAL_KINDS = ("poisson", "periodic", "bursty")


def arrival_times(
    kind: str,
    rate: float,
    horizon: float,
    rng: np.random.Generator,
    *,
    burst_size: int = 1,
) -> tuple:
    """Arrival times of one flow over ``[0, horizon)``, in order.

    ``rate`` is the mean frame arrival rate in frames per slot. Frames
    that would arrive at or after ``horizon`` are not generated: the
    simulation ends at the horizon and they could never be served.
    Frames of one burst share an arrival time; the event loop's sequence
    numbers keep them FIFO.
    """
    if rate <= 0:
        raise InvalidParameterError(f"arrival rate must be positive, got {rate}")
    if horizon <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {horizon}")
    if burst_size < 1:
        raise InvalidParameterError(f"burst size must be positive, got {burst_size}")
    if kind == "periodic":
        period = 1.0 / rate
        times = []
        t = 0.5 * period
        while t < horizon:
            times.append(t)
            t += period
        return tuple(times)
    if kind == "poisson":
        times = []
        t = float(rng.exponential(1.0 / rate))
        while t < horizon:
            times.append(t)
            t += float(rng.exponential(1.0 / rate))
        return tuple(times)
    if kind == "bursty":
        gap = burst_size / rate
        times = []
        t = float(rng.exponential(gap))
        while t < horizon:
            times.extend([t] * burst_size)
            t += float(rng.exponential(gap))
        return tuple(times)
    raise InvalidParameterError(
        f"unknown arrival kind {kind!r}; choose from {ARRIVAL_KINDS}"
    )
