"""Per-flow FIFO queues with finite buffers and drop accounting.

A :class:`Frame` is one payload waiting (or retrying) at a terminal; a
:class:`FifoQueue` holds the head-of-line discipline and the finite
buffer. Overflow is the *caller's* drop to count — ``offer`` just
reports admission — so buffer drops and ARQ drops land in the same
per-flow tally (:class:`repro.traffic.arq.FlowTally`).
"""

from __future__ import annotations

from collections import deque

from ..exceptions import InvalidParameterError

__all__ = ["Frame", "FifoQueue"]


class Frame:
    """One queued payload: its arrival time and ARQ attempt count."""

    __slots__ = ("arrival", "attempts")

    def __init__(self, arrival: float) -> None:
        self.arrival = float(arrival)
        self.attempts = 0


class FifoQueue:
    """A finite FIFO buffer of :class:`Frame` objects."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"buffer capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._frames: deque = deque()

    def __len__(self) -> int:
        return len(self._frames)

    def offer(self, frame: Frame) -> bool:
        """Admit ``frame`` unless the buffer is full; report admission."""
        if len(self._frames) >= self.capacity:
            return False
        self._frames.append(frame)
        return True

    def head(self) -> Frame:
        """The head-of-line frame (the stop-and-wait transmission)."""
        if not self._frames:
            raise InvalidParameterError("queue is empty")
        return self._frames[0]

    def pop(self) -> Frame:
        """Remove and return the head-of-line frame."""
        if not self._frames:
            raise InvalidParameterError("queue is empty")
        return self._frames.popleft()
