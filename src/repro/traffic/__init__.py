"""Event-driven traffic and scheduling above the fused link kernel.

The :mod:`repro.simulation` layer answers "what is the frame error rate
of one protocol round?"; this package answers the queueing questions a
deployment asks on top of it: how long do frames wait under bursty
arrivals, how many are dropped by finite buffers or exhausted ARQ
budgets, and which multi-pair relay scheduling discipline sustains the
highest offered load (the arXiv:1002.0123 question).

Determinism contract
--------------------
Every simulation is a pure function of the campaign spec:

* the event loop (:mod:`repro.traffic.events`) orders events by
  ``(time, priority, seq)`` — ties cannot exist, so event order never
  depends on heap internals or insertion timing;
* all randomness comes from spec-seeded spawned streams
  (:func:`repro.traffic.simulator.simulate_traffic` documents the spawn
  tree), never from wall clock or global state;
* link-layer outcomes are pre-seeded per pair under the documented RNG
  spawn policy of :mod:`repro.simulation.engine`, so the batched outcome
  stream and a naive per-frame simulate loop produce bitwise-identical
  reports (benchmark-asserted in ``benchmarks/bench_ablation_traffic.py``).

Because of this, traffic-objective campaign cells evaluate identically
under every executor, chunking, ``--shard I/N`` + gather, and the serve
daemon — the same guarantee the analytic and operational kernels give.
"""

from .arq import FlowTally, StopAndWaitArq
from .events import ARRIVAL, SERVICE, EventLoop
from .generators import ARRIVAL_KINDS, arrival_times
from .outcomes import DEFAULT_OUTCOME_CHUNK, OUTCOME_METHODS, FrameOutcomeStream
from .queues import FifoQueue, Frame
from .schedulers import SCHEDULERS, get_scheduler
from .simulator import (
    FlowStats,
    TrafficReport,
    simulate_traffic,
    stable_throughput_knee,
    traffic_cell_value,
    traffic_link_values,
)

__all__ = [
    "ARRIVAL",
    "SERVICE",
    "EventLoop",
    "ARRIVAL_KINDS",
    "arrival_times",
    "FifoQueue",
    "Frame",
    "FlowTally",
    "StopAndWaitArq",
    "DEFAULT_OUTCOME_CHUNK",
    "OUTCOME_METHODS",
    "FrameOutcomeStream",
    "SCHEDULERS",
    "get_scheduler",
    "FlowStats",
    "TrafficReport",
    "simulate_traffic",
    "stable_throughput_knee",
    "traffic_cell_value",
    "traffic_link_values",
]
