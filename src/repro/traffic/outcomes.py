"""Pre-seeded per-pair streams of frame outcomes from the link kernel.

A :class:`FrameOutcomeStream` turns the link-level simulation kernel
into a sequential oracle for the event layer: outcome ``i`` answers "do
the two directions of this pair's *i*-th served protocol round decode?".
It follows the RNG spawn policy of :mod:`repro.simulation.montecarlo`
exactly:

* the pair's generator spawns ``(payload stream, noise stream)``;
* **all** payloads are drawn up front as one contiguous
  ``(n_slots, 2, payload_bits)`` integer block — the draw boundary is
  spec-fixed, never dependent on how many outcomes the scheduler ends up
  consuming;
* the noise stream spawns one child per protocol phase
  (:func:`repro.simulation.engine.spawn_phase_streams`), and noise is
  realized lazily as outcomes are demanded.

Because each phase's noise is consumed as contiguous blocks of the same
per-phase streams, *any* split of the rounds axis yields identical
values (the engine-module guarantee). The ``"batched"`` method therefore
produces outcomes bitwise-identical to the naive ``"per-frame"``
reference loop — it just amortizes the encode/decode pipeline over
``chunk`` rounds per call instead of one. ``benchmarks/
bench_ablation_traffic.py`` asserts both the equality and the speedup.
"""

from __future__ import annotations

import numpy as np

from ..channels.gains import LinkGains
from ..channels.halfduplex import HalfDuplexMedium
from ..exceptions import InvalidParameterError
from ..simulation.engine import (
    BatchedProtocolEngine,
    ProtocolEngine,
    spawn_phase_streams,
)

__all__ = ["DEFAULT_OUTCOME_CHUNK", "OUTCOME_METHODS", "FrameOutcomeStream"]

#: Rounds realized per batched engine call. Large enough to amortize the
#: per-call pipeline setup, small enough that a lightly loaded pair does
#: not simulate far past the outcomes it actually consumes.
DEFAULT_OUTCOME_CHUNK = 64

#: Outcome realization methods: the batched production path and the
#: per-frame reference loop it must reproduce bitwise.
OUTCOME_METHODS = ("batched", "per-frame")


class FrameOutcomeStream:
    """Sequential per-round ``(success_ab, success_ba)`` outcomes of a pair.

    ``peek`` realizes (if needed) and returns the next outcome without
    consuming it — the opportunistic scheduler's channel oracle; ``take``
    consumes it. Consumption order is one-dimensional and strictly
    sequential, so which rounds a pair is served in never changes the
    outcome values, only which of them are used.
    """

    def __init__(
        self,
        protocol,
        gains: LinkGains,
        power: float,
        n_slots: int,
        rng: np.random.Generator,
        *,
        codec,
        method: str = "batched",
        chunk: int | None = None,
    ) -> None:
        if method not in OUTCOME_METHODS:
            raise InvalidParameterError(
                f"unknown outcome method {method!r}; choose from {OUTCOME_METHODS}"
            )
        if n_slots < 1:
            raise InvalidParameterError(f"need at least one slot, got {n_slots}")
        if chunk is not None and chunk < 1:
            raise InvalidParameterError(f"chunk must be positive, got {chunk}")
        payload_rng, noise_rng = rng.spawn(2)
        self._payloads = payload_rng.integers(
            0, 2, size=(n_slots, 2, codec.payload_bits), dtype=np.uint8
        )
        self._phase_streams = spawn_phase_streams(protocol, noise_rng)
        medium = HalfDuplexMedium(gains=gains)
        if method == "per-frame":
            self._engine = ProtocolEngine(medium=medium, codec=codec, power=power)
            self._chunk = 1
        else:
            self._engine = BatchedProtocolEngine(
                medium=medium, codec=codec, power=power
            )
            self._chunk = chunk or DEFAULT_OUTCOME_CHUNK
        self._protocol = protocol
        self._method = method
        self._n_slots = int(n_slots)
        self._success_ab: list = []
        self._success_ba: list = []
        self._cursor = 0

    @property
    def consumed(self) -> int:
        """Outcomes consumed so far (= times this pair was served)."""
        return self._cursor

    @property
    def realized(self) -> int:
        """Rounds simulated so far (may exceed ``consumed`` by < chunk)."""
        return len(self._success_ab)

    def _refill(self) -> None:
        start = self.realized
        if start >= self._n_slots:
            raise InvalidParameterError(
                f"outcome stream exhausted after {self._n_slots} rounds"
            )
        stop = min(start + self._chunk, self._n_slots)
        if self._method == "per-frame":
            for i in range(start, stop):
                result = self._engine.run_round(
                    self._protocol,
                    self._payloads[i, 0],
                    self._payloads[i, 1],
                    phase_streams=self._phase_streams,
                )
                self._success_ab.append(bool(result.success_a_to_b))
                self._success_ba.append(bool(result.success_b_to_a))
        else:
            batch = self._engine.run_rounds(
                self._protocol,
                self._payloads[start:stop, 0],
                self._payloads[start:stop, 1],
                phase_streams=self._phase_streams,
            )
            self._success_ab.extend(bool(x) for x in batch.success_a_to_b)
            self._success_ba.extend(bool(x) for x in batch.success_b_to_a)

    def peek(self) -> tuple:
        """The next outcome ``(success_ab, success_ba)``, unconsumed."""
        while self._cursor >= self.realized:
            self._refill()
        return self._success_ab[self._cursor], self._success_ba[self._cursor]

    def take(self) -> tuple:
        """Consume and return the next outcome."""
        outcome = self.peek()
        self._cursor += 1
        return outcome
