"""Stop-and-wait ARQ with a retransmission limit.

Each directed flow runs head-of-line stop-and-wait: the frame at the
front of its FIFO is (re)transmitted whenever the scheduler serves the
flow's pair, and leaves the queue either on success (delivered, latency
recorded) or when its attempt count reaches the limit (ARQ drop). The
limit counts *attempts*, so ``limit=1`` is plain unacknowledged
transmission and ``limit=n`` allows ``n - 1`` retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError
from .queues import FifoQueue

__all__ = ["FlowTally", "StopAndWaitArq"]


@dataclass
class FlowTally:
    """Mutable per-flow accounting, accumulated during a simulation.

    ``latencies`` holds the delivered frames' latencies (completion time
    minus arrival time, in slots) in delivery order.
    """

    arrivals: int = 0
    delivered: int = 0
    drops_buffer: int = 0
    drops_arq: int = 0
    attempts: int = 0
    latencies: list = field(default_factory=list)


class StopAndWaitArq:
    """Head-of-line stop-and-wait ARQ shared by every flow of a run."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise InvalidParameterError(
                f"ARQ attempt limit must be positive, got {limit}"
            )
        self.limit = int(limit)

    def transmit(
        self,
        queue: FifoQueue,
        tally: FlowTally,
        success: bool,
        completion_time: float,
    ) -> str:
        """Account one transmission attempt of the head-of-line frame.

        Returns ``"delivered"``, ``"dropped"`` (attempt limit reached) or
        ``"pending"`` (the frame stays queued for retransmission).
        """
        frame = queue.head()
        frame.attempts += 1
        tally.attempts += 1
        if success:
            queue.pop()
            tally.delivered += 1
            tally.latencies.append(float(completion_time) - frame.arrival)
            return "delivered"
        if frame.attempts >= self.limit:
            queue.pop()
            tally.drops_arq += 1
            return "dropped"
        return "pending"
