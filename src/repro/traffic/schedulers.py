"""Multi-pair relay schedulers: which pair gets the next slot.

One shared relay serves ``K`` bi-directional pairs; each slot runs one
protocol round for exactly one pair (both directions). A scheduler is a
pure function of the slot index, the per-pair backlogs and — for the
channel-aware discipline — the pre-seeded next-round outcomes, so every
discipline is deterministic given the spec.

* ``round-robin`` — *static equal time shares*: slot ``t`` belongs to
  pair ``t mod K`` whether or not it has traffic (the modeling of the
  analytic ``two-pair-round-robin`` scenario, and the baseline of
  arXiv:1002.0123). Idle shares are wasted, which is exactly why
  work-conserving disciplines dominate it at asymmetric loads.
* ``longest-queue`` — work-conserving longest-queue-first: the
  backlogged pair with the largest total backlog (ties to the lowest
  pair index).
* ``opportunistic`` — channel-aware (genie-aided CSI): among backlogged
  pairs, prefer those whose next pre-seeded round outcome would deliver
  the most head-of-line frames; break ties by backlog, then lowest
  index. When no backlogged pair would succeed it still serves the
  longest backlog (work-conserving), burning the bad round on the
  fullest queue.
"""

from __future__ import annotations

from ..exceptions import InvalidParameterError

__all__ = [
    "SCHEDULERS",
    "get_scheduler",
    "RoundRobinScheduler",
    "LongestQueueScheduler",
    "OpportunisticScheduler",
]


class RoundRobinScheduler:
    """Fixed cyclic rotation: slot ``t`` belongs to pair ``t mod K``."""

    name = "round-robin"

    def pick(self, slot, backlogs, peek):
        return slot % len(backlogs)


class LongestQueueScheduler:
    """Work-conserving longest-queue-first (ties to the lowest index)."""

    name = "longest-queue"

    def pick(self, slot, backlogs, peek):
        best = None
        best_total = 0
        for pair, (qa, qb) in enumerate(backlogs):
            total = qa + qb
            if total > best_total:
                best, best_total = pair, total
        return best


class OpportunisticScheduler:
    """Channel-aware: serve the backlogged pair whose round delivers most."""

    name = "opportunistic"

    def pick(self, slot, backlogs, peek):
        best = None
        best_key = (-1, -1)
        for pair, (qa, qb) in enumerate(backlogs):
            total = qa + qb
            if total == 0:
                continue
            success_ab, success_ba = peek(pair)
            wins = int(qa > 0 and success_ab) + int(qb > 0 and success_ba)
            key = (wins, total)
            if key > best_key:
                best, best_key = pair, key
        return best


#: Scheduler registry, keyed by the names a ``TrafficSpec`` may carry
#: (kept in lockstep with ``repro.campaign.spec.TRAFFIC_SCHEDULERS``).
SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LongestQueueScheduler.name: LongestQueueScheduler,
    OpportunisticScheduler.name: OpportunisticScheduler,
}


def get_scheduler(name: str):
    """Instantiate the named scheduling discipline."""
    if name not in SCHEDULERS:
        raise InvalidParameterError(
            f"unknown scheduler {name!r}; choose from {tuple(SCHEDULERS)}"
        )
    return SCHEDULERS[name]()
