"""The traffic simulation itself, and its campaign-kernel adapter.

One simulation models ``K`` bi-directional terminal pairs sharing one
relay for ``link.n_rounds`` slots. Each slot runs at most one protocol
round for one pair (chosen by the scheduler); each direction of the
served pair transmits its head-of-line frame under stop-and-wait ARQ,
with the round's per-direction decode outcomes supplied by the pair's
pre-seeded :class:`~repro.traffic.outcomes.FrameOutcomeStream`.

RNG spawn tree (the determinism contract, mirrored in
``docs/architecture.md``)::

    cell rng = default_rng([link.seed, flat index])      # campaign layer
      ["stable_throughput" only] load j ...... rng.spawn(n_loads)[j]
      sim rng ── outcome root, arrival root .. sim_rng.spawn(2)
        outcome root ── pair k stream ........ outcome_root.spawn(K)[k]
          pair stream ── payloads, noise ..... pair_rng.spawn(2)
        arrival root ── flow (k, dir) ........ arrival_root.spawn(2K)[2k+dir]

Every stream is consumed in a fixed pattern, so event order and all
reported metrics are a pure function of the spec — independent of the
executor, chunking, sharding, and of whether outcomes were realized
batched or per-frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.gains import LinkGains
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear
from .arq import FlowTally, StopAndWaitArq
from .events import ARRIVAL, SERVICE, EventLoop
from .generators import arrival_times
from .outcomes import FrameOutcomeStream
from .queues import FifoQueue, Frame
from .schedulers import get_scheduler

__all__ = [
    "FlowStats",
    "TrafficReport",
    "simulate_traffic",
    "stable_throughput_knee",
    "traffic_cell_value",
    "traffic_link_values",
]


@dataclass(frozen=True)
class FlowStats:
    """Frozen per-flow outcome counts of one finished simulation.

    A *flow* is one direction of one pair; flows are ordered
    ``(pair 0 a→b, pair 0 b→a, pair 1 a→b, ...)``. ``latencies`` are the
    delivered frames' sojourn times in slots, in delivery order.
    """

    arrivals: int
    delivered: int
    drops_buffer: int
    drops_arq: int
    attempts: int
    latencies: tuple


@dataclass(frozen=True)
class TrafficReport:
    """Everything a finished traffic simulation measured."""

    n_slots: int
    n_pairs: int
    flows: tuple
    served_rounds: int
    idle_slots: int

    @property
    def offered(self) -> int:
        """Frames generated across all flows (admitted or not)."""
        return sum(flow.arrivals for flow in self.flows)

    @property
    def delivered(self) -> int:
        """Frames delivered across all flows."""
        return sum(flow.delivered for flow in self.flows)

    @property
    def dropped(self) -> int:
        """Frames dropped across all flows (buffer overflow + ARQ)."""
        return sum(flow.drops_buffer + flow.drops_arq for flow in self.flows)

    @property
    def throughput(self) -> float:
        """Delivered frames per slot."""
        return self.delivered / self.n_slots

    def latency_quantile(self, q: float) -> float:
        """Pooled delivery-latency quantile in slots (``inf`` if none)."""
        if not 0.0 < q <= 1.0:
            raise InvalidParameterError(f"quantile must be in (0, 1], got {q}")
        pooled = [x for flow in self.flows for x in flow.latencies]
        if not pooled:
            return float("inf")
        return float(np.quantile(np.array(pooled), q))


class _TrafficSim:
    """One simulation run: wiring between the event loop and the parts."""

    def __init__(self, protocol, gains, power, *, link, rng, method, chunk):
        traffic = link.traffic
        self.n_slots = int(link.n_rounds)
        offsets = traffic.pair_offsets_db
        self.n_pairs = len(offsets)
        codec = link.codec()
        outcome_root, arrival_root = rng.spawn(2)
        pair_rngs = outcome_root.spawn(self.n_pairs)
        self.streams = []
        for pair, pair_offsets in enumerate(offsets):
            scale = tuple(db_to_linear(float(x)) for x in pair_offsets)
            pair_gains = LinkGains(
                gains.gab * scale[0],
                gains.gar * scale[1],
                gains.gbr * scale[2],
            )
            self.streams.append(
                FrameOutcomeStream(
                    protocol,
                    pair_gains,
                    power,
                    self.n_slots,
                    pair_rngs[pair],
                    codec=codec,
                    method=method,
                    chunk=chunk,
                )
            )
        self.arrival_rngs = arrival_root.spawn(2 * self.n_pairs)
        self.queues = [
            (FifoQueue(traffic.buffer_frames), FifoQueue(traffic.buffer_frames))
            for _ in range(self.n_pairs)
        ]
        self.flows = [FlowTally() for _ in range(2 * self.n_pairs)]
        self.arq = StopAndWaitArq(traffic.arq_limit)
        self.scheduler = get_scheduler(traffic.scheduler)
        self.traffic = traffic
        self.served_rounds = 0
        self.idle_slots = 0

    def _arrive(self, pair: int, direction: int, time: float) -> None:
        tally = self.flows[2 * pair + direction]
        tally.arrivals += 1
        if not self.queues[pair][direction].offer(Frame(time)):
            tally.drops_buffer += 1

    def _peek(self, pair: int) -> tuple:
        return self.streams[pair].peek()

    def _serve(self, slot: int) -> None:
        backlogs = [(len(qa), len(qb)) for qa, qb in self.queues]
        pair = self.scheduler.pick(slot, backlogs, self._peek)
        if pair is None or backlogs[pair] == (0, 0):
            self.idle_slots += 1
            return
        success_ab, success_ba = self.streams[pair].take()
        self.served_rounds += 1
        completion = float(slot + 1)
        for direction, success in ((0, success_ab), (1, success_ba)):
            queue = self.queues[pair][direction]
            if len(queue):
                self.arq.transmit(
                    queue, self.flows[2 * pair + direction], success, completion
                )

    def run(self, rate_scale: float) -> TrafficReport:
        rates = self.traffic.pair_rates()
        loop = EventLoop()
        for pair in range(self.n_pairs):
            for direction in range(2):
                times = arrival_times(
                    self.traffic.arrival,
                    rates[pair] * rate_scale,
                    self.n_slots,
                    self.arrival_rngs[2 * pair + direction],
                    burst_size=self.traffic.burst_size,
                )
                for t in times:
                    loop.schedule(t, ARRIVAL, self._arrive, pair, direction, t)
        for slot in range(self.n_slots):
            loop.schedule(float(slot), SERVICE, self._serve, slot)
        loop.run()
        return TrafficReport(
            n_slots=self.n_slots,
            n_pairs=self.n_pairs,
            flows=tuple(
                FlowStats(
                    arrivals=tally.arrivals,
                    delivered=tally.delivered,
                    drops_buffer=tally.drops_buffer,
                    drops_arq=tally.drops_arq,
                    attempts=tally.attempts,
                    latencies=tuple(tally.latencies),
                )
                for tally in self.flows
            ),
            served_rounds=self.served_rounds,
            idle_slots=self.idle_slots,
        )


def simulate_traffic(
    protocol,
    gains: LinkGains,
    power: float,
    *,
    link,
    rng: np.random.Generator,
    method: str = "batched",
    chunk: int | None = None,
    rate_scale: float = 1.0,
) -> TrafficReport:
    """Run one traffic simulation of ``link.traffic`` over ``link.n_rounds``.

    ``gains``/``power`` are the cell's base geometry and transmit power;
    each pair applies its own ``pair_offsets_db`` on top. ``rate_scale``
    multiplies every flow's arrival rate (the offered-load sweep knob).
    ``method``/``chunk`` select how link outcomes are realized — they can
    never change the report, only the wall clock (benchmark-asserted).
    """
    if link.traffic is None:
        raise InvalidParameterError("link spec carries no traffic parameters")
    if rate_scale <= 0:
        raise InvalidParameterError(f"rate scale must be positive, got {rate_scale}")
    sim = _TrafficSim(
        protocol, gains, power, link=link, rng=rng, method=method, chunk=chunk
    )
    return sim.run(float(rate_scale))


def stable_throughput_knee(
    protocol,
    gains: LinkGains,
    power: float,
    *,
    link,
    rng: np.random.Generator,
    method: str = "batched",
    chunk: int | None = None,
) -> float:
    """The largest sustained offered load of the cell, in frames/slot.

    Sweeps ``traffic.offered_loads`` (rate scale factors); a load is
    *stable* when the system delivers at least
    ``1 - traffic.knee_tolerance`` of the frames it generated. Each load
    runs from its own spawned child stream, so the sweep is one more
    spec-pure function. Returns the nominal offered rate
    ``scale × Σ_flows rate`` of the largest stable load, or ``0.0`` when
    none is stable.
    """
    traffic = link.traffic
    nominal = 2.0 * sum(traffic.pair_rates())
    load_rngs = rng.spawn(len(traffic.offered_loads))
    knee = 0.0
    for scale, load_rng in zip(traffic.offered_loads, load_rngs):
        report = simulate_traffic(
            protocol,
            gains,
            power,
            link=link,
            rng=load_rng,
            method=method,
            chunk=chunk,
            rate_scale=scale,
        )
        offered = report.offered
        stable = (
            offered == 0
            or report.delivered >= (1.0 - traffic.knee_tolerance) * offered
        )
        if stable:
            knee = max(knee, scale * nominal)
    return knee


def traffic_cell_value(
    protocol,
    gains: LinkGains,
    power: float,
    *,
    link,
    rng: np.random.Generator,
    method: str = "batched",
    chunk: int | None = None,
) -> float:
    """One grid cell's traffic metric (``link.metric`` dispatch)."""
    if link.metric == "stable_throughput":
        return stable_throughput_knee(
            protocol, gains, power, link=link, rng=rng, method=method, chunk=chunk
        )
    report = simulate_traffic(
        protocol, gains, power, link=link, rng=rng, method=method, chunk=chunk
    )
    return report.latency_quantile(link.traffic.latency_quantile)


def traffic_link_values(
    protocol,
    gab,
    gar,
    gbr,
    power,
    *,
    link,
    indices,
    method: str = "batched",
) -> np.ndarray:
    """Metric values of a batch of traffic grid cells.

    The campaign-kernel adapter of the traffic objectives — the traffic
    counterpart of :func:`repro.simulation.montecarlo.fused_link_values`,
    with the same seeding contract: cell ``i``'s generator is seeded from
    ``(link.seed, flat unit index)``, so values depend only on the spec,
    never on executor choice, batch width, chunking or sharding.
    """
    gab = np.asarray(gab, dtype=float)
    gar = np.asarray(gar, dtype=float)
    gbr = np.asarray(gbr, dtype=float)
    power = np.asarray(power, dtype=float)
    indices = np.asarray(indices)
    if not (gab.shape == gar.shape == gbr.shape == power.shape == indices.shape):
        raise InvalidParameterError("mismatched cell-batch shapes")
    values = np.empty(gab.shape[0])
    for i in range(gab.shape[0]):
        rng = np.random.default_rng([int(link.seed), int(indices[i])])
        values[i] = traffic_cell_value(
            protocol,
            LinkGains(gab[i], gar[i], gbr[i]),
            float(power[i]),
            link=link,
            rng=rng,
            method=method,
        )
    return values
