"""Deterministic discrete-event loop for the traffic layer.

Events are ordered by ``(time, priority, seq)``: time first, then a
caller-assigned priority class, then the strictly increasing scheduling
sequence number. The sequence number makes every key unique, so

* the heap never compares the scheduled actions themselves, and
* simultaneous events fire in exactly the order they were scheduled —
  event order is a pure function of the scheduling calls, never of heap
  internals, hashing or insertion timing.

That totality is the traffic layer's half of the campaign determinism
contract: given the same spec-seeded streams, two runs schedule the same
events in the same order and therefore produce bitwise-identical
reports, which keeps traffic cells cacheable and shard-stable.
"""

from __future__ import annotations

import heapq

from ..exceptions import InvalidParameterError

__all__ = ["ARRIVAL", "SERVICE", "EventLoop"]

#: Priority class of frame arrivals. Lower fires first at equal times, so
#: a frame arriving exactly at a slot boundary is enqueued before that
#: slot's service decision looks at the queues.
ARRIVAL = 0

#: Priority class of slot-boundary service events.
SERVICE = 1


class EventLoop:
    """A heap-ordered event loop with a total, deterministic order.

    ``schedule`` may be called both before and during :meth:`run` (an
    action may schedule follow-up events); ``run`` drains the heap and
    returns the number of events fired.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, priority: int, action, *args) -> None:
        """Schedule ``action(*args)`` at ``time`` within ``priority``."""
        time = float(time)
        if time < self.now:
            raise InvalidParameterError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        heapq.heappush(self._heap, (time, int(priority), self._seq, action, args))
        self._seq += 1

    def run(self) -> int:
        """Fire every event in ``(time, priority, seq)`` order."""
        fired = 0
        while self._heap:
            time, _priority, _seq, action, args = heapq.heappop(self._heap)
            self.now = time
            action(*args)
            fired += 1
        return fired
