"""Path-loss models and node geometry for the cellular scenario.

The paper motivates the bidirectional relay channel with a cellular
deployment: ``a`` is a mobile user, ``b`` a base station and ``r`` a relay
station assisting the exchange ("This case is of interest in cellular
systems", Section I/IV). This module supplies the geometry-to-gain mapping
used by the figure-3 relay-placement sweep:

* :class:`Position` — 2-D coordinates,
* :class:`LogDistancePathLoss` — the classical ``G = (d / d0)^(-alpha)``
  power law, normalized so a reference distance has a reference gain,
* :class:`RelayGeometry` — converts three node positions into
  :class:`~repro.channels.gains.LinkGains`,
* :func:`linear_relay_gains` — the canonical 1-D sweep with the relay on the
  segment between the terminals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from .gains import LinkGains

__all__ = [
    "Position",
    "LogDistancePathLoss",
    "FreeSpacePathLoss",
    "RelayGeometry",
    "linear_relay_gains",
]


@dataclass(frozen=True)
class Position:
    """A point in the plane (arbitrary length units)."""

    x: float
    y: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to another position."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance power law ``G(d) = G_ref * (d / d_ref)^(-exponent)``.

    Attributes
    ----------
    exponent:
        Path-loss exponent ``alpha`` (2 = free space, 3–4 = urban cellular).
    reference_distance:
        Distance ``d_ref`` at which the gain equals ``reference_gain``.
    reference_gain:
        Linear gain at the reference distance.
    minimum_distance:
        Distances are clamped below at this value so co-located nodes do not
        produce infinite gains.
    """

    exponent: float = 3.0
    reference_distance: float = 1.0
    reference_gain: float = 1.0
    minimum_distance: float = 1e-3

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise InvalidParameterError(
                f"exponent must be positive, got {self.exponent}"
            )
        if self.reference_distance <= 0:
            raise InvalidParameterError(
                f"reference distance must be positive, got {self.reference_distance}"
            )
        if self.reference_gain <= 0:
            raise InvalidParameterError(
                f"reference gain must be positive, got {self.reference_gain}"
            )
        if self.minimum_distance <= 0:
            raise InvalidParameterError(
                f"minimum distance must be positive, got {self.minimum_distance}"
            )

    def gain(self, distance: float) -> float:
        """Linear power gain at the given distance."""
        if distance < 0:
            raise InvalidParameterError(
                f"distance must be non-negative, got {distance}"
            )
        d = max(distance, self.minimum_distance)
        return self.reference_gain * (d / self.reference_distance) ** (-self.exponent)


def FreeSpacePathLoss(
    reference_distance: float = 1.0, reference_gain: float = 1.0
) -> LogDistancePathLoss:
    """Free-space propagation: a log-distance law with exponent 2."""
    return LogDistancePathLoss(
        exponent=2.0,
        reference_distance=reference_distance,
        reference_gain=reference_gain,
    )


@dataclass(frozen=True)
class RelayGeometry:
    """Positions of the three nodes plus a path-loss law.

    Converts geometry into the :class:`LinkGains` consumed by the bound
    machinery. Reciprocity holds by construction since gains depend only on
    distances.
    """

    terminal_a: Position
    terminal_b: Position
    relay: Position
    path_loss: LogDistancePathLoss

    def link_gains(self) -> LinkGains:
        """Gains of the three links induced by the geometry."""
        return LinkGains(
            gab=self.path_loss.gain(self.terminal_a.distance_to(self.terminal_b)),
            gar=self.path_loss.gain(self.terminal_a.distance_to(self.relay)),
            gbr=self.path_loss.gain(self.terminal_b.distance_to(self.relay)),
        )


def linear_relay_gains(
    relay_fraction: float, *, exponent: float = 3.0, terminal_distance: float = 1.0
) -> LinkGains:
    """Gains with the relay on the ``a``–``b`` segment.

    ``a`` sits at 0, ``b`` at ``terminal_distance`` and the relay at
    ``relay_fraction * terminal_distance``. The path-loss law is normalized
    so the direct link has unit gain (0 dB), matching the figure-3 setup
    ``G_ab = 0 dB``.

    Parameters
    ----------
    relay_fraction:
        Relay position as a fraction of the terminal separation, in (0, 1).
    exponent:
        Path-loss exponent.
    terminal_distance:
        Distance between the terminals.

    Returns
    -------
    LinkGains
        With ``gab == 1``; the paper's regime ``G_ab <= G_ar <= G_br`` holds
        for ``relay_fraction >= 1/2`` (relay closer to ``b``).
    """
    if not 0.0 < relay_fraction < 1.0:
        raise InvalidParameterError(
            f"relay fraction must lie strictly inside (0, 1), got {relay_fraction}"
        )
    if terminal_distance <= 0:
        raise InvalidParameterError(
            f"terminal distance must be positive, got {terminal_distance}"
        )
    law = LogDistancePathLoss(
        exponent=exponent,
        reference_distance=terminal_distance,
        reference_gain=1.0,
    )
    geometry = RelayGeometry(
        terminal_a=Position(0.0),
        terminal_b=Position(terminal_distance),
        relay=Position(relay_fraction * terminal_distance),
        path_loss=law,
    )
    return geometry.link_gains()
