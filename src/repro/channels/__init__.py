"""Channel models (substrate).

* :class:`LinkGains` — reciprocal power gains of the three links.
* :mod:`repro.channels.pathloss` — geometry and path-loss laws for the
  cellular relay-placement scenario.
* :mod:`repro.channels.fading` — quasi-static Rayleigh/Rician ensembles.
* :mod:`repro.channels.awgn` — complex AWGN primitives.
* :class:`HalfDuplexMedium` — the Section II half-duplex shared medium with
  the ``∅`` no-input/no-output symbol semantics.
* :mod:`repro.channels.dmc` — discrete memoryless channels.
"""

from .binary_relay import BinaryRelayChannel, BinaryRelayOracle
from .awgn import ComplexAwgn, apply_link, apply_mac, measure_snr
from .dmc import (
    DiscreteMemorylessChannel,
    binary_erasure_channel,
    binary_symmetric_channel,
    z_channel,
)
from .fading import RayleighFading, RicianFading, sample_gain_ensemble
from .gains import LinkGains
from .halfduplex import (
    FusedHalfDuplexMedium,
    FusedPhaseStream,
    HalfDuplexMedium,
    PhaseOutput,
    PhaseRows,
    complex_gains_from_powers,
    link_amplitudes,
)
from .power import NODE_ORDER, NodePowers, node_power
from .pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    Position,
    RelayGeometry,
    linear_relay_gains,
)

__all__ = [
    "BinaryRelayChannel",
    "BinaryRelayOracle",
    "ComplexAwgn",
    "apply_link",
    "apply_mac",
    "measure_snr",
    "DiscreteMemorylessChannel",
    "binary_erasure_channel",
    "binary_symmetric_channel",
    "z_channel",
    "RayleighFading",
    "RicianFading",
    "sample_gain_ensemble",
    "LinkGains",
    "HalfDuplexMedium",
    "FusedHalfDuplexMedium",
    "FusedPhaseStream",
    "PhaseOutput",
    "PhaseRows",
    "complex_gains_from_powers",
    "link_amplitudes",
    "NODE_ORDER",
    "NodePowers",
    "node_power",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "Position",
    "RelayGeometry",
    "linear_relay_gains",
]
