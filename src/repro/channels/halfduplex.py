"""Half-duplex shared-medium simulator.

Section II-A of the paper gives the half-duplex channel model: each node
``i`` has input alphabet ``X_i ∪ {∅}`` and output alphabet ``Y_i ∪ {∅}``
where ``∅`` marks "no input/no output", and **a node may not transmit and
receive at the same time** (``X_i = ∅`` iff ``Y_i ≠ ∅``). This module
implements that medium for the Gaussian case: in each phase, a set of nodes
transmits and every silent node receives the superposition of all
transmissions weighted by the pairwise complex gains, plus unit-power AWGN.

The returned :class:`PhaseOutput` uses ``None`` as the ``∅`` symbol: a
transmitting node's received entry is ``None``, faithfully encoding the
half-duplex constraint rather than silently handing transmitters a copy of
the channel output.

Batched phases
--------------
:meth:`HalfDuplexMedium.run_phase_rows` executes the *same* phase of many
independent protocol rounds in one call: transmissions carry a leading
rounds axis, and only the listeners named by the caller receive signals.
Its noise draws follow the reproducibility policy of the batched
simulation kernel: one contiguous standard-normal draw of shape
``(n_rounds, n_listeners, 2, n_symbols)`` per call — listeners in the
caller's (by convention alphabetical) order, the real parts of a round's
noise immediately followed by its imaginary parts. Because NumPy
generators fill output arrays sequentially in C order, splitting the
rounds axis across any number of calls on the same ``Generator`` consumes
exactly the same values — so per-round loops, chunked batches and one big
batch are bit-for-bit interchangeable.

Fused phases
------------
:class:`FusedHalfDuplexMedium` runs the same phase of *many grid cells*
at once: row ``c * rounds_per_cell + r`` of every array is round ``r`` of
cell ``c``, and each link's complex gain is a per-row column so the
superposition broadcasts every cell's own channel. Noise keeps the
per-cell spawn policy of the campaign engine: a fused phase consumes a
:class:`FusedPhaseStream` carrying one generator per cell, and each
cell's block is drawn contiguously from *its* stream — exactly the draw
the per-cell path makes — so fused campaigns are bitwise-identical to
evaluating the cells one at a time.

An optional importance-sampling ``twist``
(:class:`repro.simulation.sampling.NoiseTwist`) biases the fused noise
*after* that identical standard draw — an affine per-cell transform
whose exact per-row log likelihood ratio accumulates on the medium —
so rare-event FER campaigns reweight instead of re-draw, and the RNG
spawn/consumption contract above survives untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import warnings

from ..exceptions import HalfDuplexViolationError, InvalidParameterError
from .awgn import ComplexAwgn
from .gains import LinkGains

__all__ = [
    "HalfDuplexMedium",
    "FusedHalfDuplexMedium",
    "FusedPhaseStream",
    "PhaseOutput",
    "PhaseRows",
    "complex_gains_from_powers",
    "link_amplitudes",
]

_NODES = ("a", "b", "r")

_LINKS = (("a", "b"), ("a", "r"), ("b", "r"))


def link_amplitudes(
    gains: LinkGains,
    rng: np.random.Generator | None = None,
    *,
    random_phases: bool = False,
) -> dict[frozenset, complex]:
    """Lift power gains ``G_ij`` to complex amplitudes ``g_ij``.

    With ``random_phases=False`` the amplitudes are the positive square
    roots (a coherent, phase-aligned world — the usual choice when nodes
    have full CSI, as the paper assumes). With ``random_phases=True`` each
    link gets an independent uniform phase, drawn once (quasi-static) from
    ``rng``; reciprocity is preserved because phases attach to links.
    """
    phases = {}
    for pair in _LINKS:
        if random_phases:
            if rng is None:
                raise InvalidParameterError("rng required when random_phases=True")
            phases[frozenset(pair)] = float(rng.uniform(0.0, 2.0 * np.pi))
        else:
            phases[frozenset(pair)] = 0.0
    return {
        frozenset(pair): np.sqrt(gains.gain(*pair))
        * np.exp(1j * phases[frozenset(pair)])
        for pair in _LINKS
    }


def complex_gains_from_powers(
    gains: LinkGains,
    rng: np.random.Generator | None = None,
    *,
    random_phases: bool = False,
) -> dict[frozenset, complex]:
    """Deprecated alias of :func:`link_amplitudes`.

    The old name collided with *transmit* powers once those became
    per-node (the amplitudes here derive from channel power *gains*, not
    transmit powers).
    """
    warnings.warn(
        "complex_gains_from_powers is deprecated; use link_amplitudes",
        DeprecationWarning,
        stacklevel=2,
    )
    return link_amplitudes(gains, rng, random_phases=random_phases)


@dataclass(frozen=True)
class PhaseOutput:
    """Received signals of one phase.

    Attributes
    ----------
    received:
        Mapping node -> complex sample vector for listeners, ``None`` (the
        ``∅`` symbol) for transmitters.
    transmitters:
        The nodes that transmitted during the phase.
    """

    received: dict
    transmitters: frozenset

    def signal_at(self, node: str) -> np.ndarray:
        """The received vector at ``node``; raises if the node transmitted."""
        if node in self.transmitters:
            raise HalfDuplexViolationError(
                f"node {node!r} transmitted in this phase; it has no received signal"
            )
        return self.received[node]


@dataclass(frozen=True)
class PhaseRows:
    """Received signals of one phase run over a batch of rounds.

    Attributes
    ----------
    received:
        Mapping listener node -> complex ``(n_rounds, n_symbols)`` array.
        Nodes that transmitted — or were not named as listeners — have no
        entry at all (the batched engine only materializes the outputs a
        protocol actually decodes).
    transmitters:
        The nodes that transmitted during the phase.
    """

    received: dict
    transmitters: frozenset

    def signal_at(self, node: str) -> np.ndarray:
        """The received rows at ``node``; raises if the node transmitted."""
        if node in self.transmitters:
            raise HalfDuplexViolationError(
                f"node {node!r} transmitted in this phase; it has no received signal"
            )
        return self.received[node]


@dataclass(frozen=True)
class FusedPhaseStream:
    """Per-cell noise streams of one protocol phase of a fused batch.

    The (cells × rounds)-fused engine runs one phase of many independent
    per-cell campaigns in a single call. Bitwise identity with the
    per-cell path requires each cell's noise to come from *its own* phase
    stream (campaign cells are independently seeded by flat grid index),
    so a fused phase carries one generator per cell;
    :meth:`FusedHalfDuplexMedium.run_phase_rows` draws each cell's block
    contiguously from its stream and stacks the blocks along the fused
    rows axis.
    """

    streams: tuple
    rounds_per_cell: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "streams", tuple(self.streams))
        if not self.streams:
            raise InvalidParameterError("at least one cell stream required")
        if self.rounds_per_cell < 1:
            raise InvalidParameterError(
                f"need at least one round per cell, got {self.rounds_per_cell}"
            )

    @property
    def n_cells(self) -> int:
        """Number of grid cells fused into the batch."""
        return len(self.streams)


def _combine_received(draws, listeners, transmissions: dict, complex_gains) -> dict:
    """Listener superposition: noise draws plus gain-weighted transmissions.

    ``draws`` is the phase's ``(n_rows, n_listeners, 2, n_symbols)``
    standard-normal block; each listener's output is its complex noise
    plus every transmission weighted by the link gain (scalar for the
    per-cell medium, a per-row column for the fused one). Shared by both
    batched phase runners so the received-signal arithmetic — the heart
    of the fused-vs-per-cell bitwise-identity invariant — exists exactly
    once.
    """
    received: dict = {}
    for li, node in enumerate(listeners):
        y = draws[:, li, 0, :] + 1j * draws[:, li, 1, :]
        for tx, x in transmissions.items():
            gain = complex_gains[frozenset((tx, node))]
            y = y + gain * np.asarray(x)
        received[node] = y
    return received


def _validate_phase_nodes(transmissions: dict, listeners) -> tuple:
    """Shared transmitter/listener validation of the batched phase runners."""
    for node in transmissions:
        if node not in _NODES:
            raise InvalidParameterError(f"unknown node {node!r}; nodes are {_NODES}")
        if transmissions[node] is None:
            raise HalfDuplexViolationError(
                f"node {node!r} listed as transmitter but supplied no signal"
            )
    tx_nodes = frozenset(transmissions)
    if not tx_nodes:
        raise InvalidParameterError("at least one node must transmit in a phase")
    listeners = tuple(listeners)
    if not listeners:
        raise InvalidParameterError("at least one listener required")
    for node in listeners:
        if node not in _NODES:
            raise InvalidParameterError(f"unknown node {node!r}; nodes are {_NODES}")
        if node in tx_nodes:
            raise HalfDuplexViolationError(
                f"node {node!r} cannot transmit and listen in the same phase"
            )
    shapes = {np.asarray(x).shape for x in transmissions.values()}
    if len(shapes) != 1:
        raise InvalidParameterError(
            f"simultaneous transmissions must share a shape, got {shapes}"
        )
    (shape,) = shapes
    if len(shape) != 2:
        raise InvalidParameterError(
            f"batched transmissions must be (rounds, symbols), got shape {shape}"
        )
    return tx_nodes, listeners, shape


@dataclass
class HalfDuplexMedium:
    """A three-node half-duplex Gaussian broadcast medium.

    Attributes
    ----------
    gains:
        Power gains of the three links.
    noise:
        Noise source at every listener (unit power by default, matching the
        paper's normalization).
    complex_gains:
        Optional explicit complex amplitudes per link; derived coherently
        from ``gains`` when omitted.
    """

    gains: LinkGains
    noise: ComplexAwgn = field(default_factory=ComplexAwgn)
    complex_gains: dict | None = None

    def __post_init__(self) -> None:
        if self.complex_gains is None:
            self.complex_gains = link_amplitudes(self.gains)
        for pair in _LINKS:
            key = frozenset(pair)
            if key not in self.complex_gains:
                raise InvalidParameterError(
                    f"missing complex gain for link {sorted(pair)}"
                )
            amplitude = abs(self.complex_gains[key]) ** 2
            expected = self.gains.gain(*pair)
            if abs(amplitude - expected) > 1e-6 * max(1.0, expected):
                raise InvalidParameterError(
                    f"complex gain for {sorted(pair)} has power {amplitude}, "
                    f"inconsistent with G={expected}"
                )

    def run_phase(self, transmissions: dict, rng: np.random.Generator) -> PhaseOutput:
        """Execute one phase.

        Parameters
        ----------
        transmissions:
            Mapping node -> complex symbol vector for every transmitting
            node. All vectors must share a length. Nodes absent from the
            mapping are listeners.
        rng:
            Random generator for the noise draws.

        Returns
        -------
        PhaseOutput
            Received vectors at all listeners; ``None`` at transmitters.

        Raises
        ------
        HalfDuplexViolationError
            If a node appears as transmitter with a ``None`` payload (a
            programming error that would amount to transmitting ``∅``).
        InvalidParameterError
            For unknown nodes or mismatched block lengths.
        """
        for node in transmissions:
            if node not in _NODES:
                raise InvalidParameterError(
                    f"unknown node {node!r}; nodes are {_NODES}"
                )
            if transmissions[node] is None:
                raise HalfDuplexViolationError(
                    f"node {node!r} listed as transmitter but supplied no signal"
                )
        tx_nodes = frozenset(transmissions)
        if not tx_nodes:
            raise InvalidParameterError("at least one node must transmit in a phase")
        lengths = {np.asarray(x).shape for x in transmissions.values()}
        if len(lengths) != 1:
            raise InvalidParameterError(
                f"simultaneous transmissions must share a shape, got {lengths}"
            )
        (shape,) = lengths

        received: dict = {}
        for node in _NODES:
            if node in tx_nodes:
                received[node] = None  # the ∅ output symbol
                continue
            y = self.noise.sample(rng, shape).astype(complex)
            for tx, x in transmissions.items():
                gain = self.complex_gains[frozenset((tx, node))]
                y = y + gain * np.asarray(x)
            received[node] = y
        return PhaseOutput(received=received, transmitters=tx_nodes)

    def run_phase_rows(
        self, transmissions: dict, listeners, rng: np.random.Generator
    ) -> PhaseRows:
        """Execute one phase of a whole batch of rounds at once.

        Parameters
        ----------
        transmissions:
            Mapping node -> complex ``(n_rounds, n_symbols)`` symbol rows
            for every transmitting node (all arrays share a shape).
        listeners:
            The silent nodes whose channel outputs the caller will decode,
            in the order that fixes the noise draw (the batched engine
            always passes them alphabetically). Listed nodes must not
            transmit; unlisted silent nodes receive nothing.
        rng:
            Noise stream for this phase. One contiguous standard-normal
            draw of shape ``(n_rounds, n_listeners, 2, n_symbols)`` is
            consumed (see the module docstring for why that makes results
            independent of how the rounds axis is batched).
        """
        tx_nodes, listeners, shape = _validate_phase_nodes(transmissions, listeners)
        n_rounds, n_symbols = shape

        scale = np.sqrt(self.noise.noise_power / 2.0)
        draws = rng.normal(0.0, scale, size=(n_rounds, len(listeners), 2, n_symbols))
        received = _combine_received(
            draws, listeners, transmissions, self.complex_gains
        )
        return PhaseRows(received=received, transmitters=tx_nodes)


@dataclass
class FusedHalfDuplexMedium:
    """The half-duplex medium of many grid cells, fused along one rows axis.

    Where :class:`HalfDuplexMedium` carries one scalar complex gain per
    link, this medium carries one *per-row column* per link: cell ``c``'s
    coherent amplitude ``sqrt(G)`` occupies rows
    ``[c * rounds_per_cell, (c + 1) * rounds_per_cell)``, so the phase
    superposition — and every downstream demodulation — broadcasts each
    cell's own channel across its rounds. Noise draws keep the per-cell
    stream policy (see :class:`FusedPhaseStream`), which is what makes a
    fused evaluation bitwise-identical to running the cells one at a
    time through :class:`HalfDuplexMedium`.

    Attributes
    ----------
    gab / gar / gbr:
        Per-cell power gains of the three links, shape ``(n_cells,)``.
    rounds_per_cell:
        Rounds fused per cell; every array row count is
        ``n_cells * rounds_per_cell``.
    noise:
        Noise source at every listener (unit power by default).
    twist:
        Optional importance-sampling proposal
        (:class:`repro.simulation.sampling.NoiseTwist`, one
        scale/shift pair per cell). When set, every phase draws the
        *identical* standard block from the per-cell streams and then
        applies the affine twist to it, appending each row's exact log
        likelihood ratio to :attr:`phase_log_lrs` — so the RNG
        spawn/consumption policy (and therefore every untwisted cell)
        is untouched. ``None`` (the default) is the vanilla medium,
        bitwise-identical to the pre-sampling kernel.
    complex_gains:
        Derived per-link coherent amplitudes as ``(n_rows, 1)`` complex
        columns, keyed like :attr:`HalfDuplexMedium.complex_gains`.
    phase_log_lrs:
        Phase-ordered list of per-row log likelihood ratios of target
        over proposal, one ``(n_rows,)`` vector appended per phase run
        on this medium (the engine runs each protocol phase exactly
        once per batch, so the list index *is* the phase index); empty
        without a twist.
    """

    gab: np.ndarray
    gar: np.ndarray
    gbr: np.ndarray
    rounds_per_cell: int
    noise: ComplexAwgn = field(default_factory=ComplexAwgn)
    twist: object | None = None
    complex_gains: dict = field(init=False)
    phase_log_lrs: list = field(init=False)

    def __post_init__(self) -> None:
        self.gab = np.atleast_1d(np.asarray(self.gab, dtype=float))
        self.gar = np.atleast_1d(np.asarray(self.gar, dtype=float))
        self.gbr = np.atleast_1d(np.asarray(self.gbr, dtype=float))
        if not (self.gab.shape == self.gar.shape == self.gbr.shape):
            raise InvalidParameterError(
                f"mismatched per-cell gain shapes: {self.gab.shape}, "
                f"{self.gar.shape}, {self.gbr.shape}"
            )
        if self.gab.ndim != 1 or self.gab.size < 1:
            raise InvalidParameterError("per-cell gains must be a non-empty vector")
        if self.rounds_per_cell < 1:
            raise InvalidParameterError(
                f"need at least one round per cell, got {self.rounds_per_cell}"
            )
        for name, values in (("gab", self.gab), ("gar", self.gar), ("gbr", self.gbr)):
            if np.any(values < 0):
                raise InvalidParameterError(f"negative power gain in {name}")
        # Per-row coherent amplitudes: cell c's sqrt(G) repeated over its
        # rounds, as a complex column so the engine's gain arithmetic is
        # the scalar path's, elementwise.
        per_link = {
            frozenset(("a", "b")): self.gab,
            frozenset(("a", "r")): self.gar,
            frozenset(("b", "r")): self.gbr,
        }
        self.complex_gains = {
            key: np.repeat(np.sqrt(values), self.rounds_per_cell).astype(complex)[
                :, None
            ]
            for key, values in per_link.items()
        }
        if self.twist is not None and getattr(self.twist, "n_cells", None) != (
            self.gab.shape[0]
        ):
            raise InvalidParameterError(
                f"noise twist covers {getattr(self.twist, 'n_cells', '?')} cells, "
                f"medium has {self.gab.shape[0]}"
            )
        self.phase_log_lrs = []

    @property
    def n_cells(self) -> int:
        """Number of fused grid cells."""
        return int(self.gab.shape[0])

    @property
    def n_rows(self) -> int:
        """Total fused rows: ``n_cells * rounds_per_cell``."""
        return self.n_cells * self.rounds_per_cell

    def run_phase_rows(
        self, transmissions: dict, listeners, rng: FusedPhaseStream
    ) -> PhaseRows:
        """Execute one phase of every fused cell's batch of rounds at once.

        The interface of :meth:`HalfDuplexMedium.run_phase_rows` with two
        differences: arrays are ``(n_cells * rounds_per_cell, n_symbols)``
        and ``rng`` is the phase's :class:`FusedPhaseStream`. Cell ``c``'s
        noise block — shape ``(rounds_per_cell, n_listeners, 2,
        n_symbols)``, the exact draw the per-cell medium makes — comes
        contiguously from stream ``c``, so any split of the rounds axis
        into consecutive fused calls consumes identical values per cell.
        """
        if not isinstance(rng, FusedPhaseStream):
            raise InvalidParameterError(
                "fused phases consume a FusedPhaseStream (one generator per cell)"
            )
        if rng.n_cells != self.n_cells or rng.rounds_per_cell != self.rounds_per_cell:
            raise InvalidParameterError(
                f"phase stream covers {rng.n_cells} cells x {rng.rounds_per_cell} "
                f"rounds, medium is {self.n_cells} x {self.rounds_per_cell}"
            )
        tx_nodes, listeners, shape = _validate_phase_nodes(transmissions, listeners)
        n_rows, n_symbols = shape
        if n_rows != self.n_rows:
            raise InvalidParameterError(
                f"expected {self.n_rows} fused rows "
                f"({self.n_cells} cells x {self.rounds_per_cell} rounds), "
                f"got {n_rows}"
            )

        scale = np.sqrt(self.noise.noise_power / 2.0)
        rounds = self.rounds_per_cell
        draws = np.empty((self.n_cells, rounds, len(listeners), 2, n_symbols))
        for cell, stream in enumerate(rng.streams):
            # One contiguous draw per cell from its own stream — the same
            # call (and therefore the same values) as the per-cell path.
            draws[cell] = stream.normal(
                0.0, scale, size=(rounds, len(listeners), 2, n_symbols)
            )
        if self.twist is not None:
            # Importance sampling twists the block *after* the identical
            # standard draw, so stream consumption (and every untwisted
            # cell) is byte-for-byte what the vanilla medium does.
            signs = None
            if self.twist.needs_signs:
                # Noiseless in-phase aggregate per listener — the
                # mean-shift direction that pushes each symbol toward
                # its decision boundary.
                signs = np.empty((n_rows, len(listeners), n_symbols))
                for li, node in enumerate(listeners):
                    clean = np.zeros((n_rows, n_symbols))
                    for tx, x in transmissions.items():
                        gain = self.complex_gains[frozenset((tx, node))]
                        clean = clean + np.real(gain * np.asarray(x))
                    signs[:, li, :] = np.sign(clean)
                signs = signs.reshape(
                    self.n_cells, rounds, len(listeners), n_symbols
                )
            draws, log_lr = self.twist.apply(draws, scale, signs)
            self.phase_log_lrs.append(log_lr.reshape(-1))
        draws = draws.reshape(n_rows, len(listeners), 2, n_symbols)
        received = _combine_received(
            draws, listeners, transmissions, self.complex_gains
        )
        return PhaseRows(received=received, transmitters=tx_nodes)
