"""Half-duplex shared-medium simulator.

Section II-A of the paper gives the half-duplex channel model: each node
``i`` has input alphabet ``X_i ∪ {∅}`` and output alphabet ``Y_i ∪ {∅}``
where ``∅`` marks "no input/no output", and **a node may not transmit and
receive at the same time** (``X_i = ∅`` iff ``Y_i ≠ ∅``). This module
implements that medium for the Gaussian case: in each phase, a set of nodes
transmits and every silent node receives the superposition of all
transmissions weighted by the pairwise complex gains, plus unit-power AWGN.

The returned :class:`PhaseOutput` uses ``None`` as the ``∅`` symbol: a
transmitting node's received entry is ``None``, faithfully encoding the
half-duplex constraint rather than silently handing transmitters a copy of
the channel output.

Batched phases
--------------
:meth:`HalfDuplexMedium.run_phase_rows` executes the *same* phase of many
independent protocol rounds in one call: transmissions carry a leading
rounds axis, and only the listeners named by the caller receive signals.
Its noise draws follow the reproducibility policy of the batched
simulation kernel: one contiguous standard-normal draw of shape
``(n_rounds, n_listeners, 2, n_symbols)`` per call — listeners in the
caller's (by convention alphabetical) order, the real parts of a round's
noise immediately followed by its imaginary parts. Because NumPy
generators fill output arrays sequentially in C order, splitting the
rounds axis across any number of calls on the same ``Generator`` consumes
exactly the same values — so per-round loops, chunked batches and one big
batch are bit-for-bit interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import HalfDuplexViolationError, InvalidParameterError
from .awgn import ComplexAwgn
from .gains import LinkGains

__all__ = [
    "HalfDuplexMedium",
    "PhaseOutput",
    "PhaseRows",
    "complex_gains_from_powers",
]

_NODES = ("a", "b", "r")


def complex_gains_from_powers(gains: LinkGains,
                              rng: np.random.Generator | None = None,
                              *, random_phases: bool = False) -> dict[frozenset, complex]:
    """Lift power gains ``G_ij`` to complex amplitudes ``g_ij``.

    With ``random_phases=False`` the amplitudes are the positive square
    roots (a coherent, phase-aligned world — the usual choice when nodes
    have full CSI, as the paper assumes). With ``random_phases=True`` each
    link gets an independent uniform phase, drawn once (quasi-static) from
    ``rng``; reciprocity is preserved because phases attach to links.
    """
    phases = {}
    for pair in (("a", "b"), ("a", "r"), ("b", "r")):
        if random_phases:
            if rng is None:
                raise InvalidParameterError("rng required when random_phases=True")
            phases[frozenset(pair)] = float(rng.uniform(0.0, 2.0 * np.pi))
        else:
            phases[frozenset(pair)] = 0.0
    return {
        frozenset(("a", "b")): np.sqrt(gains.gab) * np.exp(1j * phases[frozenset(("a", "b"))]),
        frozenset(("a", "r")): np.sqrt(gains.gar) * np.exp(1j * phases[frozenset(("a", "r"))]),
        frozenset(("b", "r")): np.sqrt(gains.gbr) * np.exp(1j * phases[frozenset(("b", "r"))]),
    }


@dataclass(frozen=True)
class PhaseOutput:
    """Received signals of one phase.

    Attributes
    ----------
    received:
        Mapping node -> complex sample vector for listeners, ``None`` (the
        ``∅`` symbol) for transmitters.
    transmitters:
        The nodes that transmitted during the phase.
    """

    received: dict
    transmitters: frozenset

    def signal_at(self, node: str) -> np.ndarray:
        """The received vector at ``node``; raises if the node transmitted."""
        if node in self.transmitters:
            raise HalfDuplexViolationError(
                f"node {node!r} transmitted in this phase; it has no received signal"
            )
        return self.received[node]


@dataclass(frozen=True)
class PhaseRows:
    """Received signals of one phase run over a batch of rounds.

    Attributes
    ----------
    received:
        Mapping listener node -> complex ``(n_rounds, n_symbols)`` array.
        Nodes that transmitted — or were not named as listeners — have no
        entry at all (the batched engine only materializes the outputs a
        protocol actually decodes).
    transmitters:
        The nodes that transmitted during the phase.
    """

    received: dict
    transmitters: frozenset

    def signal_at(self, node: str) -> np.ndarray:
        """The received rows at ``node``; raises if the node transmitted."""
        if node in self.transmitters:
            raise HalfDuplexViolationError(
                f"node {node!r} transmitted in this phase; it has no received signal"
            )
        return self.received[node]


@dataclass
class HalfDuplexMedium:
    """A three-node half-duplex Gaussian broadcast medium.

    Attributes
    ----------
    gains:
        Power gains of the three links.
    noise:
        Noise source at every listener (unit power by default, matching the
        paper's normalization).
    complex_gains:
        Optional explicit complex amplitudes per link; derived coherently
        from ``gains`` when omitted.
    """

    gains: LinkGains
    noise: ComplexAwgn = field(default_factory=ComplexAwgn)
    complex_gains: dict | None = None

    def __post_init__(self) -> None:
        if self.complex_gains is None:
            self.complex_gains = complex_gains_from_powers(self.gains)
        for pair in (("a", "b"), ("a", "r"), ("b", "r")):
            key = frozenset(pair)
            if key not in self.complex_gains:
                raise InvalidParameterError(f"missing complex gain for link {sorted(pair)}")
            amplitude = abs(self.complex_gains[key]) ** 2
            expected = self.gains.gain(*pair)
            if abs(amplitude - expected) > 1e-6 * max(1.0, expected):
                raise InvalidParameterError(
                    f"complex gain for {sorted(pair)} has power {amplitude}, "
                    f"inconsistent with G={expected}"
                )

    def run_phase(self, transmissions: dict, rng: np.random.Generator) -> PhaseOutput:
        """Execute one phase.

        Parameters
        ----------
        transmissions:
            Mapping node -> complex symbol vector for every transmitting
            node. All vectors must share a length. Nodes absent from the
            mapping are listeners.
        rng:
            Random generator for the noise draws.

        Returns
        -------
        PhaseOutput
            Received vectors at all listeners; ``None`` at transmitters.

        Raises
        ------
        HalfDuplexViolationError
            If a node appears as transmitter with a ``None`` payload (a
            programming error that would amount to transmitting ``∅``).
        InvalidParameterError
            For unknown nodes or mismatched block lengths.
        """
        for node in transmissions:
            if node not in _NODES:
                raise InvalidParameterError(f"unknown node {node!r}; nodes are {_NODES}")
            if transmissions[node] is None:
                raise HalfDuplexViolationError(
                    f"node {node!r} listed as transmitter but supplied no signal"
                )
        tx_nodes = frozenset(transmissions)
        if not tx_nodes:
            raise InvalidParameterError("at least one node must transmit in a phase")
        lengths = {np.asarray(x).shape for x in transmissions.values()}
        if len(lengths) != 1:
            raise InvalidParameterError(
                f"simultaneous transmissions must share a shape, got {lengths}"
            )
        (shape,) = lengths

        received: dict = {}
        for node in _NODES:
            if node in tx_nodes:
                received[node] = None  # the ∅ output symbol
                continue
            y = self.noise.sample(rng, shape).astype(complex)
            for tx, x in transmissions.items():
                gain = self.complex_gains[frozenset((tx, node))]
                y = y + gain * np.asarray(x)
            received[node] = y
        return PhaseOutput(received=received, transmitters=tx_nodes)

    def run_phase_rows(self, transmissions: dict, listeners,
                       rng: np.random.Generator) -> PhaseRows:
        """Execute one phase of a whole batch of rounds at once.

        Parameters
        ----------
        transmissions:
            Mapping node -> complex ``(n_rounds, n_symbols)`` symbol rows
            for every transmitting node (all arrays share a shape).
        listeners:
            The silent nodes whose channel outputs the caller will decode,
            in the order that fixes the noise draw (the batched engine
            always passes them alphabetically). Listed nodes must not
            transmit; unlisted silent nodes receive nothing.
        rng:
            Noise stream for this phase. One contiguous standard-normal
            draw of shape ``(n_rounds, n_listeners, 2, n_symbols)`` is
            consumed (see the module docstring for why that makes results
            independent of how the rounds axis is batched).
        """
        for node in transmissions:
            if node not in _NODES:
                raise InvalidParameterError(f"unknown node {node!r}; nodes are {_NODES}")
            if transmissions[node] is None:
                raise HalfDuplexViolationError(
                    f"node {node!r} listed as transmitter but supplied no signal"
                )
        tx_nodes = frozenset(transmissions)
        if not tx_nodes:
            raise InvalidParameterError("at least one node must transmit in a phase")
        listeners = tuple(listeners)
        if not listeners:
            raise InvalidParameterError("at least one listener required")
        for node in listeners:
            if node not in _NODES:
                raise InvalidParameterError(f"unknown node {node!r}; nodes are {_NODES}")
            if node in tx_nodes:
                raise HalfDuplexViolationError(
                    f"node {node!r} cannot transmit and listen in the same phase"
                )
        shapes = {np.asarray(x).shape for x in transmissions.values()}
        if len(shapes) != 1:
            raise InvalidParameterError(
                f"simultaneous transmissions must share a shape, got {shapes}"
            )
        (shape,) = shapes
        if len(shape) != 2:
            raise InvalidParameterError(
                f"batched transmissions must be (rounds, symbols), got shape {shape}"
            )
        n_rounds, n_symbols = shape

        scale = np.sqrt(self.noise.noise_power / 2.0)
        draws = rng.normal(
            0.0, scale, size=(n_rounds, len(listeners), 2, n_symbols)
        )
        received: dict = {}
        for li, node in enumerate(listeners):
            y = draws[:, li, 0, :] + 1j * draws[:, li, 1, :]
            for tx, x in transmissions.items():
                gain = self.complex_gains[frozenset((tx, node))]
                y = y + gain * np.asarray(x)
            received[node] = y
        return PhaseRows(received=received, transmitters=tx_nodes)
