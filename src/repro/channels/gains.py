"""Link gain containers for the three-node bidirectional relay channel.

Section IV of the paper models each link between nodes ``i`` and ``j`` with
an *effective complex channel gain* ``g_ij`` combining quasi-static fading
and path loss, and works with the received-power gains
``G_ij := |g_ij|^2``. Channels are reciprocal (``g_ij = g_ji``), every node
transmits with the same power ``P`` and the noise has unit power, so the
receive SNR on link ``i -> j`` is simply ``P * G_ij``.

The paper focuses on the regime ``G_ab <= G_ar <= G_br`` ("the interesting
case": the direct link is the weakest and the relay is closer to ``b``).
:meth:`LinkGains.is_paper_regime` tests for it; the library itself works for
arbitrary positive gains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear, linear_to_db

__all__ = ["LinkGains"]


@dataclass(frozen=True)
class LinkGains:
    """Received-power gains ``G_ab``, ``G_ar``, ``G_br`` of the three links.

    All gains are linear (not dB) and must be strictly positive. Reciprocity
    is built in: the gain of ``a -> r`` equals that of ``r -> a``, etc.

    Attributes
    ----------
    gab:
        Direct-link gain between terminals ``a`` and ``b``.
    gar:
        Gain between terminal ``a`` and relay ``r``.
    gbr:
        Gain between terminal ``b`` and relay ``r``.
    """

    gab: float
    gar: float
    gbr: float

    def __post_init__(self) -> None:
        for name, value in (("gab", self.gab), ("gar", self.gar), ("gbr", self.gbr)):
            if not value > 0:
                raise InvalidParameterError(
                    f"link gain {name} must be strictly positive, got {value!r}"
                )

    @classmethod
    def from_db(cls, gab_db: float, gar_db: float, gbr_db: float) -> "LinkGains":
        """Construct from gains expressed in decibels."""
        return cls(
            gab=db_to_linear(gab_db),
            gar=db_to_linear(gar_db),
            gbr=db_to_linear(gbr_db),
        )

    def to_db(self) -> tuple[float, float, float]:
        """Return ``(G_ab, G_ar, G_br)`` in decibels."""
        return (linear_to_db(self.gab), linear_to_db(self.gar), linear_to_db(self.gbr))

    def gain(self, node_i: str, node_j: str) -> float:
        """Gain of the (reciprocal) link between two of ``{'a', 'b', 'r'}``."""
        key = frozenset((node_i, node_j))
        table = {
            frozenset(("a", "b")): self.gab,
            frozenset(("a", "r")): self.gar,
            frozenset(("b", "r")): self.gbr,
        }
        if key not in table:
            raise InvalidParameterError(
                f"unknown link {node_i!r} -- {node_j!r}; nodes are 'a', 'b', 'r'"
            )
        return table[key]

    def snr(self, node_i: str, node_j: str, power) -> float:
        """Receive SNR ``P_i * G_ij`` of link ``i -> j``.

        ``power`` may be a scalar shared by every node (the paper's
        model), a ``{"a": ..., "b": ..., "r": ...}`` mapping, or a
        :class:`~repro.channels.power.NodePowers`; per-node forms use the
        *transmitter*'s power ``P_i``.
        """
        from .power import node_power

        transmit_power = node_power(power, node_i)
        if transmit_power < 0:
            raise InvalidParameterError(
                f"power must be non-negative, got {transmit_power}"
            )
        return transmit_power * self.gain(node_i, node_j)

    def is_paper_regime(self) -> bool:
        """Whether ``G_ab <= G_ar <= G_br`` (the paper's standing assumption)."""
        return self.gab <= self.gar <= self.gbr

    def swapped_terminals(self) -> "LinkGains":
        """The same channel with the roles of ``a`` and ``b`` exchanged."""
        return LinkGains(gab=self.gab, gar=self.gbr, gbr=self.gar)

    def scaled(self, factor: float) -> "LinkGains":
        """All gains multiplied by ``factor > 0`` (e.g. a shadowing offset)."""
        if not factor > 0:
            raise InvalidParameterError(f"scale factor must be positive, got {factor}")
        return LinkGains(self.gab * factor, self.gar * factor, self.gbr * factor)
