"""Discrete memoryless channels (BSC, BEC, arbitrary matrices).

Section II of the paper states its theorems for *discrete memoryless*
channels; the Gaussian results of Section IV are a specialization. This
module supplies the discrete substrate: transition-matrix containers,
standard channel families, composition, and sampling — consumed by the
discrete examples and by the Blahut–Arimoto capacity code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidDistributionError, InvalidParameterError
from ..information.blahut_arimoto import blahut_arimoto
from ..information.discrete import joint_from_channel, mutual_information

__all__ = [
    "DiscreteMemorylessChannel",
    "binary_symmetric_channel",
    "binary_erasure_channel",
    "z_channel",
]


@dataclass(frozen=True)
class DiscreteMemorylessChannel:
    """A DMC defined by its row-stochastic transition matrix ``W[x, y]``.

    Attributes
    ----------
    matrix:
        ``P(y | x)``, shape ``(|X|, |Y|)``.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.matrix, dtype=float)
        if w.ndim != 2 or w.size == 0:
            raise InvalidDistributionError(
                "transition matrix must be 2-D and non-empty"
            )
        if np.any(w < 0) or not np.allclose(w.sum(axis=1), 1.0, atol=1e-8):
            raise InvalidDistributionError(
                "rows of the transition matrix must be distributions"
            )
        object.__setattr__(self, "matrix", w)

    @property
    def n_inputs(self) -> int:
        """Input alphabet size."""
        return self.matrix.shape[0]

    @property
    def n_outputs(self) -> int:
        """Output alphabet size."""
        return self.matrix.shape[1]

    def transmit(self, symbols: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Pass input symbol indices through the channel."""
        x = np.asarray(symbols, dtype=int)
        if np.any((x < 0) | (x >= self.n_inputs)):
            raise InvalidParameterError(
                f"input symbols must index an alphabet of size {self.n_inputs}"
            )
        u = rng.random(x.shape)
        cdf = np.cumsum(self.matrix, axis=1)
        return (u[..., None] > cdf[x]).sum(axis=-1).astype(int)

    def compose(
        self, second: "DiscreteMemorylessChannel"
    ) -> "DiscreteMemorylessChannel":
        """Cascade: this channel followed by ``second`` (output feeds input)."""
        if self.n_outputs != second.n_inputs:
            raise InvalidParameterError(
                f"cannot cascade: {self.n_outputs} outputs into "
                f"{second.n_inputs} inputs"
            )
        return DiscreteMemorylessChannel(self.matrix @ second.matrix)

    def mutual_information(self, p_input: np.ndarray) -> float:
        """``I(X; Y)`` in bits at the given input distribution."""
        joint = joint_from_channel(p_input, self.matrix)
        return mutual_information(joint, [0], [1])

    def capacity(self, *, tol: float = 1e-10) -> float:
        """Channel capacity in bits (Blahut–Arimoto)."""
        return blahut_arimoto(self.matrix, tol=tol).capacity


def binary_symmetric_channel(crossover: float) -> DiscreteMemorylessChannel:
    """BSC with crossover probability ``crossover`` (capacity ``1 - h(p)``)."""
    p = float(crossover)
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"crossover probability must be in [0, 1], got {p}")
    return DiscreteMemorylessChannel(np.array([[1 - p, p], [p, 1 - p]]))


def binary_erasure_channel(erasure: float) -> DiscreteMemorylessChannel:
    """BEC with erasure probability ``erasure``; output 2 is the erasure flag.

    Capacity is ``1 - erasure``.
    """
    e = float(erasure)
    if not 0.0 <= e <= 1.0:
        raise InvalidParameterError(f"erasure probability must be in [0, 1], got {e}")
    return DiscreteMemorylessChannel(np.array([[1 - e, 0.0, e], [0.0, 1 - e, e]]))


def z_channel(flip_one_to_zero: float) -> DiscreteMemorylessChannel:
    """Z-channel: ``0`` is noiseless, ``1`` flips to ``0`` with the given rate."""
    p = float(flip_one_to_zero)
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"flip probability must be in [0, 1], got {p}")
    return DiscreteMemorylessChannel(np.array([[1.0, 0.0], [p, 1.0 - p]]))
