"""A fully discrete bidirectional relay channel (BSC links + XOR MAC).

The paper's Section II states everything for discrete memoryless channels;
this module provides the canonical binary instantiation used by the
discrete examples and tests:

* every point-to-point link ``i–j`` is a binary symmetric channel with
  crossover probability ``p_ij`` (reciprocal, like the Gaussian gains);
* simultaneous transmission (the MABC/HBC MAC phase) reaches the relay as
  the **binary XOR MAC** ``Y_r = X_a ⊕ X_b ⊕ Z`` with ``Z ~ Bern(p_mac)``
  — the natural binary analogue of signal superposition, and exactly the
  algebra the relay wants to forward anyway.

:class:`BinaryRelayOracle` implements the
:class:`~repro.network.cutset.MutualInformationOracle` protocol, so the
Lemma-1 engine can generate outer bounds for *any* schedule on this
channel, mirroring what :class:`~repro.network.cutset.GaussianMIOracle`
does for Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError
from ..information.discrete import (
    conditional_mutual_information,
    mutual_information,
    validate_distribution,
)
from ..information.functions import binary_entropy

__all__ = ["BinaryRelayChannel", "BinaryRelayOracle"]


def _bsc_joint(crossovers) -> np.ndarray:
    """Joint ``p(x, y_1, .., y_k)`` of one uniform bit through k parallel BSCs."""
    n_outputs = len(crossovers)
    joint = np.zeros((2,) + (2,) * n_outputs)
    for x in (0, 1):
        for outputs in np.ndindex(*(2,) * n_outputs):
            prob = 0.5
            for y, p in zip(outputs, crossovers):
                prob *= (1 - p) if y == x else p
            joint[(x,) + outputs] = prob
    return validate_distribution(joint)


def _xor_mac_joint(p_noise: float) -> np.ndarray:
    """Joint ``p(x_a, x_b, y_r)`` of the noisy XOR MAC with uniform inputs."""
    joint = np.zeros((2, 2, 2))
    for xa in (0, 1):
        for xb in (0, 1):
            clean = xa ^ xb
            joint[xa, xb, clean] = 0.25 * (1 - p_noise)
            joint[xa, xb, 1 - clean] = 0.25 * p_noise
    return validate_distribution(joint)


@dataclass(frozen=True)
class BinaryRelayChannel:
    """Crossover probabilities of the three reciprocal binary links.

    Attributes
    ----------
    pab, par, pbr:
        BSC crossover probabilities of the ``a–b``, ``a–r`` and ``b–r``
        links, each in ``[0, 1/2]`` (beyond 1/2 relabel the output).
    p_mac:
        Noise of the XOR MAC phase; defaults to the ``a–r`` crossover.
    """

    pab: float
    par: float
    pbr: float
    p_mac: float | None = None

    def __post_init__(self) -> None:
        for name, value in (("pab", self.pab), ("par", self.par), ("pbr", self.pbr)):
            if not 0.0 <= value <= 0.5:
                raise InvalidParameterError(
                    f"crossover {name} must lie in [0, 1/2], got {value}"
                )
        if self.p_mac is None:
            object.__setattr__(self, "p_mac", self.par)
        elif not 0.0 <= self.p_mac <= 0.5:
            raise InvalidParameterError(
                f"MAC noise must lie in [0, 1/2], got {self.p_mac}"
            )

    def crossover(self, node_i: str, node_j: str) -> float:
        """Crossover of the (reciprocal) link between two nodes."""
        key = frozenset((node_i, node_j))
        table = {
            frozenset(("a", "b")): self.pab,
            frozenset(("a", "r")): self.par,
            frozenset(("b", "r")): self.pbr,
        }
        if key not in table:
            raise InvalidParameterError(
                f"unknown link {node_i!r} -- {node_j!r}; nodes are 'a', 'b', 'r'"
            )
        return table[key]

    def link_capacity(self, node_i: str, node_j: str) -> float:
        """Point-to-point capacity ``1 - h(p_ij)`` of one link."""
        return 1.0 - binary_entropy(self.crossover(node_i, node_j))

    def oracle(self) -> "BinaryRelayOracle":
        """A Lemma-1 mutual-information oracle for this channel."""
        return BinaryRelayOracle(channel=self)


@dataclass(frozen=True)
class BinaryRelayOracle:
    """Discrete MI oracle over a :class:`BinaryRelayChannel`.

    Uniform (capacity-achieving for symmetric channels) inputs throughout:

    * one transmitter, listeners ``B``: the transmitter's bit through
      ``|B|`` parallel BSCs (a discrete SIMO cut);
    * two transmitters to the relay: the noisy XOR MAC, with conditioning
      on one input reducing it to a clean BSC of the other.
    """

    channel: BinaryRelayChannel
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    def mutual_information(
        self,
        phase_index: int,
        sources: frozenset,
        listeners: frozenset,
        conditioned: frozenset,
    ) -> float:
        """See :class:`~repro.network.cutset.MutualInformationOracle`."""
        if not sources or not listeners:
            return 0.0
        key = (tuple(sorted(sources)), tuple(sorted(listeners)), bool(conditioned))
        if key in self._cache:
            return self._cache[key]
        if len(sources) == 2:
            # Both terminals inside the cut: the full XOR MAC sum term.
            joint = _xor_mac_joint(self.channel.p_mac)
            value = mutual_information(joint, [0, 1], [2])
        elif conditioned:
            # One terminal in the cut, the other transmitting on the far
            # side and conditioned away: I(X_src; Y_r | X_other), i.e. the
            # XOR MAC collapses to a BSC of the remaining input with the
            # MAC noise. (Unconditioned, the XOR MAC leaks nothing about
            # either input individually.)
            joint = _xor_mac_joint(self.channel.p_mac)
            value = conditional_mutual_information(joint, [0], [2], [1])
        else:
            (source,) = sources
            crossovers = [
                self.channel.crossover(source, dst) for dst in sorted(listeners)
            ]
            joint = _bsc_joint(crossovers)
            value = mutual_information(joint, [0], list(range(1, joint.ndim)))
        self._cache[key] = value
        return value
