"""Quasi-static fading models with reciprocal links.

Section IV evaluates the bounds on a fading AWGN channel: each link's
effective gain ``g_ij`` combines path loss with quasi-static fading, links
are reciprocal and all nodes have full CSI. The fading is *quasi-static*:
gains are constant for the duration of one protocol execution and i.i.d.
across executions. This module draws such ensembles.

The Monte-Carlo drivers in :mod:`repro.simulation.montecarlo` consume these
ensembles to estimate ergodic and outage performance of every protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from .gains import LinkGains

__all__ = ["RayleighFading", "RicianFading", "sample_gain_ensemble"]


@dataclass(frozen=True)
class RayleighFading:
    """Rayleigh fading: ``g ~ CN(0, mean_power)``, so ``|g|^2`` is exponential.

    Attributes
    ----------
    mean_power:
        Average power gain ``E[|g|^2]`` (the path-loss value of the link).
    """

    mean_power: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_power <= 0:
            raise InvalidParameterError(
                f"mean power must be positive, got {self.mean_power}"
            )

    def sample_complex(self, rng: np.random.Generator, size=None) -> np.ndarray:
        """Draw complex gains ``g``."""
        scale = math.sqrt(self.mean_power / 2.0)
        real = rng.normal(0.0, scale, size=size)
        imag = rng.normal(0.0, scale, size=size)
        return real + 1j * imag

    def sample_power(self, rng: np.random.Generator, size=None) -> np.ndarray:
        """Draw power gains ``|g|^2`` (exponentially distributed)."""
        return rng.exponential(self.mean_power, size=size)


@dataclass(frozen=True)
class RicianFading:
    """Rician fading with K-factor ``k_factor`` and mean power ``mean_power``.

    ``g = sqrt(K/(K+1)) * sqrt(mean_power) + CN(0, mean_power/(K+1))``; the
    limit ``K -> 0`` recovers Rayleigh fading and ``K -> inf`` a fixed gain.
    """

    mean_power: float = 1.0
    k_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_power <= 0:
            raise InvalidParameterError(
                f"mean power must be positive, got {self.mean_power}"
            )
        if self.k_factor < 0:
            raise InvalidParameterError(
                f"K-factor must be non-negative, got {self.k_factor}"
            )

    def sample_complex(self, rng: np.random.Generator, size=None) -> np.ndarray:
        """Draw complex gains ``g`` with a deterministic line-of-sight part."""
        los = math.sqrt(self.k_factor / (self.k_factor + 1.0) * self.mean_power)
        diffuse_power = self.mean_power / (self.k_factor + 1.0)
        scale = math.sqrt(diffuse_power / 2.0)
        real = rng.normal(los, scale, size=size)
        imag = rng.normal(0.0, scale, size=size)
        return real + 1j * imag

    def sample_power(self, rng: np.random.Generator, size=None) -> np.ndarray:
        """Draw power gains ``|g|^2``."""
        g = self.sample_complex(rng, size=size)
        return np.abs(g) ** 2


def sample_gain_ensemble(
    mean_gains: LinkGains,
    n_realizations: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
) -> list[LinkGains]:
    """Draw a quasi-static fading ensemble around mean link gains.

    Each realization is one protocol execution's worth of channel state:
    three independent (across links) fading draws, reciprocal within a link
    by construction. ``k_factor = 0`` gives Rayleigh fading; larger values
    give Rician fading with a line-of-sight component.

    Parameters
    ----------
    mean_gains:
        Path-loss (average) gains of the three links.
    n_realizations:
        Ensemble size.
    rng:
        Numpy random generator (callers own the seed for reproducibility).
    k_factor:
        Rician K-factor shared by all links.

    Returns
    -------
    list[LinkGains]
        One instantaneous :class:`LinkGains` per realization.

    .. note::
       Campaign cache entries (:mod:`repro.campaign`) embed the output of
       this sampler; any change to its RNG consumption order or draw
       semantics must bump ``repro.campaign.kernel.KERNEL_VERSION``.
    """
    if n_realizations <= 0:
        raise InvalidParameterError(
            f"ensemble size must be positive, got {n_realizations}"
        )
    models = {
        "gab": RicianFading(mean_gains.gab, k_factor),
        "gar": RicianFading(mean_gains.gar, k_factor),
        "gbr": RicianFading(mean_gains.gbr, k_factor),
    }
    draws = {
        name: model.sample_power(rng, size=n_realizations)
        for name, model in models.items()
    }
    # Guard against pathological zero draws (probability-zero event, but a
    # float RNG can produce exact zeros): clamp to a tiny floor so LinkGains
    # validation holds.
    floor = 1e-300
    return [
        LinkGains(
            gab=max(float(draws["gab"][i]), floor),
            gar=max(float(draws["gar"][i]), floor),
            gbr=max(float(draws["gbr"][i]), floor),
        )
        for i in range(n_realizations)
    ]
