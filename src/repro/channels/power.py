"""Per-node transmit powers for the three-node relay channel.

The paper's Section IV model gives every node the same transmit power
``P``; the bidirectional power-allocation literature it opens onto
(finite-SNR DMT and optimum splits of a sum-power budget,
arXiv:0810.2746) needs *asymmetric* powers per node. :class:`NodePowers`
is the canonical container for that: one linear transmit power per node
``a``, ``b``, ``r``, with the uniform case reducing exactly to the
classic scalar ``P``.

Every power-accepting API in this library takes
``float | Mapping[node, float] | NodePowers`` uniformly;
:func:`node_power` is the shared resolver that maps any of those forms
to the transmit power of one named node.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear, linear_to_db

__all__ = ["NODE_ORDER", "NodePowers", "node_power"]

#: Canonical node order of every per-node power vector: sources first,
#: relay last — matching the ``(a, b, r)`` convention used throughout.
NODE_ORDER = ("a", "b", "r")


@dataclass(frozen=True)
class NodePowers:
    """Per-node transmit powers ``(P_a, P_b, P_r)``, linear scale.

    Attributes
    ----------
    pa:
        Transmit power of source terminal ``a``.
    pb:
        Transmit power of source terminal ``b``.
    pr:
        Transmit power of the relay ``r``.
    """

    pa: float
    pb: float
    pr: float

    def __post_init__(self) -> None:
        for name, value in (("pa", self.pa), ("pb", self.pb), ("pr", self.pr)):
            object.__setattr__(self, name, float(value))
        for name, value in (("pa", self.pa), ("pb", self.pb), ("pr", self.pr)):
            if not value >= 0:
                raise InvalidParameterError(
                    f"node power {name} must be non-negative, got {value!r}"
                )

    @classmethod
    def uniform(cls, power: float) -> "NodePowers":
        """Every node at the same power — the classic scalar ``P``."""
        power = float(power)
        return cls(pa=power, pb=power, pr=power)

    @classmethod
    def from_db(cls, pa_db: float, pb_db: float, pr_db: float) -> "NodePowers":
        """Construct from per-node powers expressed in decibels."""
        return cls(
            pa=db_to_linear(pa_db),
            pb=db_to_linear(pb_db),
            pr=db_to_linear(pr_db),
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "NodePowers":
        """Construct from a ``{"a": Pa, "b": Pb, "r": Pr}`` mapping."""
        unknown = set(mapping) - set(NODE_ORDER)
        if unknown:
            raise InvalidParameterError(
                f"unknown nodes {sorted(unknown)}; nodes are {NODE_ORDER}"
            )
        missing = set(NODE_ORDER) - set(mapping)
        if missing:
            raise InvalidParameterError(
                f"missing powers for nodes {sorted(missing)}"
            )
        return cls(pa=mapping["a"], pb=mapping["b"], pr=mapping["r"])

    def power(self, node: str) -> float:
        """Transmit power of one node of ``{'a', 'b', 'r'}``."""
        table = {"a": self.pa, "b": self.pb, "r": self.pr}
        if node not in table:
            raise InvalidParameterError(
                f"unknown node {node!r}; nodes are {NODE_ORDER}"
            )
        return table[node]

    def as_array(self) -> np.ndarray:
        """The powers as a ``(3,)`` float array in :data:`NODE_ORDER`."""
        return np.array([self.pa, self.pb, self.pr])

    def to_db(self) -> tuple:
        """Return ``(P_a, P_b, P_r)`` in decibels."""
        return (linear_to_db(self.pa), linear_to_db(self.pb), linear_to_db(self.pr))

    def is_uniform(self) -> bool:
        """Whether all three powers are exactly equal (the scalar case)."""
        return self.pa == self.pb == self.pr

    @property
    def total(self) -> float:
        """The sum-power budget ``P_a + P_b + P_r``."""
        return self.pa + self.pb + self.pr


def node_power(power, node: str) -> float:
    """Transmit power of ``node`` under any accepted power form.

    ``power`` may be a scalar (every node transmits at that power — the
    paper's model), a ``{"a": ..., "b": ..., "r": ...}`` mapping, or a
    :class:`NodePowers`.
    """
    if isinstance(power, NodePowers):
        return power.power(node)
    if isinstance(power, Mapping):
        return NodePowers.from_mapping(power).power(node)
    if node not in NODE_ORDER:
        raise InvalidParameterError(
            f"unknown node {node!r}; nodes are {NODE_ORDER}"
        )
    return float(power)
