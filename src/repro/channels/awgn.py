"""Complex AWGN channel primitives for the link-level simulator.

The Gaussian model of Section IV: when node ``i`` transmits ``X_i`` and node
``j`` listens, node ``j`` receives ``Y_j = g_ij X_i + Z_j`` with ``Z_j``
circularly-symmetric complex Gaussian of unit power; simultaneous
transmissions superpose (``Y_r = g_ar X_a + g_br X_b + Z_r``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["ComplexAwgn", "apply_link", "apply_mac", "measure_snr"]


@dataclass(frozen=True)
class ComplexAwgn:
    """Circularly-symmetric complex Gaussian noise source of given power.

    Attributes
    ----------
    noise_power:
        Total noise power ``E[|Z|^2]`` (the paper normalizes this to one).
    """

    noise_power: float = 1.0

    def __post_init__(self) -> None:
        if self.noise_power <= 0:
            raise InvalidParameterError(
                f"noise power must be positive, got {self.noise_power}"
            )

    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        """Draw complex noise samples with ``E[|Z|^2] = noise_power``."""
        scale = np.sqrt(self.noise_power / 2.0)
        return rng.normal(0.0, scale, size=size) + 1j * rng.normal(
            0.0, scale, size=size
        )


def apply_link(
    symbols: np.ndarray,
    complex_gain: complex,
    noise: ComplexAwgn,
    rng: np.random.Generator,
) -> np.ndarray:
    """Single-transmitter link: ``y = g * x + z``."""
    x = np.asarray(symbols)
    return complex_gain * x + noise.sample(rng, x.shape)


def apply_mac(
    symbols_by_gain: list[tuple[np.ndarray, complex]],
    noise: ComplexAwgn,
    rng: np.random.Generator,
) -> np.ndarray:
    """Multiple-access superposition: ``y = sum_i g_i x_i + z``.

    All symbol vectors must share a length (simultaneous transmission).
    """
    if not symbols_by_gain:
        raise InvalidParameterError("at least one transmitter required")
    arrays = [np.asarray(x) for x, _ in symbols_by_gain]
    lengths = {a.shape for a in arrays}
    if len(lengths) != 1:
        raise InvalidParameterError(
            f"simultaneous transmissions must share a shape, got {lengths}"
        )
    y = noise.sample(rng, arrays[0].shape).astype(complex)
    for x, gain in symbols_by_gain:
        y = y + gain * np.asarray(x)
    return y


def measure_snr(
    transmitted: np.ndarray, received: np.ndarray, complex_gain: complex
) -> float:
    """Empirical SNR of a received block given the known gain.

    Estimates noise power as the residual ``|y - g x|^2`` and signal power
    as ``|g x|^2``; used by simulator self-tests.
    """
    x = np.asarray(transmitted)
    y = np.asarray(received)
    if x.shape != y.shape:
        raise InvalidParameterError(f"shape mismatch {x.shape} vs {y.shape}")
    signal = complex_gain * x
    noise = y - signal
    noise_power = float(np.mean(np.abs(noise) ** 2))
    signal_power = float(np.mean(np.abs(signal) ** 2))
    if noise_power == 0:
        return float("inf")
    return signal_power / noise_power
