"""The evaluation facade: one entry point over the campaign engine.

Every batch workload in this library — figure sweeps, fading ensembles,
power studies, multi-pair grids — is "evaluate a scenario", and
:func:`evaluate` is the one door they all go through::

    from repro.api import evaluate

    result = evaluate("fig3-placement")            # by registered name
    result = evaluate(my_scenario, cache=True)     # or a Scenario instance
    hbc = result.ergodic_mean(Protocol.HBC, 15.0)

Execution semantics (executors, content-addressed caching, chunk
checkpointing, sharding across machines) are inherited unchanged from
:func:`repro.campaign.engine.run_campaign`; the facade adds scenario
resolution and labeled :class:`~repro.scenarios.result.EvaluationResult`
values on top. :func:`gather` is the matching facade over shard-artifact
merging, and :func:`evaluate_realizations` covers callers that already
hold concrete channel draws (the Monte-Carlo drivers).
"""

from __future__ import annotations

import numpy as np

from .campaign.engine import CampaignResult, evaluate_ensemble, gather_campaign, run_campaign
from .core.protocols import Protocol
from .exceptions import InvalidParameterError
from .scenarios.base import Scenario
from .scenarios.registry import get_scenario
from .scenarios.result import EvaluationResult

__all__ = ["evaluate", "gather", "evaluate_realizations"]


def _resolve_scenario(scenario_or_name) -> Scenario:
    """Accept a :class:`Scenario` or a registered scenario name."""
    if isinstance(scenario_or_name, Scenario):
        return scenario_or_name
    if isinstance(scenario_or_name, str):
        return get_scenario(scenario_or_name)
    raise InvalidParameterError(
        "expected a Scenario or a registered scenario name, "
        f"got {scenario_or_name!r}"
    )


def _evaluate_via_server(
    scenario_or_name, scenario, server, *, executor, chunk_size, progress
) -> EvaluationResult:
    """Route an evaluation through a ``repro serve`` daemon.

    The daemon owns its cache and default executor; the request forwards
    only the per-call overrides. Served values are bitwise-identical to a
    local run, so the returned result is interchangeable with one.
    """
    from .serve.client import ServeClient, ServeError

    client = server if isinstance(server, ServeClient) else ServeClient(str(server))
    executor_name = None
    if executor is not None:
        if not isinstance(executor, str):
            raise InvalidParameterError(
                "server-routed evaluation takes the executor by name, "
                f"got {executor!r}"
            )
        executor_name = executor
    served = client.evaluate(
        scenario_or_name,
        executor=executor_name,
        chunk_size=chunk_size,
        progress=progress,
    )
    spec = scenario.to_campaign_spec()
    if served.values.shape != spec.grid_shape:
        raise ServeError(
            f"server returned shape {served.values.shape} for a grid of "
            f"shape {spec.grid_shape}",
            code="internal",
        )
    campaign = CampaignResult(
        spec=spec,
        values=served.values,
        executor_name=f"serve:{served.payload.get('executor', 'unknown')}",
        from_cache=served.served_from == "cache",
        elapsed_seconds=served.elapsed_seconds,
        cells_from_cache=int(served.payload.get("cells_from_cache", 0)),
        cells_computed=int(served.payload.get("cells_computed", 0)),
        chunk_retries=int(served.payload.get("chunk_retries", 0)),
        pool_rebuilds=int(served.payload.get("pool_rebuilds", 0)),
    )
    return EvaluationResult(scenario=scenario, campaign=campaign)


def evaluate(
    scenario_or_name,
    *,
    executor=None,
    cache=None,
    shard=None,
    chunk_size=None,
    progress=None,
    server=None,
) -> EvaluationResult:
    """Evaluate a scenario end to end.

    Parameters
    ----------
    scenario_or_name:
        A :class:`~repro.scenarios.base.Scenario` or the name of a
        registered one (see :func:`repro.scenarios.list_scenarios`).
    executor:
        Campaign executor name (``"serial"``, ``"process"``,
        ``"vectorized"``, ``"async"``) or instance; defaults to the
        vectorized fast path. All built-in executors are
        bitwise-equivalent. With ``server=``, only names are accepted
        (the override travels over the wire).
    cache:
        ``None``/``False`` disables caching, ``True`` selects the default
        content-addressed store, a path or
        :class:`~repro.campaign.cache.CampaignCache` an explicit one.
        With a cache, execution is chunk-checkpointed and resumable.
    shard:
        ``None`` evaluates the whole grid; a
        :class:`~repro.campaign.spec.CampaignShard` or ``(index, count)``
        pair evaluates one balanced slice (combine with a shared cache
        and :func:`gather`).
    chunk_size:
        Checkpoint granularity in grid cells.
    progress:
        Optional ``progress(done, total)`` callable. With ``server=`` it
        receives the daemon's per-chunk progress events.
    server:
        ``None`` evaluates in-process. A socket path (or
        :class:`~repro.serve.client.ServeClient`) routes the evaluation
        through a running ``repro serve`` daemon instead: the daemon
        owns the cache and the executor pool, deduplicates identical
        in-flight requests, and returns values bitwise-identical to a
        local run. Mutually exclusive with ``cache`` and ``shard``,
        which are daemon-side concerns.
    """
    scenario = _resolve_scenario(scenario_or_name)
    if server is not None:
        if cache is not None or shard is not None:
            raise InvalidParameterError(
                "server-routed evaluation owns caching and sharding on the "
                "daemon side; pass cache/shard only for local evaluation"
            )
        return _evaluate_via_server(
            scenario_or_name,
            scenario,
            server,
            executor=executor,
            chunk_size=chunk_size,
            progress=progress,
        )
    campaign = run_campaign(
        scenario.to_campaign_spec(),
        executor=executor,
        cache=cache,
        progress=progress,
        shard=shard,
        chunk_size=chunk_size,
    )
    return EvaluationResult(scenario=scenario, campaign=campaign)


def gather(scenario_or_name, cache=True) -> EvaluationResult:
    """Merge a sharded scenario evaluation into its full labeled result.

    The scenario-level facade over
    :func:`repro.campaign.engine.gather_campaign`: reads every verified
    chunk artifact written by shard runs of this scenario's grid and
    reassembles them bitwise-identically to an unsharded evaluation.
    """
    scenario = _resolve_scenario(scenario_or_name)
    campaign = gather_campaign(scenario.to_campaign_spec(), cache)
    return EvaluationResult(scenario=scenario, campaign=campaign)


def evaluate_realizations(
    protocol: Protocol,
    gains_ensemble,
    power,
    *,
    executor=None,
    cache=None,
    chunk_size=None,
    progress=None,
) -> np.ndarray:
    """Optimal sum rates of one protocol over concrete channel draws.

    The facade for callers that already hold realized channels (e.g. the
    Monte-Carlo drivers, which own their RNG): a thin door onto
    :func:`repro.campaign.engine.evaluate_ensemble`, which checkpoints
    under a content hash of the realizations themselves when a cache is
    configured. Returns one optimal sum rate per draw, in draw order.
    """
    return evaluate_ensemble(
        protocol,
        gains_ensemble,
        power,
        executor=executor,
        cache=cache,
        chunk_size=chunk_size,
        progress=progress,
    )
