"""Protocol descriptors for the four bidirectional cooperation schemes.

The paper's protocols (Section II-C, Fig. 2) are fixed sequences of
*contiguous* phases; in each phase a known subset of nodes transmits while
everyone else listens (half-duplex). This module gives each protocol a
first-class description — phase transmitter sets, labels, duration
containers — consumed by the bound builders, the cut-set engine and the
link-level simulator alike, so that all three views of a protocol share one
source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import InvalidProtocolError
from ..network.cutset import PhaseSpec, ProtocolSchedule

__all__ = ["Protocol", "PhaseDurations", "protocol_schedule", "protocol_phases"]

_NODES = ("a", "b", "r")


class Protocol(enum.Enum):
    """The protocols of the paper's Figs. 1–2.

    * ``DT`` — direct transmission (no relay): ``a`` then ``b``.
    * ``NAIVE4`` — the four-phase strawman of Fig. 1(ii): ``a → r``,
      ``r → b``, ``b → r``, ``r → a``, with no network coding and no use of
      overheard side information. Included as the baseline that motivates
      coded bidirectional cooperation.
    * ``MABC`` — multiple access broadcast: ``{a, b}`` jointly, then ``r``.
    * ``TDBC`` — time division broadcast: ``a``, ``b``, then ``r``.
    * ``HBC`` — hybrid broadcast: ``a``, ``b``, ``{a, b}``, then ``r``.
    """

    DT = "dt"
    NAIVE4 = "naive4"
    MABC = "mabc"
    TDBC = "tdbc"
    HBC = "hbc"

    @classmethod
    def from_name(cls, name: str) -> "Protocol":
        """Parse a protocol from a case-insensitive string."""
        try:
            return cls(name.strip().lower())
        except ValueError:
            raise InvalidProtocolError(
                f"unknown protocol {name!r}; choose from "
                f"{[p.value for p in cls]}"
            ) from None

    @property
    def uses_relay(self) -> bool:
        """Whether the protocol involves the relay node at all."""
        return self is not Protocol.DT


_PHASE_TABLE: dict[Protocol, tuple[frozenset, ...]] = {
    Protocol.DT: (frozenset("a"), frozenset("b")),
    Protocol.NAIVE4: (
        frozenset("a"),
        frozenset("r"),
        frozenset("b"),
        frozenset("r"),
    ),
    Protocol.MABC: (frozenset(("a", "b")), frozenset("r")),
    Protocol.TDBC: (frozenset("a"), frozenset("b"), frozenset("r")),
    Protocol.HBC: (
        frozenset("a"),
        frozenset("b"),
        frozenset(("a", "b")),
        frozenset("r"),
    ),
}

_PHASE_LABELS: dict[Protocol, tuple[str, ...]] = {
    Protocol.DT: ("a transmits", "b transmits"),
    Protocol.NAIVE4: (
        "a transmits",
        "relay forwards to b",
        "b transmits",
        "relay forwards to a",
    ),
    Protocol.MABC: ("a+b multiple access", "relay broadcast"),
    Protocol.TDBC: ("a transmits", "b transmits", "relay broadcast"),
    Protocol.HBC: (
        "a transmits",
        "b transmits",
        "a+b multiple access",
        "relay broadcast",
    ),
}


def protocol_phases(protocol: Protocol) -> tuple[frozenset, ...]:
    """Transmitter sets of the protocol's phases, in order."""
    return _PHASE_TABLE[protocol]


def protocol_schedule(protocol: Protocol) -> ProtocolSchedule:
    """The protocol as a :class:`~repro.network.cutset.ProtocolSchedule`.

    This is the representation consumed by the Lemma-1 cut-set engine.
    """
    phases = tuple(
        PhaseSpec(transmitters, label)
        for transmitters, label in zip(_PHASE_TABLE[protocol], _PHASE_LABELS[protocol])
    )
    return ProtocolSchedule(nodes=_NODES, phases=phases)


@dataclass(frozen=True)
class PhaseDurations:
    """Relative phase durations ``Δ_ℓ >= 0`` with ``sum Δ_ℓ = 1``.

    The paper denotes these ``Δ_ℓ`` and requires them to sum to one
    (Section II-A). Instances validate both properties on construction.
    """

    values: tuple

    def __init__(self, values) -> None:
        value_tuple = tuple(float(v) for v in values)
        object.__setattr__(self, "values", value_tuple)
        if not value_tuple:
            raise InvalidProtocolError("at least one phase duration required")
        if any(v < -1e-12 for v in value_tuple):
            raise InvalidProtocolError(f"durations must be non-negative: {value_tuple}")
        total = sum(value_tuple)
        if abs(total - 1.0) > 1e-9:
            raise InvalidProtocolError(f"durations must sum to 1, got {total}")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    @classmethod
    def uniform(cls, n_phases: int) -> "PhaseDurations":
        """Equal split across ``n_phases`` phases."""
        if n_phases < 1:
            raise InvalidProtocolError(f"need at least one phase, got {n_phases}")
        return cls([1.0 / n_phases] * n_phases)

    @classmethod
    def for_protocol(cls, protocol: Protocol, values) -> "PhaseDurations":
        """Validate that the duration count matches the protocol's phases."""
        durations = cls(values)
        expected = len(_PHASE_TABLE[protocol])
        if len(durations) != expected:
            raise InvalidProtocolError(
                f"{protocol.name} has {expected} phases, got {len(durations)} durations"
            )
        return durations


def describe(protocol: Protocol) -> str:
    """A one-paragraph textual description of the protocol's phase plan."""
    lines = [f"{protocol.name}: {len(_PHASE_TABLE[protocol])} phases"]
    for index, (transmitters, label) in enumerate(
        zip(_PHASE_TABLE[protocol], _PHASE_LABELS[protocol]), start=1
    ):
        listeners = [n for n in _NODES if n not in transmitters]
        lines.append(
            f"  phase {index}: {label} "
            f"(tx={{{', '.join(sorted(transmitters))}}}, "
            f"rx={{{', '.join(listeners)}}})"
        )
    return "\n".join(lines)
