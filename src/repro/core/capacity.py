"""Top-level capacity API: one call from channel description to results.

These are the functions a downstream user starts with::

    from repro import GaussianChannel, LinkGains, Protocol
    from repro.core.capacity import achievable_region, optimal_sum_rate

    channel = GaussianChannel.from_db(power_db=10, gab_db=-7, gar_db=0, gbr_db=5)
    region = achievable_region(Protocol.HBC, channel)
    print(optimal_sum_rate(Protocol.HBC, channel).sum_rate)

Everything composes the lower layers: symbolic bounds
(:mod:`repro.core.bounds`) → Gaussian evaluation
(:mod:`repro.core.gaussian`) → LP geometry (:mod:`repro.core.regions`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optimize.linprog import DEFAULT_BACKEND
from .bounds import bound_for
from .gaussian import GaussianChannel
from .optimize import RatePoint
from .protocols import Protocol
from .regions import RateRegion
from .terms import BoundKind

__all__ = [
    "achievable_region",
    "outer_bound_region",
    "optimal_sum_rate",
    "ProtocolComparison",
    "compare_protocols",
]


def achievable_region(
    protocol: Protocol, channel: GaussianChannel, *, backend: str = DEFAULT_BACKEND
) -> RateRegion:
    """The protocol's achievable (inner-bound) rate region on a channel.

    For DT this is the exact capacity region; for MABC it equals the
    capacity region (Theorem 2); for TDBC and HBC it is the Theorem 3 / 5
    achievable region.
    """
    spec = bound_for(protocol, BoundKind.INNER)
    return RateRegion(evaluated=channel.evaluate(spec), backend=backend)


def outer_bound_region(
    protocol: Protocol, channel: GaussianChannel, *, backend: str = DEFAULT_BACKEND
) -> RateRegion:
    """The protocol's outer-bound region.

    * DT, MABC: coincides with the achievable region (exact capacity).
    * TDBC: Theorem 4.
    * HBC: Theorem 6 evaluated with independent Gaussian inputs — a proxy,
      not a proven outer bound; see :func:`repro.core.bounds.hbc_outer`.
    """
    spec = bound_for(protocol, BoundKind.OUTER)
    return RateRegion(evaluated=channel.evaluate(spec), backend=backend)


def optimal_sum_rate(
    protocol: Protocol, channel: GaussianChannel, *, backend: str = DEFAULT_BACKEND
) -> RatePoint:
    """LP-optimal achievable sum rate of the protocol on the channel.

    This is the quantity plotted in the paper's Fig. 3 (inner bounds with
    optimized time periods).
    """
    return achievable_region(protocol, channel, backend=backend).max_sum_rate()


@dataclass(frozen=True)
class ProtocolComparison:
    """Optimal sum rates of every protocol on one channel."""

    channel: GaussianChannel
    sum_rates: dict

    def best_protocol(self) -> Protocol:
        """The protocol with the largest optimal sum rate."""
        return max(self.sum_rates, key=lambda p: self.sum_rates[p].sum_rate)

    def as_row(self) -> dict:
        """Flat mapping protocol name -> sum rate, for tabular reports."""
        return {p.name: point.sum_rate for p, point in self.sum_rates.items()}


def compare_protocols(
    channel: GaussianChannel,
    *,
    protocols=(
        Protocol.DT, Protocol.NAIVE4, Protocol.MABC, Protocol.TDBC, Protocol.HBC
    ),
    backend: str = DEFAULT_BACKEND,
) -> ProtocolComparison:
    """Optimal sum rate of each protocol.

    Defaults to all five protocols (the paper's four plus the Fig. 1(ii)
    naive baseline); the Fig. 3 harness restricts to the paper's four.
    """
    rates = {
        protocol: optimal_sum_rate(protocol, channel, backend=backend)
        for protocol in protocols
    }
    return ProtocolComparison(channel=channel, sum_rates=rates)
