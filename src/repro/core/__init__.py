"""The paper's primary contribution: protocols, bounds, regions, optimization."""

from .bounds import (
    ALL_BOUNDS,
    bound_for,
    dt_capacity,
    naive4_inner,
    naive4_outer,
    hbc_inner,
    hbc_outer,
    mabc_inner,
    mabc_outer,
    tdbc_inner,
    tdbc_outer,
)
from .fairness import FairnessRow, fairness_report, jain_index, max_equal_rate
from .cutset_lp import cutset_boundary, cutset_max_sum_rate, cutset_support_point
from .hbc_correlated import (
    evaluate_hbc_outer_correlated,
    hbc_outer_correlated_boundary,
    hbc_outer_correlated_sum_rate,
)
from .capacity import (
    ProtocolComparison,
    achievable_region,
    compare_protocols,
    optimal_sum_rate,
    outer_bound_region,
)
from .gaussian import EvaluatedBound, EvaluatedConstraint, GaussianChannel
from .optimize import (
    RatePoint,
    equal_rate_point,
    feasible_rate_pair,
    max_sum_rate,
    sum_rate_fixed_durations,
    support_point,
)
from .protocols import PhaseDurations, Protocol, protocol_phases, protocol_schedule
from .regions import RateRegion, fixed_duration_polygon, polygon_area, region_dominates
from .terms import BoundConstraint, BoundKind, BoundSpec, LinearForm, MiKey

__all__ = [
    "ALL_BOUNDS",
    "bound_for",
    "dt_capacity",
    "naive4_inner",
    "naive4_outer",
    "hbc_inner",
    "hbc_outer",
    "mabc_inner",
    "mabc_outer",
    "tdbc_inner",
    "tdbc_outer",
    "FairnessRow",
    "fairness_report",
    "jain_index",
    "max_equal_rate",
    "cutset_boundary",
    "cutset_max_sum_rate",
    "cutset_support_point",
    "evaluate_hbc_outer_correlated",
    "hbc_outer_correlated_boundary",
    "hbc_outer_correlated_sum_rate",
    "ProtocolComparison",
    "achievable_region",
    "compare_protocols",
    "optimal_sum_rate",
    "outer_bound_region",
    "EvaluatedBound",
    "EvaluatedConstraint",
    "GaussianChannel",
    "RatePoint",
    "equal_rate_point",
    "feasible_rate_pair",
    "max_sum_rate",
    "sum_rate_fixed_durations",
    "support_point",
    "PhaseDurations",
    "Protocol",
    "protocol_phases",
    "protocol_schedule",
    "RateRegion",
    "fixed_duration_polygon",
    "polygon_area",
    "region_dominates",
    "BoundConstraint",
    "BoundKind",
    "BoundSpec",
    "LinearForm",
    "MiKey",
]
