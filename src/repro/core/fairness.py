"""Fairness analysis: symmetric-rate operating points and fairness indices.

The sum rate (Fig. 3's metric) can hide extreme asymmetry — a protocol may
earn its sum rate almost entirely on the stronger direction. For the
cellular scenario (uplink and downlink both matter) the complementary
questions are:

* what is the best *symmetric* rate ``Ra = Rb`` each protocol supports?
  (:func:`max_equal_rate`, an LP via
  :func:`repro.core.optimize.equal_rate_point`),
* how lopsided is each protocol's *sum-rate-optimal* point?
  (:func:`jain_index`, :func:`fairness_report`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from ..optimize.linprog import DEFAULT_BACKEND
from .bounds import bound_for
from .gaussian import GaussianChannel
from .optimize import RatePoint, equal_rate_point, max_sum_rate
from .protocols import Protocol
from .terms import BoundKind

__all__ = ["jain_index", "max_equal_rate", "FairnessRow", "fairness_report"]


def jain_index(ra: float, rb: float) -> float:
    """Jain's fairness index of a rate pair: ``(Ra+Rb)² / (2(Ra²+Rb²))``.

    1.0 for perfectly symmetric rates, 0.5 when one direction starves.
    Defined as 1.0 at the origin (no traffic is vacuously fair).
    """
    if ra < 0 or rb < 0:
        raise InvalidParameterError(f"rates must be non-negative, got ({ra}, {rb})")
    total_square = ra * ra + rb * rb
    if total_square == 0:
        return 1.0
    return (ra + rb) ** 2 / (2.0 * total_square)


def max_equal_rate(
    protocol: Protocol, channel: GaussianChannel, *, backend: str = DEFAULT_BACKEND
) -> RatePoint:
    """The best symmetric operating point ``Ra = Rb`` of a protocol."""
    evaluated = channel.evaluate(bound_for(protocol, BoundKind.INNER))
    return equal_rate_point(evaluated, backend=backend)


@dataclass(frozen=True)
class FairnessRow:
    """Fairness metrics of one protocol on one channel.

    Attributes
    ----------
    protocol:
        The protocol evaluated.
    sum_optimal:
        The sum-rate-optimal point (possibly asymmetric).
    equal_rate:
        The best symmetric point.
    """

    protocol: Protocol
    sum_optimal: RatePoint
    equal_rate: RatePoint

    @property
    def sum_point_fairness(self) -> float:
        """Jain's index at the sum-rate-optimal point."""
        return jain_index(self.sum_optimal.ra, self.sum_optimal.rb)

    @property
    def fairness_cost(self) -> float:
        """Sum-rate sacrifice required for perfect symmetry (bits/use)."""
        return self.sum_optimal.sum_rate - self.equal_rate.sum_rate


def fairness_report(
    channel: GaussianChannel,
    *,
    protocols=(
        Protocol.DT, Protocol.NAIVE4, Protocol.MABC, Protocol.TDBC, Protocol.HBC
    ),
    backend: str = DEFAULT_BACKEND,
) -> list[FairnessRow]:
    """Fairness metrics for every protocol on one channel."""
    rows = []
    for protocol in protocols:
        evaluated = channel.evaluate(bound_for(protocol, BoundKind.INNER))
        rows.append(
            FairnessRow(
                protocol=protocol,
                sum_optimal=max_sum_rate(evaluated, backend=backend),
                equal_rate=equal_rate_point(evaluated, backend=backend),
            )
        )
    return rows
