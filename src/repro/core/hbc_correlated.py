"""Correlated-Gaussian evaluation of the HBC outer bound (Theorem 6).

Theorem 6 permits a *correlated* joint input ``p^(3)(x_a, x_b | q)`` in the
HBC MAC phase. The paper declines to evaluate its bound numerically
because the optimal joint law is unknown for the Gaussian channel. This
module implements the natural candidate evaluation the paper's discussion
points at — **jointly Gaussian phase-3 inputs with correlation
coefficient ρ** — as an explicit, clearly-labelled extension:

* ``I(X_a; Y_r | X_b)`` with correlation ρ becomes
  ``C((1 - ρ²) · P · G_ar)`` — conditioning removes the predictable part
  of ``X_a``, shrinking the individual terms;
* ``I(X_a, X_b; Y_r)`` becomes
  ``C(P·G_ar + P·G_br + 2ρ·P·sqrt(G_ar·G_br))`` — coherent combining
  grows the sum term (phases aligned, which is optimal under full CSI).

The Theorem-6 evaluation is then the union over ρ ∈ [0, 1] of the
per-ρ regions. Within the jointly-Gaussian family this is exact; whether
jointly Gaussian inputs are optimal for Theorem 6 is the open question the
paper flags, so results are labelled "Gaussian-input evaluation", not
"outer bound".
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..information.functions import gaussian_capacity
from ..optimize.linprog import DEFAULT_BACKEND
from .bounds import hbc_outer
from .gaussian import EvaluatedBound, EvaluatedConstraint, GaussianChannel
from .optimize import RatePoint, max_sum_rate, support_point
from .terms import MiKey

__all__ = [
    "evaluate_hbc_outer_correlated",
    "hbc_outer_correlated_sum_rate",
    "hbc_outer_correlated_boundary",
]

#: Index of the HBC MAC phase (0-based) whose inputs may be correlated.
_MAC_PHASE = 2


def _correlated_values(channel: GaussianChannel, rho: float) -> dict:
    """Phase-3 MI values under jointly Gaussian inputs with correlation ρ."""
    p = channel.power
    g = channel.gains
    residual = 1.0 - rho * rho
    return {
        MiKey.LINK_AR: gaussian_capacity(residual * p * g.gar),
        MiKey.LINK_BR: gaussian_capacity(residual * p * g.gbr),
        MiKey.MAC_SUM: gaussian_capacity(
            p * g.gar + p * g.gbr + 2.0 * rho * p * np.sqrt(g.gar * g.gbr)
        ),
        # The remaining keys cannot appear in phase 3 of Theorem 6, but a
        # complete table keeps the assembly uniform.
        MiKey.LINK_AB: channel.mi_value(MiKey.LINK_AB),
        MiKey.CUT_A_RB: channel.mi_value(MiKey.CUT_A_RB),
        MiKey.CUT_B_RA: channel.mi_value(MiKey.CUT_B_RA),
    }


def evaluate_hbc_outer_correlated(
    channel: GaussianChannel, rho: float
) -> EvaluatedBound:
    """Evaluate Theorem 6 with phase-3 correlation coefficient ``rho``.

    ``rho = 0`` reproduces :meth:`GaussianChannel.evaluate` on
    :func:`~repro.core.bounds.hbc_outer` exactly (independent inputs).
    """
    if not 0.0 <= rho <= 1.0:
        raise InvalidParameterError(f"correlation must lie in [0, 1], got {rho}")
    spec = hbc_outer()
    standard = channel.mi_values()
    correlated = _correlated_values(channel, rho)
    constraints = []
    for constraint in spec.constraints:
        coefficients = [0.0] * spec.n_phases
        for phase, key in constraint.form.terms:
            table = correlated if phase == _MAC_PHASE else standard
            coefficients[phase] += table[key]
        constraints.append(
            EvaluatedConstraint(
                rates=constraint.rates, coefficients=tuple(coefficients)
            )
        )
    return EvaluatedBound(spec=spec, constraints=tuple(constraints))


def hbc_outer_correlated_sum_rate(
    channel: GaussianChannel, *, rhos=None, backend: str = DEFAULT_BACKEND
) -> tuple[RatePoint, float]:
    """Max sum rate of the Theorem-6 Gaussian evaluation over ρ.

    Returns the best operating point and the ρ achieving it. The union
    over ρ is not convex in general, so ρ is swept on a grid (durations
    are still optimized exactly by LP at each ρ).
    """
    if rhos is None:
        rhos = np.linspace(0.0, 0.99, 34)
    best_point: RatePoint | None = None
    best_rho = 0.0
    for rho in rhos:
        point = max_sum_rate(
            evaluate_hbc_outer_correlated(channel, float(rho)), backend=backend
        )
        if best_point is None or point.sum_rate > best_point.sum_rate:
            best_point, best_rho = point, float(rho)
    assert best_point is not None
    return best_point, best_rho


def hbc_outer_correlated_boundary(
    channel: GaussianChannel,
    *,
    n_points: int = 17,
    rhos=None,
    backend: str = DEFAULT_BACKEND,
) -> np.ndarray:
    """Pareto boundary of the union over ρ of the Theorem-6 evaluation.

    For each weight direction the best ρ on the grid is kept; the result
    is the upper envelope of the per-ρ regions.
    """
    if n_points < 2:
        raise InvalidParameterError(f"need at least 2 directions, got {n_points}")
    if rhos is None:
        rhos = np.linspace(0.0, 0.99, 12)
    evaluated = [evaluate_hbc_outer_correlated(channel, float(r)) for r in rhos]
    angles = np.linspace(0.0, np.pi / 2.0, n_points)
    points = []
    for theta in angles:
        mu_a = max(float(np.cos(theta)), 0.0)
        mu_b = max(float(np.sin(theta)), 0.0)
        best = None
        for bound in evaluated:
            point = support_point(bound, mu_a, mu_b, backend=backend)
            value = mu_a * point.ra + mu_b * point.rb
            if best is None or value > best[0]:
                best = (value, point)
        assert best is not None
        points.append((best[1].ra, best[1].rb))
    ordered = sorted(points, key=lambda p: (p[0], -p[1]))
    deduped: list[tuple] = []
    for ra, rb in ordered:
        if (
            deduped
            and abs(ra - deduped[-1][0]) < 1e-7
            and abs(rb - deduped[-1][1]) < 1e-7
        ):
            continue
        deduped.append((float(ra), float(rb)))
    return np.asarray(deduped, dtype=float)
