"""Phase-duration optimization via linear programming.

For a fixed channel, every theorem bound is a family of constraints that
are *jointly linear* in ``(Ra, Rb, Δ_1, ..., Δ_L)``: each ``min(...)``
simply contributes one linear constraint per argument. Maximizing any
non-negative weighted sum ``μ_a·Ra + μ_b·Rb`` over the *union over phase
durations* of the per-Δ regions is therefore a single LP — this is exactly
the "linear programming may then be used to find optimal time durations"
step of Section IV, implemented over either LP backend.

Variables are ordered ``x = [Ra, Rb, Δ_1, ..., Δ_L]`` with ``x >= 0`` and
``sum(Δ) = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InfeasibleProblemError, InvalidParameterError
from ..optimize.linprog import DEFAULT_BACKEND, LinearProgram, solve_lp
from .gaussian import EvaluatedBound
from .protocols import PhaseDurations

__all__ = [
    "RatePoint",
    "support_point",
    "max_sum_rate",
    "equal_rate_point",
    "sum_rate_fixed_durations",
    "feasible_rate_pair",
]

_RATE_INDEX = {"Ra": 0, "Rb": 1}


@dataclass(frozen=True)
class RatePoint:
    """An operating point: a rate pair and the durations that support it."""

    ra: float
    rb: float
    durations: PhaseDurations

    @property
    def sum_rate(self) -> float:
        """``Ra + Rb`` at this point."""
        return self.ra + self.rb


def _constraint_rows(evaluated: EvaluatedBound) -> tuple[np.ndarray, np.ndarray]:
    """Inequality rows ``A x <= 0`` encoding every bound constraint."""
    n_phases = evaluated.n_phases
    n_vars = 2 + n_phases
    rows = []
    for constraint in evaluated.constraints:
        row = np.zeros(n_vars)
        for rate in constraint.rates:
            row[_RATE_INDEX[rate]] = 1.0
        for phase, coeff in enumerate(constraint.coefficients):
            row[2 + phase] = -coeff
        rows.append(row)
    a_ub = np.vstack(rows)
    b_ub = np.zeros(len(rows))
    return a_ub, b_ub


def _duration_simplex(n_phases: int) -> tuple[np.ndarray, np.ndarray]:
    """Equality row ``sum(Δ) = 1``."""
    a_eq = np.zeros((1, 2 + n_phases))
    a_eq[0, 2:] = 1.0
    b_eq = np.array([1.0])
    return a_eq, b_eq


def support_point(
    evaluated: EvaluatedBound,
    mu_a: float,
    mu_b: float,
    *,
    lexicographic: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> RatePoint:
    """Maximize ``μ_a·Ra + μ_b·Rb`` over rates *and* phase durations.

    With ``lexicographic=True`` (default), ties are broken by a second LP
    maximizing the transposed weight ``μ_b·Ra + μ_a·Rb`` subject to
    optimality of the first stage. This pins down the extreme point of the
    boundary when one weight is zero (e.g. ``μ = (1, 0)`` yields the corner
    with maximal ``Ra`` *and then* maximal ``Rb``), which is what the
    boundary tracer needs.

    Parameters
    ----------
    evaluated:
        Numeric bound for a fixed channel.
    mu_a, mu_b:
        Non-negative weights, not both zero.
    """
    if mu_a < 0 or mu_b < 0 or (mu_a == 0 and mu_b == 0):
        raise InvalidParameterError(
            f"weights must be non-negative and not both zero, got ({mu_a}, {mu_b})"
        )
    n_phases = evaluated.n_phases
    a_ub, b_ub = _constraint_rows(evaluated)
    a_eq, b_eq = _duration_simplex(n_phases)

    c = np.zeros(2 + n_phases)
    c[0], c[1] = -mu_a, -mu_b
    first = solve_lp(LinearProgram(c, a_ub, b_ub, a_eq, b_eq), backend=backend)
    value = -first.objective

    x = first.x
    if lexicographic:
        # Stage 2: among first-stage optima, maximize the transposed weight.
        # The slack is relative to the optimum so solver tolerance on large
        # objective values cannot make the stage-2 problem infeasible.
        slack = 1e-9 * max(1.0, abs(value))
        extra_row = np.zeros(2 + n_phases)
        extra_row[0], extra_row[1] = -mu_a, -mu_b
        a_ub2 = np.vstack([a_ub, extra_row])
        b_ub2 = np.concatenate([b_ub, [-value + slack]])
        c2 = np.zeros(2 + n_phases)
        c2[0], c2[1] = -mu_b, -mu_a
        second = solve_lp(LinearProgram(c2, a_ub2, b_ub2, a_eq, b_eq), backend=backend)
        x = second.x

    durations = np.clip(x[2:], 0.0, None)
    total = durations.sum()
    durations = durations / total if total > 0 else np.full(n_phases, 1.0 / n_phases)
    return RatePoint(
        ra=float(max(x[0], 0.0)),
        rb=float(max(x[1], 0.0)),
        durations=PhaseDurations(durations),
    )


def max_sum_rate(
    evaluated: EvaluatedBound, *, backend: str = DEFAULT_BACKEND
) -> RatePoint:
    """The sum-rate-optimal operating point (``μ_a = μ_b = 1``)."""
    return support_point(evaluated, 1.0, 1.0, lexicographic=False, backend=backend)


def equal_rate_point(
    evaluated: EvaluatedBound, *, backend: str = DEFAULT_BACKEND
) -> RatePoint:
    """Maximize the symmetric rate ``t`` with ``Ra = Rb = t``.

    Variables are ``[t, Δ_1..Δ_L]``; each constraint ``sum(rates) <= f(Δ)``
    becomes ``len(rates)·t <= f(Δ)``.
    """
    n_phases = evaluated.n_phases
    n_vars = 1 + n_phases
    rows = []
    for constraint in evaluated.constraints:
        row = np.zeros(n_vars)
        row[0] = float(len(constraint.rates))
        for phase, coeff in enumerate(constraint.coefficients):
            row[1 + phase] = -coeff
        rows.append(row)
    a_ub = np.vstack(rows)
    b_ub = np.zeros(len(rows))
    a_eq = np.zeros((1, n_vars))
    a_eq[0, 1:] = 1.0
    b_eq = np.array([1.0])
    c = np.zeros(n_vars)
    c[0] = -1.0
    result = solve_lp(LinearProgram(c, a_ub, b_ub, a_eq, b_eq), backend=backend)
    t = float(max(result.x[0], 0.0))
    durations = np.clip(result.x[1:], 0.0, None)
    total = durations.sum()
    durations = durations / total if total > 0 else np.full(n_phases, 1.0 / n_phases)
    return RatePoint(ra=t, rb=t, durations=PhaseDurations(durations))


def sum_rate_fixed_durations(evaluated: EvaluatedBound, durations) -> float:
    """Closed-form max ``Ra + Rb`` at *fixed* durations.

    With caps ``Ra <= ca``, ``Rb <= cb``, ``Ra + Rb <= cs`` the maximum of
    the sum is ``min(ca + cb, cs)``. Used as an LP-free cross-check of
    :func:`max_sum_rate` (grid search over the duration simplex must never
    beat the LP).
    """
    caps = evaluated.rate_caps(tuple(durations))
    return float(min(caps["Ra"] + caps["Rb"], caps["Ra+Rb"]))


def feasible_rate_pair(
    evaluated: EvaluatedBound,
    ra: float,
    rb: float,
    *,
    backend: str = DEFAULT_BACKEND,
    tol: float = 1e-9,
) -> bool:
    """Whether ``(ra, rb)`` lies in the union-over-durations region.

    Solves the feasibility LP in ``Δ`` alone: find durations satisfying
    every constraint at the fixed rate pair. ``tol`` relaxes each
    right-hand side so boundary points are classified as members.
    """
    if ra < -tol or rb < -tol:
        return False
    ra, rb = max(ra, 0.0), max(rb, 0.0)
    n_phases = evaluated.n_phases
    fixed = {"Ra": ra, "Rb": rb}
    rows = []
    rhs = []
    for constraint in evaluated.constraints:
        value = sum(fixed[r] for r in constraint.rates)
        rows.append([-c for c in constraint.coefficients])
        rhs.append(tol - value)
    a_ub = np.asarray(rows)
    b_ub = np.asarray(rhs)
    a_eq = np.ones((1, n_phases))
    b_eq = np.array([1.0])
    c = np.zeros(n_phases)
    try:
        solve_lp(LinearProgram(c, a_ub, b_ub, a_eq, b_eq), backend=backend)
    except InfeasibleProblemError:
        return False
    return True
