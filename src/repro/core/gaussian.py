"""Gaussian (AWGN + path loss) evaluation of the symbolic bounds.

Section IV of the paper: all nodes transmit with power ``P``, noise is
unit-power circularly-symmetric complex Gaussian, link gains are
``G_ij = |g_ij|^2`` and ``C(x) = log2(1 + x)``. A per-phase Gaussian input
maximizes each mutual-information term individually (the paper's
justification for taking ``|Q| = 1`` in (22)–(23)), giving the closed-form
table implemented by :meth:`GaussianChannel.mi_value`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.gains import LinkGains
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear, gaussian_capacity
from .terms import BoundSpec, MiKey

__all__ = ["GaussianChannel", "EvaluatedBound", "EvaluatedConstraint"]


@dataclass(frozen=True)
class EvaluatedConstraint:
    """A numeric constraint ``sum(rates) <= coefficients @ Δ``.

    Attributes
    ----------
    rates:
        Rate names on the left-hand side.
    coefficients:
        Per-phase numeric MI coefficients (bits), length = protocol phases.
    """

    rates: tuple
    coefficients: tuple

    def bound_at(self, durations) -> float:
        """Right-hand side value at concrete durations."""
        durations = tuple(durations)
        if len(durations) != len(self.coefficients):
            raise InvalidParameterError(
                f"expected {len(self.coefficients)} durations, got {len(durations)}"
            )
        return float(sum(d * c for d, c in zip(durations, self.coefficients)))


@dataclass(frozen=True)
class EvaluatedBound:
    """A bound spec with numeric per-phase coefficients for one channel.

    Produced by :meth:`GaussianChannel.evaluate`; consumed by the region and
    optimization code in :mod:`repro.core.regions` /
    :mod:`repro.core.optimize`.
    """

    spec: BoundSpec
    constraints: tuple

    @property
    def n_phases(self) -> int:
        """Number of protocol phases (= length of the duration vector)."""
        return self.spec.n_phases

    def constraints_for(self, rates: tuple) -> list[EvaluatedConstraint]:
        """All constraints whose left-hand side is exactly ``rates``."""
        target = tuple(sorted(rates))
        return [c for c in self.constraints if tuple(sorted(c.rates)) == target]

    def rate_caps(self, durations) -> dict:
        """``{"Ra": cap, "Rb": cap, "Ra+Rb": cap}`` at fixed durations.

        Missing constraint families yield ``inf`` caps (e.g. DT has no
        sum-rate constraint).
        """
        caps = {"Ra": float("inf"), "Rb": float("inf"), "Ra+Rb": float("inf")}
        for constraint in self.constraints:
            key = "+".join(sorted(constraint.rates))
            value = constraint.bound_at(durations)
            caps[key] = min(caps.get(key, float("inf")), value)
        return caps


@dataclass(frozen=True)
class GaussianChannel:
    """An AWGN bidirectional relay channel instance: gains plus power.

    Attributes
    ----------
    gains:
        Reciprocal link gains ``G_ab, G_ar, G_br`` (linear).
    power:
        Common per-node transmit power ``P`` (linear; noise power is one).
    """

    gains: LinkGains
    power: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise InvalidParameterError(f"power must be non-negative, got {self.power}")

    @classmethod
    def from_db(
        cls, *, power_db: float, gab_db: float, gar_db: float, gbr_db: float
    ) -> "GaussianChannel":
        """Construct with every quantity in decibels."""
        return cls(
            gains=LinkGains.from_db(gab_db, gar_db, gbr_db),
            power=db_to_linear(power_db),
        )

    def snr(self, link: MiKey) -> float:
        """Receive SNR of the term's effective channel (linear)."""
        p = self.power
        g = self.gains
        table = {
            MiKey.LINK_AR: p * g.gar,
            MiKey.LINK_BR: p * g.gbr,
            MiKey.LINK_AB: p * g.gab,
            MiKey.MAC_SUM: p * (g.gar + g.gbr),
            MiKey.CUT_A_RB: p * (g.gar + g.gab),
            MiKey.CUT_B_RA: p * (g.gbr + g.gab),
        }
        return table[link]

    def mi_value(self, key: MiKey) -> float:
        """Per-phase mutual information (bits/use) of a symbolic term."""
        return gaussian_capacity(self.snr(key))

    def mi_values(self) -> dict:
        """All term values as a dict keyed by :class:`MiKey`."""
        return {key: self.mi_value(key) for key in MiKey}

    def evaluate(self, spec: BoundSpec) -> EvaluatedBound:
        """Assign Gaussian values to a symbolic bound."""
        values = self.mi_values()
        evaluated = tuple(
            EvaluatedConstraint(
                rates=c.rates,
                coefficients=tuple(c.form.coefficients(spec.n_phases, values)),
            )
            for c in spec.constraints
        )
        return EvaluatedBound(spec=spec, constraints=evaluated)

    def with_power(self, power: float) -> "GaussianChannel":
        """The same channel at a different transmit power."""
        return GaussianChannel(gains=self.gains, power=power)

    def with_gains(self, gains: LinkGains) -> "GaussianChannel":
        """The same power applied to different link gains (fading draws)."""
        return GaussianChannel(gains=gains, power=self.power)

    def describe(self) -> str:
        """One-line summary with dB quantities for reports."""
        gab_db, gar_db, gbr_db = self.gains.to_db()
        power_db = 10.0 * np.log10(self.power) if self.power > 0 else float("-inf")
        return (
            f"P={power_db:.1f} dB, G_ab={gab_db:.1f} dB, "
            f"G_ar={gar_db:.1f} dB, G_br={gbr_db:.1f} dB"
        )
