"""Gaussian (AWGN + path loss) evaluation of the symbolic bounds.

Section IV of the paper: all nodes transmit with power ``P``, noise is
unit-power circularly-symmetric complex Gaussian, link gains are
``G_ij = |g_ij|^2`` and ``C(x) = log2(1 + x)``. A per-phase Gaussian input
maximizes each mutual-information term individually (the paper's
justification for taking ``|Q| = 1`` in (22)–(23)), giving the closed-form
table implemented by :meth:`GaussianChannel.mi_value`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..channels.gains import LinkGains
from ..channels.power import NodePowers
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear, gaussian_capacity
from .protocols import protocol_phases
from .terms import BoundSpec, MiKey, transmitter_for

__all__ = ["GaussianChannel", "EvaluatedBound", "EvaluatedConstraint"]

#: Which node's transmit power may drive each MI term, and the default
#: (terminal-transmitter) choice used when no phase context is given.
_TERM_TRANSMITTERS = {
    MiKey.LINK_AR: ("a", "r"),
    MiKey.LINK_BR: ("b", "r"),
    MiKey.LINK_AB: ("a", "b"),
    MiKey.MAC_SUM: ("ab",),
    MiKey.CUT_A_RB: ("a",),
    MiKey.CUT_B_RA: ("b",),
}


@dataclass(frozen=True)
class EvaluatedConstraint:
    """A numeric constraint ``sum(rates) <= coefficients @ Δ``.

    Attributes
    ----------
    rates:
        Rate names on the left-hand side.
    coefficients:
        Per-phase numeric MI coefficients (bits), length = protocol phases.
    """

    rates: tuple
    coefficients: tuple

    def bound_at(self, durations) -> float:
        """Right-hand side value at concrete durations."""
        durations = tuple(durations)
        if len(durations) != len(self.coefficients):
            raise InvalidParameterError(
                f"expected {len(self.coefficients)} durations, got {len(durations)}"
            )
        return float(sum(d * c for d, c in zip(durations, self.coefficients)))


@dataclass(frozen=True)
class EvaluatedBound:
    """A bound spec with numeric per-phase coefficients for one channel.

    Produced by :meth:`GaussianChannel.evaluate`; consumed by the region and
    optimization code in :mod:`repro.core.regions` /
    :mod:`repro.core.optimize`.
    """

    spec: BoundSpec
    constraints: tuple

    @property
    def n_phases(self) -> int:
        """Number of protocol phases (= length of the duration vector)."""
        return self.spec.n_phases

    def constraints_for(self, rates: tuple) -> list[EvaluatedConstraint]:
        """All constraints whose left-hand side is exactly ``rates``."""
        target = tuple(sorted(rates))
        return [c for c in self.constraints if tuple(sorted(c.rates)) == target]

    def rate_caps(self, durations) -> dict:
        """``{"Ra": cap, "Rb": cap, "Ra+Rb": cap}`` at fixed durations.

        Missing constraint families yield ``inf`` caps (e.g. DT has no
        sum-rate constraint).
        """
        caps = {"Ra": float("inf"), "Rb": float("inf"), "Ra+Rb": float("inf")}
        for constraint in self.constraints:
            key = "+".join(sorted(constraint.rates))
            value = constraint.bound_at(durations)
            caps[key] = min(caps.get(key, float("inf")), value)
        return caps


@dataclass(frozen=True)
class GaussianChannel:
    """An AWGN bidirectional relay channel instance: gains plus power.

    Attributes
    ----------
    gains:
        Reciprocal link gains ``G_ab, G_ar, G_br`` (linear).
    power:
        Transmit power (linear; noise power is one). A scalar is the
        paper's common per-node power ``P``; a
        :class:`~repro.channels.power.NodePowers` (or a
        ``{"a": ..., "b": ..., "r": ...}`` mapping, normalized on
        construction) gives each node its own power. Equal per-node
        powers evaluate bitwise-identically to the scalar.
    """

    gains: LinkGains
    power: float | NodePowers

    def __post_init__(self) -> None:
        power = self.power
        if isinstance(power, Mapping):
            power = NodePowers.from_mapping(power)
            object.__setattr__(self, "power", power)
        if isinstance(power, NodePowers):
            return  # NodePowers validates non-negativity itself
        if power < 0:
            raise InvalidParameterError(f"power must be non-negative, got {power}")

    @classmethod
    def from_db(
        cls, *, power_db: float, gab_db: float, gar_db: float, gbr_db: float
    ) -> "GaussianChannel":
        """Construct with every quantity in decibels."""
        return cls(
            gains=LinkGains.from_db(gab_db, gar_db, gbr_db),
            power=db_to_linear(power_db),
        )

    def snr(self, link: MiKey, transmitter: str | None = None) -> float:
        """Receive SNR of the term's effective channel (linear).

        Under a scalar power ``transmitter`` is irrelevant (reciprocity).
        Under per-node powers each term is driven by its transmitting
        node's power; ``transmitter`` selects the direction of a
        single-link term (defaulting to the terminal end: ``a`` drives
        ``a-r``, ``a-b`` and ``a-rb``; ``b`` drives ``b-r`` and
        ``b-ra``), with ``"r"`` selecting the relay's rebroadcast use of
        a relay link.
        """
        g = self.gains
        p = self.power
        allowed = _TERM_TRANSMITTERS[link]
        if transmitter is not None and transmitter not in allowed:
            raise InvalidParameterError(
                f"term {link.value!r} cannot be driven by {transmitter!r}; "
                f"allowed transmitters: {allowed}"
            )
        if not isinstance(p, NodePowers):
            table = {
                MiKey.LINK_AR: p * g.gar,
                MiKey.LINK_BR: p * g.gbr,
                MiKey.LINK_AB: p * g.gab,
                MiKey.MAC_SUM: p * (g.gar + g.gbr),
                MiKey.CUT_A_RB: p * (g.gar + g.gab),
                MiKey.CUT_B_RA: p * (g.gbr + g.gab),
            }
            return table[link]
        if link is MiKey.MAC_SUM:
            # Factored form when the source powers agree, so uniform
            # per-node powers reproduce the scalar table bit for bit.
            if p.pa == p.pb:
                return p.pa * (g.gar + g.gbr)
            return p.pa * g.gar + p.pb * g.gbr
        node = transmitter if transmitter is not None else allowed[0]
        effective_gain = {
            MiKey.LINK_AR: g.gar,
            MiKey.LINK_BR: g.gbr,
            MiKey.LINK_AB: g.gab,
            MiKey.CUT_A_RB: g.gar + g.gab,
            MiKey.CUT_B_RA: g.gbr + g.gab,
        }[link]
        return p.power(node) * effective_gain

    def mi_value(self, key: MiKey, transmitter: str | None = None) -> float:
        """Per-phase mutual information (bits/use) of a symbolic term."""
        return gaussian_capacity(self.snr(key, transmitter))

    def mi_values(self) -> dict:
        """All term values as a dict keyed by :class:`MiKey`.

        Under per-node powers the values use the default
        terminal-transmitter direction of each term (see :meth:`snr`).
        """
        return {key: self.mi_value(key) for key in MiKey}

    def evaluate(self, spec: BoundSpec) -> EvaluatedBound:
        """Assign Gaussian values to a symbolic bound.

        Under asymmetric per-node powers each constraint term draws on
        the power of the node actually transmitting in its phase
        (resolved through the protocol's phase schedule); scalar and
        uniform per-node powers use the phase-independent table, which
        is the same thing (reciprocity) computed bitwise-identically.
        """
        if isinstance(self.power, NodePowers) and not self.power.is_uniform():
            phases = protocol_phases(spec.protocol)
            evaluated = tuple(
                EvaluatedConstraint(
                    rates=c.rates,
                    coefficients=tuple(
                        self._directional_coefficients(c.form, spec.n_phases, phases)
                    ),
                )
                for c in spec.constraints
            )
            return EvaluatedBound(spec=spec, constraints=evaluated)
        values = self.mi_values()
        evaluated = tuple(
            EvaluatedConstraint(
                rates=c.rates,
                coefficients=tuple(c.form.coefficients(spec.n_phases, values)),
            )
            for c in spec.constraints
        )
        return EvaluatedBound(spec=spec, constraints=evaluated)

    def _directional_coefficients(self, form, n_phases: int, phases) -> list:
        """Per-phase coefficients with phase-resolved transmitters."""
        coeffs = [0.0] * n_phases
        for p, k in form.terms:
            tx = transmitter_for(k, phases[p])
            coeffs[p] += self.mi_value(k, transmitter=tx if len(tx) == 1 else None)
        return coeffs

    def with_power(self, power) -> "GaussianChannel":
        """The same channel at a different transmit power (any form)."""
        return GaussianChannel(gains=self.gains, power=power)

    def with_gains(self, gains: LinkGains) -> "GaussianChannel":
        """The same power applied to different link gains (fading draws)."""
        return GaussianChannel(gains=gains, power=self.power)

    def describe(self) -> str:
        """One-line summary with dB quantities for reports."""
        gab_db, gar_db, gbr_db = self.gains.to_db()
        if isinstance(self.power, NodePowers):
            pa_db, pb_db, pr_db = self.power.to_db()
            power_text = f"P_a={pa_db:.1f}/P_b={pb_db:.1f}/P_r={pr_db:.1f} dB"
        else:
            power_db = (
                10.0 * np.log10(self.power) if self.power > 0 else float("-inf")
            )
            power_text = f"P={power_db:.1f} dB"
        return (
            f"{power_text}, G_ab={gab_db:.1f} dB, "
            f"G_ar={gar_db:.1f} dB, G_br={gbr_db:.1f} dB"
        )
