"""Symbolic linear forms for the theorem bounds.

Every bound in Theorems 2–6 has the shape::

    (sum of some rates)  <=  min over forms of  sum_ℓ Δ_ℓ · I_term(ℓ)

where each ``I_term`` is one of a small vocabulary of per-phase mutual
informations. This module fixes that vocabulary (:class:`MiKey`) and the
symbolic containers (:class:`LinearForm`, :class:`BoundConstraint`,
:class:`BoundSpec`). Numbers enter only later, when a
:class:`~repro.core.gaussian.GaussianChannel` (or any other evaluator)
assigns a value to each key — keeping the theorem statements themselves
channel-agnostic, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from .protocols import Protocol

__all__ = [
    "MiKey",
    "LinearForm",
    "BoundConstraint",
    "BoundSpec",
    "BoundKind",
    "transmitter_for",
]


class MiKey(enum.Enum):
    """The per-phase mutual-information terms appearing in Theorems 2–6.

    Values are chosen for readable reports. Reciprocity (``g_ij = g_ji``)
    means a single key covers both directions of a link.
    """

    #: Single link between a terminal and the relay: ``I(X_a; Y_r | ...)`` or
    #: the reverse broadcast direction ``I(X_r; Y_a | ...)``.
    LINK_AR = "a-r"
    #: Single link between ``b`` and the relay.
    LINK_BR = "b-r"
    #: The direct terminal-to-terminal link.
    LINK_AB = "a-b"
    #: Multiple-access sum at the relay: ``I(X_a, X_b; Y_r)``.
    MAC_SUM = "ab-r"
    #: Cut from ``a`` to both listeners: ``I(X_a; Y_r, Y_b)`` (SIMO).
    CUT_A_RB = "a-rb"
    #: Cut from ``b`` to both listeners: ``I(X_b; Y_r, Y_a)`` (SIMO).
    CUT_B_RA = "b-ra"


#: Endpoint nodes of each single-link key; used to resolve which node is
#: transmitting in a given phase (the other endpoint listens).
_LINK_ENDPOINTS = {
    MiKey.LINK_AR: frozenset({"a", "r"}),
    MiKey.LINK_BR: frozenset({"b", "r"}),
    MiKey.LINK_AB: frozenset({"a", "b"}),
}


def transmitter_for(key: MiKey, transmitters: frozenset) -> str:
    """Node(s) whose transmit power scales an MI term in a given phase.

    Under per-node (asymmetric) transmit powers, each mutual-information
    term is driven by the power of whichever node is *sending* during the
    phase the term is evaluated in. ``transmitters`` is the phase's
    transmitter set from
    :func:`repro.core.protocols.protocol_phases`. The resolution is:

    - single-link keys resolve to the unique link endpoint that is
      transmitting in the phase (an error if zero or both endpoints
      transmit — no theorem bound ever does that);
    - :attr:`MiKey.MAC_SUM` is the two-source multiple access sum,
      resolved to ``"ab"``;
    - the SIMO cut keys are driven by their source terminal:
      :attr:`MiKey.CUT_A_RB` → ``"a"``, :attr:`MiKey.CUT_B_RA` → ``"b"``.
    """
    if key is MiKey.MAC_SUM:
        return "ab"
    if key is MiKey.CUT_A_RB:
        return "a"
    if key is MiKey.CUT_B_RA:
        return "b"
    active = _LINK_ENDPOINTS[key] & transmitters
    if len(active) != 1:
        raise InvalidParameterError(
            f"cannot resolve transmitter for {key!r}: endpoints "
            f"{sorted(_LINK_ENDPOINTS[key])} vs phase transmitters "
            f"{sorted(transmitters)}"
        )
    return next(iter(active))


class BoundKind(enum.Enum):
    """Whether a bound is achievable (inner) or a converse (outer)."""

    INNER = "inner"
    OUTER = "outer"


@dataclass(frozen=True)
class LinearForm:
    """A symbolic expression ``sum_ℓ Δ_ℓ · value(term_ℓ)``.

    Attributes
    ----------
    terms:
        Tuple of ``(phase_index, MiKey)`` pairs. A phase may appear at most
        once (the theorems never need repeated phases within one form).
    """

    terms: tuple

    def __init__(self, terms) -> None:
        term_tuple = tuple((int(p), k) for p, k in terms)
        object.__setattr__(self, "terms", term_tuple)
        if not term_tuple:
            raise InvalidParameterError("a linear form needs at least one term")
        phases = [p for p, _ in term_tuple]
        if len(set(phases)) != len(phases):
            raise InvalidParameterError(f"repeated phase index in {term_tuple!r}")
        for p, k in term_tuple:
            if p < 0:
                raise InvalidParameterError(f"negative phase index {p}")
            if not isinstance(k, MiKey):
                raise InvalidParameterError(f"{k!r} is not an MiKey")

    def max_phase(self) -> int:
        """Largest phase index referenced."""
        return max(p for p, _ in self.terms)

    def coefficients(self, n_phases: int, values: dict) -> list[float]:
        """Numeric per-phase coefficients given MI values per key."""
        if self.max_phase() >= n_phases:
            raise InvalidParameterError(
                f"form references phase {self.max_phase()} but protocol has "
                f"{n_phases} phases"
            )
        coeffs = [0.0] * n_phases
        for p, k in self.terms:
            coeffs[p] += float(values[k])
        return coeffs

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``Δ1·I[a-r] + Δ3·I[b-r]``."""
        parts = [f"Δ{p + 1}·I[{k.value}]" for p, k in self.terms]
        return " + ".join(parts)


@dataclass(frozen=True)
class BoundConstraint:
    """``sum of rates <= linear form``; a min() contributes several of these.

    Attributes
    ----------
    rates:
        The rate names on the left-hand side (``("Ra",)``, ``("Rb",)`` or
        ``("Ra", "Rb")`` for the sum constraint).
    form:
        The right-hand side.
    """

    rates: tuple
    form: LinearForm

    def __init__(self, rates, form: LinearForm) -> None:
        rate_tuple = tuple(rates)
        object.__setattr__(self, "rates", rate_tuple)
        object.__setattr__(self, "form", form)
        if not rate_tuple:
            raise InvalidParameterError("constraint must bound at least one rate")
        for r in rate_tuple:
            if r not in ("Ra", "Rb"):
                raise InvalidParameterError(f"unknown rate name {r!r}")
        if len(set(rate_tuple)) != len(rate_tuple):
            raise InvalidParameterError(f"duplicate rates in {rate_tuple!r}")

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``Ra + Rb <= Δ1·I[ab-r]``."""
        return f"{' + '.join(self.rates)} <= {self.form.describe()}"


@dataclass(frozen=True)
class BoundSpec:
    """A full theorem bound: protocol, inner/outer, and its constraints.

    Instances are produced by :mod:`repro.core.bounds` (one builder per
    theorem) and consumed by
    :meth:`repro.core.gaussian.GaussianChannel.evaluate`.
    """

    protocol: Protocol
    kind: BoundKind
    n_phases: int
    constraints: tuple
    label: str

    def __init__(
        self,
        protocol: Protocol,
        kind: BoundKind,
        n_phases: int,
        constraints,
        label: str,
    ) -> None:
        constraint_tuple = tuple(constraints)
        object.__setattr__(self, "protocol", protocol)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "n_phases", int(n_phases))
        object.__setattr__(self, "constraints", constraint_tuple)
        object.__setattr__(self, "label", label)
        if self.n_phases < 1:
            raise InvalidParameterError(f"n_phases must be >= 1, got {n_phases}")
        if not constraint_tuple:
            raise InvalidParameterError("a bound needs at least one constraint")
        for c in constraint_tuple:
            if c.form.max_phase() >= self.n_phases:
                raise InvalidParameterError(
                    f"constraint {c.describe()!r} references a phase beyond "
                    f"{self.n_phases}"
                )

    def describe(self) -> str:
        """Multi-line rendering of the whole bound."""
        lines = [f"{self.label} ({self.kind.value}, {self.n_phases} phases):"]
        lines.extend("  " + c.describe() for c in self.constraints)
        return "\n".join(lines)
