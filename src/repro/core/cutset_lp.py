"""LP optimization directly over Lemma-1 engine constraints.

The cut-set engine (:func:`repro.network.cutset.cutset_outer_bound`)
produces :class:`~repro.network.cutset.CutConstraint` objects for *any*
protocol schedule and MI oracle — Gaussian, binary, or user-supplied. This
module closes the loop: it assembles those constraints into the same
``(Ra, Rb, Δ)`` linear programs used for the theorem bounds, so outer
bounds generated mechanically can be optimized and traced exactly like the
hand-coded ones.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..network.cutset import CutConstraint
from ..optimize.linprog import DEFAULT_BACKEND, LinearProgram, solve_lp
from .optimize import RatePoint
from .protocols import PhaseDurations

__all__ = ["cutset_support_point", "cutset_max_sum_rate", "cutset_boundary"]

_RATE_INDEX = {"Ra": 0, "Rb": 1}


def _assemble(constraints, n_phases: int):
    n_vars = 2 + n_phases
    rows = []
    for constraint in constraints:
        if len(constraint.phase_mi) != n_phases:
            raise InvalidParameterError(
                f"constraint for cut {sorted(constraint.cut)} has "
                f"{len(constraint.phase_mi)} phases, expected {n_phases}"
            )
        row = np.zeros(n_vars)
        for name in constraint.message_names:
            if name not in _RATE_INDEX:
                raise InvalidParameterError(
                    f"unsupported rate name {name!r}; the LP assembly handles "
                    "the two-terminal rates 'Ra' and 'Rb'"
                )
            row[_RATE_INDEX[name]] = 1.0
        for phase, mi in enumerate(constraint.phase_mi):
            row[2 + phase] = -float(mi)
        rows.append(row)
    a_ub = np.vstack(rows)
    b_ub = np.zeros(len(rows))
    a_eq = np.zeros((1, n_vars))
    a_eq[0, 2:] = 1.0
    b_eq = np.array([1.0])
    return a_ub, b_ub, a_eq, b_eq


def cutset_support_point(
    constraints: list[CutConstraint],
    n_phases: int,
    mu_a: float,
    mu_b: float,
    *,
    backend: str = DEFAULT_BACKEND,
) -> RatePoint:
    """Maximize ``μ_a·Ra + μ_b·Rb`` over engine constraints and durations."""
    if not constraints:
        raise InvalidParameterError("at least one cut constraint required")
    if mu_a < 0 or mu_b < 0 or (mu_a == 0 and mu_b == 0):
        raise InvalidParameterError(
            f"weights must be non-negative and not both zero, got ({mu_a}, {mu_b})"
        )
    a_ub, b_ub, a_eq, b_eq = _assemble(constraints, n_phases)
    c = np.zeros(2 + n_phases)
    c[0], c[1] = -mu_a, -mu_b
    result = solve_lp(LinearProgram(c, a_ub, b_ub, a_eq, b_eq), backend=backend)
    durations = np.clip(result.x[2:], 0.0, None)
    total = durations.sum()
    durations = (
        durations / total if total > 0 else np.full(n_phases, 1.0 / n_phases)
    )
    return RatePoint(
        ra=float(max(result.x[0], 0.0)),
        rb=float(max(result.x[1], 0.0)),
        durations=PhaseDurations(durations),
    )


def cutset_max_sum_rate(
    constraints: list[CutConstraint], n_phases: int, *, backend: str = DEFAULT_BACKEND
) -> RatePoint:
    """The sum-rate-optimal point of a mechanically generated outer bound."""
    return cutset_support_point(constraints, n_phases, 1.0, 1.0, backend=backend)


def cutset_boundary(
    constraints: list[CutConstraint],
    n_phases: int,
    *,
    n_points: int = 17,
    backend: str = DEFAULT_BACKEND,
) -> np.ndarray:
    """Trace the outer-bound boundary from engine constraints."""
    if n_points < 2:
        raise InvalidParameterError(f"need at least 2 directions, got {n_points}")
    angles = np.linspace(0.0, np.pi / 2.0, n_points)
    points = []
    for theta in angles:
        point = cutset_support_point(
            constraints,
            n_phases,
            max(float(np.cos(theta)), 0.0),
            max(float(np.sin(theta)), 0.0),
            backend=backend,
        )
        points.append((point.ra, point.rb))
    ordered = sorted(points, key=lambda p: (p[0], -p[1]))
    deduped: list[tuple] = []
    for ra, rb in ordered:
        if (
            deduped
            and abs(ra - deduped[-1][0]) < 1e-7
            and abs(rb - deduped[-1][1]) < 1e-7
        ):
            continue
        deduped.append((float(ra), float(rb)))
    return np.asarray(deduped, dtype=float)
