"""Constraint builders for the paper's Theorems 2–6 (plus direct transmission).

Each function returns a channel-agnostic :class:`~repro.core.terms.BoundSpec`
transcribing one theorem. The numeric step (assigning a value to each
:class:`~repro.core.terms.MiKey`) happens in
:mod:`repro.core.gaussian`; the LP step (optimizing phase durations) in
:mod:`repro.core.optimize` / :mod:`repro.core.regions`.

Phase indexing is 0-based, matching
:func:`repro.core.protocols.protocol_phases`:

* DT:    0 = ``a``,   1 = ``b``
* MABC:  0 = ``a+b``, 1 = ``r``
* TDBC:  0 = ``a``,   1 = ``b``, 2 = ``r``
* HBC:   0 = ``a``,   1 = ``b``, 2 = ``a+b``, 3 = ``r``

The unit tests cross-check every *outer* bound here against the output of
the mechanical Lemma-1 engine (:func:`repro.network.cutset.cutset_outer_bound`)
on random channels; the two derivations agree term by term.
"""

from __future__ import annotations

from ..exceptions import InvalidParameterError
from .protocols import Protocol
from .terms import BoundConstraint, BoundKind, BoundSpec, LinearForm, MiKey

__all__ = [
    "dt_capacity",
    "naive4_inner",
    "naive4_outer",
    "mabc_inner",
    "mabc_outer",
    "tdbc_inner",
    "tdbc_outer",
    "hbc_inner",
    "hbc_outer",
    "bound_for",
    "ALL_BOUNDS",
]


def _form(*terms) -> LinearForm:
    return LinearForm(terms)


def dt_capacity() -> BoundSpec:
    """Direct transmission capacity region (Section II-C, Fig. 2 "DT").

    ``Ra <= Δ1·C_ab`` and ``Rb <= Δ2·C_ab``; exact because each phase is a
    point-to-point memoryless channel.
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AB))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_AB))),
    )
    return BoundSpec(
        Protocol.DT, BoundKind.INNER, 2, constraints, "Direct transmission (exact)"
    )


def naive4_inner() -> BoundSpec:
    """Fig. 1(ii) baseline: four-phase store-and-forward relaying.

    The relay decodes ``a``'s message in phase 1 and re-transmits it to
    ``b`` in phase 2, then the mirror image for ``b``. No network coding,
    and the overheard direct-link receptions are deliberately ignored —
    this is the strawman whose inefficiency motivates the coded protocols,
    so its region is the plain cascade of the four point-to-point phases.
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AR))),
        BoundConstraint(("Ra",), _form((1, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((2, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((3, MiKey.LINK_AR))),
    )
    return BoundSpec(
        Protocol.NAIVE4,
        BoundKind.INNER,
        4,
        constraints,
        "Naive four-phase relaying (Fig. 1(ii) baseline)",
    )


def naive4_outer() -> BoundSpec:
    """Cut-set outer bound for the naive four-phase schedule.

    Unlike the inner bound, the converse *must* credit the overheard
    receptions (node ``b`` hears phase 1, node ``a`` hears phase 3) and
    the ``S = {a, b}`` sum-rate cut; the terms below are exactly what the
    Lemma-1 engine generates for this schedule (cross-checked in tests).
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.CUT_A_RB))),
        BoundConstraint(
            ("Ra",), _form((0, MiKey.LINK_AB), (1, MiKey.LINK_BR), (3, MiKey.LINK_BR))
        ),
        BoundConstraint(("Rb",), _form((2, MiKey.CUT_B_RA))),
        BoundConstraint(
            ("Rb",), _form((2, MiKey.LINK_AB), (1, MiKey.LINK_AR), (3, MiKey.LINK_AR))
        ),
        BoundConstraint(("Ra", "Rb"), _form((0, MiKey.LINK_AR), (2, MiKey.LINK_BR))),
    )
    return BoundSpec(
        Protocol.NAIVE4,
        BoundKind.OUTER,
        4,
        constraints,
        "Naive four-phase cut-set outer bound",
    )


def mabc_inner() -> BoundSpec:
    """Theorem 2 — MABC capacity region (achievability direction).

    Phase 1 is a MAC into the relay (individual + sum constraints); phase 2
    a network-coded broadcast where each terminal's side information (its
    own message) reduces the relay codebook to the partner's cardinality,
    giving the cross constraints ``Ra <= Δ2·I(X_r; Y_b)`` and
    ``Rb <= Δ2·I(X_r; Y_a)``.
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AR))),
        BoundConstraint(("Ra",), _form((1, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((0, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_AR))),
        BoundConstraint(("Ra", "Rb"), _form((0, MiKey.MAC_SUM))),
    )
    return BoundSpec(
        Protocol.MABC,
        BoundKind.INNER,
        2,
        constraints,
        "MABC achievable region (Theorem 2)",
    )


def mabc_outer() -> BoundSpec:
    """Theorem 2 — MABC converse. Identical to the inner bound (tight)."""
    inner = mabc_inner()
    return BoundSpec(
        Protocol.MABC,
        BoundKind.OUTER,
        inner.n_phases,
        inner.constraints,
        "MABC outer bound (Theorem 2, tight)",
    )


def tdbc_inner() -> BoundSpec:
    """Theorem 3 — TDBC achievable region.

    The relay must decode each message in its dedicated phase
    (``Ra <= Δ1·I(X_a; Y_r)``); each terminal decodes from its overheard
    side information **plus** the relay broadcast
    (``Ra <= Δ1·I(X_a; Y_b) + Δ3·I(X_r; Y_b)``), via random binning.
    Notably there is no sum-rate constraint in the achievable region.
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AR))),
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AB), (2, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_AB), (2, MiKey.LINK_AR))),
    )
    return BoundSpec(
        Protocol.TDBC,
        BoundKind.INNER,
        3,
        constraints,
        "TDBC achievable region (Theorem 3)",
    )


def tdbc_outer() -> BoundSpec:
    """Theorem 4 — TDBC outer bound (cut-set, DF relay).

    The relay-decoding terms widen to full cuts
    (``I(X_a; Y_r, Y_b)``, a SIMO term), and the ``S = {a, b}`` cut adds the
    sum-rate constraint ``Ra + Rb <= Δ1·I(X_a; Y_r) + Δ2·I(X_b; Y_r)``.
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.CUT_A_RB))),
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AB), (2, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.CUT_B_RA))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_AB), (2, MiKey.LINK_AR))),
        BoundConstraint(("Ra", "Rb"), _form((0, MiKey.LINK_AR), (1, MiKey.LINK_BR))),
    )
    return BoundSpec(
        Protocol.TDBC, BoundKind.OUTER, 3, constraints, "TDBC outer bound (Theorem 4)"
    )


def hbc_inner() -> BoundSpec:
    """Theorem 5 — HBC achievable region.

    The relay accumulates information about each message across the
    dedicated phase *and* the MAC phase; terminals decode from first/second
    phase side information plus the relay broadcast. The MAC phase
    contributes a sum constraint through the relay.
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AR), (2, MiKey.LINK_AR))),
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AB), (3, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_BR), (2, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_AB), (3, MiKey.LINK_AR))),
        BoundConstraint(
            ("Ra", "Rb"),
            _form((0, MiKey.LINK_AR), (1, MiKey.LINK_BR), (2, MiKey.MAC_SUM)),
        ),
    )
    return BoundSpec(
        Protocol.HBC,
        BoundKind.INNER,
        4,
        constraints,
        "HBC achievable region (Theorem 5)",
    )


def hbc_outer() -> BoundSpec:
    """Theorem 6 — HBC outer bound, **independent-input evaluation**.

    The theorem allows a correlated phase-3 input ``p^(3)(x_a, x_b | q)``;
    for the Gaussian channel the optimal joint law is unknown and the paper
    declines to evaluate the bound numerically. This spec transcribes the
    constraint *structure* exactly; evaluating it with the independent-input
    Gaussian values of :class:`~repro.core.gaussian.GaussianChannel` yields
    a proxy that is exact for independent inputs but not a proven outer
    bound for the channel. Use accordingly (the experiment harness never
    plots it as a paper artifact, matching the paper).
    """
    constraints = (
        BoundConstraint(("Ra",), _form((0, MiKey.CUT_A_RB), (2, MiKey.LINK_AR))),
        BoundConstraint(("Ra",), _form((0, MiKey.LINK_AB), (3, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.CUT_B_RA), (2, MiKey.LINK_BR))),
        BoundConstraint(("Rb",), _form((1, MiKey.LINK_AB), (3, MiKey.LINK_AR))),
        BoundConstraint(
            ("Ra", "Rb"),
            _form((0, MiKey.LINK_AR), (1, MiKey.LINK_BR), (2, MiKey.MAC_SUM)),
        ),
    )
    return BoundSpec(
        Protocol.HBC,
        BoundKind.OUTER,
        4,
        constraints,
        "HBC outer bound (Theorem 6, independent-input proxy)",
    )


#: Registry of all bound builders keyed by (protocol, kind).
ALL_BOUNDS = {
    (Protocol.DT, BoundKind.INNER): dt_capacity,
    (Protocol.DT, BoundKind.OUTER): dt_capacity,
    (Protocol.NAIVE4, BoundKind.INNER): naive4_inner,
    (Protocol.NAIVE4, BoundKind.OUTER): naive4_outer,
    (Protocol.MABC, BoundKind.INNER): mabc_inner,
    (Protocol.MABC, BoundKind.OUTER): mabc_outer,
    (Protocol.TDBC, BoundKind.INNER): tdbc_inner,
    (Protocol.TDBC, BoundKind.OUTER): tdbc_outer,
    (Protocol.HBC, BoundKind.INNER): hbc_inner,
    (Protocol.HBC, BoundKind.OUTER): hbc_outer,
}


def bound_for(protocol: Protocol, kind: BoundKind) -> BoundSpec:
    """Look up the bound spec for a protocol and direction."""
    try:
        builder = ALL_BOUNDS[(protocol, kind)]
    except KeyError:
        raise InvalidParameterError(
            f"no bound registered for {protocol!r}/{kind!r}"
        ) from None
    return builder()
