"""Rate-region geometry.

Two views of a protocol's rate region appear in the paper:

* the region at *fixed* phase durations — a pentagon-shaped polygon
  (:func:`fixed_duration_polygon`), and
* the region *unioned over all duration choices* — a convex set whose
  boundary Fig. 4 plots (:class:`RateRegion`); convexity follows from time
  sharing, so a weighted-sum LP sweep traces it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..information.mac import MacPentagon
from ..optimize.linprog import DEFAULT_BACKEND
from .gaussian import EvaluatedBound
from .optimize import RatePoint, feasible_rate_pair, max_sum_rate, support_point

__all__ = ["RateRegion", "fixed_duration_polygon", "polygon_area", "region_dominates"]


def fixed_duration_polygon(evaluated: EvaluatedBound, durations) -> list[tuple]:
    """Vertices of the rate region at fixed phase durations.

    The region is ``{Ra <= ca, Rb <= cb, Ra + Rb <= cs, Ra, Rb >= 0}``
    with the caps from :meth:`EvaluatedBound.rate_caps`; its vertices are
    those of a (possibly degenerate) pentagon, enumerated counter-clockwise
    starting from the origin.
    """
    caps = evaluated.rate_caps(tuple(durations))
    ca, cb = caps["Ra"], caps["Rb"]
    cs = min(caps["Ra+Rb"], ca + cb)
    pentagon = MacPentagon(rate1_max=ca, rate2_max=cb, sum_max=cs)
    return pentagon.vertices()


def polygon_area(vertices) -> float:
    """Shoelace area of a polygon given as an ordered vertex list."""
    pts = np.asarray(list(vertices), dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 3:
        return 0.0
    x, y = pts[:, 0], pts[:, 1]
    return float(0.5 * abs(np.dot(x, np.roll(y, -1)) - np.dot(np.roll(x, -1), y)))


@dataclass(frozen=True)
class RateRegion:
    """The convex rate region of a bound, unioned over phase durations.

    Every query is answered by linear programming over
    ``(Ra, Rb, Δ_1..Δ_L)``; no sampling or discretization of the duration
    simplex is involved, so results are exact up to LP tolerance.

    Attributes
    ----------
    evaluated:
        The numeric bound (channel already applied).
    backend:
        LP backend used for all queries.
    """

    evaluated: EvaluatedBound
    backend: str = DEFAULT_BACKEND

    @property
    def label(self) -> str:
        """Human-readable name inherited from the bound spec."""
        return self.evaluated.spec.label

    def support(self, mu_a: float, mu_b: float) -> RatePoint:
        """Boundary point maximizing ``μ_a·Ra + μ_b·Rb`` (lexicographic)."""
        return support_point(self.evaluated, mu_a, mu_b, backend=self.backend)

    def max_ra(self) -> RatePoint:
        """The corner with maximal ``Ra`` (ties broken toward large ``Rb``)."""
        return self.support(1.0, 0.0)

    def max_rb(self) -> RatePoint:
        """The corner with maximal ``Rb`` (ties broken toward large ``Ra``)."""
        return self.support(0.0, 1.0)

    def max_sum_rate(self) -> RatePoint:
        """The sum-rate-optimal operating point."""
        return max_sum_rate(self.evaluated, backend=self.backend)

    def contains(self, ra: float, rb: float, *, tol: float = 1e-9) -> bool:
        """Membership test via a feasibility LP in the durations."""
        return feasible_rate_pair(self.evaluated, ra, rb, backend=self.backend, tol=tol)

    def boundary(self, n_points: int = 33) -> np.ndarray:
        """Trace the Pareto frontier as an ``(n, 2)`` array of rate pairs.

        Supporting points are computed for ``n_points`` weight directions
        spread over the first quadrant (including both axes), deduplicated
        and ordered by increasing ``Ra``. The first point is
        ``(0, Rb_max)``'s Pareto corner and the last is ``Ra_max``'s; for
        plotting a closed region, append ``(Ra_max, 0)`` and ``(0, 0)``.
        """
        if n_points < 2:
            raise InvalidParameterError(f"need at least 2 directions, got {n_points}")
        angles = np.linspace(0.0, np.pi / 2.0, n_points)
        points = []
        for theta in angles:
            mu_a = float(np.cos(theta))
            mu_b = float(np.sin(theta))
            # Clamp tiny negatives from cos(pi/2).
            point = self.support(max(mu_a, 0.0), max(mu_b, 0.0))
            points.append((point.ra, point.rb))
        ordered = sorted(points, key=lambda p: (p[0], -p[1]))
        deduped: list[tuple] = []
        for ra, rb in ordered:
            if (
                deduped
                and abs(ra - deduped[-1][0]) < 1e-7
                and abs(rb - deduped[-1][1]) < 1e-7
            ):
                continue
            deduped.append((float(ra), float(rb)))
        return np.asarray(deduped, dtype=float)

    def closed_polygon(self, n_points: int = 33) -> np.ndarray:
        """The region as a closed polygon including the axes."""
        frontier = self.boundary(n_points)
        ra_max = frontier[-1, 0]
        rb_max = frontier[0, 1]
        pts = [(0.0, 0.0), (0.0, rb_max)]
        pts.extend((float(ra), float(rb)) for ra, rb in frontier)
        pts.append((ra_max, 0.0))
        # Deduplicate consecutive repeats.
        dedup = [pts[0]]
        for p in pts[1:]:
            if abs(p[0] - dedup[-1][0]) > 1e-12 or abs(p[1] - dedup[-1][1]) > 1e-12:
                dedup.append(p)
        return np.asarray(dedup, dtype=float)

    def area(self, n_points: int = 65) -> float:
        """Area of the region (shoelace over the closed polygon)."""
        return polygon_area(self.closed_polygon(n_points))


def region_dominates(
    outer: RateRegion, inner: RateRegion, *, n_points: int = 17, tol: float = 1e-6
) -> bool:
    """Whether ``outer`` contains every boundary point of ``inner``.

    Used by the tests to verify inner ⊆ outer (Theorems 3 vs 4) and the
    protocol nesting MABC, TDBC ⊆ HBC. ``tol`` absorbs LP round-off by
    shrinking the tested points slightly toward the origin.
    """
    for ra, rb in inner.boundary(n_points):
        shrink = 1.0 - tol
        if not outer.contains(ra * shrink, rb * shrink, tol=tol):
            return False
    return True
