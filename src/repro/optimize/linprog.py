"""Unified linear-programming facade.

Every LP in this library (phase-duration optimization, weighted-sum-rate
boundary tracing) goes through :func:`solve_lp`, which dispatches to either
the built-in simplex (:mod:`repro.optimize.simplex`) or scipy's HiGHS
backend. The two backends are cross-validated against each other in the
property tests; the facade exists so the rest of the code never needs to
know which one it is using.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    InfeasibleProblemError,
    InvalidParameterError,
    UnboundedProblemError,
)
from .simplex import simplex_solve

__all__ = ["LinearProgram", "LpResult", "solve_lp", "DEFAULT_BACKEND"]

DEFAULT_BACKEND = "scipy"
_BACKENDS = ("scipy", "simplex")


@dataclass(frozen=True)
class LinearProgram:
    """``minimize c @ x  s.t.  a_ub x <= b_ub, a_eq x == b_eq, x >= 0``.

    Variables are implicitly non-negative, which matches every use in this
    library (rates and phase durations are non-negative).
    """

    c: np.ndarray
    a_ub: np.ndarray | None = None
    b_ub: np.ndarray | None = None
    a_eq: np.ndarray | None = None
    b_eq: np.ndarray | None = None

    def __post_init__(self) -> None:
        c = np.atleast_1d(np.asarray(self.c, dtype=float))
        object.__setattr__(self, "c", c)
        n = c.shape[0]
        for name in ("a_ub", "a_eq"):
            matrix = getattr(self, name)
            vector = getattr(self, "b" + name[1:])
            if (matrix is None) != (vector is None):
                raise InvalidParameterError(
                    f"{name} and its rhs must be given together"
                )
            if matrix is not None:
                matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
                vector = np.atleast_1d(np.asarray(vector, dtype=float))
                if matrix.shape != (vector.shape[0], n):
                    raise InvalidParameterError(
                        f"{name} shape {matrix.shape} inconsistent with "
                        f"n={n} and rhs length {vector.shape[0]}"
                    )
                object.__setattr__(self, name, matrix)
                object.__setattr__(self, "b" + name[1:], vector)

    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return self.c.shape[0]


@dataclass(frozen=True)
class LpResult:
    """Solution of a :class:`LinearProgram`.

    Attributes
    ----------
    x:
        Optimal point.
    objective:
        Optimal value of ``c @ x`` (the *minimization* objective).
    backend:
        Which solver produced the result.
    """

    x: np.ndarray
    objective: float
    backend: str


def solve_lp(problem: LinearProgram, *, backend: str = DEFAULT_BACKEND) -> LpResult:
    """Solve an LP with the selected backend.

    Raises
    ------
    InfeasibleProblemError / UnboundedProblemError
        Mapped uniformly from both backends.
    """
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; available: {_BACKENDS}"
        )
    if backend == "simplex":
        solution = simplex_solve(
            problem.c,
            a_ub=problem.a_ub,
            b_ub=problem.b_ub,
            a_eq=problem.a_eq,
            b_eq=problem.b_eq,
        )
        return LpResult(x=solution.x, objective=solution.objective, backend=backend)

    from scipy.optimize import linprog as scipy_linprog

    result = scipy_linprog(
        problem.c,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        bounds=[(0, None)] * problem.n_variables,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleProblemError(f"scipy reports infeasible LP: {result.message}")
    if result.status == 3:
        raise UnboundedProblemError(f"scipy reports unbounded LP: {result.message}")
    if not result.success:  # pragma: no cover - other statuses are rare
        raise InvalidParameterError(f"scipy LP failed: {result.message}")
    return LpResult(
        x=np.asarray(result.x),
        objective=float(result.fun),
        backend=backend,
    )
