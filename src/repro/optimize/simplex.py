"""A dense two-phase simplex solver, written from scratch.

The paper optimizes phase durations with linear programming ("Linear
programming may then be used to find optimal time durations",
Section IV). scipy provides an industrial LP solver, but a self-contained
implementation keeps the library dependency-light at its core and gives the
test suite an independent oracle: every LP solved in this package is
cross-checked between this solver and ``scipy.optimize.linprog`` by the
property tests.

Problem form (matching :class:`repro.optimize.linprog.LinearProgram`):

    minimize    c @ x
    subject to  a_ub @ x <= b_ub
                a_eq @ x == b_eq
                x >= 0

Implementation notes
--------------------
* Tableau-based, two-phase (artificial variables for a starting basis).
* Bland's anti-cycling pivot rule — slower than Dantzig but guarantees
  termination; the LPs here are tiny (a handful of variables), so
  robustness wins over speed.
* All arithmetic is double precision with explicit tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    InfeasibleProblemError,
    InvalidParameterError,
    UnboundedProblemError,
)

__all__ = ["SimplexSolution", "simplex_solve"]

_TOL = 1e-9


@dataclass(frozen=True)
class SimplexSolution:
    """Optimal point and value returned by :func:`simplex_solve`."""

    x: np.ndarray
    objective: float
    iterations: int


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau in place on (row, col) and update the basis."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    n_cols: int,
    max_iter: int,
) -> int:
    """Run simplex iterations on a tableau whose last row is the objective.

    The objective row stores reduced costs; we minimize, so we pivot while a
    reduced cost is negative. Returns the iteration count.
    """
    iterations = 0
    m = tableau.shape[0] - 1  # constraint rows
    while True:
        reduced = tableau[-1, :n_cols]
        # Bland's rule: smallest index with a negative reduced cost.
        entering = -1
        for j in range(n_cols):
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return iterations
        # Ratio test, Bland tie-break on smallest basis variable index.
        best_ratio = np.inf
        leaving = -1
        for i in range(m):
            coeff = tableau[i, entering]
            if coeff > _TOL:
                ratio = tableau[i, -1] / coeff
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            raise UnboundedProblemError(
                "objective is unbounded below along a feasible ray"
            )
        _pivot(tableau, basis, leaving, entering)
        iterations += 1
        if iterations > max_iter:
            raise InfeasibleProblemError(
                f"simplex exceeded {max_iter} iterations (possible numerical cycling)"
            )


def simplex_solve(
    c: np.ndarray,
    a_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    a_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    *,
    max_iter: int = 10_000,
) -> SimplexSolution:
    """Minimize ``c @ x`` subject to ``a_ub x <= b_ub``, ``a_eq x == b_eq``, ``x >= 0``.

    Raises
    ------
    InfeasibleProblemError
        If no feasible point exists.
    UnboundedProblemError
        If the objective is unbounded below on the feasible set.
    """
    c = np.atleast_1d(np.asarray(c, dtype=float))
    n = c.shape[0]
    if n == 0:
        raise InvalidParameterError("objective must have at least one variable")

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    n_slack = 0
    slack_rows: list[int] = []

    if a_ub is not None:
        a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
        b_ub = np.atleast_1d(np.asarray(b_ub, dtype=float))
        if a_ub.shape != (b_ub.shape[0], n):
            raise InvalidParameterError(
                f"a_ub shape {a_ub.shape} inconsistent with n={n}, b_ub={b_ub.shape}"
            )
        for i in range(a_ub.shape[0]):
            rows.append(a_ub[i])
            rhs.append(float(b_ub[i]))
            slack_rows.append(len(rows) - 1)
            n_slack += 1
    if a_eq is not None:
        a_eq = np.atleast_2d(np.asarray(a_eq, dtype=float))
        b_eq = np.atleast_1d(np.asarray(b_eq, dtype=float))
        if a_eq.shape != (b_eq.shape[0], n):
            raise InvalidParameterError(
                f"a_eq shape {a_eq.shape} inconsistent with n={n}, b_eq={b_eq.shape}"
            )
        for i in range(a_eq.shape[0]):
            rows.append(a_eq[i])
            rhs.append(float(b_eq[i]))

    m = len(rows)
    if m == 0:
        # Unconstrained except x >= 0: optimum is x = 0 unless some cost is
        # negative, in which case the problem is unbounded.
        if np.any(c < -_TOL):
            raise UnboundedProblemError(
                "no constraints and a negative cost coefficient"
            )
        return SimplexSolution(x=np.zeros(n), objective=0.0, iterations=0)

    # Assemble [A | slack | artificial | rhs]; one slack per <= row, one
    # artificial per row (simpler and uniformly correct; phase 1 drives all
    # artificials out).
    slack_of_row = {row: idx for idx, row in enumerate(slack_rows)}
    total_cols = n + n_slack + m
    tableau = np.zeros((m + 1, total_cols + 1))
    basis = np.zeros(m, dtype=int)
    for i in range(m):
        coeffs = rows[i]
        b_val = rhs[i]
        sign = 1.0
        if b_val < 0:
            sign = -1.0
            b_val = -b_val
        tableau[i, :n] = sign * coeffs
        if i in slack_of_row:
            tableau[i, n + slack_of_row[i]] = sign
        tableau[i, n + n_slack + i] = 1.0
        tableau[i, -1] = b_val
        basis[i] = n + n_slack + i

    # Phase 1: minimize the sum of artificials.
    tableau[-1, n + n_slack : n + n_slack + m] = 1.0
    for i in range(m):
        tableau[-1] -= tableau[i]
    it1 = _run_simplex(tableau, basis, total_cols, max_iter)
    if tableau[-1, -1] < -_TOL * max(1.0, np.abs(rhs).max() if rhs else 1.0):
        raise InfeasibleProblemError(
            f"phase-1 objective {-tableau[-1, -1]:.3e} > 0: constraints are infeasible"
        )

    # Drive any artificial variables still in the basis out (degenerate rows).
    for i in range(m):
        if basis[i] >= n + n_slack:
            pivot_col = -1
            for j in range(n + n_slack):
                if abs(tableau[i, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, i, pivot_col)
            # else: the row is all zeros (redundant constraint) — harmless.

    # Phase 2: restore the true objective, zero out artificial columns.
    n_usable = n + n_slack
    tableau[:, n_usable : n_usable + m] = 0.0  # forbid artificials from re-entering
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    for i in range(m):
        var = basis[i]
        if var < n_usable and abs(tableau[-1, var]) > 0:
            tableau[-1] -= tableau[-1, var] * tableau[i]
    it2 = _run_simplex(tableau, basis, n_usable, max_iter)

    x = np.zeros(total_cols)
    for i in range(m):
        x[basis[i]] = tableau[i, -1]
    solution = x[:n]
    return SimplexSolution(
        x=solution,
        objective=float(c @ solution),
        iterations=it1 + it2,
    )
