"""Scalar search utilities (golden-section and refining grid search).

Used for one-dimensional trade-off studies (e.g. finding the relay position
that maximizes a protocol's sum rate, or the crossover point where TDBC
overtakes MABC) where the objective is cheap but not linear in the search
variable.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from ..exceptions import InvalidParameterError

__all__ = [
    "ScalarSearchResult",
    "golden_section_maximize",
    "grid_maximize",
    "find_crossover",
]

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class ScalarSearchResult:
    """Argmax and value found by a scalar search."""

    x: float
    value: float
    evaluations: int


def golden_section_maximize(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> ScalarSearchResult:
    """Maximize a unimodal function on ``[lo, hi]`` by golden-section search.

    For non-unimodal objectives the result is a local maximum; use
    :func:`grid_maximize` first to bracket the global one.
    """
    if not lo < hi:
        raise InvalidParameterError(f"need lo < hi, got [{lo}, {hi}]")
    if tol <= 0:
        raise InvalidParameterError(f"tol must be positive, got {tol}")
    a, b = float(lo), float(hi)
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = fn(c), fn(d)
    evaluations = 2
    for _ in range(max_iter):
        if b - a < tol:
            break
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = fn(d)
        evaluations += 1
    x = c if fc > fd else d
    return ScalarSearchResult(x=x, value=max(fc, fd), evaluations=evaluations)


def grid_maximize(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    n_points: int = 101,
    refinements: int = 3,
) -> ScalarSearchResult:
    """Maximize on ``[lo, hi]`` by iteratively refined uniform grids.

    Each refinement zooms into the two grid cells surrounding the incumbent
    best point, so after ``r`` rounds the bracket width is
    ``(hi - lo) * (2 / (n_points - 1))^r``.
    """
    if not lo < hi:
        raise InvalidParameterError(f"need lo < hi, got [{lo}, {hi}]")
    if n_points < 3:
        raise InvalidParameterError(f"need at least 3 grid points, got {n_points}")
    if refinements < 0:
        raise InvalidParameterError(f"refinements must be >= 0, got {refinements}")
    a, b = float(lo), float(hi)
    best_x, best_v = a, -math.inf
    evaluations = 0
    for _ in range(refinements + 1):
        step = (b - a) / (n_points - 1)
        for i in range(n_points):
            x = a + i * step
            v = fn(x)
            evaluations += 1
            if v > best_v:
                best_x, best_v = x, v
        a = max(lo, best_x - step)
        b = min(hi, best_x + step)
        if b <= a:
            break
    return ScalarSearchResult(x=best_x, value=best_v, evaluations=evaluations)


def find_crossover(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Find a sign change of ``fn`` on ``[lo, hi]`` by bisection.

    Used to locate protocol crossover points, e.g. the SNR where
    ``sum_rate_TDBC - sum_rate_MABC`` changes sign. Requires
    ``fn(lo)`` and ``fn(hi)`` to have opposite signs.
    """
    f_lo, f_hi = fn(lo), fn(hi)
    if f_lo == 0.0:
        return float(lo)
    if f_hi == 0.0:
        return float(hi)
    if (f_lo > 0) == (f_hi > 0):
        raise InvalidParameterError(
            f"no sign change on [{lo}, {hi}]: f(lo)={f_lo}, f(hi)={f_hi}"
        )
    a, b = float(lo), float(hi)
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        f_mid = fn(mid)
        if f_mid == 0.0 or (b - a) < tol:
            return mid
        if (f_mid > 0) == (f_lo > 0):
            a = mid
        else:
            b = mid
    return 0.5 * (a + b)
