"""Optimization substrate: LP solvers and scalar search."""

from .linprog import DEFAULT_BACKEND, LinearProgram, LpResult, solve_lp
from .search import (
    ScalarSearchResult,
    find_crossover,
    golden_section_maximize,
    grid_maximize,
)
from .simplex import SimplexSolution, simplex_solve

__all__ = [
    "DEFAULT_BACKEND",
    "LinearProgram",
    "LpResult",
    "solve_lp",
    "ScalarSearchResult",
    "find_crossover",
    "golden_section_maximize",
    "grid_maximize",
    "SimplexSolution",
    "simplex_solve",
]
