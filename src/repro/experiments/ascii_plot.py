"""Terminal line/scatter plots (matplotlib is not available offline).

Renders one or more ``(x, y)`` series onto a character grid with a marker
per series, axis ranges and a legend — enough to eyeball the shapes the
paper's figures show (crossovers, dominance, region nesting) directly in a
terminal or CI log.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict,
    *,
    width: int = 72,
    height: int = 22,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot named series of points as ASCII art.

    Parameters
    ----------
    series:
        Mapping name -> array-like of shape ``(n, 2)`` (columns: x, y).
    width, height:
        Plot area size in characters (excluding axes).
    title, x_label, y_label:
        Annotations.
    """
    if not series:
        raise InvalidParameterError("at least one series required")
    if width < 8 or height < 4:
        raise InvalidParameterError(f"plot area too small: {width}x{height}")
    arrays = {}
    for name, pts in series.items():
        arr = np.asarray(pts, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] == 0:
            raise InvalidParameterError(
                f"series {name!r} must be a non-empty (n, 2) array, got {arr.shape}"
            )
        arrays[name] = arr
    all_pts = np.vstack(list(arrays.values()))
    x_min, x_max = float(all_pts[:, 0].min()), float(all_pts[:, 0].max())
    y_min, y_max = float(all_pts[:, 1].min()), float(all_pts[:, 1].max())
    x_min = min(x_min, 0.0)
    y_min = min(y_min, 0.0)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, arr) in enumerate(arrays.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in arr:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (max {y_max:.3f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: [{x_min:.3f}, {x_max:.3f}]")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(arrays)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
