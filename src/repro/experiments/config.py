"""Experiment configurations: the paper's evaluation parameters.

Single source of truth for every figure's parameters, including the two
OCR-reading decisions documented in DESIGN.md:

* **Fig. 3**: ``P = 15 dB``, ``G_ab = 0 dB``; the swept variable is
  reconstructed as (i) relay position on the ``a``–``b`` line under a
  log-distance path-loss law and (ii) a symmetric relay-gain sweep.
* **Fig. 4**: ``P = 0 dB`` (top) / ``P = 10 dB`` (bottom) with the gain
  triple read as ``G_ar = 0 dB, G_br = 5 dB, G_ab = -7 dB`` — the only
  assignment of the OCR'd values ``{0, 5, -7}`` consistent with the
  paper's standing assumption ``G_ab <= G_ar <= G_br``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.gains import LinkGains
from ..core.gaussian import GaussianChannel
from ..information.functions import db_to_linear

__all__ = ["Fig3Config", "Fig4Config", "FIG3_DEFAULT", "FIG4_P0", "FIG4_P10"]


@dataclass(frozen=True)
class Fig3Config:
    """Parameters of the Fig. 3 sum-rate sweeps."""

    power_db: float = 15.0
    gab_db: float = 0.0
    #: Relay positions (fraction of the a--b distance) for the placement sweep.
    relay_fractions: tuple = tuple(np.round(np.linspace(0.1, 0.9, 17), 4))
    #: Path-loss exponent of the placement sweep.
    path_loss_exponent: float = 3.0
    #: Symmetric relay gains (dB) for the secondary sweep (G_ar = G_br = G).
    symmetric_gains_db: tuple = tuple(range(0, 21, 2))

    @property
    def power(self) -> float:
        """Transmit power in linear units."""
        return db_to_linear(self.power_db)


@dataclass(frozen=True)
class Fig4Config:
    """Parameters of one Fig. 4 panel (rate regions at fixed gains)."""

    power_db: float
    gab_db: float = -7.0
    gar_db: float = 0.0
    gbr_db: float = 5.0
    #: Number of weight directions for boundary tracing.
    boundary_points: int = 33

    def channel(self) -> GaussianChannel:
        """The configured Gaussian channel."""
        return GaussianChannel(
            gains=LinkGains.from_db(self.gab_db, self.gar_db, self.gbr_db),
            power=db_to_linear(self.power_db),
        )


#: The default Fig. 3 configuration (paper parameters).
FIG3_DEFAULT = Fig3Config()

#: Fig. 4 top panel: low SNR.
FIG4_P0 = Fig4Config(power_db=0.0)

#: Fig. 4 bottom panel: high SNR.
FIG4_P10 = Fig4Config(power_db=10.0)
