"""Experiment registry: one entry per paper artifact (and ablations).

Each runner returns an :class:`ExperimentReport` — printable tables plus
the series needed for plotting — so the CLI, the benchmarks and the tests
all consume the same code path. Grid-style experiments (Fig. 3, the
fading ensemble) evaluate their scenarios through the :mod:`repro.api`
facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..campaign.spec import CampaignSpec, FadingSpec
from ..channels.gains import LinkGains
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .ascii_plot import ascii_plot
from .config import FIG3_DEFAULT, FIG4_P0, FIG4_P10, Fig4Config
from .fig3 import Fig3Result, fig3_result, fig3_shape_checks
from .fig4 import Fig4Result, fig4_shape_checks, run_fig4
from .tables import render_table, write_csv

__all__ = [
    "ExperimentReport",
    "run_experiment",
    "EXPERIMENT_IDS",
    "fig3_report",
    "fig4_report",
    "fading_report",
    "DEFAULT_FADING_SPEC",
]


@dataclass(frozen=True)
class ExperimentReport:
    """A fully rendered experiment outcome.

    Attributes
    ----------
    experiment_id:
        Registry key (``fig3``, ``fig4a``, ``fig4b``).
    description:
        What paper artifact this regenerates.
    tables:
        List of ``(title, headers, rows)`` triples.
    plots:
        List of pre-rendered ASCII plots.
    checks:
        Shape-check name -> bool (the paper's qualitative claims).
    """

    experiment_id: str
    description: str
    tables: tuple
    plots: tuple = ()
    checks: dict = field(default_factory=dict)

    def render(self) -> str:
        """The full printable report."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for title, headers, rows in self.tables:
            parts.append(render_table(headers, rows, title=title))
        parts.extend(self.plots)
        if self.checks:
            check_lines = ["shape checks:"]
            check_lines.extend(
                f"  [{'PASS' if passed else 'FAIL'}] {name}"
                for name, passed in self.checks.items()
            )
            parts.append("\n".join(check_lines))
        return "\n\n".join(parts)

    def write_csvs(self, directory) -> list:
        """Write each table to ``<directory>/<experiment_id>_<n>.csv``."""
        written = []
        for index, (title, headers, rows) in enumerate(self.tables):
            slug = title.lower().replace(" ", "_").replace("/", "-")[:40]
            path = Path(directory) / f"{self.experiment_id}_{index}_{slug}.csv"
            written.append(write_csv(path, headers, rows))
        return written

    def all_checks_pass(self) -> bool:
        """Whether every shape check passed."""
        return all(self.checks.values())


def fig3_report(result: Fig3Result | None = None) -> ExperimentReport:
    """Build the Fig. 3 report (computing the sweeps if not supplied)."""
    result = result or fig3_result(FIG3_DEFAULT)
    placement_table = (
        f"Fig. 3 / placement sweep (P={result.config.power_db:g} dB, "
        f"G_ab={result.config.gab_db:g} dB, path-loss exp "
        f"{result.config.path_loss_exponent:g}) — sum rates [bits/use]",
        result.headers("relay position"),
        result.to_rows(result.placement_rows),
    )
    symmetric_table = (
        f"Fig. 3 / symmetric sweep (P={result.config.power_db:g} dB, "
        f"G_ab={result.config.gab_db:g} dB) — sum rates [bits/use]",
        result.headers("G_ar=G_br [dB]"),
        result.to_rows(result.symmetric_rows),
    )
    series = {}
    for protocol in result.protocols:
        series[protocol.name] = [
            (row.sweep_value, row.sum_rates[protocol]) for row in result.placement_rows
        ]
    plot = ascii_plot(
        series,
        title="Fig. 3 (placement sweep)",
        x_label="relay position (fraction of a-b distance)",
        y_label="optimal sum rate",
    )
    return ExperimentReport(
        experiment_id="fig3",
        description="optimal achievable sum rates of DT/MABC/TDBC/HBC",
        tables=(placement_table, symmetric_table),
        plots=(plot,),
        checks=fig3_shape_checks(result),
    )


def _fig4_tables(result: Fig4Result) -> list:
    summary_rows = []
    for key, trace in result.traces.items():
        summary_rows.append(
            [key, trace.max_ra, trace.max_rb, trace.max_sum_rate, trace.area]
        )
    summary_table = (
        f"Fig. 4 summary (P={result.config.power_db:g} dB, "
        f"G_ab={result.config.gab_db:g}, G_ar={result.config.gar_db:g}, "
        f"G_br={result.config.gbr_db:g} dB)",
        ["region", "max Ra", "max Rb", "max sum", "area"],
        summary_rows,
    )
    boundary_rows = []
    for key, trace in result.traces.items():
        for ra, rb in trace.boundary:
            boundary_rows.append([key, float(ra), float(rb)])
    boundary_table = (
        "Fig. 4 boundary points",
        ["region", "Ra", "Rb"],
        boundary_rows,
    )
    tables = [summary_table, boundary_table]
    if result.hbc_points_outside_both:
        headline_table = (
            "HBC achievable points outside both MABC capacity and "
            "TDBC outer bound",
            ["Ra", "Rb"],
            [list(p) for p in result.hbc_points_outside_both],
        )
        tables.append(headline_table)
    return tables


def fig4_report(
    config: Fig4Config,
    experiment_id: str,
    *,
    result: Fig4Result | None = None,
    companion: Fig4Result | None = None,
) -> ExperimentReport:
    """Build one Fig. 4 panel report.

    ``companion`` is the other panel, needed for the cross-panel shape
    checks; it is computed on demand when omitted.
    """
    result = result or run_fig4(config)
    if companion is None:
        other_config = FIG4_P10 if config.power_db < 5 else FIG4_P0
        companion = run_fig4(other_config)
    low, high = (result, companion) if config.power_db < 5 else (companion, result)
    series = {key: result.traces[key].boundary for key in result.traces}
    plot = ascii_plot(
        series,
        title=f"Fig. 4 (P={config.power_db:g} dB)",
        x_label="Ra [bits/use]",
        y_label="Rb [bits/use]",
    )
    return ExperimentReport(
        experiment_id=experiment_id,
        description=(
            f"achievable rate regions and outer bounds at P={config.power_db:g} dB"
        ),
        tables=tuple(_fig4_tables(result)),
        plots=(plot,),
        checks=fig4_shape_checks(low, high),
    )


#: The Section IV fading ensemble regenerated by the ``fading`` experiment:
#: the Fig. 4 geometry at both panel powers under Rayleigh fading. This is
#: exactly the grid the registered ``fading-ensemble`` scenario lowers to
#: (same content hash; asserted in the tests).
DEFAULT_FADING_SPEC = CampaignSpec(
    protocols=(Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC),
    powers_db=(0.0, 10.0),
    gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
    fading=FadingSpec(n_draws=200, seed=17),
)


def fading_report(
    spec: CampaignSpec = DEFAULT_FADING_SPEC, *, executor=None, cache=None
) -> ExperimentReport:
    """Ergodic/outage statistics of a fading campaign as a report.

    The spec is wrapped as a scenario and evaluated through
    :func:`repro.api.evaluate` (the default spec *is* the registered
    ``fading-ensemble`` scenario); ``executor`` and ``cache`` are
    forwarded to the campaign engine underneath.
    """
    from ..api import evaluate
    from ..scenarios.base import Scenario
    from ..scenarios.registry import get_scenario

    if spec == DEFAULT_FADING_SPEC:
        scenario = get_scenario("fading-ensemble")
    else:
        scenario = Scenario.from_campaign_spec(
            spec,
            name="fading-ensemble-custom",
            description="caller-supplied fading campaign grid",
        )
    result = evaluate(scenario, executor=executor, cache=cache)
    spec = result.spec
    table = (
        f"fading campaign ({spec.n_draws} draws/geometry, "
        f"seed {spec.fading.seed if spec.fading else 'n/a'}, "
        f"executor {result.executor_name}"
        f"{', cached' if result.from_cache else ''}) — sum rates [bits/use]",
        ["protocol", "P [dB]", "ergodic mean", "std err", "10%-outage", "median"],
        result.summary_rows(epsilon=0.1),
    )
    checks = {}
    protocols = set(spec.protocols)
    if {Protocol.HBC, Protocol.MABC, Protocol.TDBC} <= protocols:

        def hbc_dominates_at(power_db: float) -> bool:
            hbc = result.ergodic_mean(Protocol.HBC, power_db)
            mabc = result.ergodic_mean(Protocol.MABC, power_db)
            tdbc = result.ergodic_mean(Protocol.TDBC, power_db)
            return hbc >= max(mabc, tdbc) - 1e-9

        checks["hbc_dominates_ergodically"] = all(
            hbc_dominates_at(power_db) for power_db in spec.powers_db
        )
    return ExperimentReport(
        experiment_id="fading",
        description="ergodic and outage sum rates under quasi-static fading",
        tables=(table,),
        checks=checks,
    )


def run_experiment(experiment_id: str, *, executor=None) -> ExperimentReport:
    """Run one registered experiment end to end.

    ``executor`` (campaign executor name or instance) is forwarded to the
    experiments that evaluate through the facade; ``None`` keeps each
    experiment's default.
    """
    registry = {
        "fig3": lambda: (
            fig3_report()
            if executor is None
            else fig3_report(fig3_result(executor=executor))
        ),
        "fig4a": lambda: fig4_report(FIG4_P0, "fig4a"),
        "fig4b": lambda: fig4_report(FIG4_P10, "fig4b"),
        "fading": lambda: fading_report(executor=executor),
    }
    if experiment_id not in registry:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(registry)}"
        )
    return registry[experiment_id]()


#: Registered experiment ids (paper artifacts plus the fading campaign).
EXPERIMENT_IDS = ("fig3", "fig4a", "fig4b", "fading")
