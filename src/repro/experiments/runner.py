"""Experiment registry: one entry per paper artifact (and ablations).

Each runner returns an :class:`ExperimentReport` — printable tables plus
the series needed for plotting — so the CLI, the benchmarks and the tests
all consume the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..campaign.engine import run_campaign
from ..campaign.spec import CampaignSpec, FadingSpec
from ..channels.gains import LinkGains
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .ascii_plot import ascii_plot
from .config import FIG3_DEFAULT, FIG4_P0, FIG4_P10, Fig4Config
from .fig3 import Fig3Result, fig3_shape_checks, run_fig3
from .fig4 import Fig4Result, fig4_shape_checks, run_fig4
from .tables import render_table, write_csv

__all__ = ["ExperimentReport", "run_experiment", "EXPERIMENT_IDS",
           "fig3_report", "fig4_report", "fading_report",
           "DEFAULT_FADING_SPEC"]


@dataclass(frozen=True)
class ExperimentReport:
    """A fully rendered experiment outcome.

    Attributes
    ----------
    experiment_id:
        Registry key (``fig3``, ``fig4a``, ``fig4b``).
    description:
        What paper artifact this regenerates.
    tables:
        List of ``(title, headers, rows)`` triples.
    plots:
        List of pre-rendered ASCII plots.
    checks:
        Shape-check name -> bool (the paper's qualitative claims).
    """

    experiment_id: str
    description: str
    tables: tuple
    plots: tuple = ()
    checks: dict = field(default_factory=dict)

    def render(self) -> str:
        """The full printable report."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for title, headers, rows in self.tables:
            parts.append(render_table(headers, rows, title=title))
        parts.extend(self.plots)
        if self.checks:
            check_lines = ["shape checks:"]
            check_lines.extend(
                f"  [{'PASS' if passed else 'FAIL'}] {name}"
                for name, passed in self.checks.items()
            )
            parts.append("\n".join(check_lines))
        return "\n\n".join(parts)

    def write_csvs(self, directory) -> list:
        """Write each table to ``<directory>/<experiment_id>_<n>.csv``."""
        written = []
        for index, (title, headers, rows) in enumerate(self.tables):
            slug = title.lower().replace(" ", "_").replace("/", "-")[:40]
            path = Path(directory) / f"{self.experiment_id}_{index}_{slug}.csv"
            written.append(write_csv(path, headers, rows))
        return written

    def all_checks_pass(self) -> bool:
        """Whether every shape check passed."""
        return all(self.checks.values())


def fig3_report(result: Fig3Result | None = None) -> ExperimentReport:
    """Build the Fig. 3 report (computing the sweeps if not supplied)."""
    result = result or run_fig3(FIG3_DEFAULT)
    placement_table = (
        f"Fig. 3 / placement sweep (P={result.config.power_db:g} dB, "
        f"G_ab={result.config.gab_db:g} dB, path-loss exp "
        f"{result.config.path_loss_exponent:g}) — sum rates [bits/use]",
        Fig3Result.headers("relay position"),
        [row.as_table_row() for row in result.placement_rows],
    )
    symmetric_table = (
        f"Fig. 3 / symmetric sweep (P={result.config.power_db:g} dB, "
        f"G_ab={result.config.gab_db:g} dB) — sum rates [bits/use]",
        Fig3Result.headers("G_ar=G_br [dB]"),
        [row.as_table_row() for row in result.symmetric_rows],
    )
    series = {}
    for protocol_index, name in enumerate(("DT", "MABC", "TDBC", "HBC")):
        series[name] = [
            (row.sweep_value, row.as_table_row()[1 + protocol_index])
            for row in result.placement_rows
        ]
    plot = ascii_plot(series, title="Fig. 3 (placement sweep)",
                      x_label="relay position (fraction of a-b distance)",
                      y_label="optimal sum rate")
    return ExperimentReport(
        experiment_id="fig3",
        description="optimal achievable sum rates of DT/MABC/TDBC/HBC",
        tables=(placement_table, symmetric_table),
        plots=(plot,),
        checks=fig3_shape_checks(result),
    )


def _fig4_tables(result: Fig4Result) -> list:
    summary_rows = []
    for key, trace in result.traces.items():
        summary_rows.append([key, trace.max_ra, trace.max_rb,
                             trace.max_sum_rate, trace.area])
    tables = [(
        f"Fig. 4 summary (P={result.config.power_db:g} dB, "
        f"G_ab={result.config.gab_db:g}, G_ar={result.config.gar_db:g}, "
        f"G_br={result.config.gbr_db:g} dB)",
        ["region", "max Ra", "max Rb", "max sum", "area"],
        summary_rows,
    )]
    boundary_rows = []
    for key, trace in result.traces.items():
        for ra, rb in trace.boundary:
            boundary_rows.append([key, float(ra), float(rb)])
    tables.append((
        "Fig. 4 boundary points",
        ["region", "Ra", "Rb"],
        boundary_rows,
    ))
    if result.hbc_points_outside_both:
        tables.append((
            "HBC achievable points outside both MABC capacity and TDBC outer bound",
            ["Ra", "Rb"],
            [list(p) for p in result.hbc_points_outside_both],
        ))
    return tables


def fig4_report(config: Fig4Config, experiment_id: str, *,
                result: Fig4Result | None = None,
                companion: Fig4Result | None = None) -> ExperimentReport:
    """Build one Fig. 4 panel report.

    ``companion`` is the other panel, needed for the cross-panel shape
    checks; it is computed on demand when omitted.
    """
    result = result or run_fig4(config)
    if companion is None:
        other_config = FIG4_P10 if config.power_db < 5 else FIG4_P0
        companion = run_fig4(other_config)
    low, high = ((result, companion) if config.power_db < 5
                 else (companion, result))
    series = {key: result.traces[key].boundary for key in result.traces}
    plot = ascii_plot(series,
                      title=f"Fig. 4 (P={config.power_db:g} dB)",
                      x_label="Ra [bits/use]", y_label="Rb [bits/use]")
    return ExperimentReport(
        experiment_id=experiment_id,
        description=(f"achievable rate regions and outer bounds at "
                     f"P={config.power_db:g} dB"),
        tables=tuple(_fig4_tables(result)),
        plots=(plot,),
        checks=fig4_shape_checks(low, high),
    )


#: The Section IV fading ensemble regenerated by the ``fading`` experiment:
#: the Fig. 4 geometry at both panel powers under Rayleigh fading.
DEFAULT_FADING_SPEC = CampaignSpec(
    protocols=(Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC),
    powers_db=(0.0, 10.0),
    gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
    fading=FadingSpec(n_draws=200, seed=17),
)


def fading_report(spec: CampaignSpec = DEFAULT_FADING_SPEC, *,
                  executor=None, cache=None) -> ExperimentReport:
    """Ergodic/outage statistics of a fading campaign as a report.

    The campaign engine evaluates the whole grid in a few batched solves;
    ``executor`` and ``cache`` are forwarded to
    :func:`repro.campaign.run_campaign`.
    """
    result = run_campaign(spec, executor=executor, cache=cache)
    table = (
        f"fading campaign ({spec.n_draws} draws/geometry, "
        f"seed {spec.fading.seed if spec.fading else 'n/a'}, "
        f"executor {result.executor_name}"
        f"{', cached' if result.from_cache else ''}) — sum rates [bits/use]",
        ["protocol", "P [dB]", "ergodic mean", "std err", "10%-outage",
         "median"],
        result.summary_rows(epsilon=0.1),
    )
    checks = {}
    if (Protocol.HBC in spec.protocols and Protocol.MABC in spec.protocols
            and Protocol.TDBC in spec.protocols):
        hbc_dominates = all(
            result.ergodic_mean(Protocol.HBC, power_db)
            >= max(result.ergodic_mean(Protocol.MABC, power_db),
                   result.ergodic_mean(Protocol.TDBC, power_db)) - 1e-9
            for power_db in spec.powers_db
        )
        checks["hbc_dominates_ergodically"] = hbc_dominates
    return ExperimentReport(
        experiment_id="fading",
        description="ergodic and outage sum rates under quasi-static fading",
        tables=(table,),
        checks=checks,
    )


def run_experiment(experiment_id: str, *, executor=None) -> ExperimentReport:
    """Run one registered experiment end to end.

    ``executor`` (campaign executor name or instance) is forwarded to the
    experiments that evaluate through the campaign engine; ``None`` keeps
    each experiment's default.
    """
    registry = {
        "fig3": lambda: (fig3_report() if executor is None
                         else fig3_report(run_fig3(executor=executor))),
        "fig4a": lambda: fig4_report(FIG4_P0, "fig4a"),
        "fig4b": lambda: fig4_report(FIG4_P10, "fig4b"),
        "fading": lambda: fading_report(executor=executor),
    }
    if experiment_id not in registry:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(registry)}"
        )
    return registry[experiment_id]()


#: Registered experiment ids (paper artifacts plus the fading campaign).
EXPERIMENT_IDS = ("fig3", "fig4a", "fig4b", "fading")
