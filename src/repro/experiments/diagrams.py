"""Text renderings of the paper's protocol diagrams (Figs. 1 and 2).

Figures 1 and 2 of the paper are explanatory timelines, not measurements;
these renderers reproduce them as documentation aids for the README and
the CLI's ``diagrams`` subcommand.
"""

from __future__ import annotations

from ..core.protocols import Protocol, protocol_phases

__all__ = ["phase_timeline", "all_protocol_diagrams"]

_NODES = ("a", "b", "r")


def phase_timeline(protocol: Protocol, *, cell_width: int = 14) -> str:
    """One protocol as a node-by-phase transmit/listen timeline.

    Shaded cells of the paper's Fig. 2 become ``TX``; listeners become
    ``rx``; the relay row is omitted for DT (no relay involved).
    """
    phases = protocol_phases(protocol)
    nodes = _NODES if protocol.uses_relay else ("a", "b")
    header = "node".ljust(6) + "".join(
        f"phase {i + 1}".center(cell_width) for i in range(len(phases))
    )
    lines = [f"{protocol.name}", header, "-" * len(header)]
    for node in nodes:
        cells = []
        for transmitters in phases:
            cells.append(("TX" if node in transmitters else "rx").center(cell_width))
        lines.append(node.ljust(6) + "".join(cells))
    return "\n".join(lines)


def all_protocol_diagrams() -> str:
    """Every protocol timeline, separated by blank lines (Figs. 1–2 analogue)."""
    protocols = (
        Protocol.DT,
        Protocol.NAIVE4,
        Protocol.MABC,
        Protocol.TDBC,
        Protocol.HBC,
    )
    return "\n\n".join(phase_timeline(p) for p in protocols)
