"""Finite-SNR diversity-multiplexing curves from outage ensembles.

The asymptotic diversity-multiplexing tradeoff hides everything an
operator cares about at deployable powers; Narasimhan's finite-SNR
refinement (followed into the bidirectional setting by arXiv:0810.2746)
keeps the SNR in the definition::

    R(r)      = r * log2(1 + SNR)          # target sum rate
    P_out(r)  = Pr[ sum_rate < R(r) ]      # over the fading ensemble
    d(r, SNR) = -ln(P_out(r)) / ln(SNR)    # finite-SNR diversity gain

:func:`finite_snr_dmt` post-processes one ``(protocol, power)`` slice of
a ``finite-snr-dmt`` scenario evaluation — the fading ensemble is drawn
once by the campaign engine (cached, shardable), and every multiplexing
gain is a pure reduction over the same samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear

__all__ = ["DmtCurve", "finite_snr_dmt", "DEFAULT_MULTIPLEXING_GAINS"]

#: Default multiplexing-gain grid: fractions of ``log2(1 + SNR)`` the
#: two-way sum rate is asked to sustain.
DEFAULT_MULTIPLEXING_GAINS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class DmtCurve:
    """One protocol's finite-SNR diversity curve at one operating power.

    Attributes
    ----------
    protocol:
        Protocol the curve describes.
    power_db:
        Operating power (dB); ``snr`` is its linear value.
    snr:
        Linear SNR used in both the rate target and the diversity
        normalization.
    multiplexing_gains:
        The multiplexing-gain grid ``r``.
    target_rates:
        ``r * log2(1 + SNR)`` per grid point (bits/use).
    outage_probabilities:
        Empirical ``P_out`` per grid point over the fading ensemble.
    diversity_gains:
        ``-ln(P_out) / ln(SNR)`` per grid point; ``inf`` where the
        ensemble recorded no outage at all.
    n_draws:
        Ensemble size behind the empirical probabilities.
    """

    protocol: Protocol
    power_db: float
    snr: float
    multiplexing_gains: tuple
    target_rates: tuple
    outage_probabilities: tuple
    diversity_gains: tuple
    n_draws: int

    def rows(self) -> list:
        """``[r, R(r), P_out, d]`` table rows for reports."""
        return [
            [float(r), float(rate), float(p_out), float(d)]
            for r, rate, p_out, d in zip(
                self.multiplexing_gains,
                self.target_rates,
                self.outage_probabilities,
                self.diversity_gains,
            )
        ]


def finite_snr_dmt(
    result,
    protocol: Protocol,
    power_db: float,
    multiplexing_gains=DEFAULT_MULTIPLEXING_GAINS,
) -> DmtCurve:
    """Finite-SNR DMT curve of one ``(protocol, power)`` ensemble slice.

    Parameters
    ----------
    result:
        An :class:`~repro.scenarios.result.EvaluationResult` of a
        fading-ensemble scenario (canonically ``finite-snr-dmt``).
    protocol:
        Which protocol's slice to reduce.
    power_db:
        Which power-axis point to reduce (must be ``> 0`` dB so that
        ``ln(SNR) > 0`` and the diversity normalization is meaningful).
    multiplexing_gains:
        Positive multiplexing gains ``r`` to evaluate.
    """
    spec = result.spec
    if protocol not in spec.protocols:
        raise InvalidParameterError(
            f"{protocol} not in the evaluated protocols {spec.protocols}"
        )
    if result.scenario.fading is None:
        raise InvalidParameterError(
            "finite-SNR DMT needs a fading ensemble; the scenario "
            f"{result.scenario.name!r} is deterministic"
        )
    power_db = float(power_db)
    if power_db <= 0.0:
        raise InvalidParameterError(
            f"power_db must be positive for the ln(SNR) normalization, "
            f"got {power_db}"
        )
    try:
        power_index = spec.powers_db.index(power_db)
    except ValueError:
        raise InvalidParameterError(
            f"power {power_db} dB not on the grid {spec.powers_db}"
        ) from None
    gains = tuple(float(r) for r in multiplexing_gains)
    if not gains or any(r <= 0.0 for r in gains):
        raise InvalidParameterError(
            f"multiplexing gains must be positive, got {multiplexing_gains!r}"
        )
    snr = db_to_linear(power_db)
    protocol_index = spec.protocols.index(protocol)
    samples = np.moveaxis(
        result.values, result.axis_index("draw"), -1
    )[protocol_index, power_index].reshape(-1)
    target_rates = tuple(float(r) * np.log2(1.0 + snr) for r in gains)
    outage = tuple(
        float(np.count_nonzero(samples < rate)) / samples.size
        for rate in target_rates
    )
    diversity = tuple(
        float("inf")
        if p_out == 0.0
        else -float(np.log(p_out)) / float(np.log(snr)) + 0.0
        for p_out in outage
    )
    return DmtCurve(
        protocol=protocol,
        power_db=power_db,
        snr=float(snr),
        multiplexing_gains=gains,
        target_rates=tuple(float(rate) for rate in target_rates),
        outage_probabilities=outage,
        diversity_gains=diversity,
        n_draws=samples.size,
    )
