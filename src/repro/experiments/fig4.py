"""Fig. 4 regeneration: achievable rate regions and outer bounds.

The paper's Fig. 4 plots, at ``G_ar = 0 dB, G_br = 5 dB, G_ab = -7 dB``:

* top panel, ``P = 0 dB`` (low SNR): MABC dominates TDBC;
* bottom panel, ``P = 10 dB`` (high SNR): TDBC overtakes MABC in part of
  the region, and — the paper's headline — **some achievable HBC points
  lie outside the outer bounds of both MABC and TDBC**.

This module traces the boundary of every region with the weighted-sum LP
(exact for these convex regions) and extracts the headline set of HBC
points explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.capacity import achievable_region, outer_bound_region
from ..core.protocols import Protocol
from ..core.regions import RateRegion, region_dominates
from ..optimize.linprog import DEFAULT_BACKEND
from .config import Fig4Config

__all__ = ["RegionTrace", "Fig4Result", "run_fig4", "fig4_shape_checks"]

#: The curves the paper draws in each panel, in legend order.
TRACE_KEYS = ("DT", "MABC", "TDBC inner", "TDBC outer", "HBC")


@dataclass(frozen=True)
class RegionTrace:
    """One plotted curve: its Pareto boundary and summary scalars."""

    label: str
    boundary: np.ndarray
    max_sum_rate: float
    max_ra: float
    max_rb: float
    area: float


@dataclass(frozen=True)
class Fig4Result:
    """One panel of Fig. 4 (one power level)."""

    config: Fig4Config
    traces: dict
    #: Achievable HBC boundary points outside both the MABC capacity region
    #: and the TDBC outer bound (empty at low SNR, non-empty at high SNR).
    hbc_points_outside_both: tuple

    def trace(self, key: str) -> RegionTrace:
        """Look up one curve by its legend key."""
        return self.traces[key]


def _trace(label: str, region: RateRegion, n_points: int) -> RegionTrace:
    boundary = region.boundary(n_points)
    best = region.max_sum_rate()
    return RegionTrace(
        label=label,
        boundary=boundary,
        max_sum_rate=best.sum_rate,
        max_ra=float(boundary[-1, 0]),
        max_rb=float(boundary[0, 1]),
        area=region.area(n_points),
    )


def run_fig4(config: Fig4Config, *, backend: str = DEFAULT_BACKEND) -> Fig4Result:
    """Trace every Fig. 4 curve for one panel."""
    channel = config.channel()
    n = config.boundary_points
    regions = {
        "DT": achievable_region(Protocol.DT, channel, backend=backend),
        "MABC": achievable_region(Protocol.MABC, channel, backend=backend),
        "TDBC inner": achievable_region(Protocol.TDBC, channel, backend=backend),
        "TDBC outer": outer_bound_region(Protocol.TDBC, channel, backend=backend),
        "HBC": achievable_region(Protocol.HBC, channel, backend=backend),
    }
    traces = {key: _trace(key, region, n) for key, region in regions.items()}

    outside = []
    mabc = regions["MABC"]
    tdbc_outer = regions["TDBC outer"]
    for ra, rb in traces["HBC"].boundary:
        if ra <= 1e-6 or rb <= 1e-6:
            continue
        if not mabc.contains(ra, rb) and not tdbc_outer.contains(ra, rb):
            outside.append((float(ra), float(rb)))
    return Fig4Result(
        config=config,
        traces=traces,
        hbc_points_outside_both=tuple(outside),
    )


def fig4_shape_checks(
    low_snr: Fig4Result, high_snr: Fig4Result, *, backend: str = DEFAULT_BACKEND
) -> dict:
    """The paper's Fig. 4 claims as named boolean checks.

    * ``mabc_inner_equals_outer`` — Theorem 2 is tight: the MABC inner and
      outer regions coincide (checked by area and mutual containment);
    * ``tdbc_inner_within_outer`` — Theorem 3 region sits inside the
      Theorem 4 bound (both panels);
    * ``low_snr_mabc_beats_tdbc`` — at ``P = 0 dB`` MABC beats TDBC in both
      region area and optimal sum rate ("in the low SNR regime, the MABC
      protocol dominates the TDBC protocol"; note strict set containment
      does *not* hold — TDBC's side information always buys it a slightly
      larger single-user corner — so the paper's "dominates" is read as
      the aggregate comparison the figure displays);
    * ``high_snr_tdbc_beats_mabc`` — at ``P = 10 dB`` TDBC has the larger
      region area and the larger single-user corner ("the latter is better
      in the high SNR regime"), even though MABC retains the better sum
      rate;
    * ``high_snr_tdbc_wins_somewhere`` — at ``P = 10 dB`` TDBC achieves
      points outside the MABC capacity region;
    * ``hbc_outside_other_outer_bounds`` — at ``P = 10 dB`` some HBC
      achievable points fall outside both other protocols' outer bounds
      (the paper's headline observation).
    """
    checks = {}

    low_channel = low_snr.config.channel()
    high_channel = high_snr.config.channel()

    def _regions(channel):
        return {
            "mabc_in": achievable_region(Protocol.MABC, channel, backend=backend),
            "mabc_out": outer_bound_region(Protocol.MABC, channel, backend=backend),
            "tdbc_in": achievable_region(Protocol.TDBC, channel, backend=backend),
            "tdbc_out": outer_bound_region(Protocol.TDBC, channel, backend=backend),
        }

    low = _regions(low_channel)
    high = _regions(high_channel)

    checks["mabc_inner_equals_outer"] = all(
        region_dominates(r["mabc_out"], r["mabc_in"])
        and region_dominates(r["mabc_in"], r["mabc_out"])
        for r in (low, high)
    )
    checks["tdbc_inner_within_outer"] = all(
        region_dominates(r["tdbc_out"], r["tdbc_in"]) for r in (low, high)
    )
    checks["low_snr_mabc_beats_tdbc"] = (
        low_snr.trace("MABC").area > low_snr.trace("TDBC inner").area
        and low_snr.trace("MABC").max_sum_rate
        > low_snr.trace("TDBC inner").max_sum_rate
    )
    checks["high_snr_tdbc_beats_mabc"] = (
        high_snr.trace("TDBC inner").area > high_snr.trace("MABC").area
        and high_snr.trace("TDBC inner").max_ra > high_snr.trace("MABC").max_ra
    )
    high_tdbc_boundary = high_snr.trace("TDBC inner").boundary
    checks["high_snr_tdbc_wins_somewhere"] = any(
        not high["mabc_in"].contains(ra, rb)
        for ra, rb in high_tdbc_boundary
        if ra > 0
    )
    checks["hbc_outside_other_outer_bounds"] = (
        len(high_snr.hbc_points_outside_both) > 0
    )
    return checks
