"""Parameter sweeps beyond the paper's fixed figures.

The paper evaluates two power points (Fig. 4) and one channel-quality
sweep (Fig. 3). Downstream users invariably ask the next questions:

* *how do the protocols scale with transmit power on my channel?*
  (:func:`sweep_powers`, with :func:`power_sweep` kept as a deprecation
  shim),
* *at exactly which power does TDBC overtake MABC?*
  (:func:`protocol_crossover_power` — the low/high-SNR regime boundary the
  paper describes qualitatively, located numerically with bisection),
* *which protocol should I run at each operating point?*
  (:func:`winner_table`).

Sweeps are power-sweep scenarios evaluated through the :mod:`repro.api`
facade: one declarative ``protocols × powers`` grid evaluated by the
vectorized executor in a handful of batched solves. Pass ``executor=None``
to fall back to the historical per-point LP loop with an explicit
``backend``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..channels.gains import LinkGains
from ..core.capacity import compare_protocols, optimal_sum_rate
from ..core.gaussian import GaussianChannel
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear
from ..optimize.linprog import DEFAULT_BACKEND
from ..optimize.search import find_crossover

__all__ = [
    "PowerSweepRow",
    "sweep_powers",
    "power_sweep",
    "protocol_crossover_power",
    "winner_table",
]

#: Default protocol set of a power sweep (every implemented protocol).
SWEEP_PROTOCOLS = (
    Protocol.DT,
    Protocol.NAIVE4,
    Protocol.MABC,
    Protocol.TDBC,
    Protocol.HBC,
)


@dataclass(frozen=True)
class PowerSweepRow:
    """Sum rates of every compared protocol at one transmit power."""

    power_db: float
    sum_rates: dict

    def winner(self) -> Protocol:
        """The protocol with the best sum rate at this power."""
        return max(self.sum_rates, key=lambda p: self.sum_rates[p])


def sweep_powers(
    gains: LinkGains,
    powers_db,
    *,
    protocols=SWEEP_PROTOCOLS,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
) -> list:
    """Optimal sum rate of each protocol across a power sweep.

    The sweep is a power-sweep scenario evaluated through
    :func:`repro.api.evaluate` (``executor``: campaign executor name or
    instance; ``cache`` forwarded to the engine, so the sweep is
    chunk-checkpointed and served from the content-addressed store on
    repetition). Passing ``executor=None`` — or requesting a non-default
    LP ``backend`` — runs the legacy one-LP-per-point loop so the backend
    choice is honored.
    """
    powers = [float(p) for p in powers_db]
    if not powers:
        raise InvalidParameterError("at least one power point required")
    protocols = tuple(protocols)
    if backend != DEFAULT_BACKEND:
        executor = None
    if executor is None:
        rows = []
        for power_db in powers:
            channel = GaussianChannel(gains=gains, power=db_to_linear(power_db))
            comparison = compare_protocols(
                channel, protocols=protocols, backend=backend
            )
            rows.append(
                PowerSweepRow(
                    power_db=power_db,
                    sum_rates={
                        p: pt.sum_rate for p, pt in comparison.sum_rates.items()
                    },
                )
            )
        return rows

    from ..api import evaluate
    from ..scenarios.builtin import power_sweep_scenario

    evaluation = evaluate(
        power_sweep_scenario(gains, powers, protocols),
        executor=executor,
        cache=cache,
    )
    return [
        PowerSweepRow(
            power_db=power_db,
            sum_rates={
                p: float(evaluation.values[pi, wi, 0, 0])
                for pi, p in enumerate(protocols)
            },
        )
        for wi, power_db in enumerate(powers)
    ]


def power_sweep(
    gains: LinkGains,
    powers_db,
    *,
    protocols=SWEEP_PROTOCOLS,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
) -> list:
    """Deprecated alias of :func:`sweep_powers`.

    .. deprecated::
        Evaluate a power-sweep scenario through
        :func:`repro.api.evaluate`, or call :func:`sweep_powers`.
    """
    warnings.warn(
        "power_sweep is deprecated; evaluate a power-sweep scenario through "
        "repro.api.evaluate or call repro.experiments.sweeps.sweep_powers",
        DeprecationWarning,
        stacklevel=2,
    )
    return sweep_powers(
        gains,
        powers_db,
        protocols=protocols,
        backend=backend,
        executor=executor,
        cache=cache,
    )


def protocol_crossover_power(
    gains: LinkGains,
    first: Protocol,
    second: Protocol,
    *,
    low_db: float = -10.0,
    high_db: float = 30.0,
    tol: float = 1e-6,
    backend: str = DEFAULT_BACKEND,
) -> float | None:
    """The power (dB) where ``second``'s sum rate overtakes ``first``'s.

    Returns ``None`` when the ordering never flips on ``[low_db, high_db]``.
    The paper's qualitative statement — MABC dominates at low SNR, TDBC at
    high SNR — becomes, per channel, a concrete crossover power. (For the
    sum-rate metric on the Fig. 4 gains the flip happens in the max-Ra
    corner rather than the sum rate; with a more symmetric relay the
    sum-rate crossover exists, see the tests.)
    """

    def gap(power_db: float) -> float:
        channel = GaussianChannel(gains=gains, power=db_to_linear(power_db))
        return (
            optimal_sum_rate(second, channel, backend=backend).sum_rate
            - optimal_sum_rate(first, channel, backend=backend).sum_rate
        )

    lo_gap, hi_gap = gap(low_db), gap(high_db)
    if (lo_gap > 0) == (hi_gap > 0):
        return None
    return find_crossover(gap, low_db, high_db, tol=tol)


def winner_table(
    gains: LinkGains,
    powers_db,
    *,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
) -> list:
    """``(power_db, winner_name, margin)`` rows across a power sweep.

    The margin is the gap (bits/use) to the runner-up — how much choosing
    the right protocol is worth at each operating point.
    """
    rows = []
    for row in sweep_powers(
        gains, powers_db, backend=backend, executor=executor, cache=cache
    ):
        ordered = sorted(row.sum_rates.items(), key=lambda kv: -kv[1])
        margin = ordered[0][1] - ordered[1][1]
        rows.append((row.power_db, ordered[0][0].name, margin))
    return rows
