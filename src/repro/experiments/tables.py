"""Plain-text tables and CSV output for experiment reports."""

from __future__ import annotations

import csv
from pathlib import Path

from ..exceptions import InvalidParameterError

__all__ = ["render_table", "write_csv"]


def _format_cell(value, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def render_table(
    headers, rows, *, float_format: str = ".4f", title: str | None = None
) -> str:
    """Render a list-of-rows table as aligned monospace text.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences (values may be any type; floats honour
        ``float_format``).
    float_format:
        ``format()`` spec applied to float cells.
    title:
        Optional heading printed above the table.
    """
    header_list = [str(h) for h in headers]
    body = [[_format_cell(v, float_format) for v in row] for row in rows]
    for row in body:
        if len(row) != len(header_list):
            raise InvalidParameterError(
                f"row width {len(row)} != header width {len(header_list)}"
            )
    widths = [len(h) for h in header_list]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header_list, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path, headers, rows) -> Path:
    """Write a table to a CSV file, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return target
