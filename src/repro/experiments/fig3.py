"""Fig. 3 regeneration: optimal achievable sum rates of the four protocols.

The paper's Fig. 3 plots LP-optimized sum rates of DT, MABC, TDBC and HBC
at ``P = 15 dB`` with ``G_ab = 0 dB``, varying the relay channel quality.
The sweep variable is reconstructed two ways (see DESIGN.md):

* **placement sweep** — the relay moves along the ``a``–``b`` segment
  under a log-distance path-loss law (the cellular scenario of the
  introduction); ``G_ar`` and ``G_br`` follow from the geometry;
* **symmetric sweep** — ``G_ar = G_br`` swept directly in dB.

Both sweeps exhibit the claims the paper attaches to the figure: the HBC
optimum dominates MABC and TDBC everywhere and is *strictly* better in an
intermediate regime, so HBC does not reduce to either special case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.engine import run_campaign
from ..campaign.spec import CampaignSpec
from ..channels.gains import LinkGains
from ..channels.pathloss import linear_relay_gains
from ..core.capacity import compare_protocols
from ..core.gaussian import GaussianChannel
from ..core.protocols import Protocol
from ..optimize.linprog import DEFAULT_BACKEND
from .config import FIG3_DEFAULT, Fig3Config

__all__ = ["Fig3Row", "Fig3Result", "run_fig3", "fig3_shape_checks", "PROTOCOL_ORDER"]

PROTOCOL_ORDER = (Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC)


@dataclass(frozen=True)
class Fig3Row:
    """One sweep point: the swept value, the gains, and every sum rate."""

    sweep_value: float
    gains: LinkGains
    sum_rates: dict

    def as_table_row(self) -> list:
        """Row for tabular reports: sweep value then per-protocol rates."""
        return [self.sweep_value] + [
            self.sum_rates[p] for p in PROTOCOL_ORDER
        ]


@dataclass(frozen=True)
class Fig3Result:
    """Both sweeps of the Fig. 3 reproduction."""

    config: Fig3Config
    placement_rows: tuple
    symmetric_rows: tuple

    @staticmethod
    def headers(sweep_name: str) -> list:
        """Table headers for one sweep."""
        return [sweep_name] + [p.name for p in PROTOCOL_ORDER]

    def best_protocol_per_row(self, rows) -> list:
        """Name of the sum-rate winner at each sweep point."""
        return [
            max(row.sum_rates, key=lambda p: row.sum_rates[p]).name
            for row in rows
        ]


def _sum_rates(channel: GaussianChannel, backend: str) -> dict:
    comparison = compare_protocols(channel, protocols=PROTOCOL_ORDER,
                                   backend=backend)
    return {p: point.sum_rate for p, point in comparison.sum_rates.items()}


def _sweep_rows(sweep_values, gains_list, config: Fig3Config,
                executor, cache) -> tuple:
    """One sweep as a campaign: every (protocol, geometry) in one grid."""
    if not gains_list:
        return ()
    spec = CampaignSpec(protocols=PROTOCOL_ORDER,
                        powers_db=(config.power_db,),
                        gains=tuple(gains_list))
    result = run_campaign(spec, executor=executor, cache=cache)
    rows = []
    for gi, (value, gains) in enumerate(zip(sweep_values, gains_list)):
        rows.append(Fig3Row(
            sweep_value=float(value),
            gains=gains,
            sum_rates={
                p: float(result.values[pi, 0, gi, 0])
                for pi, p in enumerate(PROTOCOL_ORDER)
            },
        ))
    return tuple(rows)


def run_fig3(config: Fig3Config = FIG3_DEFAULT, *,
             backend: str = DEFAULT_BACKEND,
             executor="vectorized", cache=None) -> Fig3Result:
    """Compute both Fig. 3 sweeps.

    Every point solves four LPs (one per protocol) over rates and phase
    durations jointly, exactly the optimization the paper describes. By
    default both sweeps run as campaigns through the batched executor
    (``executor``: name or instance); passing ``executor=None`` — or
    requesting a non-default LP ``backend`` — runs the legacy per-point
    LP loop so the backend choice is honored. ``cache`` is forwarded to
    :func:`repro.campaign.engine.run_campaign`: with a cache directory
    the sweep is chunk-checkpointed, so repeated or interrupted figure
    regenerations resume instead of recomputing.
    """
    if backend != DEFAULT_BACKEND:
        executor = None
    placement_gains = [
        linear_relay_gains(float(fraction),
                           exponent=config.path_loss_exponent)
        for fraction in config.relay_fractions
    ]
    symmetric_gains = [
        LinkGains.from_db(config.gab_db, float(gain_db), float(gain_db))
        for gain_db in config.symmetric_gains_db
    ]

    if executor is None:
        power = config.power
        placement_rows = tuple(
            Fig3Row(sweep_value=float(fraction), gains=gains,
                    sum_rates=_sum_rates(
                        GaussianChannel(gains=gains, power=power), backend))
            for fraction, gains in zip(config.relay_fractions,
                                       placement_gains)
        )
        symmetric_rows = tuple(
            Fig3Row(sweep_value=float(gain_db), gains=gains,
                    sum_rates=_sum_rates(
                        GaussianChannel(gains=gains, power=power), backend))
            for gain_db, gains in zip(config.symmetric_gains_db,
                                      symmetric_gains)
        )
    else:
        placement_rows = _sweep_rows(config.relay_fractions, placement_gains,
                                     config, executor, cache)
        symmetric_rows = _sweep_rows(config.symmetric_gains_db,
                                     symmetric_gains, config, executor, cache)

    return Fig3Result(
        config=config,
        placement_rows=placement_rows,
        symmetric_rows=symmetric_rows,
    )


def fig3_shape_checks(result: Fig3Result, *, tol: float = 1e-7) -> dict:
    """The paper's Fig. 3 claims as named boolean checks.

    Returns a mapping check-name -> bool:

    * ``hbc_dominates`` — HBC >= max(MABC, TDBC) at every point (HBC
      contains both as special cases);
    * ``hbc_strictly_better_somewhere`` — strict inequality at some point
      ("the HBC protocol does not reduce to either of the MABC or TDBC
      protocols in general");
    * ``relay_protocols_beat_dt_somewhere`` — cooperation helps;
    * ``mabc_vs_tdbc_crossover`` — neither MABC nor TDBC dominates the
      other across the whole placement sweep (the relative-merit trade-off
      the Gaussian section is about).
    """
    all_rows = list(result.placement_rows) + list(result.symmetric_rows)
    hbc_dominates = all(
        row.sum_rates[Protocol.HBC]
        >= max(row.sum_rates[Protocol.MABC], row.sum_rates[Protocol.TDBC]) - tol
        for row in all_rows
    )
    hbc_strict = any(
        row.sum_rates[Protocol.HBC]
        > max(row.sum_rates[Protocol.MABC], row.sum_rates[Protocol.TDBC]) + 1e-4
        for row in all_rows
    )
    beats_dt = any(
        max(row.sum_rates[p] for p in (Protocol.MABC, Protocol.TDBC, Protocol.HBC))
        > row.sum_rates[Protocol.DT] + 1e-4
        for row in all_rows
    )
    diffs = [
        row.sum_rates[Protocol.MABC] - row.sum_rates[Protocol.TDBC]
        for row in result.placement_rows
    ]
    crossover = (max(diffs) > 1e-6 and min(diffs) < -1e-6) or any(
        abs(d) <= 1e-6 for d in diffs
    )
    return {
        "hbc_dominates": hbc_dominates,
        "hbc_strictly_better_somewhere": hbc_strict,
        "relay_protocols_beat_dt_somewhere": beats_dt,
        "mabc_vs_tdbc_crossover": crossover,
    }
