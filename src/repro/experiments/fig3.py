"""Fig. 3 regeneration: optimal achievable sum rates of the four protocols.

The paper's Fig. 3 plots LP-optimized sum rates of DT, MABC, TDBC and HBC
at ``P = 15 dB`` with ``G_ab = 0 dB``, varying the relay channel quality.
The sweep variable is reconstructed two ways (see DESIGN.md):

* **placement sweep** — the relay moves along the ``a``–``b`` segment
  under a log-distance path-loss law (the cellular scenario of the
  introduction); ``G_ar`` and ``G_br`` follow from the geometry;
* **symmetric sweep** — ``G_ar = G_br`` swept directly in dB.

Both sweeps exhibit the claims the paper attaches to the figure: the HBC
optimum dominates MABC and TDBC everywhere and is *strictly* better in an
intermediate regime, so HBC does not reduce to either special case.

Both sweeps are the registered scenarios ``fig3-placement`` and
``fig3-symmetric`` evaluated through the :mod:`repro.api` facade;
:func:`fig3_result` assembles the figure artifact from those
evaluations, and :func:`run_fig3` remains as a deprecation shim over it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..channels.gains import LinkGains
from ..core.capacity import compare_protocols
from ..core.gaussian import GaussianChannel
from ..core.protocols import Protocol
from ..optimize.linprog import DEFAULT_BACKEND
from .config import FIG3_DEFAULT, Fig3Config

__all__ = [
    "Fig3Row",
    "Fig3Result",
    "fig3_result",
    "run_fig3",
    "fig3_shape_checks",
    "PROTOCOL_ORDER",
]

#: Default protocol column order of the figure. Results carry their own
#: protocol axis (``Fig3Result.protocols``); this constant is only the
#: default for full four-protocol runs.
PROTOCOL_ORDER = (Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC)


@dataclass(frozen=True)
class Fig3Row:
    """One sweep point: the swept value, the gains, and every sum rate."""

    sweep_value: float
    gains: LinkGains
    sum_rates: dict

    def as_table_row(self) -> list:
        """Row for tabular reports: sweep value then per-protocol rates.

        Columns follow the row's own protocol order (the insertion order
        of ``sum_rates``, which is the scenario's protocol axis), so
        subset runs stay aligned with :meth:`Fig3Result.headers`.
        """
        return [self.sweep_value, *self.sum_rates.values()]


class _HeadersDispatch:
    """Dual-mode ``Fig3Result.headers`` accessor.

    On an instance, headers derive from that run's protocol axis, so
    subset runs can never misalign with their rows. The historical
    class-level call (``Fig3Result.headers("x")``) survives as a
    deprecation shim that assumes the full four-protocol figure.
    """

    def __get__(self, instance, owner):
        if instance is None:

            def class_headers(sweep_name: str) -> list:
                warnings.warn(
                    "calling Fig3Result.headers on the class is deprecated "
                    "and assumes the full four-protocol figure; call "
                    "headers() on a Fig3Result instance instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return [sweep_name] + [p.name for p in PROTOCOL_ORDER]

            return class_headers

        def instance_headers(sweep_name: str) -> list:
            return [sweep_name] + [p.name for p in instance.protocols]

        return instance_headers


@dataclass(frozen=True)
class Fig3Result:
    """Both sweeps of the Fig. 3 reproduction."""

    config: Fig3Config
    placement_rows: tuple
    symmetric_rows: tuple
    protocols: tuple = PROTOCOL_ORDER

    #: Table headers for one sweep, from this run's protocol axis (a
    #: class-level call is a deprecated four-protocol shim).
    headers = _HeadersDispatch()

    def to_rows(self, rows) -> list:
        """Table rows for one sweep, aligned with :meth:`headers`."""
        return [
            [row.sweep_value] + [row.sum_rates[p] for p in self.protocols]
            for row in rows
        ]

    def best_protocol_per_row(self, rows) -> list:
        """Name of the sum-rate winner at each sweep point."""
        return [
            max(row.sum_rates, key=lambda p: row.sum_rates[p]).name for row in rows
        ]


def _sum_rates(channel: GaussianChannel, protocols, backend: str) -> dict:
    comparison = compare_protocols(channel, protocols=protocols, backend=backend)
    return {p: point.sum_rate for p, point in comparison.sum_rates.items()}


def _legacy_rows(sweep_values, gains_list, protocols, power, backend) -> tuple:
    """One sweep through the historical per-point LP loop."""
    return tuple(
        Fig3Row(
            sweep_value=float(value),
            gains=gains,
            sum_rates=_sum_rates(
                GaussianChannel(gains=gains, power=power), protocols, backend
            ),
        )
        for value, gains in zip(sweep_values, gains_list)
    )


def _facade_rows(scenario, sweep_values, executor, cache) -> tuple:
    """One sweep as a scenario evaluated through the facade."""
    from ..api import evaluate

    evaluation = evaluate(scenario, executor=executor, cache=cache)
    rows = []
    for gi, (value, gains) in enumerate(zip(sweep_values, evaluation.spec.gains)):
        rows.append(
            Fig3Row(
                sweep_value=float(value),
                gains=gains,
                sum_rates={
                    p: float(evaluation.values[pi, 0, gi, 0])
                    for pi, p in enumerate(scenario.protocols)
                },
            )
        )
    return tuple(rows)


def fig3_result(
    config: Fig3Config = FIG3_DEFAULT,
    *,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
    protocols=PROTOCOL_ORDER,
) -> Fig3Result:
    """Compute both Fig. 3 sweeps.

    Every point solves one LP per protocol over rates and phase durations
    jointly, exactly the optimization the paper describes. By default
    both sweeps evaluate as the ``fig3-placement`` / ``fig3-symmetric``
    scenarios through :func:`repro.api.evaluate` (``executor``: campaign
    executor name or instance, ``cache`` forwarded to the engine, so the
    sweeps are chunk-checkpointed and resumable with a cache directory);
    passing ``executor=None`` — or requesting a non-default LP
    ``backend`` — runs the legacy per-point LP loop so the backend choice
    is honored. ``protocols`` selects the compared protocol set; the
    result's tables derive their columns from it.
    """
    from ..scenarios.builtin import fig3_placement_scenario, fig3_symmetric_scenario

    protocols = tuple(protocols)
    if backend != DEFAULT_BACKEND:
        executor = None

    def sweep_rows(scenario_factory, sweep_values) -> tuple:
        if not tuple(sweep_values):
            return ()
        scenario = scenario_factory(config, protocols)
        if executor is None:
            return _legacy_rows(
                sweep_values,
                scenario.topology.gains,
                protocols,
                config.power,
                backend,
            )
        return _facade_rows(scenario, sweep_values, executor, cache)

    placement_rows = sweep_rows(fig3_placement_scenario, config.relay_fractions)
    symmetric_rows = sweep_rows(fig3_symmetric_scenario, config.symmetric_gains_db)

    return Fig3Result(
        config=config,
        placement_rows=placement_rows,
        symmetric_rows=symmetric_rows,
        protocols=protocols,
    )


def run_fig3(
    config: Fig3Config = FIG3_DEFAULT,
    *,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
    protocols=PROTOCOL_ORDER,
) -> Fig3Result:
    """Deprecated alias of :func:`fig3_result`.

    .. deprecated::
        Evaluate the ``fig3-placement`` / ``fig3-symmetric`` scenarios
        through :func:`repro.api.evaluate`, or call :func:`fig3_result`
        for the assembled figure artifact.
    """
    warnings.warn(
        "run_fig3 is deprecated; use repro.api.evaluate('fig3-placement') / "
        "evaluate('fig3-symmetric') or repro.experiments.fig3.fig3_result",
        DeprecationWarning,
        stacklevel=2,
    )
    return fig3_result(
        config,
        backend=backend,
        executor=executor,
        cache=cache,
        protocols=protocols,
    )


def fig3_shape_checks(result: Fig3Result, *, tol: float = 1e-7) -> dict:
    """The paper's Fig. 3 claims as named boolean checks.

    Returns a mapping check-name -> bool; each check appears only when
    the protocols it compares are part of the run:

    * ``hbc_dominates`` — HBC >= max(MABC, TDBC) at every point (HBC
      contains both as special cases);
    * ``hbc_strictly_better_somewhere`` — strict inequality at some point
      ("the HBC protocol does not reduce to either of the MABC or TDBC
      protocols in general");
    * ``relay_protocols_beat_dt_somewhere`` — cooperation helps;
    * ``mabc_vs_tdbc_crossover`` — neither MABC nor TDBC dominates the
      other across the whole placement sweep (the relative-merit trade-off
      the Gaussian section is about).
    """
    have = set(result.protocols)
    all_rows = list(result.placement_rows) + list(result.symmetric_rows)
    checks = {}
    if {Protocol.HBC, Protocol.MABC, Protocol.TDBC} <= have:
        checks["hbc_dominates"] = all(
            row.sum_rates[Protocol.HBC]
            >= max(row.sum_rates[Protocol.MABC], row.sum_rates[Protocol.TDBC]) - tol
            for row in all_rows
        )
        checks["hbc_strictly_better_somewhere"] = any(
            row.sum_rates[Protocol.HBC]
            > max(row.sum_rates[Protocol.MABC], row.sum_rates[Protocol.TDBC]) + 1e-4
            for row in all_rows
        )
    relay = [p for p in (Protocol.MABC, Protocol.TDBC, Protocol.HBC) if p in have]
    if Protocol.DT in have and relay:
        checks["relay_protocols_beat_dt_somewhere"] = any(
            max(row.sum_rates[p] for p in relay) > row.sum_rates[Protocol.DT] + 1e-4
            for row in all_rows
        )
    if {Protocol.MABC, Protocol.TDBC} <= have:
        diffs = [
            row.sum_rates[Protocol.MABC] - row.sum_rates[Protocol.TDBC]
            for row in result.placement_rows
        ]
        crossover = max(diffs) > 1e-6 and min(diffs) < -1e-6
        checks["mabc_vs_tdbc_crossover"] = crossover or any(
            abs(d) <= 1e-6 for d in diffs
        )
    return checks
