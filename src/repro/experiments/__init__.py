"""Experiment harness: figure regeneration, reports, plots, registry."""

from .ascii_plot import ascii_plot
from .config import FIG3_DEFAULT, FIG4_P0, FIG4_P10, Fig3Config, Fig4Config
from .diagrams import all_protocol_diagrams, phase_timeline
from .dmt import DEFAULT_MULTIPLEXING_GAINS, DmtCurve, finite_snr_dmt
from .fig3 import Fig3Result, Fig3Row, fig3_result, fig3_shape_checks, run_fig3
from .fig4 import Fig4Result, RegionTrace, fig4_shape_checks, run_fig4
from .runner import (
    DEFAULT_FADING_SPEC,
    EXPERIMENT_IDS,
    ExperimentReport,
    fading_report,
    fig3_report,
    fig4_report,
    run_experiment,
)
from .sweeps import (
    PowerSweepRow,
    power_sweep,
    protocol_crossover_power,
    sweep_powers,
    winner_table,
)
from .tables import render_table, write_csv

__all__ = [
    "ascii_plot",
    "FIG3_DEFAULT",
    "FIG4_P0",
    "FIG4_P10",
    "Fig3Config",
    "Fig4Config",
    "all_protocol_diagrams",
    "phase_timeline",
    "DEFAULT_MULTIPLEXING_GAINS",
    "DmtCurve",
    "finite_snr_dmt",
    "Fig3Result",
    "Fig3Row",
    "fig3_result",
    "fig3_shape_checks",
    "run_fig3",
    "Fig4Result",
    "RegionTrace",
    "fig4_shape_checks",
    "run_fig4",
    "DEFAULT_FADING_SPEC",
    "EXPERIMENT_IDS",
    "ExperimentReport",
    "fading_report",
    "fig3_report",
    "fig4_report",
    "run_experiment",
    "PowerSweepRow",
    "power_sweep",
    "protocol_crossover_power",
    "sweep_powers",
    "winner_table",
    "render_table",
    "write_csv",
]
