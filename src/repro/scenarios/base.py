"""Declarative evaluation scenarios: topology, channel, power, objective.

A :class:`Scenario` is the scenario-first answer to "evaluate a protocol
set over a parameter grid": it names *what* is being evaluated — which
terminal pairs share the relay (:class:`Topology`), how the channel fades
(:class:`~repro.campaign.spec.FadingSpec`), which transmit-power policy
applies (:class:`PowerPolicy`), which protocols compete and under which
objective — and lowers to a :class:`~repro.campaign.spec.CampaignSpec`
for execution. Everything downstream (executors, chunk checkpointing,
sharding, the content-addressed cache) is inherited from the campaign
engine unchanged, because the lowering is pure data.

Multi-pair networks (Kim, Smida & Devroye, arXiv:1002.0123 baseline) are
expressed through the topology's ``pairs``: every pair sits at its own
per-link dB offsets relative to the swept base geometry and becomes one
value of an extensible ``pair`` grid axis. The round-robin objective
models the shared relay serving the pairs in equal time shares, so the
network sum rate is the mean over the pair axis of the per-pair bounds.

Finite-SNR power studies (Yi & Kim, arXiv:0810.2746 direction) use the
power policy's ``offsets_db``, which become a ``power_policy`` axis of dB
backoffs applied on top of the swept base powers.
"""

from __future__ import annotations

import warnings
from contextvars import ContextVar
from dataclasses import dataclass, field

from ..campaign.spec import CampaignSpec, FadingSpec, GridAxis, LinkSimSpec
from ..channels.gains import LinkGains
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import linear_to_db

__all__ = ["RelayPair", "Topology", "PowerPolicy", "Scenario", "OBJECTIVES"]

#: Supported scenario objectives.
#:
#: * ``sum_rate`` — the per-cell LP-optimal sum rate, unreduced;
#: * ``round_robin_sum_rate`` — the network sum rate of a multi-pair
#:   topology under round-robin relay scheduling: each pair is served a
#:   ``1/K`` time share, so the objective is the mean over the ``pair``
#:   axis of the per-pair optimal sum rates;
#: * ``operational_goodput`` — the measured goodput (bits/symbol) of the
#:   concrete decode-and-forward link simulator on every grid cell,
#:   parameterized by the scenario's :class:`~repro.campaign.spec
#:   .LinkSimSpec`. The operational counterpart of ``sum_rate``: the same
#:   grid machinery, with the analytic kernel swapped for the cells-fused
#:   link-level simulation kernel;
#: * ``operational_fer`` — the measured combined frame error rate of both
#:   directions on every grid cell (``LinkSimSpec.metric = "fer"``): the
#:   link-level reliability counterpart of ``operational_goodput``, the
#:   natural objective for fading FER studies with adaptive round
#:   budgets (``LinkSimSpec.target_rel_error``);
#: * ``allocation_optimum_sum_rate`` — the best achievable sum rate over
#:   the scenario's ``power_allocation`` axis: the per-cell LP-optimal
#:   sum rates reduced by ``max`` along that axis, reporting the optimum
#:   power split of every remaining grid cell (arXiv:0810.2746);
#: * ``latency_quantiles`` — the configured delivery-latency quantile
#:   (in slots) of the event-driven traffic simulation on every grid
#:   cell (``LinkSimSpec.metric = "latency"``): spec-seeded arrivals,
#:   finite buffers and stop-and-wait ARQ above the link kernel;
#: * ``stable_throughput`` — the largest sustained offered load (in
#:   frames/slot) located by the per-cell offered-load sweep of the
#:   traffic simulation (``LinkSimSpec.metric = "stable_throughput"``):
#:   the throughput-knee objective of the multi-pair scheduling
#:   comparison (arXiv:1002.0123 direction).
OBJECTIVES = (
    "sum_rate",
    "round_robin_sum_rate",
    "operational_goodput",
    "operational_fer",
    "allocation_optimum_sum_rate",
    "latency_quantiles",
    "stable_throughput",
)

#: Operational objectives and the :class:`LinkSimSpec` metric each reports.
_OPERATIONAL_METRICS = {
    "operational_goodput": "goodput",
    "operational_fer": "fer",
    "latency_quantiles": "latency",
    "stable_throughput": "stable_throughput",
}


@dataclass(frozen=True)
class RelayPair:
    """One ``a <-> b`` terminal pair served by the shared relay.

    Attributes
    ----------
    label:
        Operator-facing pair name (unique within a topology).
    gain_offsets_db:
        Per-link ``(ab, ar, br)`` dB offsets applied to the topology's
        base geometry — where this pair's terminals sit relative to the
        relay. The all-zero default is the base geometry itself.
    """

    label: str
    gain_offsets_db: tuple = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        offsets = tuple(float(x) for x in self.gain_offsets_db)
        object.__setattr__(self, "gain_offsets_db", offsets)
        if not isinstance(self.label, str) or not self.label:
            raise InvalidParameterError(
                f"pair label must be a non-empty string, got {self.label!r}"
            )
        if len(offsets) != 3:
            raise InvalidParameterError(
                f"pair {self.label!r} needs one dB offset per link "
                f"(ab, ar, br), got {self.gain_offsets_db!r}"
            )


@dataclass(frozen=True)
class Topology:
    """Node topology: base channel geometries plus the pairs sharing them.

    Attributes
    ----------
    gains:
        Mean channel geometries — the ``gains`` sweep axis of the grid
        (e.g. relay placements, or a single operating geometry).
    gains_labels:
        Optional operator-facing labels for the ``gains`` axis values
        (e.g. relay positions or swept dB values).
    pairs:
        The terminal pairs sharing the relay. More than one pair (or any
        non-zero offsets) adds an extensible ``pair`` axis to the grid.
    """

    gains: tuple
    gains_labels: tuple | None = None
    pairs: tuple = (RelayPair(label="pair-1"),)

    def __post_init__(self) -> None:
        gains = tuple(self.gains)
        pairs = tuple(self.pairs)
        object.__setattr__(self, "gains", gains)
        object.__setattr__(self, "pairs", pairs)
        if self.gains_labels is not None:
            labels = tuple(str(label) for label in self.gains_labels)
            object.__setattr__(self, "gains_labels", labels)
            if len(labels) != len(gains):
                raise InvalidParameterError(
                    f"{len(gains)} geometries but {len(labels)} gains labels"
                )
        if not gains:
            raise InvalidParameterError("at least one channel geometry required")
        for g in gains:
            if not isinstance(g, LinkGains):
                raise InvalidParameterError(f"{g!r} is not a LinkGains")
        if not pairs:
            raise InvalidParameterError("at least one relay pair required")
        for pair in pairs:
            if not isinstance(pair, RelayPair):
                raise InvalidParameterError(f"{pair!r} is not a RelayPair")
        labels = [pair.label for pair in pairs]
        if len(set(labels)) != len(labels):
            raise InvalidParameterError(f"duplicate pair labels in {labels}")

    @property
    def n_pairs(self) -> int:
        """Number of terminal pairs sharing the relay."""
        return len(self.pairs)

    def pair_axis(self) -> GridAxis | None:
        """The extensible ``pair`` axis, or ``None`` for the trivial case.

        A single all-zero-offset pair is the classic single-pair grid; it
        contributes no axis, so single-pair scenarios keep the exact
        classic 4-axis spec hash.
        """
        if self.n_pairs == 1 and not any(self.pairs[0].gain_offsets_db):
            return None
        return GridAxis(
            name="pair",
            values=tuple(
                {"gain_offsets_db": list(pair.gain_offsets_db)} for pair in self.pairs
            ),
            labels=tuple(pair.label for pair in self.pairs),
        )


#: Set while a :class:`PowerPolicy` factory classmethod is constructing an
#: instance; direct ``PowerPolicy(...)`` calls (the pre-allocation API)
#: see the default and emit a :class:`DeprecationWarning`.
_POLICY_FACTORY: ContextVar[bool] = ContextVar("_POLICY_FACTORY", default=False)


@dataclass(frozen=True)
class PowerPolicy:
    """Transmit-power policy: base sweep, policy backoffs, allocations.

    Construct through the factory classmethods — :meth:`uniform` (every
    node at the swept power, the paper's model), :meth:`per_node`
    (explicit per-node dB offsets) or :meth:`sum_constrained` (splits of
    a total-power budget, arXiv:0810.2746). The bare constructor is the
    deprecated pre-allocation API; it still works (as ``uniform``) but
    warns.

    Attributes
    ----------
    powers_db:
        Base transmit powers in dB (the classic ``power`` axis). For a
        sum-constrained policy these are the *total* budgets.
    offsets_db:
        Policy backoffs/boosts in dB applied on top of every base power.
        More than one value (or any non-zero value) adds an extensible
        ``power_policy`` axis to the grid.
    offset_labels:
        Optional labels for the policy axis values.
    allocations_db:
        Optional per-node ``(a, b, r)`` dB offsets — the power-allocation
        candidates. More than one allocation (or any non-zero one) adds
        an extensible ``power_allocation`` axis to the grid; ``None``
        (the default) keeps the classic one-shared-power model and the
        classic spec hash.
    allocation_labels:
        Optional labels for the allocation axis values (e.g. the split
        fractions a sum-constrained policy was built from).
    name:
        Operator-facing policy name (e.g. ``"fixed"``, ``"backoff"``).
    """

    powers_db: tuple = (10.0,)
    offsets_db: tuple = (0.0,)
    offset_labels: tuple | None = None
    name: str = "fixed"
    allocations_db: tuple | None = None
    allocation_labels: tuple | None = None

    def __post_init__(self) -> None:
        if not _POLICY_FACTORY.get():
            warnings.warn(
                "constructing PowerPolicy directly is deprecated; use "
                "PowerPolicy.uniform, PowerPolicy.per_node or "
                "PowerPolicy.sum_constrained",
                DeprecationWarning,
                stacklevel=3,
            )
        powers = tuple(float(p) for p in self.powers_db)
        offsets = tuple(float(x) for x in self.offsets_db)
        object.__setattr__(self, "powers_db", powers)
        object.__setattr__(self, "offsets_db", offsets)
        if self.offset_labels is not None:
            labels = tuple(str(label) for label in self.offset_labels)
            object.__setattr__(self, "offset_labels", labels)
            if len(labels) != len(offsets):
                raise InvalidParameterError(
                    f"{len(offsets)} offsets but {len(labels)} offset labels"
                )
        if not powers:
            raise InvalidParameterError("at least one power point required")
        if not offsets:
            raise InvalidParameterError("at least one policy offset required")
        if self.allocations_db is not None:
            allocations = tuple(
                tuple(float(x) for x in allocation)
                for allocation in self.allocations_db
            )
            object.__setattr__(self, "allocations_db", allocations)
            if not allocations:
                raise InvalidParameterError(
                    "at least one power allocation required (or None)"
                )
            for allocation in allocations:
                if len(allocation) != 3:
                    raise InvalidParameterError(
                        f"an allocation needs one dB offset per node "
                        f"(a, b, r), got {allocation!r}"
                    )
        if self.allocation_labels is not None:
            if self.allocations_db is None:
                raise InvalidParameterError(
                    "allocation labels require allocations"
                )
            labels = tuple(str(label) for label in self.allocation_labels)
            object.__setattr__(self, "allocation_labels", labels)
            if len(labels) != len(self.allocations_db):
                raise InvalidParameterError(
                    f"{len(self.allocations_db)} allocations but "
                    f"{len(labels)} allocation labels"
                )

    @classmethod
    def _build(cls, **kwargs) -> "PowerPolicy":
        token = _POLICY_FACTORY.set(True)
        try:
            return cls(**kwargs)
        finally:
            _POLICY_FACTORY.reset(token)

    @classmethod
    def uniform(
        cls,
        powers_db=(10.0,),
        offsets_db=(0.0,),
        offset_labels=None,
        *,
        name: str = "fixed",
    ) -> "PowerPolicy":
        """Every node transmits at the swept power — the classic policy."""
        return cls._build(
            powers_db=powers_db,
            offsets_db=offsets_db,
            offset_labels=offset_labels,
            name=name,
        )

    @classmethod
    def per_node(
        cls,
        powers_db,
        allocations_db=((0.0, 0.0, 0.0),),
        labels=None,
        *,
        offsets_db=(0.0,),
        offset_labels=None,
        name: str = "per-node",
    ) -> "PowerPolicy":
        """Explicit per-node ``(a, b, r)`` dB offsets on the swept power."""
        return cls._build(
            powers_db=powers_db,
            offsets_db=offsets_db,
            offset_labels=offset_labels,
            allocations_db=tuple(tuple(a) for a in allocations_db),
            allocation_labels=labels,
            name=name,
        )

    @classmethod
    def sum_constrained(
        cls,
        total_db: float,
        splits,
        *,
        labels=None,
        name: str = "sum-constrained",
    ) -> "PowerPolicy":
        """Split a total power budget across the nodes (arXiv:0810.2746).

        ``total_db`` is the sum-power budget; each split is a
        ``(f_a, f_b, f_r)`` fraction triple (positive, summing to one)
        and node ``i`` transmits at ``f_i * P_total``. Default labels
        render the fractions, e.g. ``"1/3 1/3 1/3"``.
        """
        split_tuples = tuple(tuple(float(f) for f in split) for split in splits)
        if not split_tuples:
            raise InvalidParameterError("at least one power split required")
        for split in split_tuples:
            if len(split) != 3:
                raise InvalidParameterError(
                    f"a split needs one fraction per node (a, b, r), "
                    f"got {split!r}"
                )
            if any(f <= 0 for f in split):
                raise InvalidParameterError(
                    f"split fractions must be positive, got {split!r}"
                )
            if abs(sum(split) - 1.0) > 1e-9:
                raise InvalidParameterError(
                    f"split fractions must sum to 1, got {split!r}"
                )
        allocations = tuple(
            tuple(linear_to_db(f) for f in split) for split in split_tuples
        )
        if labels is None:
            labels = tuple(
                f"{fa:g}/{fb:g}/{fr:g}" for fa, fb, fr in split_tuples
            )
        return cls._build(
            powers_db=(float(total_db),),
            allocations_db=allocations,
            allocation_labels=labels,
            name=name,
        )

    def policy_axis(self) -> GridAxis | None:
        """The extensible ``power_policy`` axis, or ``None`` if trivial."""
        if len(self.offsets_db) == 1 and self.offsets_db[0] == 0.0:
            return None
        labels = self.offset_labels
        if labels is None:
            labels = tuple(f"{x:+g} dB" for x in self.offsets_db)
        return GridAxis(
            name="power_policy",
            values=tuple({"power_db_offset": x} for x in self.offsets_db),
            labels=labels,
        )

    def allocation_axis(self) -> GridAxis | None:
        """The extensible ``power_allocation`` axis, or ``None`` if trivial.

        A single all-zero allocation is the classic shared-power model;
        it contributes no axis, so such policies keep the classic spec
        hash (the PR 4/5 serialize-only-when-set discipline).
        """
        if self.allocations_db is None:
            return None
        if len(self.allocations_db) == 1 and not any(self.allocations_db[0]):
            return None
        labels = self.allocation_labels
        if labels is None:
            labels = tuple(
                "/".join(f"{x:+g}" for x in allocation) + " dB"
                for allocation in self.allocations_db
            )
        return GridAxis(
            name="power_allocation",
            values=tuple(
                {"node_powers_db": list(allocation)}
                for allocation in self.allocations_db
            ),
            labels=labels,
        )


@dataclass(frozen=True)
class Scenario:
    """A named, declarative evaluation scenario.

    Attributes
    ----------
    name:
        Scenario name (the registry key when registered).
    description:
        One-line operator-facing description.
    protocols:
        Protocol set to compare (the leading grid axis).
    topology:
        Terminal/relay topology, including the ``pairs`` axis.
    power:
        Transmit-power policy, including the base power sweep.
    fading:
        Quasi-static fading model; ``None`` evaluates the mean geometries.
    objective:
        One of :data:`OBJECTIVES`.
    link:
        Link-level simulation parameters; required by (and only valid
        with) the operational and traffic objectives, whose
        ``LinkSimSpec.metric`` must match the objective.
    grounding:
        Which paper (or result) this scenario reproduces or extends —
        pure catalog metadata: it does not affect the lowered spec, its
        content hash, or any cache key.
    """

    name: str
    description: str
    protocols: tuple
    topology: Topology
    power: PowerPolicy = field(default_factory=PowerPolicy.uniform)
    fading: FadingSpec | None = None
    objective: str = "sum_rate"
    link: LinkSimSpec | None = None
    grounding: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        if not isinstance(self.name, str) or not self.name:
            raise InvalidParameterError(
                f"scenario name must be a non-empty string, got {self.name!r}"
            )
        if not isinstance(self.grounding, str):
            raise InvalidParameterError(
                f"scenario grounding must be a string, got {self.grounding!r}"
            )
        for p in self.protocols:
            if not isinstance(p, Protocol):
                raise InvalidParameterError(f"{p!r} is not a Protocol")
        if self.objective not in OBJECTIVES:
            raise InvalidParameterError(
                f"unknown objective {self.objective!r}; choose from {OBJECTIVES}"
            )
        metric = _OPERATIONAL_METRICS.get(self.objective)
        if (metric is not None) != (self.link is not None):
            raise InvalidParameterError(
                "link simulation parameters and an operational objective "
                "go together: set both or neither"
            )
        if metric is not None and self.link.metric != metric:
            raise InvalidParameterError(
                f"objective {self.objective!r} reports the {metric!r} metric, "
                f"but the link spec is configured for {self.link.metric!r}"
            )
        if self.link is not None and self.power.allocation_axis() is not None:
            raise InvalidParameterError(
                "operational scenarios model one shared transmit power; "
                "power allocations require an analytic objective"
            )

    @property
    def n_pairs(self) -> int:
        """Number of terminal pairs sharing the relay."""
        return self.topology.n_pairs

    def to_campaign_spec(self) -> CampaignSpec:
        """Lower the scenario to a declarative campaign grid.

        Trivial pair/policy dimensions are omitted, so a classic
        single-pair fixed-power scenario lowers to a 4-axis spec whose
        content hash — and therefore cache entries and shard artifacts —
        is identical to the pre-scenario API.
        """
        extra = []
        pair_axis = self.topology.pair_axis()
        if pair_axis is not None:
            extra.append(pair_axis)
        policy_axis = self.power.policy_axis()
        if policy_axis is not None:
            extra.append(policy_axis)
        allocation_axis = self.power.allocation_axis()
        if allocation_axis is not None:
            extra.append(allocation_axis)
        return CampaignSpec(
            protocols=self.protocols,
            powers_db=self.power.powers_db,
            gains=self.topology.gains,
            fading=self.fading,
            extra_axes=tuple(extra),
            link=self.link,
        )

    @classmethod
    def from_campaign_spec(
        cls,
        spec: CampaignSpec,
        *,
        name: str,
        description: str = "",
        objective: str = "sum_rate",
    ) -> "Scenario":
        """Wrap an existing campaign spec as a scenario.

        Supports classic specs and specs whose extensible axes are the
        scenario-shaped ``pair`` / ``power_policy`` axes; the round trip
        ``to_campaign_spec()`` is verified to reproduce ``spec``'s
        content hash, so facade-routed callers keep their cache keys and
        shard artifacts. (Cosmetic axis labels may be synthesized where
        the spec had none; labels are excluded from the hash.)
        """
        pairs = (RelayPair(label="pair-1"),)
        offsets_db = (0.0,)
        offset_labels = None
        allocations_db = None
        allocation_labels = None
        for axis in spec.extra_axes:
            if axis.name == "pair":
                labels = axis.labels
                if labels is None:
                    labels = tuple(f"pair-{i + 1}" for i in range(len(axis)))
                pairs = tuple(
                    RelayPair(
                        label=label,
                        gain_offsets_db=tuple(
                            value.get("gain_offsets_db", (0.0, 0.0, 0.0))
                        ),
                    )
                    for label, value in zip(labels, axis.values)
                )
            elif axis.name == "power_policy":
                offsets_db = tuple(
                    float(value.get("power_db_offset", 0.0)) for value in axis.values
                )
                offset_labels = axis.labels
            elif axis.name == "power_allocation":
                allocations_db = tuple(
                    tuple(value.get("node_powers_db", (0.0, 0.0, 0.0)))
                    for value in axis.values
                )
                allocation_labels = axis.labels
            else:
                raise InvalidParameterError(
                    f"axis {axis.name!r} cannot be expressed as a scenario"
                )
        if spec.link is not None and objective == "sum_rate":
            # An operational spec's values *are* its link metric; reflect
            # that in the default objective rather than mislabeling them.
            objective = {
                "fer": "operational_fer",
                "latency": "latency_quantiles",
                "stable_throughput": "stable_throughput",
            }.get(spec.link.metric, "operational_goodput")
        if allocations_db is None:
            power = PowerPolicy.uniform(
                powers_db=spec.powers_db,
                offsets_db=offsets_db,
                offset_labels=offset_labels,
            )
        else:
            power = PowerPolicy.per_node(
                spec.powers_db,
                allocations_db,
                labels=allocation_labels,
                offsets_db=offsets_db,
                offset_labels=offset_labels,
            )
        scenario = cls(
            name=name,
            description=description,
            protocols=spec.protocols,
            topology=Topology(gains=spec.gains, pairs=pairs),
            power=power,
            fading=spec.fading,
            objective=objective,
            link=spec.link,
        )
        if scenario.to_campaign_spec().spec_hash() != spec.spec_hash():
            raise InvalidParameterError(
                "campaign spec does not round-trip through a scenario"
            )
        return scenario
