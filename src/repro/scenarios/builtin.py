"""Built-in scenarios: the paper's artifacts plus the first extensions.

Every figure-style workload in this library is one of these scenarios
evaluated through :func:`repro.api.evaluate`; the factories are also
importable directly so experiments can parameterize them (e.g.
``fig3_placement_scenario(config)`` for a custom sweep).

Registered names:

* ``fig3-placement`` / ``fig3-symmetric`` — the Fig. 3 sum-rate sweeps;
* ``fig4-operating-points`` — the Fig. 4 gain triple at both panel powers;
* ``fading-ensemble`` — the Section IV quasi-static Rayleigh ensemble;
* ``two-pair-round-robin`` — the first multi-pair grid: two terminal
  pairs share the relay round-robin (arXiv:1002.0123 baseline);
* ``operational-goodput`` — the first link-level workload: measured
  decode-and-forward goodput of the production codec on the paper's
  geometry, via the batched simulation kernel;
* ``operational-fading-fer`` — link-level slow-fading frame error rates:
  FadingSpec-drawn geometries × an SNR sweep, evaluated by the
  cells-fused simulation kernel under adaptive round budgets (cf. the
  relay fading FER studies of arXiv:0903.1502 and the half-duplex
  outage analysis of arXiv:cs/0506018);
* ``operational-deepfade-fer`` — rare-event frame error rates under
  importance sampling: fading draws spanning deep fades through clean
  cells, measured with the twisted-noise proposal of
  :mod:`repro.simulation.sampling` so the low-FER cells resolve at
  sample sizes vanilla Monte Carlo cannot afford; low-FER cells
  cross-validate against the analytic outage curves of ``repro.core``;
* ``power-allocation-sweep`` — sum-power-constrained splits across a
  relay-placement axis, reporting the optimum split per cell
  (arXiv:0810.2746 direction);
* ``finite-snr-dmt`` — the Rayleigh outage ensemble across an SNR sweep,
  the raw material of finite-SNR diversity–multiplexing curves
  (post-processed by :func:`repro.experiments.dmt.finite_snr_dmt`);
* ``queueing-latency`` — the first traffic workload: Poisson arrivals
  into finite FIFO queues served by stop-and-wait ARQ over the measured
  link, reporting the 95th-percentile delivery latency in slots;
* ``multi-pair-scheduling`` — two asymmetrically-loaded pairs share the
  relay under a pluggable scheduler (``--param scheduler=...``); the
  objective is the stable-throughput knee of an offered-load sweep
  (the queueing side of the arXiv:1002.0123 topology).
"""

from __future__ import annotations

import numpy as np

from ..campaign.spec import FadingSpec, LinkSimSpec, TrafficSpec
from ..channels.gains import LinkGains
from ..channels.pathloss import linear_relay_gains
from ..core.protocols import Protocol
from ..experiments.config import FIG3_DEFAULT, Fig3Config
from ..simulation.sampling import ImportanceSamplingSpec
from .base import PowerPolicy, RelayPair, Scenario, Topology
from .registry import register_scenario

__all__ = [
    "PAPER_PROTOCOLS",
    "fig3_placement_scenario",
    "fig3_symmetric_scenario",
    "fig4_operating_points_scenario",
    "fading_ensemble_scenario",
    "power_sweep_scenario",
    "two_pair_round_robin_scenario",
    "operational_goodput_scenario",
    "operational_fading_fer_scenario",
    "operational_deepfade_fer_scenario",
    "relay_share_splits",
    "power_allocation_sweep_scenario",
    "finite_snr_dmt_scenario",
    "queueing_latency_scenario",
    "multi_pair_scheduling_scenario",
]

#: The four protocols of the paper's figures, in figure column order.
PAPER_PROTOCOLS = (Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC)

#: The Fig. 4 gain triple (G_ab = -7 dB, G_ar = 0 dB, G_br = 5 dB).
_PAPER_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)


@register_scenario(name="fig3-placement")
def fig3_placement_scenario(
    config: Fig3Config = FIG3_DEFAULT, protocols=PAPER_PROTOCOLS
) -> Scenario:
    """The Fig. 3 relay-placement sweep as a scenario."""
    gains = tuple(
        linear_relay_gains(float(f), exponent=config.path_loss_exponent)
        for f in config.relay_fractions
    )
    return Scenario(
        name="fig3-placement",
        description="Fig. 3 relay-placement sweep of the protocol sum rates",
        grounding="Kim, Mitran & Tarokh, ICDCS Workshops 2007, Fig. 3",
        protocols=tuple(protocols),
        topology=Topology(
            gains=gains,
            gains_labels=tuple(f"{f:g}" for f in config.relay_fractions),
        ),
        power=PowerPolicy.uniform(powers_db=(config.power_db,)),
    )


@register_scenario(name="fig3-symmetric")
def fig3_symmetric_scenario(
    config: Fig3Config = FIG3_DEFAULT, protocols=PAPER_PROTOCOLS
) -> Scenario:
    """The Fig. 3 symmetric relay-gain sweep as a scenario."""
    gains = tuple(
        LinkGains.from_db(config.gab_db, float(g), float(g))
        for g in config.symmetric_gains_db
    )
    return Scenario(
        name="fig3-symmetric",
        description="Fig. 3 symmetric relay-gain sweep of the protocol sum rates",
        grounding="Kim, Mitran & Tarokh, ICDCS Workshops 2007, Fig. 3",
        protocols=tuple(protocols),
        topology=Topology(
            gains=gains,
            gains_labels=tuple(f"{g:g} dB" for g in config.symmetric_gains_db),
        ),
        power=PowerPolicy.uniform(powers_db=(config.power_db,)),
    )


@register_scenario(name="fig4-operating-points")
def fig4_operating_points_scenario() -> Scenario:
    """The Fig. 4 gain triple at both panel powers (P = 0 and 10 dB)."""
    return Scenario(
        name="fig4-operating-points",
        description="Fig. 4 operating points: paper gains at P = 0 and 10 dB",
        grounding="Kim, Mitran & Tarokh, ICDCS Workshops 2007, Fig. 4",
        protocols=PAPER_PROTOCOLS,
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=(0.0, 10.0)),
    )


@register_scenario(name="fading-ensemble")
def fading_ensemble_scenario() -> Scenario:
    """The Section IV Rayleigh ensemble on the Fig. 4 geometry.

    Lowers to exactly the campaign spec the ``fading`` experiment has
    always evaluated (same content hash), so cached results carry over.
    """
    return Scenario(
        name="fading-ensemble",
        description="Section IV Rayleigh fading ensemble at both panel powers",
        grounding="Kim, Mitran & Tarokh, ICDCS Workshops 2007, Sec. IV",
        protocols=PAPER_PROTOCOLS,
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=(0.0, 10.0)),
        fading=FadingSpec(n_draws=200, seed=17),
    )


def power_sweep_scenario(
    gains: LinkGains, powers_db, protocols=PAPER_PROTOCOLS
) -> Scenario:
    """A transmit-power sweep on one channel geometry as a scenario."""
    return Scenario(
        name="power-sweep",
        description="protocol sum rates across a transmit-power sweep",
        grounding="Kim, Mitran & Tarokh, ICDCS Workshops 2007, Sec. III",
        protocols=tuple(protocols),
        topology=Topology(gains=(gains,)),
        power=PowerPolicy.uniform(powers_db=tuple(powers_db)),
    )


@register_scenario(name="operational-goodput")
def operational_goodput_scenario() -> Scenario:
    """Measured DF goodput of the production codec at the paper's geometry.

    The operational check of the paper's headline claim, as a first-class
    campaign workload: every cell runs the concrete CRC + convolutional +
    BPSK + SIC + XOR-forwarding system through the batched link-level
    simulation kernel at P = 12 dB (comfortably above the codec's
    operating point) and reports goodput in bits/symbol — directly
    comparable to the analytic sum-rate bounds of ``fig4-operating-points``.
    """
    return Scenario(
        name="operational-goodput",
        description="measured link-level DF goodput at the paper's geometry",
        grounding="Kim, Mitran & Tarokh, ICDCS Workshops 2007 (operational check)",
        protocols=PAPER_PROTOCOLS,
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=(12.0,)),
        objective="operational_goodput",
        link=LinkSimSpec(n_rounds=24, payload_bits=128, seed=0),
    )


@register_scenario(name="operational-fading-fer")
def operational_fading_fer_scenario() -> Scenario:
    """Link-level FER of the production codec under slow Rayleigh fading.

    The first operational *fading* workload: every grid cell draws a
    quasi-static channel around the paper's geometry (the ``draw`` axis)
    and measures the combined frame error rate of the concrete DF system
    across an SNR sweep spanning the codec's waterfall. Cells run under
    an adaptive round budget: deep fades resolve their (high) FER after
    the first wave, while clean cells escalate toward ``max_rounds`` —
    the allocation pattern that makes slow-fading FER curves affordable
    (cf. arXiv:0903.1502; importance sampling is the next refinement).
    Evaluated by the cells-fused kernel, so the whole grid shares one
    decode pipeline per wave.
    """
    return Scenario(
        name="operational-fading-fer",
        description="link-level DF frame error rate over fading draws and SNR",
        grounding="fading FER methodology of arXiv:0903.1502",
        protocols=(Protocol.DT, Protocol.MABC, Protocol.TDBC),
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=(4.0, 7.0, 10.0)),
        fading=FadingSpec(n_draws=4, seed=23),
        objective="operational_fer",
        link=LinkSimSpec(
            n_rounds=12,
            payload_bits=64,
            seed=7,
            metric="fer",
            target_rel_error=0.35,
            max_rounds=48,
        ),
    )


@register_scenario(name="operational-deepfade-fer")
def operational_deepfade_fer_scenario() -> Scenario:
    """Rare-event FER across fading draws, importance-sampled.

    The deep-fade companion of ``operational-fading-fer``: a strong
    direct-link geometry whose Rayleigh draws span genuine deep fades
    (FER near 1) through clean cells whose frame errors are far too
    rare for vanilla Monte Carlo at these budgets. Every cell runs
    under the twisted-noise proposal of
    :mod:`repro.simulation.sampling` — a mild variance inflation plus a
    transmit-aware mean shift toward the decision boundary — with the
    exact per-row likelihood ratio keeping the weighted FER unbiased
    and the ESS guard refusing to resolve on degenerate weights. DT
    and NAIVE4 both factorize per direction, so each direction's
    estimator only carries the likelihood-ratio factors of its own
    phases, and ``target_snr_db`` parameterizes the twist per cell:
    deep fades fall back to (near-)vanilla draws while clean cells
    take the full inflation. The
    low-FER cells are the ones whose realized gains the analytic
    machinery of ``repro.core`` places safely outside outage, which is
    what the cross-validation tests check (cf. arXiv:0903.1502).
    """
    return Scenario(
        name="operational-deepfade-fer",
        description="importance-sampled rare-event FER over deep-fade draws",
        grounding="deep-fade FER variance reduction of arXiv:0903.1502",
        protocols=(Protocol.DT, Protocol.NAIVE4),
        topology=Topology(gains=(LinkGains.from_db(1.5, 1.0, 1.0),)),
        power=PowerPolicy.uniform(powers_db=(0.0, 3.0)),
        fading=FadingSpec(n_draws=3, seed=31),
        objective="operational_fer",
        link=LinkSimSpec(
            n_rounds=256,
            payload_bits=16,
            seed=11,
            metric="fer",
            target_rel_error=0.5,
            max_rounds=16384,
            importance_sampling=ImportanceSamplingSpec(
                noise_scale=1.08, noise_shift=0.2, target_snr_db=2.0
            ),
        ),
    )


@register_scenario(name="two-pair-round-robin")
def two_pair_round_robin_scenario() -> Scenario:
    """Two terminal pairs sharing the relay under round-robin scheduling.

    The arXiv:1002.0123 baseline: each pair keeps the paper's
    per-pair bounds on its own geometry (pair 2 sits closer to the relay
    and further from its partner), the relay serves the pairs in equal
    time shares, and the network objective is the pair-axis mean of the
    per-pair optimal sum rates.
    """
    return Scenario(
        name="two-pair-round-robin",
        description="two pairs share the relay round-robin (multi-pair baseline)",
        grounding="multi-pair baseline of Kim, Smida & Devroye, arXiv:1002.0123",
        protocols=PAPER_PROTOCOLS,
        topology=Topology(
            gains=(_PAPER_GAINS,),
            pairs=(
                RelayPair(label="pair-1"),
                RelayPair(label="pair-2", gain_offsets_db=(-2.0, 3.0, -3.0)),
            ),
        ),
        power=PowerPolicy.uniform(powers_db=(10.0,)),
        fading=FadingSpec(n_draws=25, seed=11),
        objective="round_robin_sum_rate",
    )


def relay_share_splits(n_splits: int = 4) -> tuple:
    """Sum-power splits sweeping the relay's share of the budget.

    The one-parameter family ``((1 - f_r) / 2, (1 - f_r) / 2, f_r)`` with
    ``f_r`` evenly spaced in ``[1/6, 2/3]`` — sources symmetric, the relay
    from starved to dominant. The exact uniform split ``(1/3, 1/3, 1/3)``
    is always included (appended when the sweep misses it), so the
    optimum over the candidates weakly dominates uniform allocation by
    construction.
    """
    uniform = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)
    splits = []
    for share in np.linspace(1.0 / 6.0, 2.0 / 3.0, n_splits):
        source_share = (1.0 - float(share)) / 2.0
        split = (source_share, source_share, float(share))
        # Snap near-uniform sweep points to the exact triple: in floats
        # ``(1 - 1/3) / 2 != 1/3``, and the dominance guarantee wants
        # uniform represented exactly, not within an ulp.
        if max(abs(f - u) for f, u in zip(split, uniform)) < 1e-9:
            split = uniform
        splits.append(split)
    if uniform not in splits:
        splits.append(uniform)
    return tuple(splits)


@register_scenario(name="power-allocation-sweep")
def power_allocation_sweep_scenario(
    total_db: float = 16.0,
    n_splits: int = 4,
    n_placements: int = 5,
    protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
) -> Scenario:
    """Optimum split of a sum-power budget across a placement sweep.

    The arXiv:0810.2746 question on the paper's protocols: with the
    total transmit power fixed at ``total_db``, how should it be split
    between the two sources and the relay, and how does the optimum
    split move as the relay slides between the terminals? Every
    candidate split is one value of the ``power_allocation`` axis; the
    ``allocation_optimum_sum_rate`` objective reduces that axis by max,
    and ``EvaluationResult.optimum_along("power_allocation")`` names the
    winning split per cell.
    """
    fractions = np.linspace(0.2, 0.8, n_placements)
    gains = tuple(linear_relay_gains(float(f)) for f in fractions)
    return Scenario(
        name="power-allocation-sweep",
        description="optimum sum-power split across a relay-placement sweep",
        grounding="optimum power allocation of Vaze & Heath... arXiv:0810.2746",
        protocols=tuple(protocols),
        topology=Topology(
            gains=gains,
            gains_labels=tuple(f"{f:g}" for f in fractions),
        ),
        power=PowerPolicy.sum_constrained(total_db, relay_share_splits(n_splits)),
        objective="allocation_optimum_sum_rate",
    )


@register_scenario(name="finite-snr-dmt")
def finite_snr_dmt_scenario(
    snr_points_db=(5.0, 10.0, 15.0, 20.0),
    n_draws: int = 60,
    seed: int = 29,
    protocols=PAPER_PROTOCOLS,
) -> Scenario:
    """Rayleigh outage ensembles across an SNR sweep for finite-SNR DMT.

    Draws one paired quasi-static Rayleigh ensemble on the paper's
    geometry and evaluates every protocol at each SNR point — exactly
    the outage raw material of :func:`repro.simulation.outage_capacity
    .sample_outage_curve`, as a cacheable campaign grid. The
    finite-SNR diversity–multiplexing curves of arXiv:0810.2746 are
    post-processed from the result by
    :func:`repro.experiments.dmt.finite_snr_dmt`.
    """
    return Scenario(
        name="finite-snr-dmt",
        description="Rayleigh outage ensemble across SNR for finite-SNR DMT",
        grounding="finite-SNR diversity-multiplexing tradeoff of arXiv:0810.2746",
        protocols=tuple(protocols),
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=tuple(float(p) for p in snr_points_db)),
        fading=FadingSpec(n_draws=int(n_draws), seed=int(seed)),
    )


@register_scenario(name="queueing-latency")
def queueing_latency_scenario() -> Scenario:
    """Delivery-latency quantiles of an ARQ link under Poisson traffic.

    The first traffic workload: one pair on the paper's geometry,
    Poisson frame arrivals into finite FIFO queues, each slot running
    one measured protocol round through the link kernel, deliveries
    governed by stop-and-wait ARQ. The reported value per cell is the
    95th-percentile sojourn time in slots — the deployment-facing
    counterpart of the per-round frame error rates of
    ``operational-fading-fer``.
    """
    return Scenario(
        name="queueing-latency",
        description="95th-percentile ARQ delivery latency under Poisson arrivals",
        grounding="queueing layer over Kim, Mitran & Tarokh, ICDCS Workshops 2007",
        protocols=(Protocol.MABC, Protocol.TDBC),
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=(8.0, 12.0)),
        objective="latency_quantiles",
        link=LinkSimSpec(
            n_rounds=144,
            payload_bits=64,
            seed=3,
            metric="latency",
            traffic=TrafficSpec(
                rates=(0.55,),
                buffer_frames=12,
                arq_limit=4,
            ),
        ),
    )


@register_scenario(name="multi-pair-scheduling")
def multi_pair_scheduling_scenario(scheduler: str = "opportunistic") -> Scenario:
    """Stable-throughput knee of two asymmetrically-loaded relay pairs.

    The queueing side of the arXiv:1002.0123 topology: pair 1 carries
    four times pair 2's load on the paper's geometry while pair 2 sits
    closer to the relay, and one relay serves both under ``scheduler``
    (``--param scheduler=round-robin|longest-queue|opportunistic``).
    Each cell sweeps the offered-load scale factors and reports the
    largest nominal offered rate (frames/slot) the discipline sustains.
    Work-conserving disciplines weakly dominate the fixed-rotation
    round-robin baseline here (test-asserted): rotating into an empty
    queue wastes slots that longest-queue-first and the channel-aware
    opportunistic scheduler reclaim.
    """
    return Scenario(
        name="multi-pair-scheduling",
        description="stable-throughput knee of two pairs under a relay scheduler",
        grounding="multi-pair scheduling over Kim, Smida & Devroye, arXiv:1002.0123",
        protocols=(Protocol.MABC, Protocol.TDBC),
        topology=Topology(gains=(_PAPER_GAINS,)),
        power=PowerPolicy.uniform(powers_db=(10.0,)),
        objective="stable_throughput",
        link=LinkSimSpec(
            n_rounds=96,
            payload_bits=64,
            seed=5,
            metric="stable_throughput",
            traffic=TrafficSpec(
                rates=(0.5, 0.125),
                scheduler=scheduler,
                buffer_frames=10,
                arq_limit=3,
                pair_offsets_db=((0.0, 0.0, 0.0), (-2.0, 3.0, -3.0)),
                offered_loads=(0.4, 0.6, 0.8, 1.0, 1.2),
            ),
        ),
    )
