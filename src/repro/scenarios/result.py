"""Labeled evaluation results: the facade's return type.

An :class:`EvaluationResult` pairs the scenario that was evaluated with
the campaign result that evaluated it, and adds axis-aware access on top
of the raw grid: axes are addressed by *name* (``"protocol"``, ``"pair"``,
``"gains"``, ...), labels come from the scenario where it knows better
than the spec (pair labels, sweep labels), and the scenario's objective
determines how the grid reduces to reported numbers (e.g. round-robin
multi-pair scheduling reduces the ``pair`` axis by its time-share mean).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..campaign.engine import CampaignResult
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .base import Scenario

__all__ = ["EvaluationResult"]


@dataclass(frozen=True)
class EvaluationResult:
    """A scenario evaluation: labeled grid values plus execution metadata.

    Attributes
    ----------
    scenario:
        The scenario that was evaluated.
    campaign:
        The underlying campaign result (grid values in
        ``spec.grid_shape`` order, cache/shard accounting, timings).
    """

    scenario: Scenario
    campaign: CampaignResult

    @property
    def spec(self):
        """The campaign spec the scenario lowered to."""
        return self.campaign.spec

    @property
    def values(self) -> np.ndarray:
        """Raw grid values, shape ``spec.grid_shape``."""
        return self.campaign.values

    @property
    def axis_names(self) -> tuple:
        """Ordered names of the grid dimensions."""
        return self.spec.axis_names

    @property
    def executor_name(self) -> str:
        """Executor that computed the values (see ``CampaignResult``)."""
        return self.campaign.executor_name

    @property
    def from_cache(self) -> bool:
        """Whether every evaluated cell came from the on-disk store."""
        return self.campaign.from_cache

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock time of the evaluation (or cache read)."""
        return self.campaign.elapsed_seconds

    @property
    def chunk_retries(self) -> int:
        """Transient chunk failures that were retried during this run."""
        return self.campaign.chunk_retries

    @property
    def pool_rebuilds(self) -> int:
        """Worker pools rebuilt after dying mid-run (self-healing)."""
        return self.campaign.pool_rebuilds

    @property
    def unresolved_cells(self) -> int | None:
        """Adaptive cells that exhausted ``max_rounds`` without resolving.

        ``None`` when unknown (non-adaptive scenario, all-cache run, or
        out-of-process evaluation) — see
        :attr:`repro.campaign.engine.CampaignResult.unresolved_cells`.
        """
        return self.campaign.unresolved_cells

    def axis_index(self, name: str) -> int:
        """Position of a named axis in the grid."""
        try:
            return self.axis_names.index(name)
        except ValueError:
            raise InvalidParameterError(
                f"no axis {name!r}; axes are {self.axis_names}"
            ) from None

    def axis_labels(self, name: str) -> tuple:
        """Operator-facing labels of one axis's values.

        Scenario-level labels (pair labels, sweep labels) win over the
        spec's generic ``str(value)`` fallbacks.
        """
        if name == "gains" and self.scenario.topology.gains_labels is not None:
            return self.scenario.topology.gains_labels
        position = self.axis_index(name)
        return self.spec.axes[position].display_labels

    @property
    def pair_axis(self) -> int | None:
        """Position of the ``pair`` axis, or ``None`` for one-pair grids."""
        return self.axis_names.index("pair") if "pair" in self.axis_names else None

    @property
    def allocation_axis(self) -> int | None:
        """Position of the ``power_allocation`` axis, or ``None``."""
        names = self.axis_names
        return (
            names.index("power_allocation")
            if "power_allocation" in names
            else None
        )

    def objective_values(self) -> np.ndarray:
        """Grid values reduced according to the scenario's objective.

        ``sum_rate`` returns the grid unreduced. ``round_robin_sum_rate``
        reduces the ``pair`` axis by its mean: under round-robin
        scheduling the shared relay serves each of the ``K`` pairs a
        ``1/K`` time share, so the network sum rate is
        ``sum_k (1/K) * R_k`` — the pair-axis mean of the per-pair
        optimal sum rates. ``allocation_optimum_sum_rate`` reduces the
        ``power_allocation`` axis by its max: each remaining cell reports
        the best sum rate any candidate power split achieves. The
        operational and traffic objectives need no reduction — their
        kernels already report one number per cell (multi-pair traffic
        structure lives *inside* the cell, on ``TrafficSpec``).
        """
        values = self.campaign.values
        if self.scenario.objective == "round_robin_sum_rate":
            pair_axis = self.pair_axis
            if pair_axis is not None:
                return values.mean(axis=pair_axis)
        if self.scenario.objective == "allocation_optimum_sum_rate":
            allocation_axis = self.allocation_axis
            if allocation_axis is not None:
                return values.max(axis=allocation_axis)
        return values

    def optimum_along(self, name: str) -> tuple:
        """Best value and argmax label along a named axis, per cell.

        Returns ``(values, labels)``: ``values`` is the grid with axis
        ``name`` reduced by ``max``; ``labels`` is an equally-shaped
        object array naming the axis value that attains each maximum
        (e.g. the optimum power split of every
        ``(protocol, power, gains, draw)`` cell of an allocation sweep).
        """
        position = self.axis_index(name)
        values = self.campaign.values
        axis_labels = np.asarray(self.axis_labels(name), dtype=object)
        best = values.max(axis=position)
        labels = axis_labels[values.argmax(axis=position)]
        return best, labels

    def objective_rows(self) -> list:
        """Per ``(protocol, power)`` table rows of the mean objective."""
        reduced = self.objective_values()
        rows = []
        for pi, protocol in enumerate(self.spec.protocols):
            for wi, power_db in enumerate(self.spec.powers_db):
                rows.append(
                    [protocol.name, float(power_db), float(reduced[pi, wi].mean())]
                )
        return rows

    def ergodic_mean(self, protocol: Protocol, power_db: float) -> float:
        """Ensemble/grid average sum rate of one (protocol, power) slice."""
        return self.campaign.ergodic_mean(protocol, power_db)

    def outage_rate(self, protocol: Protocol, power_db: float, epsilon: float) -> float:
        """ε-quantile of the slice's sum-rate distribution."""
        return self.campaign.outage_rate(protocol, power_db, epsilon)

    def summary_rows(self, *, epsilon: float = 0.1) -> list:
        """Per (protocol, power) summary rows (see ``CampaignResult``)."""
        return self.campaign.summary_rows(epsilon=epsilon)
