"""The scenario registry: name -> scenario factory.

Scenarios register either as ready-made :class:`~repro.scenarios.base
.Scenario` instances or as zero-argument factories (so construction stays
lazy), and are resolved by name everywhere a scenario is accepted —
``repro.api.evaluate("fig3-placement")``, the ``repro scenarios`` CLI,
and any user code::

    @register_scenario(name="my-sweep")
    def my_sweep():
        return Scenario(...)

    evaluate("my-sweep")
"""

from __future__ import annotations

import inspect

from ..exceptions import InvalidParameterError
from .base import Scenario

__all__ = [
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "list_scenarios",
]

#: Registered factories, keyed by scenario name.
_REGISTRY: dict = {}


def register_scenario(target=None, *, name: str | None = None, replace: bool = False):
    """Register a scenario (or scenario factory) under a name.

    Usable three ways::

        register_scenario(scenario)                 # a Scenario instance
        @register_scenario                          # factory, name derived
        @register_scenario(name="fig3-placement")   # factory, explicit name

    A factory is any zero-argument callable returning a
    :class:`Scenario`; its default name is the function name with
    underscores mapped to dashes. Registering an existing name raises
    unless ``replace=True``.
    """
    if target is None:
        return lambda factory: register_scenario(factory, name=name, replace=replace)
    if isinstance(target, Scenario):
        _add(name or target.name, lambda: target, replace)
        return target
    if callable(target):
        derived = getattr(target, "__name__", "").replace("_", "-")
        _add(name or derived, target, replace)
        return target
    raise InvalidParameterError(
        f"expected a Scenario or a zero-argument factory, got {target!r}"
    )


def _add(name: str, factory, replace: bool) -> None:
    if not isinstance(name, str) or not name:
        raise InvalidParameterError(
            f"scenario name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise InvalidParameterError(
            f"scenario {name!r} is already registered; pass replace=True "
            "to overwrite it"
        )
    _REGISTRY[name] = factory


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str, **params) -> Scenario:
    """Resolve a registered scenario by name.

    Keyword ``params`` are forwarded to the scenario's factory (e.g.
    sweep granularity or SNR points of a parameterized scenario); they
    are validated against the factory's signature up front, so a typo'd
    or unsupported parameter fails with a clear error instead of a bare
    ``TypeError``. Scenarios registered as ready-made instances accept
    no parameters.
    """
    if name not in _REGISTRY:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; registered: {list_scenarios()}"
        )
    factory = _REGISTRY[name]
    if params:
        try:
            inspect.signature(factory).bind_partial(**params)
        except TypeError as error:
            raise InvalidParameterError(
                f"scenario {name!r} does not accept parameters "
                f"{sorted(params)}: {error}"
            ) from None
    scenario = factory(**params)
    if not isinstance(scenario, Scenario):
        raise InvalidParameterError(
            f"factory for {name!r} returned {scenario!r}, not a Scenario"
        )
    return scenario


def list_scenarios() -> tuple:
    """Names of every registered scenario, sorted."""
    return tuple(sorted(_REGISTRY))
