"""Scenario request wire format: how clients name work to the daemon.

The ``repro serve`` daemon (:mod:`repro.serve`) accepts evaluation
requests over a socket; the part of a request that says *what* to
evaluate is a **scenario reference** — a plain-JSON mapping in one of two
shapes::

    {"name": "fig3-placement"}                 # a registered scenario
    {"spec": {...}, "objective": "sum_rate",   # an inline campaign spec
     "label": "my-adhoc-grid"}

The name form resolves through the scenario registry on the *server*
(clients need not carry the factory code). The inline form ships the
campaign spec's canonical plain-data dict (:meth:`CampaignSpec.to_dict`)
and is re-validated server-side by lowering it back through
:meth:`Scenario.from_campaign_spec`, which proves the spec round-trips to
the same content hash — so a request can never evaluate a different grid
than the one it hashed to.

Both shapes resolve to a :class:`~repro.scenarios.base.Scenario`, and the
daemon deduplicates in-flight requests by the *lowered spec's* content
hash: two clients asking for the same grid — one by name, one inline —
share a single execution.
"""

from __future__ import annotations

from ..campaign.spec import CampaignSpec
from ..exceptions import InvalidParameterError
from .base import OBJECTIVES, Scenario
from .registry import get_scenario

__all__ = ["scenario_to_request", "request_to_scenario"]

#: Keys a scenario reference mapping may carry.
_REQUEST_KEYS = frozenset({"name", "spec", "objective", "label"})

#: Fallback label of an inline request that names none.
_DEFAULT_LABEL = "wire-request"


def scenario_to_request(scenario_or_name) -> dict:
    """The wire form of a scenario (registered name or inline spec).

    Strings become the compact name form (resolved against the server's
    registry); :class:`Scenario` instances ship their lowered campaign
    spec inline, so ad-hoc scenarios need no server-side registration.
    """
    if isinstance(scenario_or_name, str):
        return {"name": scenario_or_name}
    if isinstance(scenario_or_name, Scenario):
        scenario = scenario_or_name
        return {
            "spec": scenario.to_campaign_spec().to_dict(),
            "objective": scenario.objective,
            "label": scenario.name,
        }
    raise InvalidParameterError(
        "expected a Scenario or a registered scenario name, "
        f"got {scenario_or_name!r}"
    )


def request_to_scenario(reference) -> Scenario:
    """Resolve a scenario reference mapping back into a scenario.

    The inverse of :func:`scenario_to_request`, applied server-side.
    Raises :class:`~repro.exceptions.InvalidParameterError` on malformed
    references — unknown keys, both or neither of ``name``/``spec``, an
    unknown registered name, a spec that does not round-trip, or an
    unsupported objective.
    """
    if not isinstance(reference, dict):
        raise InvalidParameterError(
            f"scenario reference must be a mapping, got {reference!r}"
        )
    unknown = set(reference) - _REQUEST_KEYS
    if unknown:
        raise InvalidParameterError(
            f"unknown scenario reference keys {sorted(unknown)}; "
            f"supported: {sorted(_REQUEST_KEYS)}"
        )
    name = reference.get("name")
    spec_data = reference.get("spec")
    if (name is None) == (spec_data is None):
        raise InvalidParameterError(
            "a scenario reference carries exactly one of 'name' or 'spec'"
        )
    if name is not None:
        if not isinstance(name, str):
            raise InvalidParameterError(f"scenario name must be a string, got {name!r}")
        return get_scenario(name)
    if not isinstance(spec_data, dict):
        raise InvalidParameterError(
            f"inline scenario spec must be a mapping, got {spec_data!r}"
        )
    objective = reference.get("objective", "sum_rate")
    if objective not in OBJECTIVES:
        raise InvalidParameterError(
            f"unknown objective {objective!r}; choose from {OBJECTIVES}"
        )
    label = reference.get("label", _DEFAULT_LABEL)
    if not isinstance(label, str) or not label:
        raise InvalidParameterError(
            f"request label must be a non-empty string, got {label!r}"
        )
    try:
        spec = CampaignSpec.from_dict(spec_data)
    except InvalidParameterError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise InvalidParameterError(f"malformed campaign spec: {error}") from error
    return Scenario.from_campaign_spec(
        spec,
        name=label,
        description="scenario received over the serve wire protocol",
        objective=objective,
    )
