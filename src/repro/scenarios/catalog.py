"""The generated scenario catalog: registry -> ``docs/scenarios.md``.

The scenario registry is the single source of truth for what this
library can evaluate; the catalog renders it as a markdown table so the
docs tree never drifts from the code. ``repro scenarios list --json``
emits the same entries as machine-readable JSON, ``repro scenarios
catalog --write docs/scenarios.md`` regenerates the committed page, and
CI runs ``repro scenarios catalog --check docs/scenarios.md`` so a
registry change without a catalog regeneration fails the build.
"""

from __future__ import annotations

from pathlib import Path

from .registry import get_scenario, list_scenarios

__all__ = ["catalog_entries", "render_markdown", "check_catalog", "write_catalog"]

_HEADER = """\
# Scenario catalog

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: repro scenarios catalog --write docs/scenarios.md -->

Every entry below is a registered evaluation scenario: a declarative
(protocols x powers x geometries x draws) grid with a named objective,
runnable as `repro scenarios run NAME`, `repro.api.evaluate(NAME)`, or —
against a running daemon — `repro client run NAME`. The table is
generated from the scenario registry (`repro scenarios list --json`);
CI fails if it goes stale.
"""


def catalog_entries() -> list:
    """One plain-data mapping per registered scenario, in name order."""
    entries = []
    for name in list_scenarios():
        scenario = get_scenario(name)
        spec = scenario.to_campaign_spec()
        entries.append(
            {
                "name": name,
                "description": scenario.description,
                "protocols": [p.name for p in scenario.protocols],
                "pairs": scenario.n_pairs,
                "axes": list(spec.axis_names),
                "cells": spec.n_units,
                "objective": scenario.objective,
                "grounding": scenario.grounding,
                "spec_hash": spec.spec_hash(),
            }
        )
    return entries


def _row(entry: dict) -> str:
    axes = " x ".join(entry["axes"])
    return (
        f"| `{entry['name']}` "
        f"| {axes} "
        f"| {entry['cells']} "
        f"| `{entry['objective']}` "
        f"| {entry['grounding'] or '—'} "
        f"| {entry['description']} |"
    )


def render_markdown() -> str:
    """The full ``docs/scenarios.md`` page for the current registry."""
    lines = [
        _HEADER,
        "| scenario | grid axes | cells | objective | grounding | description |",
        "|---|---|---|---|---|---|",
    ]
    lines.extend(_row(entry) for entry in catalog_entries())
    lines.append("")
    lines.append(
        "Axes are the lowered campaign grid's dimensions in storage order; "
        "`cells` is the flat grid size (the unit of progress reporting, "
        "chunk checkpointing and sharding)."
    )
    return "\n".join(lines) + "\n"


def write_catalog(path) -> Path:
    """Regenerate the catalog page at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_markdown(), encoding="utf-8")
    return target


def check_catalog(path) -> bool:
    """Whether the committed catalog matches the current registry."""
    target = Path(path)
    if not target.exists():
        return False
    return target.read_text(encoding="utf-8") == render_markdown()
