"""Scenario-first evaluation: declarative scenarios, a registry, results.

This package is the seam between *what* gets evaluated and *how*: a
:class:`Scenario` declares topology (including multi-pair grids), channel
model, power policy, protocol set and objective; the registry resolves
scenarios by name; and :class:`EvaluationResult` is the labeled result
type returned by the one facade, :func:`repro.api.evaluate`.

Quickstart::

    from repro.api import evaluate
    from repro.scenarios import list_scenarios

    print(list_scenarios())
    result = evaluate("two-pair-round-robin")
    print(result.objective_rows())

Importing this package registers the built-in scenarios (the paper's
figures, the Section IV fading ensemble, and the first multi-pair grid).
"""

from . import builtin
from .base import OBJECTIVES, PowerPolicy, RelayPair, Scenario, Topology
from .catalog import catalog_entries, render_markdown
from .builtin import (
    PAPER_PROTOCOLS,
    fading_ensemble_scenario,
    fig3_placement_scenario,
    fig3_symmetric_scenario,
    fig4_operating_points_scenario,
    operational_goodput_scenario,
    power_sweep_scenario,
    two_pair_round_robin_scenario,
)
from .registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)
from .result import EvaluationResult
from .wire import request_to_scenario, scenario_to_request

__all__ = [
    "catalog_entries",
    "render_markdown",
    "request_to_scenario",
    "scenario_to_request",
    "builtin",
    "OBJECTIVES",
    "PowerPolicy",
    "RelayPair",
    "Scenario",
    "Topology",
    "PAPER_PROTOCOLS",
    "fading_ensemble_scenario",
    "fig3_placement_scenario",
    "fig3_symmetric_scenario",
    "fig4_operating_points_scenario",
    "operational_goodput_scenario",
    "power_sweep_scenario",
    "two_pair_round_robin_scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "unregister_scenario",
    "EvaluationResult",
]
