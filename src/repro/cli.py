"""Command-line interface: ``repro <subcommand>`` / ``python -m repro``.

Subcommands
-----------
* ``fig3`` / ``fig4`` — regenerate the paper's evaluation figures as text
  tables, ASCII plots and optional CSVs.
* ``scenarios`` — list the registered evaluation scenarios, evaluate one
  by name through the ``repro.api`` facade (``scenarios list``,
  ``scenarios run NAME``), or merge a sharded scenario's chunk artifacts
  (``scenarios gather NAME``). ``scenarios run --shard I/N`` evaluates
  one balanced slice of the scenario's grid — including operational
  (link-level) scenarios, whose cells-fused evaluation shards exactly
  like the analytic grids. ``scenarios run --param key=value`` forwards
  factory parameters (sweep granularity, SNR points, seeds) to
  parameterized scenarios.
* ``campaign`` — evaluate a declarative grid (protocols × powers ×
  geometries × fading draws) through the batched campaign engine, with
  executor selection, progress reporting and an on-disk result cache.
  ``--shard I/N`` evaluates one balanced slice of the grid so independent
  processes/machines can split a campaign, coordinating only through the
  shared cache directory; interrupted runs resume from cached chunks.
  Routed through ``repro.api.evaluate`` (the grid is wrapped as an
  ad-hoc scenario; spec hashes are unchanged).
* ``gather`` — merge the chunk artifacts written by shard runs into the
  full campaign result (bitwise-identical to an unsharded run).
* ``serve`` — run the campaign daemon: a long-lived process owning a warm
  executor pool and the content-addressed cache, answering scenario
  evaluation requests over a Unix socket with in-flight deduplication,
  a cache hot path, bounded backpressure and graceful shutdown.
* ``client`` — talk to a running daemon: ``client run NAME`` evaluates a
  registered scenario remotely (transparently retrying transient
  failures — see ``--retries``), ``client ping`` / ``client stats`` /
  ``client health`` / ``client shutdown`` probe and administer it.
  When no daemon is listening at ``--socket`` the client exits with
  status 2 and a clear "daemon not running" message.
* ``region`` — trace any protocol's rate region on any channel.
* ``sumrate`` — LP-optimal sum rates of all protocols on one channel.
* ``simulate`` — run the operational link-level simulator (the batched
  frames-axis kernel by default; ``--reference`` runs the per-round loop,
  which produces the identical report; ``--target-rel-error`` +
  ``--max-rounds`` run escalating adaptive round waves until the FER
  estimate meets the precision target). ``scenarios run
  operational-goodput`` / ``operational-fading-fer`` evaluate the same
  simulator as campaign workloads with executors, caching and sharding.
* ``diagrams`` — print the protocol timelines (paper Figs. 1–2).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .channels.gains import LinkGains
from .core.capacity import achievable_region, compare_protocols, outer_bound_region
from .core.gaussian import GaussianChannel
from .core.protocols import Protocol
from .experiments.config import FIG4_P0, FIG4_P10, Fig4Config
from .experiments.diagrams import all_protocol_diagrams
from .experiments.runner import fig3_report, fig4_report, run_experiment
from .experiments.tables import render_table
from .information.functions import db_to_linear

__all__ = ["main", "build_parser"]


def _channel_from_args(args) -> GaussianChannel:
    return GaussianChannel(
        gains=LinkGains.from_db(args.gab_db, args.gar_db, args.gbr_db),
        power=db_to_linear(args.power_db),
    )


def _add_channel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--power-db",
        type=float,
        default=10.0,
        help="per-node transmit power P in dB (default 10)",
    )
    parser.add_argument(
        "--gab-db",
        type=float,
        default=-7.0,
        help="direct-link gain G_ab in dB (default -7)",
    )
    parser.add_argument(
        "--gar-db",
        type=float,
        default=0.0,
        help="a-relay gain G_ar in dB (default 0)",
    )
    parser.add_argument(
        "--gbr-db",
        type=float,
        default=5.0,
        help="b-relay gain G_br in dB (default 5)",
    )


def _cmd_fig3(args) -> int:
    report = fig3_report()
    print(report.render())
    if args.csv_dir:
        for path in report.write_csvs(args.csv_dir):
            print(f"wrote {path}")
    return 0 if report.all_checks_pass() else 1


def _cmd_fig4(args) -> int:
    if args.power_db is None:
        ok = True
        for experiment_id in ("fig4a", "fig4b"):
            report = run_experiment(experiment_id)
            print(report.render())
            if args.csv_dir:
                for path in report.write_csvs(args.csv_dir):
                    print(f"wrote {path}")
            ok = ok and report.all_checks_pass()
        return 0 if ok else 1
    config = Fig4Config(power_db=args.power_db)
    experiment_id = "fig4a" if args.power_db < 5 else "fig4b"
    if config.power_db not in (FIG4_P0.power_db, FIG4_P10.power_db):
        experiment_id = f"fig4(P={args.power_db:g}dB)"
    report = fig4_report(config, experiment_id)
    print(report.render())
    if args.csv_dir:
        for path in report.write_csvs(args.csv_dir):
            print(f"wrote {path}")
    return 0 if report.all_checks_pass() else 1


def _cmd_region(args) -> int:
    channel = _channel_from_args(args)
    protocol = Protocol.from_name(args.protocol)
    region = (
        outer_bound_region(protocol, channel)
        if args.outer
        else achievable_region(protocol, channel)
    )
    boundary = region.boundary(args.points)
    rows = [[float(ra), float(rb)] for ra, rb in boundary]
    title = (
        f"{protocol.name} {'outer bound' if args.outer else 'achievable'} "
        f"region boundary — {channel.describe()}"
    )
    print(render_table(["Ra", "Rb"], rows, title=title))
    best = region.max_sum_rate()
    print(
        f"\nmax sum rate {best.sum_rate:.4f} bits/use at "
        f"Ra={best.ra:.4f}, Rb={best.rb:.4f}, "
        f"durations={tuple(round(d, 4) for d in best.durations)}"
    )
    return 0


def _cmd_sumrate(args) -> int:
    channel = _channel_from_args(args)
    comparison = compare_protocols(channel)
    rows = []
    for protocol, point in comparison.sum_rates.items():
        rows.append(
            [
                protocol.name,
                point.sum_rate,
                point.ra,
                point.rb,
                str(tuple(round(d, 4) for d in point.durations)),
            ]
        )
    print(
        render_table(
            ["protocol", "sum rate", "Ra", "Rb", "durations"],
            rows,
            title=f"LP-optimal sum rates — {channel.describe()}",
        )
    )
    print(f"\nbest protocol: {comparison.best_protocol().name}")
    return 0


def _sampling_from_args(args):
    """Build the ``ImportanceSamplingSpec`` requested on the command line.

    Returns ``None`` when no sampling flags were given. Raises
    :class:`ValueError` on incompatible combinations so the caller's
    usage-error path (exit code 2) handles them uniformly.
    """
    from .simulation.sampling import ImportanceSamplingSpec

    dependents = {
        "--is-noise-shift": args.is_noise_shift,
        "--is-target-snr-db": args.is_target_snr_db,
        "--is-min-ess": args.is_min_ess,
    }
    if args.importance_sampling is None:
        stray = [flag for flag, value in dependents.items() if value is not None]
        if stray:
            verb = "requires" if len(stray) == 1 else "require"
            raise ValueError(
                f"{', '.join(stray)} {verb} --importance-sampling SCALE"
            )
        return None
    if args.reference:
        raise ValueError(
            "importance sampling runs through the fused batched kernel; "
            "it is incompatible with --reference"
        )
    kwargs = {"noise_scale": args.importance_sampling}
    if args.is_noise_shift is not None:
        kwargs["noise_shift"] = args.is_noise_shift
    if args.is_target_snr_db is not None:
        kwargs["target_snr_db"] = args.is_target_snr_db
    if args.is_min_ess is not None:
        kwargs["min_ess_fraction"] = args.is_min_ess
    return ImportanceSamplingSpec(**kwargs)


def _cmd_simulate(args) -> int:
    from .simulation.linkcodec import default_codec
    from .simulation.montecarlo import simulate_protocol

    protocol = Protocol.from_name(args.protocol)
    gains = LinkGains.from_db(args.gab_db, args.gar_db, args.gbr_db)
    rng = np.random.default_rng(args.seed)
    try:
        sampling = _sampling_from_args(args)
        report = simulate_protocol(
            protocol,
            gains,
            db_to_linear(args.power_db),
            args.rounds,
            rng,
            codec=default_codec(args.payload_bits),
            method="reference" if args.reference else "batched",
            target_rel_error=args.target_rel_error,
            max_rounds=args.max_rounds,
            importance_sampling=sampling,
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    rows = [
        [
            "a->b",
            report.a_to_b.fer,
            report.a_to_b.ber,
            report.throughput.direction_throughput("a->b"),
        ],
        [
            "b->a",
            report.b_to_a.fer,
            report.b_to_a.ber,
            report.throughput.direction_throughput("b->a"),
        ],
    ]
    print(
        render_table(
            ["direction", "FER", "BER", "goodput [bits/symbol]"],
            rows,
            title=(
                f"link-level simulation: {protocol.name}, "
                f"{report.n_rounds} rounds, P={args.power_db:g} dB"
            ),
            float_format=".5f",
        )
    )
    print(
        f"\nsum goodput {report.sum_goodput:.5f} bits/symbol; "
        f"relay failures {report.relay_failures}/{report.n_rounds}"
    )
    if report.sampling is not None:
        counter = report.sampling
        print(
            f"importance sampling: weighted FER {counter.weighted_fer:.4e} "
            f"(rel std err {counter.rel_std_error:.3f}), "
            f"ESS {counter.ess_fraction:.3f} of {counter.frames} trials, "
            f"max weight {counter.max_weight:.3g}"
        )
    if report.resolved is False:
        print(
            "warning: cell exhausted --max-rounds without meeting "
            "--target-rel-error (estimate unresolved)",
            file=sys.stderr,
        )
    return 0


def _cmd_diagrams(_args) -> int:
    print(all_protocol_diagrams())
    return 0


def _cmd_fading(args) -> int:
    report = run_experiment("fading", executor=args.executor)
    print(report.render())
    return 0 if report.all_checks_pass() else 1


def _stderr_progress(label: str = "campaign"):
    """A ``progress(done, total)`` callback drawing a one-line meter."""
    state = {"last_percent": -1}

    def callback(done: int, total: int) -> None:
        percent = int(100 * done / total) if total else 100
        if percent != state["last_percent"]:
            state["last_percent"] = percent
            print(
                f"\r[{label}] {done}/{total} cells ({percent}%)",
                end="" if done < total else "\n",
                file=sys.stderr,
                flush=True,
            )

    return callback


def _parse_campaign_protocols(text: str) -> tuple:
    if text.strip().lower() == "all":
        return tuple(Protocol)
    return tuple(Protocol.from_name(name) for name in text.split(","))


def _parse_shard(text: str) -> tuple:
    """Parse a 1-based ``--shard I/N`` value into 0-based (index, count)."""
    parts = text.split("/")
    if len(parts) != 2:
        raise ValueError(f"expected --shard I/N (e.g. 2/3), got {text!r}")
    index, count = int(parts[0]), int(parts[1])
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard {text!r} out of range; need 1 <= I <= N")
    return index - 1, count


def _coerce_param_value(text: str):
    """Coerce a ``--param`` value: int, float, float list, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if "," in text:
        try:
            return tuple(float(part) for part in text.split(","))
        except ValueError:
            pass
    return text


def _parse_scenario_params(pairs) -> dict:
    """Parse repeated ``--param key=value`` flags into factory kwargs.

    Values coerce in order int → float → comma-separated float tuple →
    raw string; dashes in keys map to underscores so flags can mirror
    the CLI convention (``--param n-splits=6``). Raises ``ValueError``
    on a malformed pair (no ``=``, empty key) and on a key given twice
    (after dash normalization) — a silent last-wins overwrite would make
    ``--param scheduler=a --param scheduler=b`` evaluate a different
    scenario than the operator reviewed.
    """
    params = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        key = key.strip().replace("-", "_")
        if not sep or not key:
            raise ValueError(f"expected --param key=value, got {pair!r}")
        if key in params:
            raise ValueError(
                f"duplicate --param key {key!r}; each key may be given once"
            )
        params[key] = _coerce_param_value(value.strip())
    return params


def _shard_from_args(args, spec):
    """Resolve ``--shard``/``--chunk-size``/``--no-cache`` for a spec.

    Shared by ``campaign`` and ``scenarios run`` so both subcommands
    validate and word these errors identically. Raises ``ValueError``
    (printed as ``error: ...`` with exit code 2 by the callers) on any
    conflict; returns the ``CampaignShard`` or ``None``.
    """
    shard = spec.shard(*_parse_shard(args.shard)) if args.shard else None
    if args.chunk_size is not None and args.chunk_size < 1:
        raise ValueError(f"--chunk-size must be positive, got {args.chunk_size}")
    if shard is not None and args.no_cache:
        raise ValueError(
            "a shard run checkpoints into the shared cache directory; "
            "drop --no-cache"
        )
    return shard


def _campaign_spec_from_args(args):
    """Build the campaign/gather grid spec from shared CLI arguments.

    Raises ``ValueError`` (which :class:`InvalidParameterError` subclasses)
    on any malformed grid parameter.
    """
    from .campaign import CampaignSpec, FadingSpec

    if args.draws < 0:
        raise ValueError(f"--draws must be non-negative, got {args.draws}")
    protocols = _parse_campaign_protocols(args.protocols)
    powers_db = tuple(float(p) for p in args.powers_db.split(","))
    fading = (
        FadingSpec(n_draws=args.draws, seed=args.seed, k_factor=args.k_factor)
        if args.draws > 0
        else None
    )
    if args.placements:
        return CampaignSpec.from_placements(
            protocols,
            powers_db,
            args.placements,
            path_loss_exponent=args.path_loss_exponent,
            fading=fading,
        )
    return CampaignSpec(
        protocols=protocols,
        powers_db=powers_db,
        gains=(LinkGains.from_db(args.gab_db, args.gar_db, args.gbr_db),),
        fading=fading,
    )


def _dump_values(result, path) -> None:
    np.save(path, result.values)
    print(f"wrote {path}")


def _print_campaign_summary(result, title: str) -> None:
    print(
        render_table(
            ["protocol", "P [dB]", "ergodic mean", "std err", "10%-outage", "median"],
            result.summary_rows(epsilon=0.1),
            title=title,
        )
    )


def _cmd_campaign(args) -> int:
    from .api import evaluate
    from .campaign import CampaignCache, get_executor
    from .scenarios import Scenario

    try:
        spec = _campaign_spec_from_args(args)
        scenario = Scenario.from_campaign_spec(
            spec,
            name="cli-campaign",
            description="ad-hoc grid from repro campaign arguments",
        )
        shard = _shard_from_args(args, spec)
        executor_kwargs = {}
        if args.executor == "process" and args.processes:
            executor_kwargs["processes"] = args.processes
        executor = get_executor(args.executor, **executor_kwargs)
    except ValueError as error:
        print(f"error: {error}")
        return 2

    cache = False if args.no_cache else CampaignCache(args.cache_dir)
    label = shard.label if shard is not None else "campaign"
    progress = None if args.quiet else _stderr_progress(label)

    evaluation = evaluate(
        scenario,
        executor=executor,
        cache=cache,
        progress=progress,
        shard=shard,
        chunk_size=args.chunk_size,
    )
    result = evaluation.campaign

    if shard is None:
        geometry = (
            f"{args.placements} relay placements"
            if args.placements
            else f"G_ab={args.gab_db:g}, G_ar={args.gar_db:g}, "
            f"G_br={args.gbr_db:g} dB"
        )
        fading_note = (
            f"{spec.n_draws} draws/geometry (seed {args.seed}, K={args.k_factor:g})"
            if spec.fading
            else "no fading"
        )
        _print_campaign_summary(
            result,
            f"campaign over {geometry}; {fading_note} — sum rates [bits/use]",
        )
        print()
    source = "cache" if result.from_cache else f"{result.executor_name} executor"
    done = result.cells_from_cache + result.cells_computed
    scope = shard.n_units if shard is not None else spec.n_units
    print(
        f"{label}: {done}/{scope} cells via {source} "
        f"in {result.elapsed_seconds:.3f} s, "
        f"{result.cells_from_cache} from cache, "
        f"{result.cells_computed} computed"
    )
    print(f"spec {spec.spec_hash()}")
    if args.dump:
        _dump_values(result, args.dump)
    return 0


def _cmd_gather(args) -> int:
    from .api import gather
    from .exceptions import IncompleteCampaignError
    from .scenarios import Scenario

    try:
        spec = _campaign_spec_from_args(args)
        scenario = Scenario.from_campaign_spec(
            spec,
            name="cli-campaign",
            description="ad-hoc grid from repro gather arguments",
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    cache = _gather_store_or_error(args)
    if cache is None:
        return 1
    try:
        result = gather(scenario, cache)
    except IncompleteCampaignError as error:
        print(f"error: {error}")
        return 1
    _print_campaign_summary(result, "gathered campaign — sum rates [bits/use]")
    print(
        f"\ngathered {spec.n_units}/{spec.n_units} cells from "
        f"{cache.directory} in {result.elapsed_seconds:.3f} s"
    )
    print(f"spec {spec.spec_hash()}")
    if args.dump:
        _dump_values(result, args.dump)
    return 0


def _cmd_fairness(args) -> int:
    from .core.fairness import fairness_report

    channel = _channel_from_args(args)
    rows = []
    for row in fairness_report(channel):
        rows.append(
            [
                row.protocol.name,
                row.sum_optimal.sum_rate,
                row.sum_point_fairness,
                row.equal_rate.ra,
                row.fairness_cost,
            ]
        )
    print(
        render_table(
            [
                "protocol",
                "max sum rate",
                "Jain idx @ optimum",
                "max equal rate",
                "cost of symmetry",
            ],
            rows,
            title=f"fairness analysis — {channel.describe()}",
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.sweeps import protocol_crossover_power, sweep_powers

    if args.step_db <= 0:
        print("error: --step-db must be positive")
        return 2
    if args.max_db < args.min_db:
        print("error: --max-db must be >= --min-db")
        return 2
    gains = LinkGains.from_db(args.gab_db, args.gar_db, args.gbr_db)
    powers = [
        args.min_db + i * args.step_db
        for i in range(int((args.max_db - args.min_db) / args.step_db) + 1)
    ]
    sweep_rows = sweep_powers(gains, powers)
    # Columns derive from the sweep's own protocol axis, so subset sweeps
    # can never misalign with the header.
    protocols = list(sweep_rows[0].sum_rates)
    rows = []
    for row in sweep_rows:
        ordered = (
            [row.power_db]
            + [row.sum_rates[p] for p in protocols]
            + [row.winner().name]
        )
        rows.append(ordered)
    print(
        render_table(
            ["P [dB]"] + [p.name for p in protocols] + ["best"],
            rows,
            title=(
                f"power sweep — G_ab={args.gab_db:g}, G_ar={args.gar_db:g}, "
                f"G_br={args.gbr_db:g} dB"
            ),
        )
    )
    crossover = protocol_crossover_power(
        gains,
        Protocol.MABC,
        Protocol.TDBC,
        low_db=args.min_db,
        high_db=args.max_db,
    )
    if crossover is None:
        print("\nno MABC/TDBC sum-rate crossover on this range")
    else:
        print(f"\nMABC/TDBC sum-rate crossover at P = {crossover:.3f} dB")
    return 0


def _cmd_adaptive(args) -> int:
    from .simulation.adaptive import adaptive_sum_rate

    gains = LinkGains.from_db(args.gab_db, args.gar_db, args.gbr_db)
    report = adaptive_sum_rate(
        gains,
        db_to_linear(args.power_db),
        args.draws,
        np.random.default_rng(args.seed),
    )
    rows = [
        [p.name, mean, report.selection_frequency(p)]
        for p, mean in report.fixed_means.items()
    ]
    rows.append(["ADAPTIVE", report.adaptive_mean, 1.0])
    print(
        render_table(
            ["strategy", "ergodic sum rate", "selection freq"],
            rows,
            title=(
                f"per-fade protocol selection — P={args.power_db:g} dB, "
                f"{args.draws} Rayleigh draws"
            ),
        )
    )
    print(
        f"\nadaptivity gain over best fixed protocol: "
        f"{report.adaptivity_gain:.4f} bits/use"
    )
    return 0


def _cmd_scenarios_list(args) -> int:
    from .scenarios import get_scenario, list_scenarios

    if getattr(args, "as_json", False):
        import json

        from .scenarios.catalog import catalog_entries

        print(json.dumps(catalog_entries(), indent=2))
        return 0
    rows = []
    for name in list_scenarios():
        scenario = get_scenario(name)
        spec = scenario.to_campaign_spec()
        rows.append(
            [
                name,
                ",".join(p.name for p in scenario.protocols),
                scenario.n_pairs,
                spec.n_units,
                scenario.objective,
                scenario.description,
            ]
        )
    print(
        render_table(
            ["scenario", "protocols", "pairs", "cells", "objective", "description"],
            rows,
            title="registered scenarios",
        )
    )
    return 0


_OBJECTIVE_UNITS = {
    "operational_goodput": "goodput [bits/symbol]",
    "operational_fer": "frame error rate",
    "latency_quantiles": "delivery latency [slots]",
    "stable_throughput": "stable offered load [frames/slot]",
}


def _scenario_summary(result, objective):
    """Summary table (headers, rows) with objective-appropriate columns.

    Rate-like objectives report the ergodic mean and the *lower* 10%
    quantile (the outage rate: high is good, the bad tail is low). A
    frame error rate or a delivery latency is a loss metric — high is
    bad — so its outage-relevant tail is the *upper* 90% quantile, and
    "ergodic mean" would be rate jargon.
    """
    if objective in ("operational_fer", "latency_quantiles"):
        label = "mean FER" if objective == "operational_fer" else "mean latency"
        headers = ["protocol", "P [dB]", label, "std err", "90%-tail", "median"]
        return headers, result.summary_rows(epsilon=0.9)
    headers = ["protocol", "P [dB]", "ergodic mean", "std err", "10%-outage", "median"]
    return headers, result.summary_rows(epsilon=0.1)


def _cmd_scenarios_run(args) -> int:
    from .api import evaluate
    from .campaign import CampaignCache
    from .scenarios import get_scenario

    try:
        params = _parse_scenario_params(args.param)
        scenario = get_scenario(args.name, **params)
        spec = scenario.to_campaign_spec()
        shard = _shard_from_args(args, spec)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    cache = False if args.no_cache else CampaignCache(args.cache_dir)
    label = shard.label if shard is not None else args.name
    progress = None if args.quiet else _stderr_progress(label)
    result = evaluate(
        scenario,
        executor=args.executor,
        cache=cache,
        progress=progress,
        shard=shard,
        chunk_size=args.chunk_size,
    )
    units = _OBJECTIVE_UNITS.get(scenario.objective, "sum rates [bits/use]")
    if shard is None:
        headers, rows = _scenario_summary(result, scenario.objective)
        print(
            render_table(
                headers,
                rows,
                title=(f"scenario {scenario.name}: {scenario.description} — {units}"),
            )
        )
        if scenario.objective == "round_robin_sum_rate":
            print()
            print(
                render_table(
                    ["protocol", "P [dB]", f"mean {scenario.objective}"],
                    result.objective_rows(),
                    title=(
                        f"objective {scenario.objective} over "
                        f"{scenario.n_pairs} pairs"
                    ),
                )
            )
        print()
    campaign = result.campaign
    source = "cache" if result.from_cache else f"{result.executor_name} executor"
    done = campaign.cells_from_cache + campaign.cells_computed
    scope = shard.n_units if shard is not None else spec.n_units
    print(
        f"{label}: {done}/{scope} cells via {source} "
        f"in {result.elapsed_seconds:.3f} s, "
        f"{campaign.cells_from_cache} from cache, "
        f"{campaign.cells_computed} computed"
    )
    if campaign.unresolved_cells:
        print(
            f"warning: {campaign.unresolved_cells} adaptive cells unresolved "
            "(exhausted max_rounds without meeting target_rel_error)",
            file=sys.stderr,
        )
    print(f"spec {spec.spec_hash()}")
    if args.dump:
        _dump_values(result, args.dump)
    return 0


def _cmd_scenarios_gather(args) -> int:
    from .api import gather
    from .exceptions import IncompleteCampaignError
    from .scenarios import get_scenario

    try:
        scenario = get_scenario(args.name)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    cache = _gather_store_or_error(args)
    if cache is None:
        return 1
    try:
        result = gather(scenario, cache)
    except IncompleteCampaignError as error:
        print(f"error: {error}")
        return 1
    spec = result.spec
    units = _OBJECTIVE_UNITS.get(scenario.objective, "sum rates [bits/use]")
    headers, rows = _scenario_summary(result, scenario.objective)
    print(
        render_table(
            headers,
            rows,
            title=f"gathered scenario {scenario.name} — {units}",
        )
    )
    print(
        f"\ngathered {spec.n_units}/{spec.n_units} cells from "
        f"{cache.directory} in {result.elapsed_seconds:.3f} s"
    )
    print(f"spec {spec.spec_hash()}")
    if args.dump:
        _dump_values(result, args.dump)
    return 0


def _cmd_scenarios_catalog(args) -> int:
    from .scenarios.catalog import check_catalog, render_markdown, write_catalog

    if args.check:
        if check_catalog(args.check):
            print(f"{args.check} matches the scenario registry")
            return 0
        print(
            f"error: {args.check} is stale; regenerate it with "
            f"'repro scenarios catalog --write {args.check}'"
        )
        return 1
    if args.write:
        print(f"wrote {write_catalog(args.write)}")
        return 0
    print(render_markdown(), end="")
    return 0


def _cmd_serve(args) -> int:
    from .exceptions import ReproError
    from .serve import ServeConfig
    from .serve import serve as run_server

    try:
        config = ServeConfig(
            socket_path=args.socket,
            cache=False if args.no_cache else (args.cache_dir or True),
            executor=args.executor,
            processes=args.processes or None,
            max_pending=args.max_pending,
            request_timeout=args.request_timeout,
            chunk_size=args.chunk_size,
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    print(
        f"serving campaigns on {args.socket} "
        f"(executor {args.executor}, max {args.max_pending} jobs in flight); "
        "stop with Ctrl-C or 'repro client shutdown'",
        file=sys.stderr,
    )
    try:
        run_server(config)
    except KeyboardInterrupt:
        print("\ninterrupted; socket closed", file=sys.stderr)
    except ReproError as error:
        print(f"error: {error}")
        return 1
    return 0


def _cmd_client(args) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient(args.socket, timeout=args.timeout, retries=args.retries)
    try:
        if args.action == "ping":
            pong = client.ping()
            draining = " (draining)" if pong.get("draining") else ""
            print(f"pong: protocol v{pong.get('protocol_version')}{draining}")
        elif args.action == "stats":
            reply = client.stats()
            for key, value in sorted(reply.get("stats", {}).items()):
                print(f"{key}: {value}")
            print(f"in_flight: {reply.get('in_flight', 0)}")
        elif args.action == "health":
            reply = client.health()
            status = reply.get("status", "unknown")
            print(f"status: {status}")
            for key in ("in_flight", "max_pending", "executor", "pool_rebuilds"):
                if key in reply:
                    print(f"{key}: {reply[key]}")
            faults = reply.get("faults_injected") or {}
            if faults:
                for key, value in sorted(faults.items()):
                    print(f"fault {key}: {value}")
            for key, value in sorted(reply.get("stats", {}).items()):
                print(f"{key}: {value}")
        elif args.action == "shutdown":
            client.shutdown()
            print("server is draining")
        else:
            progress = None if args.quiet else _stderr_progress(args.name)
            served = client.evaluate(
                args.name,
                executor=args.executor,
                chunk_size=args.chunk_size,
                timeout=args.request_timeout,
                progress=progress,
            )
            shape = "x".join(str(n) for n in served.values.shape)
            print(
                f"{args.name}: {shape} grid served from {served.served_from} "
                f"in {served.elapsed_seconds:.3f} s server-side"
            )
            print(f"spec {served.spec_hash}")
            if args.dump:
                np.save(args.dump, served.values)
                print(f"wrote {args.dump}")
    except ServeError as error:
        if error.code == "unreachable":
            # No daemon is listening: an operator problem, not a request
            # problem — distinct exit status, no traceback.  The message
            # already reads "daemon not running at PATH (...)".
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"error [{error.code}]: {error}")
        return 1
    return 0


def _gather_store_or_error(args):
    """The gather cache store, or ``None`` after a clear operator error.

    ``repro gather`` reads shard artifacts that some earlier run must
    have written; a missing, non-directory or empty cache directory
    means the operator pointed at the wrong place (or no shard has run),
    which deserves a direct message instead of the generic
    "missing N of N cells" incompleteness report.
    """
    from .campaign import CampaignCache

    cache = CampaignCache(args.cache_dir)
    directory = cache.directory
    if not directory.exists():
        print(
            f"error: cache directory {directory} does not exist; "
            "run the shards first or point --cache-dir at their cache"
        )
        return None
    if not directory.is_dir():
        print(f"error: {directory} is not a directory")
        return None
    if not any(directory.glob("*.npz")) and not any(directory.glob("*.chunks")):
        print(
            f"error: cache directory {directory} holds no campaign "
            "artifacts; run the shards first or point --cache-dir at "
            "their cache"
        )
        return None
    return cache


def _add_campaign_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Grid/cache arguments shared by ``campaign`` and ``gather``.

    Both subcommands must describe the same spec for their content hashes
    to line up, so the grid vocabulary is defined once.
    """
    parser.add_argument(
        "--protocols",
        default="dt,mabc,tdbc,hbc",
        help="comma-separated protocol names, or 'all' (default dt,mabc,tdbc,hbc)",
    )
    parser.add_argument(
        "--powers-db",
        default="10",
        help="comma-separated transmit powers in dB (default '10')",
    )
    parser.add_argument(
        "--placements",
        type=int,
        default=0,
        metavar="N",
        help="sweep N relay placements along the a-b segment instead of "
        "using the --g*-db gains",
    )
    parser.add_argument(
        "--path-loss-exponent",
        type=float,
        default=3.0,
        help="path-loss exponent of the placement sweep (default 3)",
    )
    parser.add_argument(
        "--draws",
        type=int,
        default=100,
        help="fading draws per geometry; 0 evaluates the means (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fading ensemble seed (default 0)",
    )
    parser.add_argument(
        "--k-factor",
        type=float,
        default=0.0,
        help="Rician K-factor (default 0 = Rayleigh)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default $REPRO_CAMPAIGN_CACHE or "
        "~/.cache/repro/campaigns)",
    )
    parser.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="also write the raw result array to PATH via np.save",
    )
    parser.add_argument(
        "--gab-db",
        type=float,
        default=-7.0,
        help="direct-link gain G_ab in dB (default -7)",
    )
    parser.add_argument(
        "--gar-db",
        type=float,
        default=0.0,
        help="a-relay gain G_ar in dB (default 0)",
    )
    parser.add_argument(
        "--gbr-db",
        type=float,
        default=5.0,
        help="b-relay gain G_br in dB (default 5)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bidirectional coded cooperation: bounds and simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig3 = sub.add_parser("fig3", help="regenerate the paper's Fig. 3")
    p_fig3.add_argument("--csv-dir", default=None, help="also write CSV tables here")
    p_fig3.set_defaults(func=_cmd_fig3)

    p_fig4 = sub.add_parser("fig4", help="regenerate the paper's Fig. 4")
    p_fig4.add_argument(
        "--power-db",
        type=float,
        default=None,
        help="panel power in dB (omit to run both panels)",
    )
    p_fig4.add_argument("--csv-dir", default=None, help="also write CSV tables here")
    p_fig4.set_defaults(func=_cmd_fig4)

    p_region = sub.add_parser("region", help="trace a protocol's rate region")
    p_region.add_argument(
        "--protocol",
        required=True,
        choices=[p.value for p in Protocol],
    )
    p_region.add_argument(
        "--outer",
        action="store_true",
        help="trace the outer bound instead of the inner",
    )
    p_region.add_argument(
        "--points",
        type=int,
        default=17,
        help="number of boundary directions (default 17)",
    )
    _add_channel_arguments(p_region)
    p_region.set_defaults(func=_cmd_region)

    p_sumrate = sub.add_parser("sumrate", help="optimal sum rate of every protocol")
    _add_channel_arguments(p_sumrate)
    p_sumrate.set_defaults(func=_cmd_sumrate)

    p_sim = sub.add_parser("simulate", help="run the link-level simulator")
    p_sim.add_argument(
        "--protocol",
        required=True,
        choices=[p.value for p in Protocol],
    )
    p_sim.add_argument("--rounds", type=int, default=100)
    p_sim.add_argument("--payload-bits", type=int, default=128)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--reference",
        action="store_true",
        help="run the per-round reference loop instead of the batched "
        "kernel (identical results)",
    )
    p_sim.add_argument(
        "--target-rel-error",
        type=float,
        default=None,
        help="adaptive budget: stop once the FER estimate's relative "
        "std error meets this target (requires --max-rounds)",
    )
    p_sim.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="adaptive budget: hard cap on rounds when --target-rel-error is set",
    )
    p_sim.add_argument(
        "--importance-sampling",
        type=float,
        default=None,
        metavar="SCALE",
        help="rare-event mode: twist the noise proposal by this per-component "
        "standard-deviation factor (>= 1) and reweight each frame by its "
        "exact likelihood ratio; FER stays unbiased",
    )
    p_sim.add_argument(
        "--is-noise-shift",
        type=float,
        default=None,
        metavar="SHIFT",
        help="importance sampling: mean shift (in noise std units) pushed "
        "against the transmitted signal (requires --importance-sampling)",
    )
    p_sim.add_argument(
        "--is-target-snr-db",
        type=float,
        default=None,
        metavar="DB",
        help="importance sampling: per-cell twist calibration — cells whose "
        "best-link SNR is below this threshold fall back toward vanilla "
        "draws (requires --importance-sampling)",
    )
    p_sim.add_argument(
        "--is-min-ess",
        type=float,
        default=None,
        metavar="FRAC",
        help="importance sampling: refuse to resolve adaptive cells whose "
        "effective sample size falls below this fraction of trials "
        "(requires --importance-sampling)",
    )
    _add_channel_arguments(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_diag = sub.add_parser("diagrams", help="print the protocol timelines")
    p_diag.set_defaults(func=_cmd_diagrams)

    p_fading = sub.add_parser(
        "fading",
        help="regenerate the Section IV fading ensemble statistics",
    )
    p_fading.add_argument(
        "--executor",
        default=None,
        choices=["serial", "process", "vectorized", "async"],
        help="campaign executor (default vectorized)",
    )
    p_fading.set_defaults(func=_cmd_fading)

    p_scenarios = sub.add_parser(
        "scenarios",
        help="list registered evaluation scenarios or run one by name",
    )
    scenario_sub = p_scenarios.add_subparsers(dest="action", required=True)
    p_scn_list = scenario_sub.add_parser(
        "list", help="table of every registered scenario"
    )
    p_scn_list.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the catalog entries as JSON instead of a table",
    )
    p_scn_list.set_defaults(func=_cmd_scenarios_list)
    p_scn_catalog = scenario_sub.add_parser(
        "catalog",
        help="render the registry as the markdown scenario catalog",
    )
    catalog_mode = p_scn_catalog.add_mutually_exclusive_group()
    catalog_mode.add_argument(
        "--write",
        default=None,
        metavar="PATH",
        help="regenerate the catalog page at PATH (docs/scenarios.md)",
    )
    catalog_mode.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help="exit non-zero if the committed catalog at PATH is stale",
    )
    p_scn_catalog.set_defaults(func=_cmd_scenarios_catalog)
    p_scn_run = scenario_sub.add_parser(
        "run", help="evaluate a registered scenario through repro.api"
    )
    p_scn_run.add_argument("name", help="registered scenario name")
    p_scn_run.add_argument(
        "--executor",
        default=None,
        choices=["serial", "process", "vectorized", "async"],
        help="campaign executor (default vectorized)",
    )
    p_scn_run.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="forward a factory parameter to a parameterized scenario "
        "(repeatable); values coerce int, then float, then "
        "comma-separated floats, else string",
    )
    p_scn_run.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="evaluate only slice I of N (1-based) of the scenario's flat "
        "grid; shards coordinate through the shared cache directory",
    )
    p_scn_run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="CELLS",
        help="checkpoint granularity in grid cells (default 256)",
    )
    p_scn_run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default $REPRO_CAMPAIGN_CACHE or "
        "~/.cache/repro/campaigns)",
    )
    p_scn_run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache",
    )
    p_scn_run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress meter",
    )
    p_scn_run.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="also write the raw result array to PATH via np.save",
    )
    p_scn_run.set_defaults(func=_cmd_scenarios_run)
    p_scn_gather = scenario_sub.add_parser(
        "gather",
        help="merge a sharded scenario's chunk artifacts into its full result",
    )
    p_scn_gather.add_argument("name", help="registered scenario name")
    p_scn_gather.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory holding the shard artifacts (default "
        "$REPRO_CAMPAIGN_CACHE or ~/.cache/repro/campaigns)",
    )
    p_scn_gather.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="also write the raw result array to PATH via np.save",
    )
    p_scn_gather.set_defaults(func=_cmd_scenarios_gather)

    p_campaign = sub.add_parser(
        "campaign",
        help="evaluate a protocols × powers × geometries × draws grid",
    )
    _add_campaign_grid_arguments(p_campaign)
    p_campaign.add_argument(
        "--executor",
        default="vectorized",
        choices=["serial", "process", "vectorized", "async"],
        help="execution backend (default vectorized)",
    )
    p_campaign.add_argument(
        "--processes",
        type=int,
        default=0,
        help="worker count for --executor process (default: cpu count)",
    )
    p_campaign.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="evaluate only slice I of N (1-based) of the flat grid; "
        "shards coordinate through the shared cache directory",
    )
    p_campaign.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="CELLS",
        help="checkpoint granularity in grid cells (default 256)",
    )
    p_campaign.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache",
    )
    p_campaign.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress meter",
    )
    p_campaign.set_defaults(func=_cmd_campaign)

    p_gather = sub.add_parser(
        "gather",
        help="merge shard chunk artifacts into the full campaign result",
    )
    _add_campaign_grid_arguments(p_gather)
    p_gather.set_defaults(func=_cmd_gather)

    p_serve = sub.add_parser(
        "serve",
        help="run the campaign evaluation daemon on a Unix socket",
    )
    p_serve.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="Unix-domain socket path to listen on",
    )
    p_serve.add_argument(
        "--executor",
        default="async",
        choices=["serial", "process", "vectorized", "async"],
        help="default campaign executor for served jobs (default async: "
        "one shared worker pool, chunks steal across requests)",
    )
    p_serve.add_argument(
        "--processes",
        type=int,
        default=0,
        help="worker count of the async pool (default: cpu count)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=4,
        help="bound on in-flight jobs; excess requests get a 'busy' error (default 4)",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (default: none)",
    )
    p_serve.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="CELLS",
        help="default checkpoint granularity for served jobs",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed cache directory (default "
        "$REPRO_CAMPAIGN_CACHE or ~/.cache/repro/campaigns)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve compute-only, without the content-addressed cache",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="talk to a running 'repro serve' daemon",
    )
    p_client.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="Unix-domain socket path of the daemon",
    )
    p_client.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="client-side socket timeout (default: wait indefinitely)",
    )
    p_client.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "retry retryable failures (dropped connection, busy daemon) up "
            "to N times with exponential backoff; safe because identical "
            "requests dedup server-side (default: 2)"
        ),
    )
    client_sub = p_client.add_subparsers(dest="action", required=True)
    p_client_run = client_sub.add_parser(
        "run", help="evaluate a registered scenario on the daemon"
    )
    p_client_run.add_argument("name", help="registered scenario name")
    p_client_run.add_argument(
        "--executor",
        default=None,
        choices=["serial", "process", "vectorized", "async"],
        help="override the daemon's default executor for this job",
    )
    p_client_run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="CELLS",
        help="override the daemon's checkpoint granularity",
    )
    p_client_run.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="server-side deadline for this request",
    )
    p_client_run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress meter",
    )
    p_client_run.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="also write the served result array to PATH via np.save",
    )
    client_sub.add_parser("ping", help="liveness probe")
    client_sub.add_parser("stats", help="serving counters and in-flight jobs")
    client_sub.add_parser(
        "health", help="pool, queue and fault-injection counters"
    )
    client_sub.add_parser("shutdown", help="ask the daemon to drain and exit")
    p_client.set_defaults(func=_cmd_client)

    p_sweep = sub.add_parser("sweep", help="sum rates across a power sweep")
    p_sweep.add_argument("--min-db", type=float, default=-5.0)
    p_sweep.add_argument("--max-db", type=float, default=20.0)
    p_sweep.add_argument("--step-db", type=float, default=2.5)
    p_sweep.add_argument("--gab-db", type=float, default=-7.0)
    p_sweep.add_argument("--gar-db", type=float, default=0.0)
    p_sweep.add_argument("--gbr-db", type=float, default=5.0)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_adaptive = sub.add_parser(
        "adaptive", help="per-fade protocol selection under Rayleigh fading"
    )
    p_adaptive.add_argument("--draws", type=int, default=100)
    p_adaptive.add_argument("--seed", type=int, default=0)
    _add_channel_arguments(p_adaptive)
    p_adaptive.set_defaults(func=_cmd_adaptive)

    p_fair = sub.add_parser(
        "fairness", help="symmetric-rate points and fairness indices"
    )
    _add_channel_arguments(p_fair)
    p_fair.set_defaults(func=_cmd_fairness)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
