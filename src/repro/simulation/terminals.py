"""Terminal-side decoding with side information.

Terminals exploit two kinds of knowledge the paper's decoders use:

* **own-message side information** — after decoding the relay's
  network-coded frame ``w_a ⊕ w_b``, a terminal XORs its own frame back
  out to obtain the partner's frame (Theorem 2's cardinality-reduction
  argument, made operational);
* **overheard side information** — in TDBC/HBC the terminal also received
  the partner's *direct* transmission in an earlier phase (the paper's
  "first/second phase side information") and can arbitrate between the
  direct estimate and the relay-path estimate using the CRCs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .bits import xor_bits
from .crc import CrcCode
from .linkcodec import DecodedFrame, DecodedFrameBatch, LinkCodec

__all__ = [
    "DecodePath",
    "PartnerEstimate",
    "PartnerEstimateRows",
    "resolve_via_relay",
    "arbitrate_paths",
    "arbitrate_paths_rows",
]


class DecodePath(enum.Enum):
    """Which evidence produced the accepted partner estimate."""

    RELAY = "relay"
    DIRECT = "direct"
    FAILED = "failed"


@dataclass(frozen=True)
class PartnerEstimate:
    """A terminal's final estimate of the partner's payload.

    Attributes
    ----------
    payload:
        Estimated partner payload bits.
    crc_ok:
        Whether the accepted estimate passed its CRC.
    path:
        Which decoding path produced it.
    """

    payload: np.ndarray
    crc_ok: bool
    path: DecodePath


def resolve_via_relay(
    relay_frame: DecodedFrame, own_frame_bits: np.ndarray, crc: CrcCode
) -> PartnerEstimate:
    """Recover the partner's frame from the relay's XOR broadcast.

    ``partner = relay_estimate ⊕ own`` (both CRC-protected frames); the
    result's CRC is then checked — by linearity it verifies exactly when
    the relay estimate is consistent with a valid partner frame.
    """
    partner_frame = xor_bits(relay_frame.frame_bits, own_frame_bits)
    ok = bool(relay_frame.crc_ok) and crc.check(partner_frame)
    return PartnerEstimate(
        payload=crc.strip(partner_frame),
        crc_ok=ok,
        path=DecodePath.RELAY if ok else DecodePath.FAILED,
    )


def arbitrate_paths(
    codec: LinkCodec,
    *,
    relay_frame: DecodedFrame | None,
    own_frame_bits: np.ndarray,
    direct_frame: DecodedFrame | None,
) -> PartnerEstimate:
    """Combine relay-path and direct-path evidence into one estimate.

    Preference order:

    1. relay path with verified CRC (benefits from the relay's better
       channel — the regime the protocols are designed for),
    2. direct path with verified CRC (the overheard side information),
    3. otherwise, the relay-path estimate flagged as failed (or the direct
       one if no relay evidence exists at all).
    """
    relay_estimate = None
    if relay_frame is not None:
        relay_estimate = resolve_via_relay(relay_frame, own_frame_bits, codec.crc)
        if relay_estimate.crc_ok:
            return relay_estimate
    if direct_frame is not None and direct_frame.crc_ok:
        return PartnerEstimate(
            payload=direct_frame.payload,
            crc_ok=True,
            path=DecodePath.DIRECT,
        )
    if relay_estimate is not None:
        return relay_estimate
    if direct_frame is not None:
        return PartnerEstimate(
            payload=direct_frame.payload,
            crc_ok=False,
            path=DecodePath.FAILED,
        )
    return PartnerEstimate(
        payload=np.zeros(codec.payload_bits, dtype=np.uint8),
        crc_ok=False,
        path=DecodePath.FAILED,
    )


@dataclass(frozen=True)
class PartnerEstimateRows:
    """Batched partner estimates: one :class:`PartnerEstimate` per round.

    Attributes
    ----------
    payload:
        Accepted partner payload bits, shape ``(n_rounds, payload_bits)``.
    crc_ok:
        Whether each round's accepted estimate passed its CRC, ``(n_rounds,)``.
    """

    payload: np.ndarray
    crc_ok: np.ndarray


def arbitrate_paths_rows(
    codec: LinkCodec,
    *,
    relay_frames: DecodedFrameBatch | None,
    own_frame_rows: np.ndarray,
    direct_frames: DecodedFrameBatch | None,
) -> PartnerEstimateRows:
    """Batched :func:`arbitrate_paths` over a rounds axis.

    Applies the same preference order per round: a CRC-verified relay
    resolution wins, then a CRC-verified direct estimate, and otherwise
    the relay-path estimate is kept but flagged failed (or the direct one
    when no relay evidence exists). Pure row-wise selection between the
    two candidate payload batches, so row ``r`` equals the scalar
    arbitration of round ``r``.
    """
    crc = codec.crc
    relay_payload = None
    relay_ok = None
    if relay_frames is not None:
        partner_rows = np.bitwise_xor(relay_frames.frame_bits, own_frame_rows)
        relay_ok = relay_frames.crc_ok & crc.check_rows(partner_rows)
        relay_payload = partner_rows[:, : -crc.n_bits]
        if direct_frames is None:
            return PartnerEstimateRows(payload=relay_payload, crc_ok=relay_ok)
        use_direct = ~relay_ok & direct_frames.crc_ok
        payload = np.where(use_direct[:, None], direct_frames.payload, relay_payload)
        return PartnerEstimateRows(
            payload=payload, crc_ok=relay_ok | direct_frames.crc_ok
        )
    if direct_frames is not None:
        return PartnerEstimateRows(
            payload=direct_frames.payload, crc_ok=direct_frames.crc_ok.copy()
        )
    n_rounds = int(np.asarray(own_frame_rows).shape[0])
    return PartnerEstimateRows(
        payload=np.zeros((n_rounds, codec.payload_bits), dtype=np.uint8),
        crc_ok=np.zeros(n_rounds, dtype=bool),
    )
