"""Terminal-side decoding with side information.

Terminals exploit two kinds of knowledge the paper's decoders use:

* **own-message side information** — after decoding the relay's
  network-coded frame ``w_a ⊕ w_b``, a terminal XORs its own frame back
  out to obtain the partner's frame (Theorem 2's cardinality-reduction
  argument, made operational);
* **overheard side information** — in TDBC/HBC the terminal also received
  the partner's *direct* transmission in an earlier phase (the paper's
  "first/second phase side information") and can arbitrate between the
  direct estimate and the relay-path estimate using the CRCs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .bits import xor_bits
from .crc import CrcCode
from .linkcodec import DecodedFrame, LinkCodec

__all__ = ["DecodePath", "PartnerEstimate", "resolve_via_relay", "arbitrate_paths"]


class DecodePath(enum.Enum):
    """Which evidence produced the accepted partner estimate."""

    RELAY = "relay"
    DIRECT = "direct"
    FAILED = "failed"


@dataclass(frozen=True)
class PartnerEstimate:
    """A terminal's final estimate of the partner's payload.

    Attributes
    ----------
    payload:
        Estimated partner payload bits.
    crc_ok:
        Whether the accepted estimate passed its CRC.
    path:
        Which decoding path produced it.
    """

    payload: np.ndarray
    crc_ok: bool
    path: DecodePath


def resolve_via_relay(relay_frame: DecodedFrame, own_frame_bits: np.ndarray,
                      crc: CrcCode) -> PartnerEstimate:
    """Recover the partner's frame from the relay's XOR broadcast.

    ``partner = relay_estimate ⊕ own`` (both CRC-protected frames); the
    result's CRC is then checked — by linearity it verifies exactly when
    the relay estimate is consistent with a valid partner frame.
    """
    partner_frame = xor_bits(relay_frame.frame_bits, own_frame_bits)
    ok = bool(relay_frame.crc_ok) and crc.check(partner_frame)
    return PartnerEstimate(
        payload=crc.strip(partner_frame),
        crc_ok=ok,
        path=DecodePath.RELAY if ok else DecodePath.FAILED,
    )


def arbitrate_paths(codec: LinkCodec, *, relay_frame: DecodedFrame | None,
                    own_frame_bits: np.ndarray,
                    direct_frame: DecodedFrame | None) -> PartnerEstimate:
    """Combine relay-path and direct-path evidence into one estimate.

    Preference order:

    1. relay path with verified CRC (benefits from the relay's better
       channel — the regime the protocols are designed for),
    2. direct path with verified CRC (the overheard side information),
    3. otherwise, the relay-path estimate flagged as failed (or the direct
       one if no relay evidence exists at all).
    """
    relay_estimate = None
    if relay_frame is not None:
        relay_estimate = resolve_via_relay(relay_frame, own_frame_bits, codec.crc)
        if relay_estimate.crc_ok:
            return relay_estimate
    if direct_frame is not None and direct_frame.crc_ok:
        return PartnerEstimate(
            payload=direct_frame.payload,
            crc_ok=True,
            path=DecodePath.DIRECT,
        )
    if relay_estimate is not None:
        return relay_estimate
    if direct_frame is not None:
        return PartnerEstimate(
            payload=direct_frame.payload,
            crc_ok=False,
            path=DecodePath.FAILED,
        )
    return PartnerEstimate(
        payload=np.zeros(codec.payload_bits, dtype=np.uint8),
        crc_ok=False,
        path=DecodePath.FAILED,
    )
