"""Asymmetric-rate MABC: unequal message sizes via the group ``L = max``.

Theorem 2 does not require ``Ra = Rb``: the relay combines the two
messages in the additive group of cardinality
``L = max(⌊2^{nRa}⌋, ⌊2^{nRb}⌋)`` — the smaller message set embeds into
the larger one. Operationally (this module):

* terminal ``b``'s shorter frame is transmitted as a shorter burst in the
  MAC phase (its tail carries no energy);
* the relay XORs the shorter decoded frame, zero-padded, into the longer
  one and broadcasts a single frame dimensioned for the *longer* message;
* each terminal XORs its own (padded) frame out of the broadcast and
  CRC-checks the recovered partner frame; terminal ``a`` additionally
  checks that the embedding padding came back as zeros — a free integrity
  signal the group structure provides.

The relay runs successive interference cancellation with the stronger
link decoded first (as in the equal-length engine); noise estimates are
conservative — the interferer's full power is assumed even where the
shorter burst is silent — trading a little SNR for per-sample weighting
simplicity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.halfduplex import HalfDuplexMedium
from ..exceptions import InvalidParameterError
from .bits import as_bits, hamming_distance, pad_bits, xor_bits
from .linkcodec import LinkCodec

__all__ = ["AsymmetricRoundResult", "run_mabc_asymmetric_round"]


@dataclass(frozen=True)
class AsymmetricRoundResult:
    """Outcome of one asymmetric MABC round.

    Attributes
    ----------
    success_a_to_b / success_b_to_a:
        Payload recovered bit-exactly with a verified CRC.
    bit_errors_a_to_b / bit_errors_b_to_a:
        Payload bit errors per direction.
    payload_bits_a / payload_bits_b:
        The (unequal) payload sizes.
    n_symbols:
        Total channel symbols spent (MAC phase + broadcast phase).
    relay_ok:
        Whether the relay decoded both frames with valid CRCs.
    """

    success_a_to_b: bool
    success_b_to_a: bool
    bit_errors_a_to_b: int
    bit_errors_b_to_a: int
    payload_bits_a: int
    payload_bits_b: int
    n_symbols: int
    relay_ok: bool


def run_mabc_asymmetric_round(
    medium: HalfDuplexMedium,
    codec_long: LinkCodec,
    codec_short: LinkCodec,
    power: float,
    payload_a,
    payload_b,
    rng: np.random.Generator,
) -> AsymmetricRoundResult:
    """One MABC exchange with ``len(payload_a) >= len(payload_b)``.

    Parameters
    ----------
    medium:
        The half-duplex Gaussian medium.
    codec_long / codec_short:
        Frame pipelines for the longer (``a``) and shorter (``b``)
        payloads; must share the CRC, code and modulation so frame-level
        XOR embedding is well-defined.
    power:
        Per-node transmit power (linear).
    payload_a / payload_b:
        Payload bits; ``a``'s must match ``codec_long``, ``b``'s
        ``codec_short``.
    """
    if power <= 0:
        raise InvalidParameterError(f"power must be positive, got {power}")
    if codec_long.payload_bits < codec_short.payload_bits:
        raise InvalidParameterError(
            "codec_long must carry the longer payload "
            f"({codec_long.payload_bits} < {codec_short.payload_bits})"
        )
    if (codec_long.crc != codec_short.crc or codec_long.code is not codec_short.code):
        raise InvalidParameterError(
            "the two codecs must share the CRC and convolutional code"
        )
    wa = as_bits(payload_a)
    wb = as_bits(payload_b)
    if wa.size != codec_long.payload_bits:
        raise InvalidParameterError(
            f"payload_a must be {codec_long.payload_bits} bits, got {wa.size}"
        )
    if wb.size != codec_short.payload_bits:
        raise InvalidParameterError(
            f"payload_b must be {codec_short.payload_bits} bits, got {wb.size}"
        )
    amp = float(np.sqrt(power))
    noise_power = medium.noise.noise_power
    gain_ar = medium.complex_gains[frozenset(("a", "r"))]
    gain_br = medium.complex_gains[frozenset(("b", "r"))]

    frame_a = codec_long.crc.append(wa)
    frame_b = codec_short.crc.append(wb)
    symbols_a = codec_long.encode_frame_bits(frame_a)
    symbols_b_short = codec_short.encode_frame_bits(frame_b)
    # b transmits a shorter burst; the tail of the MAC phase is silent.
    symbols_b = np.concatenate(
        [
            symbols_b_short,
            np.zeros(symbols_a.size - symbols_b_short.size, dtype=complex),
        ],
    )

    out1 = medium.run_phase({"a": amp * symbols_a, "b": amp * symbols_b}, rng)
    y_r = out1.signal_at("r")

    # SIC at the relay, stronger link first (as in the equal-length case).
    # Noise estimates are conservative: the interferer's full power is
    # added even where the shorter burst is silent.
    power_a = power * abs(gain_ar) ** 2
    power_b = power * abs(gain_br) ** 2
    n_short = symbols_b_short.size
    if power_a >= power_b:
        a_at_r = codec_long.decode(y_r, gain_ar, noise_power + power_b, amplitude=amp)
        residual = y_r - amp * gain_ar * codec_long.encode_frame_bits(a_at_r.frame_bits)
        b_at_r = codec_short.decode(
            residual[:n_short], gain_br, noise_power, amplitude=amp
        )
    else:
        b_at_r = codec_short.decode(
            y_r[:n_short], gain_br, noise_power + power_a, amplitude=amp
        )
        residual = y_r.copy()
        residual[:n_short] -= amp * gain_br * codec_short.encode_frame_bits(
            b_at_r.frame_bits
        )
        a_at_r = codec_long.decode(residual, gain_ar, noise_power, amplitude=amp)
    relay_ok = a_at_r.crc_ok and b_at_r.crc_ok

    # Broadcast: embed the shorter frame into the longer one by zero
    # padding (the group-L embedding) and XOR.
    combined = xor_bits(a_at_r.frame_bits, pad_bits(b_at_r.frame_bits, frame_a.size))
    out2 = medium.run_phase({"r": amp * codec_long.encode_frame_bits(combined)}, rng)

    # Terminal a: strip own frame, truncate to the short frame, CRC-check;
    # the embedding tail must come back as zeros.
    relay_at_a = codec_long.decode(
        out2.signal_at("a"), gain_ar, noise_power, amplitude=amp
    )
    partner_padded = xor_bits(relay_at_a.frame_bits, frame_a)
    short_len = frame_b.size
    frame_b_hat = partner_padded[:short_len]
    padding_clean = int(partner_padded[short_len:].sum()) == 0
    b_ok = (relay_at_a.crc_ok and padding_clean and codec_short.crc.check(frame_b_hat))
    wb_hat = codec_short.crc.strip(frame_b_hat)

    # Terminal b: pad its own frame, strip, CRC-check the long frame.
    relay_at_b = codec_long.decode(
        out2.signal_at("b"), gain_br, noise_power, amplitude=amp
    )
    frame_a_hat = xor_bits(relay_at_b.frame_bits, pad_bits(frame_b, frame_a.size))
    a_ok = relay_at_b.crc_ok and codec_long.crc.check(frame_a_hat)
    wa_hat = codec_long.crc.strip(frame_a_hat)

    err_ab = hamming_distance(wa, wa_hat)
    err_ba = hamming_distance(wb, wb_hat)
    return AsymmetricRoundResult(
        success_a_to_b=a_ok and err_ab == 0,
        success_b_to_a=b_ok and err_ba == 0,
        bit_errors_a_to_b=err_ab,
        bit_errors_b_to_a=err_ba,
        payload_bits_a=wa.size,
        payload_bits_b=wb.size,
        n_symbols=2 * codec_long.n_symbols,
        relay_ok=relay_ok,
    )
