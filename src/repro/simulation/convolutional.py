"""Convolutional coding with Viterbi decoding (hard and soft decision).

The paper's achievability proofs use random coding; an operational system
needs a concrete code. We use zero-terminated feed-forward convolutional
codes — the workhorse of the cooperative-diversity literature the paper
builds on — with maximum-likelihood Viterbi decoding:

* the NASA-standard rate-1/2, constraint-length-7 code ``(133, 171)``
  (octal) as the production default, and
* the small ``(5, 7)`` constraint-length-3 code for fast tests.

Encoding is expressed as a binary convolution (numpy ``convolve`` mod 2);
decoding is a vectorized add-compare-select over the 2^(K-1)-state trellis
with traceback. LLR inputs use the ``LLR > 0 ⇔ bit = 0`` convention of
:mod:`repro.simulation.modulation`.

Both operations also exist batched over a leading *frames* axis
(:meth:`ConvolutionalCode.encode_rows` / :meth:`~ConvolutionalCode
.decode_rows`): the ACS recursion runs once over the trellis with every
frame of the batch carried in the leading array dimension, so decoding
``R`` frames costs one pass of ``T`` NumPy steps instead of ``R`` Python
round trips. Every update is elementwise along that axis (the branch
metrics are accumulated term by term in tap order on both paths), so a
batch of ``R`` decodes is bit-for-bit identical to ``R`` one-frame
decodes — the property the batched link-level simulation kernel relies
on, mirroring the campaign kernel's contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError
from .bits import as_bit_rows, as_bits

__all__ = ["ConvolutionalCode", "NASA_CODE", "TEST_CODE"]


def _taps_from_octal(octal_value: int, constraint_length: int) -> np.ndarray:
    """MSB-first tap array of a generator given in octal, e.g. 0o133 -> 1011011."""
    if octal_value <= 0:
        raise InvalidParameterError(f"generator must be positive, got {octal_value}")
    if octal_value.bit_length() > constraint_length:
        raise InvalidParameterError(
            f"generator 0o{octal_value:o} needs {octal_value.bit_length()} taps, "
            f"but constraint length is {constraint_length}"
        )
    return np.array(
        [
            (octal_value >> (constraint_length - 1 - i)) & 1
            for i in range(constraint_length)
        ],
        dtype=np.uint8,
    )


def _branch_metrics(pred_signs: np.ndarray, llrs: np.ndarray) -> np.ndarray:
    """Per-slot branch metrics ``0.5 * sum_j signs[..., j] * llr[..., j]``.

    ``pred_signs`` has shape ``(S, 2, n_outputs)``; ``llrs`` carries the
    step's LLRs in its last axis with any leading batch shape. The sum is
    accumulated term by term in tap order on every path (scalar and
    batched decode share this helper), so batching can never change a
    metric bit.
    """
    lead = llrs.shape[:-1]
    signs = pred_signs.reshape((1,) * len(lead) + pred_signs.shape)
    acc = signs[..., 0] * llrs[..., 0][..., None, None]
    for j in range(1, pred_signs.shape[-1]):
        acc = acc + signs[..., j] * llrs[..., j][..., None, None]
    return 0.5 * acc


def _combo_metrics(llrs: np.ndarray) -> np.ndarray:
    """Branch metrics of every ±1 sign pattern, shape ``(R, 2^n_outputs)``.

    ``combos[:, c]`` is ``0.5 * sum_j s_j * llr_j`` with ``s_j = -1`` when
    bit ``j`` of ``c`` is set. Sign flips are exact and the sum is
    accumulated in the same tap order as :func:`_branch_metrics`, so
    gathering from this table is bit-identical to computing the metric
    per (state, slot).
    """
    n_rows, n_outputs = llrs.shape
    combos = np.empty((n_rows, 1 << n_outputs))
    for c in range(1 << n_outputs):
        acc = -llrs[:, 0] if c & 1 else llrs[:, 0].copy()
        for j in range(1, n_outputs):
            if (c >> j) & 1:
                acc = acc - llrs[:, j]
            else:
                acc = acc + llrs[:, j]
        combos[:, c] = 0.5 * acc
    return combos


@dataclass(frozen=True)
class ConvolutionalCode:
    """A rate ``1/n`` zero-terminated feed-forward convolutional code.

    Attributes
    ----------
    generators:
        Generator polynomials in octal, MSB aligned with the *current*
        input bit.
    constraint_length:
        ``K``; the trellis has ``2^(K-1)`` states.
    """

    generators: tuple
    constraint_length: int
    _tables: dict = field(default_factory=dict, compare=False, repr=False)

    def __init__(self, generators, constraint_length: int) -> None:
        object.__setattr__(self, "generators", tuple(int(g) for g in generators))
        object.__setattr__(self, "constraint_length", int(constraint_length))
        object.__setattr__(self, "_tables", {})
        if self.constraint_length < 2:
            raise InvalidParameterError(
                f"constraint length must be >= 2, got {constraint_length}"
            )
        if not self.generators:
            raise InvalidParameterError("at least one generator required")
        for g in self.generators:
            _taps_from_octal(g, self.constraint_length)  # validates

    @property
    def n_outputs(self) -> int:
        """Coded bits per input bit (the code has rate ``1/n_outputs``)."""
        return len(self.generators)

    @property
    def n_states(self) -> int:
        """Number of trellis states, ``2^(K-1)``."""
        return 1 << (self.constraint_length - 1)

    def n_coded_bits(self, n_info_bits: int) -> int:
        """Coded length for a zero-terminated block of ``n_info_bits``."""
        if n_info_bits < 1:
            raise InvalidParameterError(
                f"block must contain at least one bit, got {n_info_bits}"
            )
        return (n_info_bits + self.constraint_length - 1) * self.n_outputs

    def encode(self, bits) -> np.ndarray:
        """Encode a block (zero termination appended automatically).

        Output bits are interleaved per trellis step:
        ``[out_0(t=0), out_1(t=0), ..., out_0(t=1), ...]``.
        """
        info = as_bits(bits)
        if info.size == 0:
            raise InvalidParameterError("cannot encode an empty block")
        k = self.constraint_length
        streams = []
        for g in self.generators:
            taps = _taps_from_octal(g, k).astype(np.int64)
            # 'full' convolution implies zeros outside the block, which is
            # exactly zero termination: T = len(info) + K - 1 trellis steps.
            conv = np.convolve(info.astype(np.int64), taps, mode="full") % 2
            streams.append(conv.astype(np.uint8))
        stacked = np.stack(streams, axis=1)  # (T, n_outputs)
        return stacked.reshape(-1)

    def encode_rows(self, bit_rows) -> np.ndarray:
        """Encode a batch of equal-length blocks, shape ``(R, n_coded)``.

        The mod-2 convolution is evaluated as an XOR accumulation of
        tap-shifted copies of the whole batch (one NumPy op per set tap,
        at most ``K * n_outputs`` in total), which is exactly the zero
        padding — and therefore the zero termination — of the scalar
        :meth:`encode`; equality is asserted in the tests.
        """
        info = as_bit_rows(bit_rows)
        if info.shape[1] == 0:
            raise InvalidParameterError("cannot encode an empty block")
        n_rows, n_info = info.shape
        k = self.constraint_length
        n_steps = n_info + k - 1
        out = np.zeros((n_rows, n_steps, self.n_outputs), dtype=np.uint8)
        for j, g in enumerate(self.generators):
            taps = _taps_from_octal(g, k)
            for position in np.flatnonzero(taps):
                out[:, position : position + n_info, j] ^= info
        return out.reshape(n_rows, n_steps * self.n_outputs)

    def _trellis(self) -> dict:
        """Build (and cache) predecessor tables for the Viterbi decoder."""
        if self._tables:
            return self._tables
        k = self.constraint_length
        n_states = self.n_states
        taps = [_taps_from_octal(g, k).astype(np.int64) for g in self.generators]
        tap_ints = [int("".join(map(str, t)), 2) for t in taps]

        next_state = np.zeros((n_states, 2), dtype=np.int64)
        outputs = np.zeros((n_states, 2, self.n_outputs), dtype=np.int64)
        for state in range(n_states):
            for bit in (0, 1):
                register = (bit << (k - 1)) | state
                next_state[state, bit] = register >> 1
                for j, g in enumerate(tap_ints):
                    outputs[state, bit, j] = bin(register & g).count("1") % 2

        pred_state = np.zeros((n_states, 2), dtype=np.int64)
        pred_bit = np.zeros((n_states, 2), dtype=np.int64)
        counts = np.zeros(n_states, dtype=np.int64)
        for state in range(n_states):
            for bit in (0, 1):
                ns = next_state[state, bit]
                slot = counts[ns]
                pred_state[ns, slot] = state
                pred_bit[ns, slot] = bit
                counts[ns] += 1
        if not np.all(counts == 2):  # pragma: no cover - structural invariant
            raise InvalidParameterError("malformed trellis: predecessor count != 2")

        # Branch metric signs: +1 for coded bit 0, -1 for coded bit 1, laid
        # out per predecessor slot of each next-state for vectorized ACS.
        # pred_combo indexes each slot's sign pattern into the 2^n_outputs
        # possible ±LLR combinations (bit j set ⇔ coded bit j is 1), which
        # lets the batched decoder evaluate every distinct branch metric
        # once per trellis step and gather, instead of recomputing it per
        # (state, slot).
        pred_signs = np.zeros((n_states, 2, self.n_outputs))
        pred_combo = np.zeros((n_states, 2), dtype=np.int64)
        for ns in range(n_states):
            for slot in (0, 1):
                s, b = pred_state[ns, slot], pred_bit[ns, slot]
                pred_signs[ns, slot] = 1.0 - 2.0 * outputs[s, b]
                pred_combo[ns, slot] = sum(
                    int(outputs[s, b, j]) << j for j in range(self.n_outputs)
                )

        self._tables.update(
            {
                "next_state": next_state,
                "outputs": outputs,
                "pred_state": pred_state,
                "pred_bit": pred_bit,
                "pred_signs": pred_signs,
                "pred_combo": pred_combo,
            },
        )
        return self._tables

    def decode(self, llrs, n_info_bits: int) -> np.ndarray:
        """Maximum-likelihood (Viterbi) decoding from soft LLRs.

        Parameters
        ----------
        llrs:
            One LLR per coded bit (``LLR > 0`` favours bit 0), length
            ``n_coded_bits(n_info_bits)``.
        n_info_bits:
            Number of information bits in the block.

        Returns
        -------
        The ML information-bit sequence (zero termination stripped).
        """
        llr_arr = np.asarray(llrs, dtype=float)
        expected = self.n_coded_bits(n_info_bits)
        if llr_arr.shape != (expected,):
            raise InvalidParameterError(
                f"expected {expected} LLRs for {n_info_bits} info bits, "
                f"got shape {llr_arr.shape}"
            )
        tables = self._trellis()
        pred_state = tables["pred_state"]
        pred_signs = tables["pred_signs"]
        pred_bit = tables["pred_bit"]
        n_states = self.n_states
        n_steps = n_info_bits + self.constraint_length - 1
        llr_steps = llr_arr.reshape(n_steps, self.n_outputs)

        metrics = np.full(n_states, -np.inf)
        metrics[0] = 0.0
        backptr = np.zeros((n_steps, n_states), dtype=np.int8)
        for t in range(n_steps):
            # Candidate metric for each (next_state, predecessor slot).
            branch = _branch_metrics(pred_signs, llr_steps[t])  # (n_states, 2)
            cand = metrics[pred_state] + branch
            choice = np.argmax(cand, axis=1)
            metrics = cand[np.arange(n_states), choice]
            backptr[t] = choice.astype(np.int8)

        # Zero-terminated: trace back from state 0.
        state = 0
        decoded = np.zeros(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            slot = backptr[t, state]
            decoded[t] = pred_bit[state, slot]
            state = pred_state[state, slot]
        return decoded[:n_info_bits]

    def decode_rows(self, llr_rows, n_info_bits: int) -> np.ndarray:
        """Viterbi-decode a batch of frames in one trellis pass.

        ``llr_rows`` has shape ``(R, n_coded_bits(n_info_bits))``; the
        result is the ``(R, n_info_bits)`` batch of ML information-bit
        sequences. The add-compare-select recursion and the traceback are
        elementwise along the leading axis (ties break toward the same
        predecessor slot as :meth:`decode`'s ``argmax``), so row ``r``
        equals ``decode(llr_rows[r], n_info_bits)`` bit for bit.
        """
        llr_arr = np.asarray(llr_rows, dtype=float)
        expected = self.n_coded_bits(n_info_bits)
        if llr_arr.ndim != 2 or llr_arr.shape[1] != expected:
            raise InvalidParameterError(
                f"expected (rows, {expected}) LLRs for {n_info_bits} info "
                f"bits, got shape {llr_arr.shape}"
            )
        tables = self._trellis()
        pred_state = tables["pred_state"]
        pred_combo = tables["pred_combo"]
        pred_bit = tables["pred_bit"]
        n_rows = llr_arr.shape[0]
        n_states = self.n_states
        n_steps = n_info_bits + self.constraint_length - 1
        llr_steps = llr_arr.reshape(n_rows, n_steps, self.n_outputs)

        pred0, pred1 = pred_state[:, 0], pred_state[:, 1]
        combo0, combo1 = pred_combo[:, 0], pred_combo[:, 1]
        # Step-major contiguous layout: each ACS step reads one contiguous
        # (n_rows, n_outputs) slab instead of a strided gather — the same
        # values in a cache-friendlier order, which matters once cells-fused
        # batches push n_rows into the thousands.
        llr_steps = np.ascontiguousarray(llr_steps.transpose(1, 0, 2))
        metrics = np.full((n_rows, n_states), -np.inf)
        metrics[:, 0] = 0.0
        backptr = np.zeros((n_steps, n_rows, n_states), dtype=np.int8)
        for t in range(n_steps):
            # All distinct branch metrics of the step: ±1 sign flips and a
            # left-to-right sum, i.e. exactly `_branch_metrics` evaluated
            # once per sign pattern instead of once per (state, slot).
            combos = _combo_metrics(llr_steps[t])
            cand0 = metrics[:, pred0] + combos[:, combo0]
            cand1 = metrics[:, pred1] + combos[:, combo1]
            # argmax over the two slots keeps slot 0 on ties.
            choice = cand1 > cand0
            metrics = np.where(choice, cand1, cand0)
            backptr[t] = choice

        # Zero-terminated: trace every row back from state 0.
        rows = np.arange(n_rows)
        state = np.zeros(n_rows, dtype=np.int64)
        decoded = np.zeros((n_rows, n_steps), dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            slot = backptr[t, rows, state]
            decoded[:, t] = pred_bit[state, slot]
            state = pred_state[state, slot]
        return decoded[:, :n_info_bits]

    def decode_hard(self, coded_bits, n_info_bits: int) -> np.ndarray:
        """Hard-decision decoding: bits mapped to ±1 pseudo-LLRs."""
        arr = as_bits(coded_bits).astype(float)
        return self.decode(1.0 - 2.0 * arr, n_info_bits)


#: The NASA-standard rate-1/2, K=7 code used by the production simulator.
NASA_CODE = ConvolutionalCode(generators=(0o133, 0o171), constraint_length=7)

#: A small rate-1/2, K=3 code for fast unit tests.
TEST_CODE = ConvolutionalCode(generators=(0o5, 0o7), constraint_length=3)
