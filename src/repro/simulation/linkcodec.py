"""The link codec: CRC + convolutional code + interleaver + modulation.

One :class:`LinkCodec` instance is the shared "codebook" of the system —
every node (terminals and relay) encodes and decodes frames with the same
pipeline, mirroring the shared random codebooks of the paper's
achievability proofs::

    payload bits
      └─ CRC append              (error detection / path arbitration)
         └─ convolutional encode (zero-terminated, rate 1/n)
            └─ interleave        (whiten SIC residuals)
               └─ modulate       (BPSK or QPSK, unit energy)

Decoding inverts the pipeline from soft channel LLRs and reports CRC
validity alongside the payload estimate.

Every stage also runs batched over a leading *frames* axis (the
``*_rows`` methods, returning :class:`DecodedFrameBatch`): a batch of
``n_rounds`` frames moves through CRC, encoder, interleaver, modulator
and Viterbi decoder as one ``(n_rounds, ...)`` array per stage. Each
stage is elementwise (or a one-trellis-pass recursion) along that axis,
so row ``r`` of a batched result is bit-identical to the scalar pipeline
applied to frame ``r`` — the contract the batched protocol engine and
its per-round reference implementation are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError
from .bits import as_bit_rows, as_bits
from .convolutional import NASA_CODE, ConvolutionalCode
from .crc import CRC16_CCITT, CrcCode
from .interleaver import RandomInterleaver
from .modulation import Bpsk

__all__ = ["LinkCodec", "DecodedFrame", "DecodedFrameBatch", "default_codec"]


@dataclass(frozen=True)
class DecodedFrame:
    """Result of decoding one frame.

    Attributes
    ----------
    payload:
        Estimated payload bits (CRC stripped).
    frame_bits:
        Estimated full frame (payload + CRC), before stripping — needed by
        the relay, which re-encodes and XOR-combines whole frames.
    crc_ok:
        Whether the CRC verified.
    """

    payload: np.ndarray
    frame_bits: np.ndarray
    crc_ok: bool


@dataclass(frozen=True)
class DecodedFrameBatch:
    """Batched counterpart of :class:`DecodedFrame`.

    Attributes
    ----------
    payload:
        Estimated payload bits, shape ``(n_rounds, payload_bits)``.
    frame_bits:
        Estimated full frames (payload + CRC), ``(n_rounds, frame_bits)``.
    crc_ok:
        Per-frame CRC verdicts, boolean ``(n_rounds,)``.
    """

    payload: np.ndarray
    frame_bits: np.ndarray
    crc_ok: np.ndarray

    def __len__(self) -> int:
        return int(self.frame_bits.shape[0])

    def frame(self, index: int) -> DecodedFrame:
        """The scalar :class:`DecodedFrame` of one round."""
        return DecodedFrame(
            payload=self.payload[index],
            frame_bits=self.frame_bits[index],
            crc_ok=bool(self.crc_ok[index]),
        )


@dataclass(frozen=True)
class LinkCodec:
    """A fixed encode/decode pipeline shared by all nodes.

    Attributes
    ----------
    payload_bits:
        Payload size this codec is dimensioned for (constant per link —
        frames are fixed-length, as the relay's XOR combine requires).
    code:
        The convolutional code.
    crc:
        The CRC code (zero-init, GF(2)-linear).
    modulation:
        BPSK by default.
    interleaver_seed:
        Seed of the shared random interleaver.
    """

    payload_bits: int
    code: ConvolutionalCode = NASA_CODE
    crc: CrcCode = CRC16_CCITT
    modulation: Bpsk = field(default_factory=Bpsk)
    interleaver_seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.payload_bits < 1:
            raise InvalidParameterError(
                f"payload must be at least one bit, got {self.payload_bits}"
            )

    @property
    def frame_bits(self) -> int:
        """Payload plus CRC length."""
        return self.payload_bits + self.crc.n_bits

    @property
    def coded_bits(self) -> int:
        """Coded bits per frame (after zero termination)."""
        return self.code.n_coded_bits(self.frame_bits)

    @property
    def n_symbols(self) -> int:
        """Channel symbols per frame."""
        return self.modulation.symbols_for_bits(self.coded_bits)

    @property
    def rate(self) -> float:
        """Information bits per channel symbol (payload only)."""
        return self.payload_bits / self.n_symbols

    def _interleaver(self) -> RandomInterleaver:
        return RandomInterleaver(self.interleaver_seed)

    def encode_frame_bits(self, frame_bits) -> np.ndarray:
        """Encode an already-CRC'd frame to symbols (the relay path)."""
        frame = as_bits(frame_bits)
        if frame.size != self.frame_bits:
            raise InvalidParameterError(
                f"frame must be {self.frame_bits} bits, got {frame.size}"
            )
        coded = self.code.encode(frame)
        interleaved = self._interleaver().interleave(coded)
        return self.modulation.modulate(interleaved)

    def encode(self, payload) -> np.ndarray:
        """Encode payload bits into unit-energy channel symbols."""
        bits = as_bits(payload)
        if bits.size != self.payload_bits:
            raise InvalidParameterError(
                f"payload must be {self.payload_bits} bits, got {bits.size}"
            )
        return self.encode_frame_bits(self.crc.append(bits))

    def decode_llrs(self, coded_llrs: np.ndarray) -> DecodedFrame:
        """Decode from per-coded-bit LLRs (already demodulated)."""
        llrs = np.asarray(coded_llrs, dtype=float)
        if llrs.shape != (self.coded_bits,):
            raise InvalidParameterError(
                f"expected {self.coded_bits} LLRs, got shape {llrs.shape}"
            )
        deinterleaved = self._interleaver().deinterleave(llrs)
        frame = self.code.decode(deinterleaved, self.frame_bits)
        return DecodedFrame(
            payload=self.crc.strip(frame),
            frame_bits=frame,
            crc_ok=self.crc.check(frame),
        )

    def demodulate(
        self,
        received: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Soft-demodulate a received block into coded-bit LLRs."""
        y = np.asarray(received)
        if y.shape != (self.n_symbols,):
            raise InvalidParameterError(
                f"expected {self.n_symbols} symbols, got shape {y.shape}"
            )
        llrs = self.modulation.demodulate_llr(
            y, complex_gain, noise_power, amplitude=amplitude
        )
        return llrs[: self.coded_bits]

    def decode(
        self,
        received: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> DecodedFrame:
        """Demodulate and decode a received block in one step."""
        llrs = self.demodulate(received, complex_gain, noise_power, amplitude=amplitude)
        return self.decode_llrs(llrs)

    def encode_frame_rows(self, frame_rows) -> np.ndarray:
        """Encode a batch of already-CRC'd frames to symbols, ``(R, n_symbols)``."""
        frames = as_bit_rows(frame_rows)
        if frames.shape[1] != self.frame_bits:
            raise InvalidParameterError(
                f"frames must be {self.frame_bits} bits, got {frames.shape[1]}"
            )
        coded = self.code.encode_rows(frames)
        interleaved = self._interleaver().interleave(coded)
        return self.modulation.modulate_rows(interleaved)

    def encode_rows(self, payload_rows) -> np.ndarray:
        """Encode a batch of payloads into channel symbols, ``(R, n_symbols)``."""
        rows = as_bit_rows(payload_rows)
        if rows.shape[1] != self.payload_bits:
            raise InvalidParameterError(
                f"payloads must be {self.payload_bits} bits, got {rows.shape[1]}"
            )
        return self.encode_frame_rows(self.crc.append_rows(rows))

    def demodulate_rows(
        self,
        received_rows: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Soft-demodulate a batch of received blocks into coded-bit LLRs.

        ``complex_gain``, ``noise_power`` and ``amplitude`` are scalars
        for a single-channel batch, or ``(rounds, 1)`` per-row columns
        for a cells-fused batch where every row carries its own channel
        (the LLR expression is elementwise either way).
        """
        y = np.asarray(received_rows)
        if y.ndim != 2 or y.shape[1] != self.n_symbols:
            raise InvalidParameterError(
                f"expected (rounds, {self.n_symbols}) symbols, got shape {y.shape}"
            )
        for name, value in (
            ("complex_gain", complex_gain),
            ("noise_power", noise_power),
            ("amplitude", amplitude),
        ):
            if np.ndim(value) and np.shape(value) != (y.shape[0], 1):
                raise InvalidParameterError(
                    f"per-row {name} must be a ({y.shape[0]}, 1) column, "
                    f"got shape {np.shape(value)}"
                )
        llrs = self.modulation.demodulate_llr_rows(
            y, complex_gain, noise_power, amplitude=amplitude
        )
        return llrs[:, : self.coded_bits]

    def decode_llr_rows(self, coded_llr_rows: np.ndarray) -> DecodedFrameBatch:
        """Decode a batch of frames from per-coded-bit LLR rows."""
        llrs = np.asarray(coded_llr_rows, dtype=float)
        if llrs.ndim != 2 or llrs.shape[1] != self.coded_bits:
            raise InvalidParameterError(
                f"expected (rounds, {self.coded_bits}) LLRs, got shape {llrs.shape}"
            )
        deinterleaved = self._interleaver().deinterleave(llrs)
        frames = self.code.decode_rows(deinterleaved, self.frame_bits)
        return DecodedFrameBatch(
            payload=frames[:, : -self.crc.n_bits],
            frame_bits=frames,
            crc_ok=self.crc.check_rows(frames),
        )

    def decode_rows(
        self,
        received_rows: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> DecodedFrameBatch:
        """Demodulate and decode a batch of received blocks in one step.

        Accepts scalar or ``(rounds, 1)`` per-row channel parameters (see
        :meth:`demodulate_rows`); the Viterbi stage is channel-agnostic,
        so fused multi-cell batches decode in the same single trellis
        pass as single-cell ones.
        """
        llrs = self.demodulate_rows(
            received_rows, complex_gain, noise_power, amplitude=amplitude
        )
        return self.decode_llr_rows(llrs)


def default_codec(payload_bits: int = 128) -> LinkCodec:
    """The production configuration: CRC-16 + NASA K=7 code + BPSK."""
    return LinkCodec(payload_bits=payload_bits)
