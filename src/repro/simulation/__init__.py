"""Operational link-level simulation of the decode-and-forward protocols."""

from .asymmetric import AsymmetricRoundResult, run_mabc_asymmetric_round
from .adaptive import AdaptiveReport, adaptive_sum_rate, selection_frequencies
from .bits import (
    as_bits,
    bit_error_rate,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    pad_bits,
    random_bits,
    xor_bits,
)
from .convolutional import NASA_CODE, TEST_CODE, ConvolutionalCode
from .crc import CRC8, CRC16_CCITT, CRC32, CrcCode
from .engine import (
    BatchedProtocolEngine,
    FusedCellEngine,
    ProtocolEngine,
    RoundBatch,
    RoundResult,
)
from .interleaver import BlockInterleaver, RandomInterleaver
from .linkcodec import DecodedFrame, LinkCodec, default_codec
from .metrics import LinkCounter, ThroughputReport, WeightedFerCounter, wilson_interval
from .modulation import Bpsk, Qpsk, hard_decisions
from .montecarlo import (
    AdaptiveAccounting,
    FadingStatistics,
    SimulationReport,
    batched_link_goodput,
    collect_adaptive_accounting,
    ergodic_sum_rate,
    fading_sum_rate_statistics,
    fused_link_values,
    outage_probability,
    simulate_protocol,
    simulate_protocol_cells,
    wave_bounds,
)
from .outage_capacity import (
    OutageCurve,
    compute_outage_curve,
    outage_sum_rate,
    sample_outage_curve,
)
from .random_coding import (
    MabcRandomCodingReport,
    RandomBinaryCodebook,
    mabc_rate_pair_feasible,
    simulate_mabc_random_coding,
)
from .relay import MacDecodingResult, decode_frame, sic_decode_mac, xor_forward
from .sampling import ImportanceSamplingSpec, NoiseTwist
from .terminals import DecodePath, PartnerEstimate, arbitrate_paths, resolve_via_relay

__all__ = [
    "AsymmetricRoundResult",
    "run_mabc_asymmetric_round",
    "AdaptiveReport",
    "adaptive_sum_rate",
    "selection_frequencies",
    "as_bits",
    "bit_error_rate",
    "bits_to_int",
    "hamming_distance",
    "int_to_bits",
    "pad_bits",
    "random_bits",
    "xor_bits",
    "NASA_CODE",
    "TEST_CODE",
    "ConvolutionalCode",
    "CRC8",
    "CRC16_CCITT",
    "CRC32",
    "CrcCode",
    "ProtocolEngine",
    "BatchedProtocolEngine",
    "FusedCellEngine",
    "RoundBatch",
    "RoundResult",
    "BlockInterleaver",
    "RandomInterleaver",
    "DecodedFrame",
    "LinkCodec",
    "default_codec",
    "LinkCounter",
    "ThroughputReport",
    "WeightedFerCounter",
    "wilson_interval",
    "Bpsk",
    "Qpsk",
    "hard_decisions",
    "AdaptiveAccounting",
    "FadingStatistics",
    "SimulationReport",
    "batched_link_goodput",
    "collect_adaptive_accounting",
    "ergodic_sum_rate",
    "fading_sum_rate_statistics",
    "fused_link_values",
    "outage_probability",
    "simulate_protocol",
    "simulate_protocol_cells",
    "wave_bounds",
    "OutageCurve",
    "compute_outage_curve",
    "sample_outage_curve",
    "outage_sum_rate",
    "MabcRandomCodingReport",
    "RandomBinaryCodebook",
    "mabc_rate_pair_feasible",
    "simulate_mabc_random_coding",
    "MacDecodingResult",
    "decode_frame",
    "sic_decode_mac",
    "xor_forward",
    "DecodePath",
    "PartnerEstimate",
    "arbitrate_paths",
    "resolve_via_relay",
    "ImportanceSamplingSpec",
    "NoiseTwist",
]
