"""Decode-and-forward relay operations.

The relay of the paper's protocols does three things, all implemented here:

* decode a single terminal's frame from a dedicated phase (TDBC/HBC),
* decode **both** terminals from a joint multiple-access phase (MABC/HBC
  phase 3) — realized operationally with successive interference
  cancellation (SIC): decode the stronger user treating the weaker as
  noise, re-encode and subtract, then decode the weaker user cleanly,
* combine the two decoded frames into the network-coded broadcast word
  ``w_a ⊕ w_b`` (Theorem 2's group operation, on CRC-protected frames —
  valid because the CRC is GF(2)-linear, see :mod:`repro.simulation.crc`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from .bits import xor_bits
from .linkcodec import DecodedFrame, DecodedFrameBatch, LinkCodec

__all__ = [
    "MacDecodingResult",
    "MacDecodingRows",
    "decode_frame",
    "sic_decode_mac",
    "sic_decode_mac_rows",
    "xor_forward",
]


def decode_frame(
    codec: LinkCodec,
    received: np.ndarray,
    complex_gain: complex,
    noise_power: float,
    amplitude: float,
) -> DecodedFrame:
    """Decode a single-transmitter phase at the relay (or any listener)."""
    return codec.decode(received, complex_gain, noise_power, amplitude=amplitude)


@dataclass(frozen=True)
class MacDecodingResult:
    """Both terminals' frames decoded from one MAC phase.

    Attributes
    ----------
    frame_a, frame_b:
        Decoded frames of terminals ``a`` and ``b``.
    decoded_first:
        Which terminal was decoded in the first SIC stage (``"a"``/``"b"``).
    """

    frame_a: DecodedFrame
    frame_b: DecodedFrame
    decoded_first: str

    @property
    def both_ok(self) -> bool:
        """Whether both CRCs verified (the relay's Theorem-2 decode event)."""
        return self.frame_a.crc_ok and self.frame_b.crc_ok


def sic_decode_mac(
    codec: LinkCodec,
    received: np.ndarray,
    *,
    gain_a: complex,
    gain_b: complex,
    noise_power: float,
    amplitude: float,
) -> MacDecodingResult:
    """Successive interference cancellation on ``y = g_a x_a + g_b x_b + z``.

    Stage 1 decodes the stronger link treating the other signal as
    additional Gaussian noise (its power adds to the demodulator's noise
    estimate); stage 2 re-encodes the stage-1 frame, subtracts its channel
    contribution, and decodes the weaker link against thermal noise only.

    This is the operational counterpart of the corner points of the MAC
    pentagon in Theorem 2; time sharing between the two decoding orders
    sweeps the dominant face.
    """
    if noise_power <= 0:
        raise InvalidParameterError(f"noise power must be positive, got {noise_power}")
    if amplitude <= 0:
        raise InvalidParameterError(f"amplitude must be positive, got {amplitude}")
    y = np.asarray(received)
    power_a = amplitude**2 * abs(gain_a) ** 2
    power_b = amplitude**2 * abs(gain_b) ** 2
    strong_is_a = power_a >= power_b
    strong_gain, weak_gain = (gain_a, gain_b) if strong_is_a else (gain_b, gain_a)
    weak_power = power_b if strong_is_a else power_a

    # Stage 1: the weaker user's signal acts as extra noise.
    strong_frame = codec.decode(
        y, strong_gain, noise_power + weak_power, amplitude=amplitude
    )
    # Stage 2: subtract the re-encoded stage-1 estimate, decode cleanly.
    reencoded = codec.encode_frame_bits(strong_frame.frame_bits)
    residual = y - amplitude * strong_gain * reencoded
    weak_frame = codec.decode(residual, weak_gain, noise_power, amplitude=amplitude)

    if strong_is_a:
        return MacDecodingResult(
            frame_a=strong_frame, frame_b=weak_frame, decoded_first="a"
        )
    return MacDecodingResult(
        frame_a=weak_frame, frame_b=strong_frame, decoded_first="b"
    )


@dataclass(frozen=True)
class MacDecodingRows:
    """Batched counterpart of :class:`MacDecodingResult`.

    Attributes
    ----------
    frame_a, frame_b:
        Decoded frame batches of terminals ``a`` and ``b``.
    decoded_first:
        Which terminal the first SIC stage decoded. For a single-cell
        batch the ordering depends only on the quasi-static gains, so it
        is the shared ``"a"``/``"b"`` string; a cells-fused batch carries
        one ``"a"``/``"b"`` entry per row (the ordering is per cell).
    """

    frame_a: DecodedFrameBatch
    frame_b: DecodedFrameBatch
    decoded_first: str | np.ndarray

    @property
    def both_ok(self) -> np.ndarray:
        """Per-round conjunction of both CRC verdicts, boolean ``(R,)``."""
        return self.frame_a.crc_ok & self.frame_b.crc_ok


def _select_frame_rows(
    use_first: np.ndarray, first: DecodedFrameBatch, second: DecodedFrameBatch
) -> DecodedFrameBatch:
    """Row-wise selection between two decoded frame batches."""
    return DecodedFrameBatch(
        payload=np.where(use_first[:, None], first.payload, second.payload),
        frame_bits=np.where(use_first[:, None], first.frame_bits, second.frame_bits),
        crc_ok=np.where(use_first, first.crc_ok, second.crc_ok),
    )


def _sic_decode_mac_fused(
    codec: LinkCodec,
    y: np.ndarray,
    *,
    gain_a,
    gain_b,
    noise_power,
    amplitude,
) -> MacDecodingRows:
    """Per-row SIC: every row carries its own gains/amplitude column.

    The cells-fused counterpart of the scalar ordering decision: the
    stage-1/stage-2 split is selected per row with ``np.where`` using the
    same ``power_a >= power_b`` comparison (ties decode ``a`` first), and
    every arithmetic expression matches the scalar path operation for
    operation — so a fused row reproduces the scalar SIC of its cell bit
    for bit.
    """
    power_a = amplitude**2 * np.abs(gain_a) ** 2
    power_b = amplitude**2 * np.abs(gain_b) ** 2
    strong_is_a = power_a >= power_b
    strong_gain = np.where(strong_is_a, gain_a, gain_b)
    weak_gain = np.where(strong_is_a, gain_b, gain_a)
    weak_power = np.where(strong_is_a, power_b, power_a)

    strong_frames = codec.decode_rows(
        y, strong_gain, noise_power + weak_power, amplitude=amplitude
    )
    reencoded = codec.encode_frame_rows(strong_frames.frame_bits)
    residual = y - amplitude * strong_gain * reencoded
    weak_frames = codec.decode_rows(
        residual, weak_gain, noise_power, amplitude=amplitude
    )

    first_is_a = np.broadcast_to(strong_is_a, (y.shape[0], 1))[:, 0]
    return MacDecodingRows(
        frame_a=_select_frame_rows(first_is_a, strong_frames, weak_frames),
        frame_b=_select_frame_rows(~first_is_a, strong_frames, weak_frames),
        decoded_first=np.where(first_is_a, "a", "b"),
    )


def sic_decode_mac_rows(
    codec: LinkCodec,
    received_rows: np.ndarray,
    *,
    gain_a: complex,
    gain_b: complex,
    noise_power: float,
    amplitude: float,
) -> MacDecodingRows:
    """Batched successive interference cancellation over a rounds axis.

    Exactly :func:`sic_decode_mac` with ``(n_rounds, n_symbols)`` inputs:
    the stage ordering is decided once from the (round-independent)
    received powers, and both decode stages, the re-encoding and the
    residual subtraction are elementwise along the rounds axis — so row
    ``r`` reproduces the scalar SIC of round ``r`` bit for bit.

    ``gain_a``/``gain_b``/``amplitude`` may also be ``(n_rows, 1)``
    per-row columns (the cells-fused engine's layout); the stage ordering
    is then decided *per row* with the identical comparison, and the
    selected-gain arithmetic stays elementwise, preserving bitwise
    equality with the per-cell path.
    """
    if np.any(np.asarray(noise_power) <= 0):
        raise InvalidParameterError(f"noise power must be positive, got {noise_power}")
    if np.any(np.asarray(amplitude) <= 0):
        raise InvalidParameterError(f"amplitude must be positive, got {amplitude}")
    y = np.asarray(received_rows)
    if np.ndim(gain_a) or np.ndim(gain_b) or np.ndim(amplitude):
        return _sic_decode_mac_fused(
            codec,
            y,
            gain_a=gain_a,
            gain_b=gain_b,
            noise_power=noise_power,
            amplitude=amplitude,
        )
    power_a = amplitude**2 * abs(gain_a) ** 2
    power_b = amplitude**2 * abs(gain_b) ** 2
    strong_is_a = power_a >= power_b
    strong_gain, weak_gain = (gain_a, gain_b) if strong_is_a else (gain_b, gain_a)
    weak_power = power_b if strong_is_a else power_a

    strong_frames = codec.decode_rows(
        y, strong_gain, noise_power + weak_power, amplitude=amplitude
    )
    reencoded = codec.encode_frame_rows(strong_frames.frame_bits)
    residual = y - amplitude * strong_gain * reencoded
    weak_frames = codec.decode_rows(
        residual, weak_gain, noise_power, amplitude=amplitude
    )

    if strong_is_a:
        return MacDecodingRows(
            frame_a=strong_frames, frame_b=weak_frames, decoded_first="a"
        )
    return MacDecodingRows(
        frame_a=weak_frames, frame_b=strong_frames, decoded_first="b"
    )


def xor_forward(frame_a_bits, frame_b_bits) -> np.ndarray:
    """The relay's broadcast content: bitwise XOR of the two decoded frames.

    Frames must have equal length (the codec fixes it); by CRC linearity
    the result is itself a valid CRC-protected frame, so terminals can
    verify the *combined* frame before resolving their partner's message.
    """
    return xor_bits(frame_a_bits, frame_b_bits)
