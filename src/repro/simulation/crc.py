"""Cyclic redundancy checks over bit arrays.

Frames in the simulator carry a CRC so decoders can *detect* failures —
the operational stand-in for the error events ``E_{i,j}`` of the paper's
analysis, and the mechanism terminals use to arbitrate between the direct
path and the relay (network-coded) path in the TDBC decoder.

The registers are initialized to **zero** deliberately: with zero init (and
no output XOR) the CRC is linear over GF(2), i.e.
``crc(a XOR b) == crc(a) XOR crc(b)``. Linearity means a relay that XORs
two *CRC-protected* frames produces a bit string that is itself a valid
CRC-protected frame — so terminals can check integrity of the combined
frame before resolving their partner's message. The property tests pin
this down.

Checksums are computed with a table-driven (256-entry, byte-at-a-time)
register update that is exactly equivalent to the classic bit-at-a-time
shift register (golden checksums are regression-tested): full bytes of the
payload advance the register eight bits per table lookup, the trailing
``len % 8`` bits advance it bit by bit. Both steps are vectorized over a
leading batch axis (:meth:`CrcCode.checksum_rows` and friends), which is
what lets the batched link-level simulation kernel verify thousands of
frames in a handful of NumPy calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError
from .bits import as_bit_rows, as_bits

__all__ = ["CrcCode", "CRC16_CCITT", "CRC32", "CRC8"]

#: Widest register the vectorized byte-wise update supports: the update
#: shifts the register left by 8 inside a signed 64-bit lane, so the
#: polynomial width may use at most 55 bits. Wider CRCs (none are shipped)
#: fall back to the bit-at-a-time update, which only ever shifts by one.
_MAX_TABLE_BITS = 55

#: Widest register any vectorized update supports: the bit-at-a-time
#: update shifts left by one inside a signed 64-bit lane, so 63 bits is
#: the ceiling. Wider CRCs run the original arbitrary-precision
#: Python-int register per row instead.
_MAX_VECTOR_BITS = 63


@dataclass(frozen=True)
class CrcCode:
    """A CRC defined by its generator polynomial (MSB-first, implicit top bit).

    Attributes
    ----------
    polynomial:
        Generator polynomial without the leading ``x^n`` term, e.g.
        ``0x1021`` for CRC-16-CCITT.
    n_bits:
        CRC width in bits.
    """

    polynomial: int
    n_bits: int
    _table_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise InvalidParameterError(f"CRC width must be >= 1, got {self.n_bits}")
        if not 0 < self.polynomial < (1 << self.n_bits):
            raise InvalidParameterError(
                f"polynomial 0x{self.polynomial:x} does not fit in {self.n_bits} bits"
            )

    def _table(self) -> np.ndarray:
        """The 256-entry byte-advance table (built once, then cached).

        ``table[b]`` is the register after clocking the eight bits of byte
        ``b`` (MSB first) through a zeroed register — the standard
        byte-wise CRC recurrence
        ``reg' = (reg << 8) ^ table[(reg >> (n - 8)) ^ byte]`` for
        ``n >= 8`` (narrower registers use the bitwise update directly).
        """
        cached = self._table_cache.get("table")
        if cached is not None:
            return cached
        top = 1 << (self.n_bits - 1)
        mask = (1 << self.n_bits) - 1
        table = np.zeros(256, dtype=np.int64)
        for byte in range(256):
            register = 0
            for i in range(8):
                feedback = ((register & top) != 0) ^ bool((byte >> (7 - i)) & 1)
                register = (register << 1) & mask
                if feedback:
                    register ^= self.polynomial
            table[byte] = register
        self._table_cache["table"] = table
        return table

    def _advance_bitwise(
        self, registers: np.ndarray, bit_columns: np.ndarray
    ) -> np.ndarray:
        """Clock ``bit_columns`` (shape ``(rows, n)``) one bit at a time."""
        top_shift = self.n_bits - 1
        mask = (1 << self.n_bits) - 1
        for column in range(bit_columns.shape[1]):
            feedback = ((registers >> top_shift) & 1) ^ bit_columns[:, column]
            registers = ((registers << 1) & mask) ^ (feedback * self.polynomial)
        return registers

    def _register_int(self, bits) -> int:
        """Bit-at-a-time register of one payload, with Python-int width.

        The fallback for registers wider than a 64-bit lane — and the
        original definition of this CRC, which the vectorized paths must
        reproduce exactly.
        """
        register = 0
        top = 1 << (self.n_bits - 1)
        mask = (1 << self.n_bits) - 1
        for bit in bits:
            feedback = ((register & top) != 0) ^ bool(bit)
            register = (register << 1) & mask
            if feedback:
                register ^= self.polynomial
        return register

    def _registers(self, rows: np.ndarray) -> np.ndarray:
        """Final CRC registers of a batch of payload rows, shape ``(R,)``."""
        rows = rows.astype(np.int64)
        registers = np.zeros(rows.shape[0], dtype=np.int64)
        n_bytes = rows.shape[1] // 8
        if 8 <= self.n_bits <= _MAX_TABLE_BITS and n_bytes:
            table = self._table()
            mask = (1 << self.n_bits) - 1
            byte_shift = self.n_bits - 8
            packed = np.packbits(
                rows[:, : 8 * n_bytes].astype(np.uint8), axis=1
            ).astype(np.int64)
            for column in range(n_bytes):
                index = ((registers >> byte_shift) ^ packed[:, column]) & 0xFF
                registers = ((registers << 8) & mask) ^ table[index]
            rows = rows[:, 8 * n_bytes :]
        return self._advance_bitwise(registers, rows)

    def _register_bits(self, registers: np.ndarray) -> np.ndarray:
        """MSB-first bit expansion of a register batch, shape ``(R, n_bits)``."""
        shifts = np.arange(self.n_bits - 1, -1, -1, dtype=np.int64)
        return ((registers[:, None] >> shifts[None, :]) & 1).astype(np.uint8)

    def checksum_rows(self, payload_rows) -> np.ndarray:
        """CRC bits of a batch of equal-length payloads, ``(R, n_bits)``."""
        rows = as_bit_rows(payload_rows)
        if self.n_bits > _MAX_VECTOR_BITS:
            out = np.empty((rows.shape[0], self.n_bits), dtype=np.uint8)
            for index in range(rows.shape[0]):
                register = self._register_int(rows[index])
                out[index] = [
                    (register >> (self.n_bits - 1 - i)) & 1
                    for i in range(self.n_bits)
                ]
            return out
        return self._register_bits(self._registers(rows))

    def checksum(self, payload) -> np.ndarray:
        """CRC bits (length ``n_bits``) of a payload bit array."""
        bits = as_bits(payload)
        return self.checksum_rows(bits[None, :])[0]

    def append_rows(self, payload_rows) -> np.ndarray:
        """Batch of payloads with their CRCs appended (*frames*), ``(R, F)``."""
        rows = as_bit_rows(payload_rows)
        return np.concatenate([rows, self.checksum_rows(rows)], axis=1)

    def append(self, payload) -> np.ndarray:
        """Payload with its CRC appended (a *frame*)."""
        bits = as_bits(payload)
        return np.concatenate([bits, self.checksum(bits)])

    def check_rows(self, frame_rows) -> np.ndarray:
        """Per-row CRC verification of a frame batch, boolean ``(R,)``."""
        rows = as_bit_rows(frame_rows)
        if rows.shape[1] < self.n_bits:
            return np.zeros(rows.shape[0], dtype=bool)
        payload, received = rows[:, : -self.n_bits], rows[:, -self.n_bits :]
        return np.all(self.checksum_rows(payload) == received, axis=1)

    def check(self, frame) -> bool:
        """Verify a frame produced by :meth:`append`."""
        bits = as_bits(frame)
        if bits.size < self.n_bits:
            return False
        return bool(self.check_rows(bits[None, :])[0])

    def strip(self, frame) -> np.ndarray:
        """Remove the CRC field, returning the payload (no verification)."""
        bits = as_bits(frame)
        if bits.size < self.n_bits:
            raise InvalidParameterError(
                f"frame of {bits.size} bits is shorter than the {self.n_bits}-bit CRC"
            )
        return bits[: -self.n_bits]


#: CRC-16-CCITT (x^16 + x^12 + x^5 + 1), zero-init for GF(2) linearity.
CRC16_CCITT = CrcCode(polynomial=0x1021, n_bits=16)

#: CRC-32 (IEEE 802.3 polynomial), zero-init for GF(2) linearity.
CRC32 = CrcCode(polynomial=0x04C11DB7, n_bits=32)

#: CRC-8 (ATM HEC polynomial), for short test frames.
CRC8 = CrcCode(polynomial=0x07, n_bits=8)
