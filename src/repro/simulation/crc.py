"""Cyclic redundancy checks over bit arrays.

Frames in the simulator carry a CRC so decoders can *detect* failures —
the operational stand-in for the error events ``E_{i,j}`` of the paper's
analysis, and the mechanism terminals use to arbitrate between the direct
path and the relay (network-coded) path in the TDBC decoder.

The registers are initialized to **zero** deliberately: with zero init (and
no output XOR) the CRC is linear over GF(2), i.e.
``crc(a XOR b) == crc(a) XOR crc(b)``. Linearity means a relay that XORs
two *CRC-protected* frames produces a bit string that is itself a valid
CRC-protected frame — so terminals can check integrity of the combined
frame before resolving their partner's message. The property tests pin
this down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from .bits import as_bits

__all__ = ["CrcCode", "CRC16_CCITT", "CRC32", "CRC8"]


@dataclass(frozen=True)
class CrcCode:
    """A CRC defined by its generator polynomial (MSB-first, implicit top bit).

    Attributes
    ----------
    polynomial:
        Generator polynomial without the leading ``x^n`` term, e.g.
        ``0x1021`` for CRC-16-CCITT.
    n_bits:
        CRC width in bits.
    """

    polynomial: int
    n_bits: int

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise InvalidParameterError(f"CRC width must be >= 1, got {self.n_bits}")
        if not 0 < self.polynomial < (1 << self.n_bits):
            raise InvalidParameterError(
                f"polynomial 0x{self.polynomial:x} does not fit in {self.n_bits} bits"
            )

    def checksum(self, payload) -> np.ndarray:
        """CRC bits (length ``n_bits``) of a payload bit array."""
        bits = as_bits(payload)
        register = 0
        top = 1 << (self.n_bits - 1)
        mask = (1 << self.n_bits) - 1
        for bit in bits:
            feedback = ((register & top) != 0) ^ bool(bit)
            register = (register << 1) & mask
            if feedback:
                register ^= self.polynomial
        return np.array(
            [(register >> (self.n_bits - 1 - i)) & 1 for i in range(self.n_bits)],
            dtype=np.uint8,
        )

    def append(self, payload) -> np.ndarray:
        """Payload with its CRC appended (a *frame*)."""
        bits = as_bits(payload)
        return np.concatenate([bits, self.checksum(bits)])

    def check(self, frame) -> bool:
        """Verify a frame produced by :meth:`append`."""
        bits = as_bits(frame)
        if bits.size < self.n_bits:
            return False
        payload, received = bits[: -self.n_bits], bits[-self.n_bits:]
        return bool(np.array_equal(self.checksum(payload), received))

    def strip(self, frame) -> np.ndarray:
        """Remove the CRC field, returning the payload (no verification)."""
        bits = as_bits(frame)
        if bits.size < self.n_bits:
            raise InvalidParameterError(
                f"frame of {bits.size} bits is shorter than the {self.n_bits}-bit CRC"
            )
        return bits[: -self.n_bits]


#: CRC-16-CCITT (x^16 + x^12 + x^5 + 1), zero-init for GF(2) linearity.
CRC16_CCITT = CrcCode(polynomial=0x1021, n_bits=16)

#: CRC-32 (IEEE 802.3 polynomial), zero-init for GF(2) linearity.
CRC32 = CrcCode(polynomial=0x04C11DB7, n_bits=32)

#: CRC-8 (ATM HEC polynomial), for short test frames.
CRC8 = CrcCode(polynomial=0x07, n_bits=8)
