"""Adaptive protocol selection under quasi-static fading.

With full CSI (the paper's assumption) the nodes know the realized gains
before each protocol execution, so nothing stops them from *choosing the
protocol per realization* — the natural system-level use of the paper's
comparison. This module quantifies that adaptivity gain:

* :func:`adaptive_sum_rate` — the ergodic rate of the
  pick-the-best-protocol-each-fade strategy, alongside each fixed
  protocol's ergodic rate;
* :func:`selection_frequencies` — how often each protocol wins, i.e. the
  operating-regime mix a deployment would actually see.

Since MABC and TDBC are special cases of HBC, the adaptive gain over
*HBC alone* is zero by definition; the interesting quantity is the gain
over the best *fixed two-phase or three-phase* protocol, which is what a
complexity-constrained deployment (no four-phase scheduling) would run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..core.capacity import optimal_sum_rate
from ..core.gaussian import GaussianChannel
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..optimize.linprog import DEFAULT_BACKEND

__all__ = ["AdaptiveReport", "adaptive_sum_rate", "selection_frequencies"]


@dataclass(frozen=True)
class AdaptiveReport:
    """Ergodic rates of fixed strategies vs per-fade protocol selection.

    Attributes
    ----------
    fixed_means:
        Protocol -> ergodic sum rate when running that protocol always.
    adaptive_mean:
        Ergodic sum rate when selecting the best protocol per realization.
    winner_counts:
        Protocol -> number of realizations it won (ties go to the earlier
        protocol in the candidate order).
    n_draws:
        Ensemble size.
    """

    fixed_means: dict
    adaptive_mean: float
    winner_counts: dict
    n_draws: int

    @property
    def adaptivity_gain(self) -> float:
        """Adaptive ergodic rate minus the best fixed protocol's."""
        return self.adaptive_mean - max(self.fixed_means.values())

    def selection_frequency(self, protocol: Protocol) -> float:
        """Fraction of realizations where ``protocol`` was selected."""
        return self.winner_counts.get(protocol, 0) / self.n_draws


def adaptive_sum_rate(
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    candidates=(Protocol.MABC, Protocol.TDBC),
    k_factor: float = 0.0,
    backend: str = DEFAULT_BACKEND,
) -> AdaptiveReport:
    """Evaluate per-fade protocol selection over a Rayleigh/Rician ensemble.

    Parameters
    ----------
    mean_gains:
        Path-loss means of the three links.
    power:
        Per-node transmit power (linear).
    n_draws:
        Ensemble size.
    rng:
        Random generator (callers own the seed).
    candidates:
        The protocols the system may switch between; defaults to the two
        practical (≤3-phase) schemes, making the adaptivity gain the value
        of regime-aware switching the paper's low/high-SNR discussion
        implies.
    k_factor:
        Rician K-factor of the fading.
    """
    if n_draws < 1:
        raise InvalidParameterError(f"need at least one draw, got {n_draws}")
    candidates = tuple(candidates)
    if not candidates:
        raise InvalidParameterError("at least one candidate protocol required")
    ensemble = sample_gain_ensemble(mean_gains, n_draws, rng, k_factor=k_factor)
    totals = {protocol: 0.0 for protocol in candidates}
    winner_counts = {protocol: 0 for protocol in candidates}
    adaptive_total = 0.0
    for draw in ensemble:
        channel = GaussianChannel(gains=draw, power=power)
        rates = {
            protocol: optimal_sum_rate(protocol, channel, backend=backend).sum_rate
            for protocol in candidates
        }
        for protocol, value in rates.items():
            totals[protocol] += value
        best = max(candidates, key=lambda p: rates[p])
        winner_counts[best] += 1
        adaptive_total += rates[best]
    return AdaptiveReport(
        fixed_means={p: totals[p] / n_draws for p in candidates},
        adaptive_mean=adaptive_total / n_draws,
        winner_counts=winner_counts,
        n_draws=n_draws,
    )


def selection_frequencies(
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    candidates=(Protocol.MABC, Protocol.TDBC),
    k_factor: float = 0.0,
) -> dict:
    """Protocol -> win frequency over the fading ensemble."""
    report = adaptive_sum_rate(
        mean_gains, power, n_draws, rng, candidates=candidates, k_factor=k_factor
    )
    return {p: report.selection_frequency(p) for p in report.winner_counts}
