"""Interleavers for burst-error dispersal.

The quasi-static channel of the paper does not itself create bursts, but
the successive-interference-cancellation stage of the MABC MAC phase does:
residual errors after subtracting an incorrectly decoded stronger user are
strongly correlated. A block (or seeded random) interleaver between the
convolutional code and the modulator whitens those residuals so the
Viterbi decoder sees approximately independent LLRs.

Both interleavers permute the *last* axis of their input, so a batch of
frames ``(n_rounds, n)`` is (de)interleaved in a single fancy-indexing
call — the layout of the batched link-level simulation kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["BlockInterleaver", "RandomInterleaver", "identity_permutation"]


def identity_permutation(n: int) -> np.ndarray:
    """The identity permutation of length ``n``."""
    if n < 0:
        raise InvalidParameterError(f"length must be non-negative, got {n}")
    return np.arange(n)


@dataclass(frozen=True)
class BlockInterleaver:
    """Row-in / column-out block interleaver for lengths up to rows*cols.

    The sequence is written row-wise into an ``rows x cols`` matrix and
    read column-wise. Lengths that do not fill the matrix are handled by
    permuting only the positions that exist (a "pruned" block interleaver).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise InvalidParameterError(
                f"rows and cols must be >= 1, got {self.rows}x{self.cols}"
            )

    def permutation(self, n: int) -> np.ndarray:
        """The read order for a sequence of length ``n``."""
        if n > self.rows * self.cols:
            raise InvalidParameterError(
                f"length {n} exceeds interleaver capacity {self.rows * self.cols}"
            )
        full = np.arange(self.rows * self.cols).reshape(self.rows, self.cols)
        read_order = full.T.reshape(-1)
        return read_order[read_order < n]

    def interleave(self, values: np.ndarray) -> np.ndarray:
        """Permute a sequence (the last axis of a batched array)."""
        arr = np.asarray(values)
        return arr[..., self.permutation(arr.shape[-1])]

    def deinterleave(self, values: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave`."""
        arr = np.asarray(values)
        perm = self.permutation(arr.shape[-1])
        out = np.empty_like(arr)
        out[..., perm] = arr
        return out


@dataclass(frozen=True)
class RandomInterleaver:
    """A fixed pseudo-random permutation derived from a seed.

    The permutation depends only on ``(seed, length)``, so transmitter and
    receiver agree without communication — codebook knowledge, in the
    paper's terms.
    """

    seed: int

    def permutation(self, n: int) -> np.ndarray:
        """The permutation for length ``n``."""
        if n < 0:
            raise InvalidParameterError(f"length must be non-negative, got {n}")
        rng = np.random.default_rng(self.seed)
        return rng.permutation(n)

    def interleave(self, values: np.ndarray) -> np.ndarray:
        """Permute a sequence (the last axis of a batched array)."""
        arr = np.asarray(values)
        return arr[..., self.permutation(arr.shape[-1])]

    def deinterleave(self, values: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave`."""
        arr = np.asarray(values)
        perm = self.permutation(arr.shape[-1])
        out = np.empty_like(arr)
        out[..., perm] = arr
        return out
