"""Monte-Carlo drivers: link-level campaigns and fading-ensemble bounds.

Two complementary estimators live here:

* :func:`simulate_protocol` — run the *operational* link-level system
  (:mod:`repro.simulation.engine`) for many rounds on a fixed channel and
  report FER/BER/goodput. This is the "does a real DF system behave like
  the bounds say" check.
* :func:`ergodic_sum_rate` / :func:`outage_probability` — evaluate the
  *analytic* LP-optimal sum rates over a quasi-static fading ensemble
  (Section IV's channel model), producing ergodic averages and outage
  curves for every protocol.

The analytic estimators route through the :mod:`repro.api` facade
(:func:`repro.api.evaluate_realizations`): the ensemble is drawn here
(callers own the RNG, as before) and the per-realization optima are
evaluated by a pluggable campaign executor — the batched vectorized
kernel by default, many times faster than the historical
one-LP-per-draw loop and bit-for-bit identical to the serial executor.
:func:`ergodic_sum_rate` is kept as a deprecation shim over
:func:`fading_sum_rate_statistics`; scenario-first callers should
evaluate a fading scenario through :func:`repro.api.evaluate` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..channels.halfduplex import HalfDuplexMedium
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .bits import random_bits
from .engine import ProtocolEngine
from .linkcodec import LinkCodec, default_codec
from .metrics import LinkCounter, ThroughputReport

__all__ = [
    "SimulationReport",
    "simulate_protocol",
    "FadingStatistics",
    "fading_sum_rate_statistics",
    "ergodic_sum_rate",
    "outage_probability",
]


@dataclass(frozen=True)
class SimulationReport:
    """Aggregated outcome of a link-level campaign.

    Attributes
    ----------
    protocol:
        The simulated protocol.
    n_rounds:
        Number of protocol rounds executed.
    a_to_b / b_to_a:
        Per-direction error counters.
    throughput:
        Goodput accounting in bits per channel symbol.
    relay_failures:
        Rounds in which the relay failed to decode what it needed.
    """

    protocol: Protocol
    n_rounds: int
    a_to_b: LinkCounter
    b_to_a: LinkCounter
    throughput: ThroughputReport

    relay_failures: int

    @property
    def sum_goodput(self) -> float:
        """Total delivered payload bits per channel symbol."""
        return self.throughput.sum_throughput


def simulate_protocol(protocol: Protocol, gains: LinkGains, power: float,
                      n_rounds: int, rng: np.random.Generator, *,
                      codec: LinkCodec | None = None) -> SimulationReport:
    """Run ``n_rounds`` of the protocol and aggregate statistics.

    Parameters
    ----------
    protocol:
        One of DT / MABC / TDBC / HBC.
    gains:
        Fixed (quasi-static) link gains for the whole campaign.
    power:
        Per-node transmit power (linear).
    n_rounds:
        Campaign length.
    rng:
        Source of all randomness (payloads and noise).
    codec:
        Frame pipeline; defaults to :func:`default_codec` (128-bit
        payloads, CRC-16, NASA K=7 code, BPSK).
    """
    if n_rounds < 1:
        raise InvalidParameterError(f"need at least one round, got {n_rounds}")
    codec = codec or default_codec()
    medium = HalfDuplexMedium(gains=gains)
    engine = ProtocolEngine(medium=medium, codec=codec, power=power)

    a_to_b = LinkCounter()
    b_to_a = LinkCounter()
    throughput = ThroughputReport()
    relay_failures = 0
    for _ in range(n_rounds):
        wa = random_bits(rng, codec.payload_bits)
        wb = random_bits(rng, codec.payload_bits)
        result = engine.run_round(protocol, wa, wb, rng)
        a_to_b.record(success=result.success_a_to_b,
                      n_bits=result.payload_bits,
                      n_bit_errors=result.bit_errors_a_to_b)
        b_to_a.record(success=result.success_b_to_a,
                      n_bits=result.payload_bits,
                      n_bit_errors=result.bit_errors_b_to_a)
        throughput.add_symbols(result.n_symbols)
        if result.success_a_to_b:
            throughput.record("a->b", delivered_bits=result.payload_bits)
        if result.success_b_to_a:
            throughput.record("b->a", delivered_bits=result.payload_bits)
        if result.relay_ok is False:
            relay_failures += 1
    return SimulationReport(
        protocol=protocol,
        n_rounds=n_rounds,
        a_to_b=a_to_b,
        b_to_a=b_to_a,
        throughput=throughput,
        relay_failures=relay_failures,
    )


@dataclass(frozen=True)
class FadingStatistics:
    """Summary of a bound evaluated over a fading ensemble.

    Attributes
    ----------
    mean:
        Ergodic (ensemble-average) value.
    std_error:
        Standard error of the mean.
    samples:
        The per-realization values (for quantiles/outage post-processing).
    """

    mean: float
    std_error: float
    samples: np.ndarray

    def quantile(self, q: float) -> float:
        """Ensemble quantile (e.g. ``q=0.05`` for 5%-outage capacity)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))


def fading_sum_rate_statistics(protocol: Protocol, mean_gains: LinkGains,
                               power: float, n_draws: int,
                               rng: np.random.Generator, *,
                               k_factor: float = 0.0,
                               executor=None, cache=None,
                               progress=None) -> FadingStatistics:
    """Ensemble-average LP-optimal sum rate under quasi-static fading.

    Each realization draws reciprocal Rayleigh/Rician gains around the
    path-loss means, re-optimizes the phase durations (full CSI, as the
    paper assumes), and records the optimal sum rate. The per-realization
    optimizations run through :func:`repro.api.evaluate_realizations`
    (``executor``: campaign executor name or instance, defaulting to the
    vectorized fast path). With a ``cache``
    (a :class:`~repro.campaign.cache.CampaignCache`, path or ``True``)
    the evaluation is chunk-checkpointed under a content hash of the
    drawn realizations, so a huge ensemble interrupted mid-run resumes
    from its checkpoints on the next call with the same RNG state.
    """
    from ..api import evaluate_realizations

    if n_draws < 1:
        raise InvalidParameterError(f"need at least one draw, got {n_draws}")
    ensemble = sample_gain_ensemble(mean_gains, n_draws, rng, k_factor=k_factor)
    values = evaluate_realizations(protocol, ensemble, power, executor=executor,
                                   cache=cache, progress=progress)
    return FadingStatistics(
        mean=float(values.mean()),
        std_error=float(values.std(ddof=1) / np.sqrt(n_draws)) if n_draws > 1 else 0.0,
        samples=values,
    )


def ergodic_sum_rate(protocol: Protocol, mean_gains: LinkGains, power: float,
                     n_draws: int, rng: np.random.Generator, *,
                     k_factor: float = 0.0,
                     executor=None, cache=None,
                     progress=None) -> FadingStatistics:
    """Deprecated alias of :func:`fading_sum_rate_statistics`.

    .. deprecated::
        Evaluate a fading scenario through :func:`repro.api.evaluate`
        (spec-owned randomness), or call
        :func:`fading_sum_rate_statistics` for caller-owned RNGs.
    """
    warnings.warn(
        "ergodic_sum_rate is deprecated; evaluate a fading scenario through "
        "repro.api.evaluate or call fading_sum_rate_statistics",
        DeprecationWarning,
        stacklevel=2,
    )
    return fading_sum_rate_statistics(protocol, mean_gains, power, n_draws,
                                      rng, k_factor=k_factor,
                                      executor=executor, cache=cache,
                                      progress=progress)


def outage_probability(protocol: Protocol, mean_gains: LinkGains, power: float,
                       target_sum_rate: float, n_draws: int,
                       rng: np.random.Generator, *,
                       k_factor: float = 0.0, executor=None,
                       cache=None) -> float:
    """Probability that the optimal sum rate falls below a target.

    The quasi-static outage formulation: the channel is constant per
    protocol execution, so a realization is "in outage" when even optimal
    phase durations cannot support ``target_sum_rate``.
    """
    if target_sum_rate < 0:
        raise InvalidParameterError(
            f"target sum rate must be non-negative, got {target_sum_rate}"
        )
    stats = fading_sum_rate_statistics(protocol, mean_gains, power, n_draws,
                                       rng, k_factor=k_factor,
                                       executor=executor, cache=cache)
    return float(np.mean(stats.samples < target_sum_rate))
