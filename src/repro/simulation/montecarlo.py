"""Monte-Carlo drivers: link-level campaigns and fading-ensemble bounds.

Two complementary estimators live here:

* :func:`simulate_protocol` — run the *operational* link-level system
  (:mod:`repro.simulation.engine`) for many rounds on a fixed channel and
  report FER/BER/goodput. This is the "does a real DF system behave like
  the bounds say" check. Rounds execute through the frames-axis-batched
  :class:`~repro.simulation.engine.BatchedProtocolEngine` by default;
  ``method="reference"`` runs the per-round
  :class:`~repro.simulation.engine.ProtocolEngine` loop instead, which
  is provably — and benchmark-asserted — field-for-field identical.
* :func:`ergodic_sum_rate` / :func:`outage_probability` — evaluate the
  *analytic* LP-optimal sum rates over a quasi-static fading ensemble
  (Section IV's channel model), producing ergodic averages and outage
  curves for every protocol.

Reproducibility policy of :func:`simulate_protocol` (the fix for the
historical payload/noise RNG coupling that blocked batching): the
caller's ``rng`` is never drawn from directly. It spawns two independent
child streams — payloads first, noise second. All payloads come from one
contiguous ``(n_rounds, 2, payload_bits)`` integer draw (direction ``a``
before ``b`` within each round); the noise stream then spawns one child
per protocol phase, consumed as described in
:mod:`repro.simulation.engine`. Since every draw site fills its array
sequentially in C order, the report is a pure function of ``(protocol,
gains, power, n_rounds, rng state, codec)`` — independent of
``batch_size``, chunking, or whether the batched or the per-round path
ran.

The analytic estimators route through the :mod:`repro.api` facade
(:func:`repro.api.evaluate_realizations`): the ensemble is drawn here
(callers own the RNG, as before) and the per-realization optima are
evaluated by a pluggable campaign executor — the batched vectorized
kernel by default, many times faster than the historical
one-LP-per-draw loop and bit-for-bit identical to the serial executor.
:func:`ergodic_sum_rate` is kept as a deprecation shim over
:func:`fading_sum_rate_statistics`; scenario-first callers should
evaluate a fading scenario through :func:`repro.api.evaluate` instead.

:func:`batched_link_goodput` adapts the link-level simulator to the
campaign engine's unit-batch contract: one cell = one independently
seeded :func:`simulate_protocol` campaign, so operational-goodput grids
inherit executors, chunk checkpointing, sharding and the
content-addressed cache unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..channels.halfduplex import HalfDuplexMedium
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .engine import BatchedProtocolEngine, ProtocolEngine, spawn_phase_streams
from .linkcodec import LinkCodec, default_codec
from .metrics import LinkCounter, ThroughputReport

__all__ = [
    "SimulationReport",
    "simulate_protocol",
    "batched_link_goodput",
    "DEFAULT_ROUND_BATCH",
    "FadingStatistics",
    "fading_sum_rate_statistics",
    "ergodic_sum_rate",
    "outage_probability",
]

#: Default number of rounds per batched-engine call: large enough to
#: amortize the per-call trellis setup, small enough to keep the decoder's
#: ``(rounds, states)`` working set cache-friendly. Results never depend
#: on this value (see the module docstring).
DEFAULT_ROUND_BATCH = 512


@dataclass(frozen=True)
class SimulationReport:
    """Aggregated outcome of a link-level campaign.

    Attributes
    ----------
    protocol:
        The simulated protocol.
    n_rounds:
        Number of protocol rounds executed.
    a_to_b / b_to_a:
        Per-direction error counters.
    throughput:
        Goodput accounting in bits per channel symbol.
    relay_failures:
        Rounds in which the relay failed to decode what it needed.
    """

    protocol: Protocol
    n_rounds: int
    a_to_b: LinkCounter
    b_to_a: LinkCounter
    throughput: ThroughputReport

    relay_failures: int

    @property
    def sum_goodput(self) -> float:
        """Total delivered payload bits per channel symbol."""
        return self.throughput.sum_throughput


def _simulate_reference(
    protocol, engine: ProtocolEngine, payloads, phase_streams
) -> SimulationReport:
    """Per-round reference loop: scalar engine, one record per round."""
    a_to_b = LinkCounter()
    b_to_a = LinkCounter()
    throughput = ThroughputReport()
    relay_failures = 0
    for wa, wb in payloads:
        result = engine.run_round(protocol, wa, wb, phase_streams=phase_streams)
        a_to_b.record(
            success=result.success_a_to_b,
            n_bits=result.payload_bits,
            n_bit_errors=result.bit_errors_a_to_b,
        )
        b_to_a.record(
            success=result.success_b_to_a,
            n_bits=result.payload_bits,
            n_bit_errors=result.bit_errors_b_to_a,
        )
        throughput.add_symbols(result.n_symbols)
        if result.success_a_to_b:
            throughput.record("a->b", delivered_bits=result.payload_bits)
        if result.success_b_to_a:
            throughput.record("b->a", delivered_bits=result.payload_bits)
        if result.relay_ok is False:
            relay_failures += 1
    return SimulationReport(
        protocol=protocol,
        n_rounds=payloads.shape[0],
        a_to_b=a_to_b,
        b_to_a=b_to_a,
        throughput=throughput,
        relay_failures=relay_failures,
    )


def _simulate_batched(
    protocol, engine: BatchedProtocolEngine, payloads, phase_streams, batch_size: int
) -> SimulationReport:
    """Batched loop: chunks of rounds through the vectorized engine."""
    n_rounds = payloads.shape[0]
    a_to_b = LinkCounter()
    b_to_a = LinkCounter()
    throughput = ThroughputReport()
    relay_failures = 0
    for start in range(0, n_rounds, batch_size):
        chunk = payloads[start : start + batch_size]
        batch = engine.run_rounds(
            protocol, chunk[:, 0], chunk[:, 1], phase_streams=phase_streams
        )
        a_to_b.record_rows(
            success=batch.success_a_to_b,
            n_bits=batch.payload_bits,
            n_bit_errors=batch.bit_errors_a_to_b,
        )
        b_to_a.record_rows(
            success=batch.success_b_to_a,
            n_bits=batch.payload_bits,
            n_bit_errors=batch.bit_errors_b_to_a,
        )
        throughput.add_symbols(len(batch) * batch.n_symbols)
        throughput.record_rows(
            "a->b",
            delivered_bits_per_frame=batch.payload_bits,
            successes=batch.success_a_to_b,
        )
        throughput.record_rows(
            "b->a",
            delivered_bits_per_frame=batch.payload_bits,
            successes=batch.success_b_to_a,
        )
        if batch.relay_ok is not None:
            relay_failures += int((~batch.relay_ok).sum())
    return SimulationReport(
        protocol=protocol,
        n_rounds=n_rounds,
        a_to_b=a_to_b,
        b_to_a=b_to_a,
        throughput=throughput,
        relay_failures=relay_failures,
    )


def simulate_protocol(
    protocol: Protocol,
    gains: LinkGains,
    power: float,
    n_rounds: int,
    rng: np.random.Generator,
    *,
    codec: LinkCodec | None = None,
    method: str = "batched",
    batch_size: int | None = None,
) -> SimulationReport:
    """Run ``n_rounds`` of the protocol and aggregate statistics.

    Parameters
    ----------
    protocol:
        One of DT / MABC / TDBC / HBC (plus the NAIVE4 baseline).
    gains:
        Fixed (quasi-static) link gains for the whole campaign.
    power:
        Per-node transmit power (linear).
    n_rounds:
        Campaign length.
    rng:
        Root of all randomness. Spawned into independent payload and
        noise streams per the module-level reproducibility policy, so a
        given generator state always yields the same report regardless of
        execution method or batch size.
    codec:
        Frame pipeline; defaults to :func:`default_codec` (128-bit
        payloads, CRC-16, NASA K=7 code, BPSK).
    method:
        ``"batched"`` (default) runs the frames-axis-vectorized engine;
        ``"reference"`` runs the per-round scalar loop. Both produce the
        identical :class:`SimulationReport`.
    batch_size:
        Rounds per batched-engine call (default
        :data:`DEFAULT_ROUND_BATCH`); results are independent of it.
    """
    if n_rounds < 1:
        raise InvalidParameterError(f"need at least one round, got {n_rounds}")
    if method not in ("batched", "reference"):
        raise InvalidParameterError(
            f"method must be 'batched' or 'reference', got {method!r}"
        )
    if batch_size is not None and batch_size < 1:
        raise InvalidParameterError(f"batch size must be positive, got {batch_size}")
    codec = codec or default_codec()
    payload_rng, noise_rng = rng.spawn(2)
    payloads = payload_rng.integers(
        0, 2, size=(n_rounds, 2, codec.payload_bits), dtype=np.uint8
    )
    phase_streams = spawn_phase_streams(protocol, noise_rng)
    medium = HalfDuplexMedium(gains=gains)
    if method == "reference":
        engine = ProtocolEngine(medium=medium, codec=codec, power=power)
        return _simulate_reference(protocol, engine, payloads, phase_streams)
    engine = BatchedProtocolEngine(medium=medium, codec=codec, power=power)
    return _simulate_batched(
        protocol, engine, payloads, phase_streams, batch_size or DEFAULT_ROUND_BATCH
    )


def batched_link_goodput(
    protocol: Protocol,
    gab,
    gar,
    gbr,
    power,
    *,
    n_rounds: int,
    seed: int,
    indices,
    codec: LinkCodec | None = None,
) -> np.ndarray:
    """Operational sum goodput of a batch of campaign grid cells.

    The campaign-kernel adapter for the ``operational_goodput`` objective:
    cell ``i`` runs a :func:`simulate_protocol` campaign of ``n_rounds``
    rounds on channel ``(gab[i], gar[i], gbr[i])`` at ``power[i]`` and
    reports its total goodput in bits/symbol. Each cell's generator is
    seeded from ``(seed, flat unit index)``, so a cell's value depends
    only on the spec — never on executor choice, chunking or sharding —
    which is what makes serial, multiprocessing and vectorized campaign
    execution (and shard + gather) bitwise interchangeable for
    operational grids.
    """
    gab = np.asarray(gab, dtype=float)
    gar = np.asarray(gar, dtype=float)
    gbr = np.asarray(gbr, dtype=float)
    power = np.asarray(power, dtype=float)
    indices = np.asarray(indices)
    if not (gab.shape == gar.shape == gbr.shape == power.shape == indices.shape):
        raise InvalidParameterError("mismatched cell-batch shapes")
    codec = codec or default_codec()
    values = np.empty(gab.shape[0])
    for i in range(gab.shape[0]):
        cell_rng = np.random.default_rng([int(seed), int(indices[i])])
        report = simulate_protocol(
            protocol,
            LinkGains(gab[i], gar[i], gbr[i]),
            power[i],
            n_rounds,
            cell_rng,
            codec=codec,
        )
        values[i] = report.sum_goodput
    return values


@dataclass(frozen=True)
class FadingStatistics:
    """Summary of a bound evaluated over a fading ensemble.

    Attributes
    ----------
    mean:
        Ergodic (ensemble-average) value.
    std_error:
        Standard error of the mean.
    samples:
        The per-realization values (for quantiles/outage post-processing).
    """

    mean: float
    std_error: float
    samples: np.ndarray

    def quantile(self, q: float) -> float:
        """Ensemble quantile (e.g. ``q=0.05`` for 5%-outage capacity)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))


def fading_sum_rate_statistics(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    executor=None,
    cache=None,
    progress=None,
) -> FadingStatistics:
    """Ensemble-average LP-optimal sum rate under quasi-static fading.

    Each realization draws reciprocal Rayleigh/Rician gains around the
    path-loss means, re-optimizes the phase durations (full CSI, as the
    paper assumes), and records the optimal sum rate. The per-realization
    optimizations run through :func:`repro.api.evaluate_realizations`
    (``executor``: campaign executor name or instance, defaulting to the
    vectorized fast path). With a ``cache``
    (a :class:`~repro.campaign.cache.CampaignCache`, path or ``True``)
    the evaluation is chunk-checkpointed under a content hash of the
    drawn realizations, so a huge ensemble interrupted mid-run resumes
    from its checkpoints on the next call with the same RNG state.
    """
    from ..api import evaluate_realizations

    if n_draws < 1:
        raise InvalidParameterError(f"need at least one draw, got {n_draws}")
    ensemble = sample_gain_ensemble(mean_gains, n_draws, rng, k_factor=k_factor)
    values = evaluate_realizations(
        protocol, ensemble, power, executor=executor, cache=cache, progress=progress
    )
    return FadingStatistics(
        mean=float(values.mean()),
        std_error=float(values.std(ddof=1) / np.sqrt(n_draws)) if n_draws > 1 else 0.0,
        samples=values,
    )


def ergodic_sum_rate(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    executor=None,
    cache=None,
    progress=None,
) -> FadingStatistics:
    """Deprecated alias of :func:`fading_sum_rate_statistics`.

    .. deprecated::
        Evaluate a fading scenario through :func:`repro.api.evaluate`
        (spec-owned randomness), or call
        :func:`fading_sum_rate_statistics` for caller-owned RNGs.
    """
    warnings.warn(
        "ergodic_sum_rate is deprecated; evaluate a fading scenario through "
        "repro.api.evaluate or call fading_sum_rate_statistics",
        DeprecationWarning,
        stacklevel=2,
    )
    return fading_sum_rate_statistics(
        protocol,
        mean_gains,
        power,
        n_draws,
        rng,
        k_factor=k_factor,
        executor=executor,
        cache=cache,
        progress=progress,
    )


def outage_probability(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    target_sum_rate: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    executor=None,
    cache=None,
) -> float:
    """Probability that the optimal sum rate falls below a target.

    The quasi-static outage formulation: the channel is constant per
    protocol execution, so a realization is "in outage" when even optimal
    phase durations cannot support ``target_sum_rate``.
    """
    if target_sum_rate < 0:
        raise InvalidParameterError(
            f"target sum rate must be non-negative, got {target_sum_rate}"
        )
    stats = fading_sum_rate_statistics(
        protocol,
        mean_gains,
        power,
        n_draws,
        rng,
        k_factor=k_factor,
        executor=executor,
        cache=cache,
    )
    return float(np.mean(stats.samples < target_sum_rate))
