"""Monte-Carlo drivers: link-level campaigns and fading-ensemble bounds.

Two complementary estimators live here:

* :func:`simulate_protocol` — run the *operational* link-level system
  (:mod:`repro.simulation.engine`) for many rounds on a fixed channel and
  report FER/BER/goodput. This is the "does a real DF system behave like
  the bounds say" check. Rounds execute through the frames-axis-batched
  :class:`~repro.simulation.engine.BatchedProtocolEngine` by default;
  ``method="reference"`` runs the per-round
  :class:`~repro.simulation.engine.ProtocolEngine` loop instead, which
  is provably — and benchmark-asserted — field-for-field identical.
* :func:`ergodic_sum_rate` / :func:`outage_probability` — evaluate the
  *analytic* LP-optimal sum rates over a quasi-static fading ensemble
  (Section IV's channel model), producing ergodic averages and outage
  curves for every protocol.

Reproducibility policy of :func:`simulate_protocol` (the fix for the
historical payload/noise RNG coupling that blocked batching): the
caller's ``rng`` is never drawn from directly. It spawns two independent
child streams — payloads first, noise second. All payloads come from one
contiguous ``(n_rounds, 2, payload_bits)`` integer draw (direction ``a``
before ``b`` within each round); the noise stream then spawns one child
per protocol phase, consumed as described in
:mod:`repro.simulation.engine`. Since every draw site fills its array
sequentially in C order, the report is a pure function of ``(protocol,
gains, power, n_rounds, rng state, codec)`` — independent of
``batch_size``, chunking, or whether the batched or the per-round path
ran.

The analytic estimators route through the :mod:`repro.api` facade
(:func:`repro.api.evaluate_realizations`): the ensemble is drawn here
(callers own the RNG, as before) and the per-realization optima are
evaluated by a pluggable campaign executor — the batched vectorized
kernel by default, many times faster than the historical
one-LP-per-draw loop and bit-for-bit identical to the serial executor.
:func:`ergodic_sum_rate` is kept as a deprecation shim over
:func:`fading_sum_rate_statistics`; scenario-first callers should
evaluate a fading scenario through :func:`repro.api.evaluate` instead.

:func:`simulate_protocol_cells` is the **cells-fused** driver behind
operational campaigns: it runs every grid cell of a batch through one
:class:`~repro.simulation.engine.FusedCellEngine` pass per wave — one
Viterbi recursion, one CRC table sweep and one LLR computation serving
all cells that share a codec — while each cell keeps its own root
generator, payload stream and per-phase noise streams. Fused reports
are therefore bitwise-identical to evaluating the cells one at a time
with :func:`simulate_protocol`, which is what keeps every campaign
executor, chunking, sharding and the content-addressed cache
interchangeable. :func:`fused_link_values` adapts the fused driver to
the campaign engine's unit-batch contract (cells seeded by flat grid
index); the historical per-cell adapter :func:`batched_link_goodput` is
retained as the ablation baseline.

Adaptive round allocation: with ``target_rel_error``/``max_rounds`` set,
cells run in escalating waves whose boundaries come from
:func:`wave_bounds` — a pure function of the budget parameters, never of
wall-clock time or execution layout — and each cell stops at the first
spec-scheduled boundary where the relative standard error of its
combined frame-error-rate estimate, ``sqrt((1 - p) / (n * p))``, meets
the target (a cell with zero observed errors runs to ``max_rounds``).
Every wave draws one contiguous payload block per cell at those fixed
boundaries and noise streams split safely, so adaptive reports — like
fixed-budget ones — are a pure function of the spec, independent of
fusion width, executor choice or chunking. A cell that exhausts
``max_rounds`` without meeting the target is *surfaced*, not silent:
its report's ``resolved`` flag is ``False`` and campaign runs tally an
``unresolved_cells`` count through :func:`collect_adaptive_accounting`.

Importance sampling (:mod:`repro.simulation.sampling`): with an
:class:`~repro.simulation.sampling.ImportanceSamplingSpec`, every noise
block is twisted per cell *after* the identical standard draw and each
fused row is reweighted by its exact likelihood ratio — the FER
estimate stays unbiased while deep-fade errors become plentiful. The
stopping rule switches to the weighted estimator's relative standard
error, guarded by the effective sample size so degenerate proposals
fall back to the full budget instead of resolving on garbage.
"""

from __future__ import annotations

import math
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..channels.halfduplex import HalfDuplexMedium
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .engine import (
    BatchedProtocolEngine,
    FusedCellEngine,
    ProtocolEngine,
    spawn_cell_phase_streams,
    spawn_phase_streams,
)
from .linkcodec import LinkCodec, default_codec
from .metrics import LinkCounter, ThroughputReport, WeightedFerCounter
from .sampling import ImportanceSamplingSpec, direction_log_weights

__all__ = [
    "SimulationReport",
    "simulate_protocol",
    "simulate_protocol_cells",
    "wave_bounds",
    "batched_link_goodput",
    "fused_link_values",
    "AdaptiveAccounting",
    "collect_adaptive_accounting",
    "DEFAULT_ROUND_BATCH",
    "DEFAULT_FUSED_ROWS",
    "FadingStatistics",
    "fading_sum_rate_statistics",
    "ergodic_sum_rate",
    "outage_probability",
]

#: Default number of rounds per batched-engine call: large enough to
#: amortize the per-call trellis setup, small enough to keep the decoder's
#: ``(rounds, states)`` working set cache-friendly. Results never depend
#: on this value (see the module docstring).
DEFAULT_ROUND_BATCH = 512

#: Default bound on fused rows (cells × rounds) per fused-engine call — a
#: cap on the decoder's working set, analogous to
#: :data:`DEFAULT_ROUND_BATCH` but sized to keep a fused call's symbol
#: and metric arrays cache-resident (measured fastest around this value
#: on the production codec). Results never depend on it: fused waves
#: split at the cap along the rounds axis, payloads are pre-drawn per
#: wave and noise streams split safely.
DEFAULT_FUSED_ROWS = 512


@dataclass(frozen=True)
class SimulationReport:
    """Aggregated outcome of a link-level campaign.

    Attributes
    ----------
    protocol:
        The simulated protocol.
    n_rounds:
        Number of protocol rounds executed.
    a_to_b / b_to_a:
        Per-direction error counters.
    throughput:
        Goodput accounting in bits per channel symbol.
    relay_failures:
        Rounds in which the relay failed to decode what it needed.
    sampling:
        Likelihood-ratio-weighted FER accounting
        (:class:`~repro.simulation.metrics.WeightedFerCounter`) when the
        campaign ran under an importance-sampling proposal; ``None`` for
        vanilla campaigns. When present, the per-direction counters hold
        *proposal-biased* raw counts — :attr:`fer` reports the weighted
        (unbiased) estimate instead.
    resolved:
        Adaptive-budget accounting: ``True`` if the cell met its
        ``target_rel_error`` at a wave boundary, ``False`` if it
        exhausted ``max_rounds`` without resolving, ``None`` for
        fixed-budget campaigns.
    """

    protocol: Protocol
    n_rounds: int
    a_to_b: LinkCounter
    b_to_a: LinkCounter
    throughput: ThroughputReport

    relay_failures: int
    sampling: WeightedFerCounter | None = None
    resolved: bool | None = None

    @property
    def sum_goodput(self) -> float:
        """Total delivered payload bits per channel symbol."""
        return self.throughput.sum_throughput

    @property
    def fer(self) -> float:
        """Combined frame error rate across both directions.

        Every round attempts one frame per direction, so this pools
        ``2 * n_rounds`` Bernoulli trials — the quantity the adaptive
        round-allocation controller drives to its target precision.
        Under importance sampling the pooled trials are reweighted by
        their exact likelihood ratios, so the estimate stays unbiased
        while the raw counters reflect the error-rich proposal.
        """
        if self.sampling is not None:
            return self.sampling.weighted_fer
        frames = self.a_to_b.frames + self.b_to_a.frames
        errors = self.a_to_b.frame_errors + self.b_to_a.frame_errors
        return errors / frames if frames else 0.0


def _simulate_reference(
    protocol, engine: ProtocolEngine, payloads, phase_streams
) -> SimulationReport:
    """Per-round reference loop: scalar engine, one record per round."""
    a_to_b = LinkCounter()
    b_to_a = LinkCounter()
    throughput = ThroughputReport()
    relay_failures = 0
    for wa, wb in payloads:
        result = engine.run_round(protocol, wa, wb, phase_streams=phase_streams)
        a_to_b.record(
            success=result.success_a_to_b,
            n_bits=result.payload_bits,
            n_bit_errors=result.bit_errors_a_to_b,
        )
        b_to_a.record(
            success=result.success_b_to_a,
            n_bits=result.payload_bits,
            n_bit_errors=result.bit_errors_b_to_a,
        )
        throughput.add_symbols(result.n_symbols)
        if result.success_a_to_b:
            throughput.record("a->b", delivered_bits=result.payload_bits)
        if result.success_b_to_a:
            throughput.record("b->a", delivered_bits=result.payload_bits)
        if result.relay_ok is False:
            relay_failures += 1
    return SimulationReport(
        protocol=protocol,
        n_rounds=payloads.shape[0],
        a_to_b=a_to_b,
        b_to_a=b_to_a,
        throughput=throughput,
        relay_failures=relay_failures,
    )


def _simulate_batched(
    protocol, engine: BatchedProtocolEngine, payloads, phase_streams, batch_size: int
) -> SimulationReport:
    """Batched loop: chunks of rounds through the vectorized engine."""
    n_rounds = payloads.shape[0]
    a_to_b = LinkCounter()
    b_to_a = LinkCounter()
    throughput = ThroughputReport()
    relay_failures = 0
    for start in range(0, n_rounds, batch_size):
        chunk = payloads[start : start + batch_size]
        batch = engine.run_rounds(
            protocol, chunk[:, 0], chunk[:, 1], phase_streams=phase_streams
        )
        a_to_b.record_rows(
            success=batch.success_a_to_b,
            n_bits=batch.payload_bits,
            n_bit_errors=batch.bit_errors_a_to_b,
        )
        b_to_a.record_rows(
            success=batch.success_b_to_a,
            n_bits=batch.payload_bits,
            n_bit_errors=batch.bit_errors_b_to_a,
        )
        throughput.add_symbols(len(batch) * batch.n_symbols)
        throughput.record_rows(
            "a->b",
            delivered_bits_per_frame=batch.payload_bits,
            successes=batch.success_a_to_b,
        )
        throughput.record_rows(
            "b->a",
            delivered_bits_per_frame=batch.payload_bits,
            successes=batch.success_b_to_a,
        )
        if batch.relay_ok is not None:
            relay_failures += int((~batch.relay_ok).sum())
    return SimulationReport(
        protocol=protocol,
        n_rounds=n_rounds,
        a_to_b=a_to_b,
        b_to_a=b_to_a,
        throughput=throughput,
        relay_failures=relay_failures,
    )


def wave_bounds(
    n_rounds: int,
    *,
    target_rel_error: float | None = None,
    max_rounds: int | None = None,
) -> tuple:
    """Cumulative wave boundaries of one cell's round allocation.

    Without a target the whole budget is one wave, ``(n_rounds,)`` —
    exactly the classic fixed-budget campaign. With a target, waves
    escalate geometrically (each boundary doubles the previous) from
    ``n_rounds`` up to ``max_rounds``, so an unresolved cell's budget
    grows by a constant factor per decision while a resolved cell stops
    at the earliest boundary. The schedule is a **pure function of the
    budget parameters** — both live in the spec's content hash — never of
    wall-clock time, executor choice or fusion width, which is what keeps
    adaptive campaign values cacheable and shard-stable.
    """
    if n_rounds < 1:
        raise InvalidParameterError(f"need at least one round, got {n_rounds}")
    if target_rel_error is None:
        if max_rounds is not None:
            raise InvalidParameterError(
                "max_rounds needs target_rel_error: set both or neither"
            )
        return (n_rounds,)
    if target_rel_error <= 0:
        raise InvalidParameterError(
            f"relative-error target must be positive, got {target_rel_error}"
        )
    if max_rounds is None:
        raise InvalidParameterError(
            "target_rel_error needs max_rounds: set both or neither"
        )
    if max_rounds < n_rounds:
        raise InvalidParameterError(
            f"max_rounds ({max_rounds}) must be >= the initial wave ({n_rounds})"
        )
    bounds = [int(n_rounds)]
    while bounds[-1] < max_rounds:
        bounds.append(min(2 * bounds[-1], int(max_rounds)))
    return tuple(bounds)


class _CellState:
    """Accumulating state of one grid cell inside a fused campaign."""

    __slots__ = (
        "gains",
        "payload_rng",
        "phase_streams",
        "a_to_b",
        "b_to_a",
        "throughput",
        "relay_failures",
        "sampling",
    )

    def __init__(
        self, gains: LinkGains, payload_rng, phase_streams, *, weighted: bool = False
    ) -> None:
        self.gains = gains
        self.payload_rng = payload_rng
        self.phase_streams = phase_streams
        self.a_to_b = LinkCounter()
        self.b_to_a = LinkCounter()
        self.throughput = ThroughputReport()
        self.relay_failures = 0
        self.sampling = WeightedFerCounter() if weighted else None

    def record(
        self, batch, lo: int, hi: int, log_weights_a=None, log_weights_b=None
    ) -> None:
        """Account this cell's slice of a fused :class:`RoundBatch`."""
        if self.sampling is not None:
            self.sampling.record_rows(
                log_weights_a=log_weights_a[lo:hi],
                log_weights_b=log_weights_b[lo:hi],
                success_a=batch.success_a_to_b[lo:hi],
                success_b=batch.success_b_to_a[lo:hi],
            )
        self.a_to_b.record_rows(
            success=batch.success_a_to_b[lo:hi],
            n_bits=batch.payload_bits,
            n_bit_errors=batch.bit_errors_a_to_b[lo:hi],
        )
        self.b_to_a.record_rows(
            success=batch.success_b_to_a[lo:hi],
            n_bits=batch.payload_bits,
            n_bit_errors=batch.bit_errors_b_to_a[lo:hi],
        )
        self.throughput.add_symbols((hi - lo) * batch.n_symbols)
        self.throughput.record_rows(
            "a->b",
            delivered_bits_per_frame=batch.payload_bits,
            successes=batch.success_a_to_b[lo:hi],
        )
        self.throughput.record_rows(
            "b->a",
            delivered_bits_per_frame=batch.payload_bits,
            successes=batch.success_b_to_a[lo:hi],
        )
        if batch.relay_ok is not None:
            self.relay_failures += int((~batch.relay_ok[lo:hi]).sum())

    def fer_resolved(
        self, target_rel_error: float, min_ess_fraction: float = 0.0
    ) -> bool:
        """Whether the combined-FER estimate meets the precision target.

        The relative standard error of a Bernoulli proportion estimate is
        ``sqrt((1 - p) / (n * p)) = sqrt((1 - p) / errors)``; with zero
        observed errors the FER is unresolved at any target, so the cell
        keeps running until ``max_rounds``.

        Under importance sampling the stopping rule switches to the
        weighted estimator's relative standard error
        (:attr:`~repro.simulation.metrics.WeightedFerCounter.rel_std_error`),
        guarded by the effective sample size: while ``ESS`` is below
        ``min_ess_fraction`` of the pooled trials the weights are too
        degenerate to trust and the cell may not resolve — it falls back
        to running its full budget.
        """
        if self.sampling is not None:
            if self.sampling.weighted_errors <= 0:
                return False
            if self.sampling.ess_fraction < min_ess_fraction:
                return False
            return self.sampling.rel_std_error <= target_rel_error
        errors = self.a_to_b.frame_errors + self.b_to_a.frame_errors
        if errors == 0:
            return False
        frames = self.a_to_b.frames + self.b_to_a.frames
        p = errors / frames
        return math.sqrt((1.0 - p) / errors) <= target_rel_error

    def report(
        self, protocol: Protocol, resolved: bool | None = None
    ) -> SimulationReport:
        """The cell's final :class:`SimulationReport`."""
        return SimulationReport(
            protocol=protocol,
            n_rounds=self.a_to_b.frames,
            a_to_b=self.a_to_b,
            b_to_a=self.b_to_a,
            throughput=self.throughput,
            relay_failures=self.relay_failures,
            sampling=self.sampling,
            resolved=resolved,
        )


def _run_fused_rounds(
    protocol, codec, cells, active, payloads, start, stop, power, sampling=None
) -> None:
    """One fused engine call: rounds ``[start, stop)`` of every active cell."""
    rounds = stop - start
    gab = np.array([cells[c].gains.gab for c in active])
    gar = np.array([cells[c].gains.gar for c in active])
    gbr = np.array([cells[c].gains.gbr for c in active])
    engine = FusedCellEngine.for_cells(
        codec, gab, gar, gbr, power[list(active)], rounds, sampling=sampling
    )
    wa = np.concatenate([payloads[c][start:stop, 0] for c in active])
    wb = np.concatenate([payloads[c][start:stop, 1] for c in active])
    streams = spawn_cell_phase_streams(
        protocol, (cells[c].phase_streams for c in active), rounds
    )
    batch = engine.run_rounds(protocol, wa, wb, phase_streams=streams)
    log_weights_a = log_weights_b = None
    if sampling is not None:
        log_weights_a, log_weights_b = direction_log_weights(
            protocol, engine.medium.phase_log_lrs
        )
    for j, c in enumerate(active):
        cells[c].record(
            batch,
            j * rounds,
            (j + 1) * rounds,
            log_weights_a=log_weights_a,
            log_weights_b=log_weights_b,
        )


def simulate_protocol_cells(
    protocol: Protocol,
    gains_cells,
    power,
    n_rounds: int,
    rngs,
    *,
    codec: LinkCodec | None = None,
    target_rel_error: float | None = None,
    max_rounds: int | None = None,
    row_cap: int | None = None,
    sampling: ImportanceSamplingSpec | None = None,
) -> list:
    """Run one campaign per grid cell, fused into (cells × rounds) batches.

    The cells-fused counterpart of :func:`simulate_protocol`: cell ``i``
    runs on ``gains_cells[i]`` at ``power[i]`` (scalar powers broadcast)
    with root generator ``rngs[i]``, and the returned list holds one
    :class:`SimulationReport` per cell. Each cell's generator is spawned
    into payload and noise streams exactly as :func:`simulate_protocol`
    spawns its own, and the fused engine consumes every cell's streams
    per the per-cell policy — so the reports are **bitwise-identical** to
    calling :func:`simulate_protocol` per cell, while the decode
    arithmetic of all cells shares single NumPy passes.

    Parameters
    ----------
    protocol / n_rounds / codec:
        As in :func:`simulate_protocol`; ``n_rounds`` is the fixed budget
        per cell, or the initial wave when a target is set.
    gains_cells / power / rngs:
        Per-cell channel gains, transmit powers and root generators.
    target_rel_error / max_rounds:
        Optional adaptive round allocation (set both or neither): cells
        run in the escalating waves of :func:`wave_bounds` and stop at
        the first boundary where the combined-FER relative standard
        error meets the target, never exceeding ``max_rounds`` rounds.
    row_cap:
        Bound on fused rows per engine call (default
        :data:`DEFAULT_FUSED_ROWS`); a memory knob that can never change
        results.
    sampling:
        Optional :class:`~repro.simulation.sampling.ImportanceSamplingSpec`:
        noise draws are twisted per cell (after the identical standard
        draws, so vanilla cells are untouched), rows are reweighted by
        their exact likelihood ratios, and the adaptive stopping rule
        switches to the weighted estimator's relative standard error
        with the spec's effective-sample-size guard.

    Returns
    -------
    list of :class:`SimulationReport`, one per cell, in cell order. With
    an adaptive budget each report's ``resolved`` flag records whether
    the cell met its target (``False`` = exhausted ``max_rounds``
    unresolved — surfaced, not silent).
    """
    if n_rounds < 1:
        raise InvalidParameterError(f"need at least one round, got {n_rounds}")
    if row_cap is not None and row_cap < 1:
        raise InvalidParameterError(f"row cap must be positive, got {row_cap}")
    if sampling is not None and not isinstance(sampling, ImportanceSamplingSpec):
        raise InvalidParameterError(
            f"{sampling!r} is not an ImportanceSamplingSpec"
        )
    bounds = wave_bounds(
        n_rounds, target_rel_error=target_rel_error, max_rounds=max_rounds
    )
    codec = codec or default_codec()
    gains_cells = tuple(gains_cells)
    rngs = tuple(rngs)
    if not gains_cells:
        raise InvalidParameterError("at least one cell required")
    if len(rngs) != len(gains_cells):
        raise InvalidParameterError(
            f"{len(gains_cells)} cells but {len(rngs)} generators"
        )
    n_cells = len(gains_cells)
    power = np.broadcast_to(np.asarray(power, dtype=float), (n_cells,)).copy()

    cells = []
    for gains, cell_rng in zip(gains_cells, rngs):
        payload_rng, noise_rng = cell_rng.spawn(2)
        cells.append(
            _CellState(
                gains=gains,
                payload_rng=payload_rng,
                phase_streams=spawn_phase_streams(protocol, noise_rng),
                weighted=sampling is not None,
            )
        )

    cap = row_cap or DEFAULT_FUSED_ROWS
    active = list(range(n_cells))
    previous = 0
    for bound in bounds:
        wave = bound - previous
        # One contiguous payload draw per cell per wave, at the
        # spec-fixed wave boundary — the same draw (and values) as the
        # per-cell path, whatever the fusion width or row cap below.
        payloads = {
            c: cells[c].payload_rng.integers(
                0, 2, size=(wave, 2, codec.payload_bits), dtype=np.uint8
            )
            for c in active
        }
        # Honor the row cap on both fused axes: groups of at most `cap`
        # cells, each running at most `cap // len(group)` rounds per
        # engine call, so no call exceeds `cap` rows. Pure execution
        # layout — per-cell streams make results independent of it.
        group_size = min(len(active), cap)
        for lo in range(0, len(active), group_size):
            group = active[lo : lo + group_size]
            step = max(1, min(wave, cap // len(group)))
            for start in range(0, wave, step):
                stop = min(start + step, wave)
                _run_fused_rounds(
                    protocol,
                    codec,
                    cells,
                    group,
                    payloads,
                    start,
                    stop,
                    power,
                    sampling=sampling,
                )
        previous = bound
        if target_rel_error is not None:
            min_ess = sampling.min_ess_fraction if sampling is not None else 0.0
            active = [
                c
                for c in active
                if not cells[c].fer_resolved(target_rel_error, min_ess)
            ]
            if not active:
                break
    if target_rel_error is None:
        return [cell.report(protocol) for cell in cells]
    # Cells still active exhausted max_rounds without meeting the target
    # — surfaced on the report instead of resolving silently.
    unresolved = set(active)
    return [
        cells[c].report(protocol, resolved=c not in unresolved)
        for c in range(n_cells)
    ]


def simulate_protocol(
    protocol: Protocol,
    gains: LinkGains,
    power: float,
    n_rounds: int,
    rng: np.random.Generator,
    *,
    codec: LinkCodec | None = None,
    method: str = "batched",
    batch_size: int | None = None,
    target_rel_error: float | None = None,
    max_rounds: int | None = None,
    importance_sampling: ImportanceSamplingSpec | None = None,
) -> SimulationReport:
    """Run ``n_rounds`` of the protocol and aggregate statistics.

    Parameters
    ----------
    protocol:
        One of DT / MABC / TDBC / HBC (plus the NAIVE4 baseline).
    gains:
        Fixed (quasi-static) link gains for the whole campaign.
    power:
        Per-node transmit power (linear).
    n_rounds:
        Campaign length.
    rng:
        Root of all randomness. Spawned into independent payload and
        noise streams per the module-level reproducibility policy, so a
        given generator state always yields the same report regardless of
        execution method or batch size.
    codec:
        Frame pipeline; defaults to :func:`default_codec` (128-bit
        payloads, CRC-16, NASA K=7 code, BPSK).
    method:
        ``"batched"`` (default) runs the frames-axis-vectorized engine;
        ``"reference"`` runs the per-round scalar loop. Both produce the
        identical :class:`SimulationReport`.
    batch_size:
        Rounds per batched-engine call (default
        :data:`DEFAULT_ROUND_BATCH`); results are independent of it.
    target_rel_error / max_rounds:
        Optional adaptive round allocation (set both or neither; batched
        method only): run the escalating waves of :func:`wave_bounds`
        through the fused kernel and stop at the first boundary where
        the combined-FER relative standard error meets the target.
    importance_sampling:
        Optional :class:`~repro.simulation.sampling.ImportanceSamplingSpec`
        (batched method only): run the campaign under a twisted-noise
        proposal with exact likelihood-ratio reweighting; the report's
        ``fer`` is then the weighted (unbiased) estimate and its
        ``sampling`` counter carries ESS/weight diagnostics.
    """
    if n_rounds < 1:
        raise InvalidParameterError(f"need at least one round, got {n_rounds}")
    if method not in ("batched", "reference"):
        raise InvalidParameterError(
            f"method must be 'batched' or 'reference', got {method!r}"
        )
    if batch_size is not None and batch_size < 1:
        raise InvalidParameterError(f"batch size must be positive, got {batch_size}")
    if (
        target_rel_error is not None
        or max_rounds is not None
        or importance_sampling is not None
    ):
        if method != "batched":
            raise InvalidParameterError(
                "adaptive round allocation and importance sampling run "
                "through the fused kernel; method must be 'batched'"
            )
        return simulate_protocol_cells(
            protocol,
            (gains,),
            power,
            n_rounds,
            (rng,),
            codec=codec,
            target_rel_error=target_rel_error,
            max_rounds=max_rounds,
            row_cap=batch_size,
            sampling=importance_sampling,
        )[0]
    codec = codec or default_codec()
    payload_rng, noise_rng = rng.spawn(2)
    payloads = payload_rng.integers(
        0, 2, size=(n_rounds, 2, codec.payload_bits), dtype=np.uint8
    )
    phase_streams = spawn_phase_streams(protocol, noise_rng)
    medium = HalfDuplexMedium(gains=gains)
    if method == "reference":
        engine = ProtocolEngine(medium=medium, codec=codec, power=power)
        return _simulate_reference(protocol, engine, payloads, phase_streams)
    engine = BatchedProtocolEngine(medium=medium, codec=codec, power=power)
    return _simulate_batched(
        protocol, engine, payloads, phase_streams, batch_size or DEFAULT_ROUND_BATCH
    )


def batched_link_goodput(
    protocol: Protocol,
    gab,
    gar,
    gbr,
    power,
    *,
    n_rounds: int,
    seed: int,
    indices,
    codec: LinkCodec | None = None,
) -> np.ndarray:
    """Operational sum goodput of a batch of grid cells, one cell at a time.

    The historical (pre-fusion) campaign-kernel adapter, retained as the
    per-cell ablation baseline: cell ``i`` runs its own
    :func:`simulate_protocol` campaign of ``n_rounds`` rounds on channel
    ``(gab[i], gar[i], gbr[i])`` at ``power[i]`` and reports its total
    goodput in bits/symbol. Each cell's generator is seeded from
    ``(seed, flat unit index)`` — the same seeding
    :func:`fused_link_values` uses, which is why the fused fast path is
    bitwise-identical to this loop (benchmark-asserted). Executors route
    through the fused adapter; call this directly only as a reference.
    """
    gab = np.asarray(gab, dtype=float)
    gar = np.asarray(gar, dtype=float)
    gbr = np.asarray(gbr, dtype=float)
    power = np.asarray(power, dtype=float)
    indices = np.asarray(indices)
    if not (gab.shape == gar.shape == gbr.shape == power.shape == indices.shape):
        raise InvalidParameterError("mismatched cell-batch shapes")
    codec = codec or default_codec()
    values = np.empty(gab.shape[0])
    for i in range(gab.shape[0]):
        cell_rng = np.random.default_rng([int(seed), int(indices[i])])
        report = simulate_protocol(
            protocol,
            LinkGains(gab[i], gar[i], gbr[i]),
            power[i],
            n_rounds,
            cell_rng,
            codec=codec,
        )
        values[i] = report.sum_goodput
    return values


class AdaptiveAccounting:
    """In-process tally of adaptive-cell resolution across fused batches.

    Installed by :func:`collect_adaptive_accounting`; every
    :func:`fused_link_values` call running in the installing process
    reports how many of its cells ran under an adaptive budget and how
    many exhausted ``max_rounds`` unresolved. Out-of-process executors
    (process pools) evaluate in workers that never see the tally — the
    campaign engine detects the shortfall by comparing
    :attr:`adaptive_cells` against its computed-cell count and reports
    the unresolved count as unknown rather than wrong.
    """

    def __init__(self) -> None:
        self.adaptive_cells = 0
        self.unresolved_cells = 0
        self._lock = threading.Lock()

    def note_reports(self, reports) -> None:
        """Tally the resolution flags of one fused batch's reports."""
        adaptive = sum(1 for report in reports if report.resolved is not None)
        unresolved = sum(1 for report in reports if report.resolved is False)
        with self._lock:
            self.adaptive_cells += adaptive
            self.unresolved_cells += unresolved


_ADAPTIVE_TALLY: AdaptiveAccounting | None = None


@contextmanager
def collect_adaptive_accounting():
    """Collect adaptive resolution accounting from enclosed evaluations.

    Yields an :class:`AdaptiveAccounting` that every in-process
    :func:`fused_link_values` call inside the ``with`` block reports to
    (thread-safe, so the vectorized, serial and async executors are all
    covered). Used by :func:`repro.campaign.engine.run_campaign` to
    surface an ``unresolved_cells`` count without widening the
    executors' bare-value-array contract.
    """
    global _ADAPTIVE_TALLY
    tally = AdaptiveAccounting()
    previous = _ADAPTIVE_TALLY
    _ADAPTIVE_TALLY = tally
    try:
        yield tally
    finally:
        _ADAPTIVE_TALLY = previous


def fused_link_values(
    protocol: Protocol,
    gab,
    gar,
    gbr,
    power,
    *,
    link,
    indices,
    row_cap: int | None = None,
) -> np.ndarray:
    """Metric values of a batch of operational grid cells, cells-fused.

    The campaign-kernel adapter of the operational objectives: every cell
    of the batch runs through one :func:`simulate_protocol_cells` call —
    one fused decode pipeline per wave instead of one per cell — and the
    returned value is the cell's ``link.metric`` (total goodput in
    bits/symbol, or combined FER). Cell ``i``'s generator is seeded from
    ``(link.seed, flat unit index)`` exactly like the per-cell path, so
    values depend only on the spec — never on executor choice, fusion
    width, chunking or sharding — keeping serial, multiprocessing and
    vectorized execution (and shard + gather) bitwise interchangeable.
    """
    gab = np.asarray(gab, dtype=float)
    gar = np.asarray(gar, dtype=float)
    gbr = np.asarray(gbr, dtype=float)
    power = np.asarray(power, dtype=float)
    indices = np.asarray(indices)
    if not (gab.shape == gar.shape == gbr.shape == power.shape == indices.shape):
        raise InvalidParameterError("mismatched cell-batch shapes")
    reports = simulate_protocol_cells(
        protocol,
        tuple(LinkGains(gab[i], gar[i], gbr[i]) for i in range(gab.shape[0])),
        power,
        link.n_rounds,
        tuple(
            np.random.default_rng([int(link.seed), int(indices[i])])
            for i in range(gab.shape[0])
        ),
        codec=link.codec(),
        target_rel_error=link.target_rel_error,
        max_rounds=link.max_rounds,
        row_cap=row_cap,
        sampling=link.importance_sampling,
    )
    tally = _ADAPTIVE_TALLY
    if tally is not None:
        tally.note_reports(reports)
    if link.metric == "fer":
        return np.array([report.fer for report in reports])
    return np.array([report.sum_goodput for report in reports])


@dataclass(frozen=True)
class FadingStatistics:
    """Summary of a bound evaluated over a fading ensemble.

    Attributes
    ----------
    mean:
        Ergodic (ensemble-average) value.
    std_error:
        Standard error of the mean.
    samples:
        The per-realization values (for quantiles/outage post-processing).
    """

    mean: float
    std_error: float
    samples: np.ndarray

    def quantile(self, q: float) -> float:
        """Ensemble quantile (e.g. ``q=0.05`` for 5%-outage capacity)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples, q))


def fading_sum_rate_statistics(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    executor=None,
    cache=None,
    progress=None,
) -> FadingStatistics:
    """Ensemble-average LP-optimal sum rate under quasi-static fading.

    Each realization draws reciprocal Rayleigh/Rician gains around the
    path-loss means, re-optimizes the phase durations (full CSI, as the
    paper assumes), and records the optimal sum rate. The per-realization
    optimizations run through :func:`repro.api.evaluate_realizations`
    (``executor``: campaign executor name or instance, defaulting to the
    vectorized fast path). With a ``cache``
    (a :class:`~repro.campaign.cache.CampaignCache`, path or ``True``)
    the evaluation is chunk-checkpointed under a content hash of the
    drawn realizations, so a huge ensemble interrupted mid-run resumes
    from its checkpoints on the next call with the same RNG state.
    """
    from ..api import evaluate_realizations

    if n_draws < 1:
        raise InvalidParameterError(f"need at least one draw, got {n_draws}")
    ensemble = sample_gain_ensemble(mean_gains, n_draws, rng, k_factor=k_factor)
    values = evaluate_realizations(
        protocol, ensemble, power, executor=executor, cache=cache, progress=progress
    )
    return FadingStatistics(
        mean=float(values.mean()),
        std_error=float(values.std(ddof=1) / np.sqrt(n_draws)) if n_draws > 1 else 0.0,
        samples=values,
    )


def ergodic_sum_rate(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    executor=None,
    cache=None,
    progress=None,
) -> FadingStatistics:
    """Deprecated alias of :func:`fading_sum_rate_statistics`.

    .. deprecated::
        Evaluate a fading scenario through :func:`repro.api.evaluate`
        (spec-owned randomness), or call
        :func:`fading_sum_rate_statistics` for caller-owned RNGs.
    """
    warnings.warn(
        "ergodic_sum_rate is deprecated; evaluate a fading scenario through "
        "repro.api.evaluate or call fading_sum_rate_statistics",
        DeprecationWarning,
        stacklevel=2,
    )
    return fading_sum_rate_statistics(
        protocol,
        mean_gains,
        power,
        n_draws,
        rng,
        k_factor=k_factor,
        executor=executor,
        cache=cache,
        progress=progress,
    )


def outage_probability(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    target_sum_rate: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    executor=None,
    cache=None,
) -> float:
    """Probability that the optimal sum rate falls below a target.

    The quasi-static outage formulation: the channel is constant per
    protocol execution, so a realization is "in outage" when even optimal
    phase durations cannot support ``target_sum_rate``.
    """
    if target_sum_rate < 0:
        raise InvalidParameterError(
            f"target sum rate must be non-negative, got {target_sum_rate}"
        )
    stats = fading_sum_rate_statistics(
        protocol,
        mean_gains,
        power,
        n_draws,
        rng,
        k_factor=k_factor,
        executor=executor,
        cache=cache,
    )
    return float(np.mean(stats.samples < target_sum_rate))
