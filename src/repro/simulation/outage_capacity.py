"""ε-outage capacity of the protocols under quasi-static fading.

Section IV's channel model is quasi-static: each protocol execution sees
one fading draw, so the natural service guarantee is the *ε-outage sum
rate* — the largest target rate sustained in a fraction ``1 - ε`` of
fades. This module computes it per protocol from the same per-realization
LP optima used everywhere else:

* :func:`outage_sum_rate` — the ε-quantile of the optimal-sum-rate
  distribution (exactly the ε-outage capacity of the *adaptive-duration*
  scheme, since durations are re-optimized per fade);
* :func:`OutageCurve` — the full rate-vs-outage trade-off for plotting.

Ensemble evaluation routes through the :mod:`repro.api` facade
(:func:`repro.api.evaluate_realizations`); pass ``executor=None`` to fall
back to the historical one-LP-per-draw loop with an explicit LP
``backend``. :func:`compute_outage_curve` is kept as a deprecation shim
over :func:`sample_outage_curve`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..core.capacity import optimal_sum_rate
from ..core.gaussian import GaussianChannel
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..optimize.linprog import DEFAULT_BACKEND

__all__ = [
    "OutageCurve", "sample_outage_curve", "compute_outage_curve", "outage_sum_rate"
]


@dataclass(frozen=True)
class OutageCurve:
    """The empirical rate-vs-outage trade-off of one protocol.

    Attributes
    ----------
    protocol:
        The protocol evaluated.
    samples:
        Sorted per-realization optimal sum rates.
    """

    protocol: Protocol
    samples: np.ndarray

    def rate_at_outage(self, epsilon: float) -> float:
        """Largest rate whose outage probability is at most ``epsilon``.

        The empirical ε-quantile of the sum-rate distribution: a target
        rate equal to the returned value fails in at most an ε fraction of
        the observed fades.
        """
        if not 0.0 <= epsilon <= 1.0:
            raise InvalidParameterError(
                f"outage level must lie in [0, 1], got {epsilon}"
            )
        return float(np.quantile(self.samples, epsilon))

    def outage_at_rate(self, target: float) -> float:
        """Empirical probability that the target rate is not supported."""
        if target < 0:
            raise InvalidParameterError(f"target must be >= 0, got {target}")
        return float(np.mean(self.samples < target))


def sample_outage_curve(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
) -> OutageCurve:
    """Sample the per-fade optimal sum rate distribution of a protocol.

    ``executor`` selects a campaign executor (name or instance); passing
    ``None`` — or requesting a non-default LP ``backend`` — runs the
    legacy per-draw LP loop so the backend choice is honored. With a
    ``cache`` the ensemble evaluation is chunk-checkpointed under a
    content hash of the drawn realizations (see
    :func:`repro.api.evaluate_realizations`), making the 10⁵+-draw
    curves needed for outage studies resumable.
    """
    if n_draws < 1:
        raise InvalidParameterError(f"need at least one draw, got {n_draws}")
    ensemble = sample_gain_ensemble(mean_gains, n_draws, rng, k_factor=k_factor)
    if backend != DEFAULT_BACKEND:
        executor = None
    if executor is None:
        values = [
            optimal_sum_rate(
                protocol,
                GaussianChannel(gains=draw, power=power),
                backend=backend,
            ).sum_rate
            for draw in ensemble
        ]
    else:
        from ..api import evaluate_realizations

        values = evaluate_realizations(
            protocol, ensemble, power, executor=executor, cache=cache
        )
    return OutageCurve(protocol=protocol, samples=np.sort(values))


def compute_outage_curve(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
) -> OutageCurve:
    """Deprecated alias of :func:`sample_outage_curve`.

    .. deprecated::
        Evaluate a fading scenario through :func:`repro.api.evaluate`
        (spec-owned randomness), or call :func:`sample_outage_curve` for
        caller-owned RNGs.
    """
    warnings.warn(
        "compute_outage_curve is deprecated; evaluate a fading scenario "
        "through repro.api.evaluate or call sample_outage_curve",
        DeprecationWarning,
        stacklevel=2,
    )
    return sample_outage_curve(
        protocol,
        mean_gains,
        power,
        n_draws,
        rng,
        k_factor=k_factor,
        backend=backend,
        executor=executor,
        cache=cache,
    )


def outage_sum_rate(
    protocol: Protocol,
    mean_gains: LinkGains,
    power: float,
    epsilon: float,
    n_draws: int,
    rng: np.random.Generator,
    *,
    k_factor: float = 0.0,
    backend: str = DEFAULT_BACKEND,
    executor="vectorized",
    cache=None,
) -> float:
    """The ε-outage sum rate of one protocol (see :class:`OutageCurve`)."""
    curve = sample_outage_curve(
        protocol,
        mean_gains,
        power,
        n_draws,
        rng,
        k_factor=k_factor,
        backend=backend,
        executor=executor,
        cache=cache,
    )
    return curve.rate_at_outage(epsilon)
