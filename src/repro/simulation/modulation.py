"""Digital modulation and soft demodulation (BPSK, QPSK with Gray mapping).

Symbols are unit-energy complex numbers; transmit power is applied by the
engine as an amplitude scale. Soft demodulators return log-likelihood
ratios with the convention ``LLR > 0 ⇔ bit = 0 more likely``, i.e.::

    LLR(b) = log P(y | b = 0) - log P(y | b = 1)

computed coherently for a known complex channel gain and noise power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from .bits import as_bit_rows, as_bits

__all__ = ["Bpsk", "Qpsk", "hard_decisions", "Modulation"]


def hard_decisions(llrs: np.ndarray) -> np.ndarray:
    """Map LLRs to bits (``LLR >= 0 -> 0``, ``LLR < 0 -> 1``)."""
    arr = np.asarray(llrs, dtype=float)
    return (arr < 0).astype(np.uint8)


@dataclass(frozen=True)
class Bpsk:
    """Binary phase-shift keying: bit 0 -> ``+1``, bit 1 -> ``-1``."""

    bits_per_symbol: int = 1

    def modulate(self, bits) -> np.ndarray:
        """Bits to unit-energy complex symbols."""
        arr = as_bits(bits)
        return (1.0 - 2.0 * arr.astype(float)) + 0.0j

    def modulate_rows(self, bit_rows) -> np.ndarray:
        """Batch of bit rows to symbols, one frame per row."""
        arr = as_bit_rows(bit_rows)
        return (1.0 - 2.0 * arr.astype(float)) + 0.0j

    def demodulate_llr(
        self,
        received: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Coherent LLRs: ``4 * A * Re(conj(g) y) / N0``.

        Parameters
        ----------
        received:
            Channel output samples.
        complex_gain:
            Known channel amplitude ``g`` (full CSI, per the paper).
        noise_power:
            Total complex noise power ``N0``.
        amplitude:
            Transmit amplitude ``A = sqrt(P)`` applied at the modulator.
        """
        if np.any(np.asarray(noise_power) <= 0):
            raise InvalidParameterError(
                f"noise power must be positive, got {noise_power}"
            )
        y = np.asarray(received)
        matched = np.real(np.conj(complex_gain) * y)
        return 4.0 * amplitude * matched / noise_power

    def demodulate_llr_rows(
        self,
        received_rows: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Coherent LLRs of a symbol batch ``(R, n)`` — elementwise, so row
        ``r`` equals ``demodulate_llr(received_rows[r], ...)`` bit for bit.

        ``complex_gain``, ``noise_power`` and ``amplitude`` may be
        ``(R, 1)`` per-row columns (the cells-fused layout): the identical
        expression then broadcasts each row's own channel, so a fused row
        equals the scalar call with that row's parameters."""
        return self.demodulate_llr(
            received_rows, complex_gain, noise_power, amplitude=amplitude
        )

    def symbols_for_bits(self, n_bits: int) -> int:
        """Number of channel symbols needed for ``n_bits`` coded bits."""
        if n_bits < 0:
            raise InvalidParameterError(f"bit count must be non-negative, got {n_bits}")
        return n_bits


@dataclass(frozen=True)
class Qpsk:
    """Gray-mapped QPSK: two bits per symbol on I and Q at ``1/sqrt(2)``."""

    bits_per_symbol: int = 2

    def modulate(self, bits) -> np.ndarray:
        """Bits to unit-energy QPSK symbols; bit count must be even."""
        arr = as_bits(bits)
        if arr.size % 2 != 0:
            raise InvalidParameterError(
                f"QPSK needs an even number of bits, got {arr.size}"
            )
        pairs = arr.reshape(-1, 2).astype(float)
        scale = 1.0 / math.sqrt(2.0)
        return scale * ((1.0 - 2.0 * pairs[:, 0]) + 1j * (1.0 - 2.0 * pairs[:, 1]))

    def modulate_rows(self, bit_rows) -> np.ndarray:
        """Batch of bit rows to QPSK symbols, one frame per row."""
        arr = as_bit_rows(bit_rows)
        if arr.shape[1] % 2 != 0:
            raise InvalidParameterError(
                f"QPSK needs an even number of bits, got {arr.shape[1]}"
            )
        pairs = arr.reshape(arr.shape[0], -1, 2).astype(float)
        scale = 1.0 / math.sqrt(2.0)
        return scale * (
            (1.0 - 2.0 * pairs[:, :, 0]) + 1j * (1.0 - 2.0 * pairs[:, :, 1])
        )

    def demodulate_llr(
        self,
        received: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Per-bit coherent LLRs, interleaved ``[I0, Q0, I1, Q1, ...]``."""
        if np.any(np.asarray(noise_power) <= 0):
            raise InvalidParameterError(
                f"noise power must be positive, got {noise_power}"
            )
        y = np.asarray(received)
        rotated = np.conj(complex_gain) * y
        scale = 4.0 * amplitude / (noise_power * math.sqrt(2.0))
        llr_i = scale * np.real(rotated)
        llr_q = scale * np.imag(rotated)
        out = np.empty(2 * y.size)
        out[0::2] = llr_i
        out[1::2] = llr_q
        return out

    def demodulate_llr_rows(
        self,
        received_rows: np.ndarray,
        complex_gain: complex,
        noise_power: float,
        *,
        amplitude: float = 1.0,
    ) -> np.ndarray:
        """Per-bit LLRs of a symbol batch ``(R, n)``, shape ``(R, 2n)``.

        Accepts ``(R, 1)`` per-row ``complex_gain``/``noise_power``/
        ``amplitude`` columns like :meth:`Bpsk.demodulate_llr_rows`."""
        if np.any(np.asarray(noise_power) <= 0):
            raise InvalidParameterError(
                f"noise power must be positive, got {noise_power}"
            )
        y = np.asarray(received_rows)
        rotated = np.conj(complex_gain) * y
        scale = 4.0 * amplitude / (noise_power * math.sqrt(2.0))
        out = np.empty((y.shape[0], 2 * y.shape[1]))
        out[:, 0::2] = scale * np.real(rotated)
        out[:, 1::2] = scale * np.imag(rotated)
        return out

    def symbols_for_bits(self, n_bits: int) -> int:
        """Number of channel symbols for ``n_bits`` coded bits (rounded up)."""
        if n_bits < 0:
            raise InvalidParameterError(f"bit count must be non-negative, got {n_bits}")
        return (n_bits + 1) // 2


#: Union type alias for documentation purposes.
Modulation = Bpsk | Qpsk
