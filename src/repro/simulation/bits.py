"""Bit-array utilities for the link-level simulator.

Bits are represented as 1-D ``numpy.uint8`` arrays with values in ``{0, 1}``
throughout the simulation stack; these helpers centralize conversion,
generation and comparison so the rest of the code never hand-rolls them.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "as_bits",
    "as_bit_rows",
    "random_bits",
    "bits_to_int",
    "int_to_bits",
    "xor_bits",
    "pad_bits",
    "hamming_distance",
    "hamming_distance_rows",
    "bit_error_rate",
]


def as_bits(values) -> np.ndarray:
    """Coerce a sequence into a validated uint8 bit array."""
    arr = np.asarray(values)
    arr = arr.astype(np.uint8, copy=True)
    if arr.ndim != 1:
        raise InvalidParameterError(f"bit arrays must be 1-D, got shape {arr.shape}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise InvalidParameterError("bit arrays may contain only 0s and 1s")
    return arr


def as_bit_rows(values) -> np.ndarray:
    """Coerce a batch of equal-length bit sequences into a ``(R, n)`` array.

    The 2-D counterpart of :func:`as_bits`: row ``r`` is one bit sequence.
    This is the layout of the batched link-level simulation kernel, where
    the leading axis ranges over protocol rounds (frames).
    """
    arr = np.asarray(values)
    arr = arr.astype(np.uint8, copy=True)
    if arr.ndim != 2:
        raise InvalidParameterError(
            f"bit-row batches must be 2-D, got shape {arr.shape}"
        )
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise InvalidParameterError("bit arrays may contain only 0s and 1s")
    return arr


def random_bits(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` i.i.d. uniform bits."""
    if n < 0:
        raise InvalidParameterError(f"bit count must be non-negative, got {n}")
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def bits_to_int(bits) -> int:
    """Interpret a bit array as a big-endian unsigned integer."""
    arr = as_bits(bits)
    value = 0
    for bit in arr:
        value = (value << 1) | int(bit)
    return value


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Big-endian binary expansion of ``value`` into ``width`` bits."""
    if width < 0:
        raise InvalidParameterError(f"width must be non-negative, got {width}")
    if value < 0 or (width < value.bit_length()):
        raise InvalidParameterError(f"value {value} does not fit in {width} bits")
    return np.array(
        [(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8
    )


def xor_bits(x, y) -> np.ndarray:
    """Component-wise XOR of two equal-length bit arrays.

    This is the relay's network-coding combine for equal-length frames; use
    :func:`pad_bits` first when lengths differ (the paper's group ``L`` has
    the cardinality of the *larger* message set).
    """
    a, b = as_bits(x), as_bits(y)
    if a.shape != b.shape:
        raise InvalidParameterError(
            f"XOR needs equal lengths, got {a.shape[0]} and {b.shape[0]}"
        )
    return np.bitwise_xor(a, b)


def pad_bits(bits, length: int) -> np.ndarray:
    """Zero-pad a bit array up to ``length`` (no-op when already that long)."""
    arr = as_bits(bits)
    if length < arr.size:
        raise InvalidParameterError(f"cannot pad length {arr.size} down to {length}")
    if length == arr.size:
        return arr
    return np.concatenate([arr, np.zeros(length - arr.size, dtype=np.uint8)])


def hamming_distance(x, y) -> int:
    """Number of positions where two equal-length bit arrays differ."""
    return int(xor_bits(x, y).sum())


def hamming_distance_rows(x_rows, y_rows) -> np.ndarray:
    """Per-row Hamming distances of two ``(R, n)`` bit batches."""
    a, b = as_bit_rows(x_rows), as_bit_rows(y_rows)
    if a.shape != b.shape:
        raise InvalidParameterError(
            f"row-wise Hamming distance needs equal shapes, got {a.shape} "
            f"and {b.shape}"
        )
    return np.bitwise_xor(a, b).sum(axis=1, dtype=np.int64)


def bit_error_rate(sent, received) -> float:
    """Fraction of differing bits between two equal-length arrays."""
    a = as_bits(sent)
    if a.size == 0:
        raise InvalidParameterError("cannot compute BER of empty arrays")
    return hamming_distance(sent, received) / a.size
