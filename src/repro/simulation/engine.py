"""Protocol execution engines: full exchanges over the half-duplex medium.

Runs operational decode-and-forward rounds of each protocol from
Section II-C against the Gaussian half-duplex medium of
:mod:`repro.channels.halfduplex`:

* **DT** — two point-to-point frames, no relay.
* **MABC** — joint MAC phase (relay SIC-decodes both), then a single
  network-coded (XOR) relay broadcast; terminals resolve their partner's
  frame with own-message side information.
* **TDBC** — two dedicated phases (relay *and* opposite terminal listen),
  then the XOR broadcast; terminals arbitrate between the relay path and
  their overheard direct path via CRC.
* **HBC** — the four-phase hybrid: each message is split into a dedicated
  half (TDBC-like, overheard by the partner) and a MAC half (MABC-like),
  and the relay broadcasts both XOR-combined halves.

Every round reports per-direction success, bit errors and the exact number
of channel symbols spent, so campaign goodput (bits/symbol) is directly
comparable to the analytic bounds.

Three engines share one round semantics:

* :class:`ProtocolEngine` executes **one round at a time** through the
  scalar codec pipeline — the per-round reference implementation.
* :class:`BatchedProtocolEngine` executes **all rounds of a campaign at
  once**: payloads, symbols, channel outputs, LLRs and frame estimates
  carry a leading ``(n_rounds, ...)`` axis, so every protocol phase is a
  handful of NumPy calls regardless of the round count.
* :class:`FusedCellEngine` executes **all rounds of many campaign grid
  cells at once**: the leading axis flattens to ``(n_cells ×
  rounds_per_cell, ...)`` and the per-link gains and transmit amplitude
  become per-row columns, so one Viterbi ACS pass, one CRC table sweep
  and one LLR computation per phase serve every cell that shares a
  codec.

Reproducibility policy (shared by all engines, and what makes them
bit-for-bit interchangeable): a round's randomness is consumed from
*per-phase* noise streams rather than one interleaved generator. Each
protocol has a fixed phase count (:data:`PROTOCOL_PHASE_COUNTS`); phase
``p`` draws only from stream ``p``, as one contiguous standard-normal
block of shape ``(n_rounds, n_listeners, 2, n_symbols)`` per call with
the decoded listeners in alphabetical node order (see
:meth:`repro.channels.halfduplex.HalfDuplexMedium.run_phase_rows`).
Because NumPy generators fill arrays sequentially, any split of the
rounds axis — one big batch, chunks, or a per-round loop — consumes
identical values, which the equivalence tests and the ablation benchmark
assert down to the last bit of every report field.

The fused engine extends the policy **across cells** without weakening
it: every campaign grid cell keeps its own root generator (seeded by
flat cell index), its own payload stream and its own per-phase noise
streams; a fused phase carries one stream per cell
(:class:`repro.channels.halfduplex.FusedPhaseStream`) and draws each
cell's block contiguously from it. Fusing therefore changes *which
arrays the arithmetic runs over*, never *which random values a cell
consumes* — the property the fused ablation benchmark asserts.

Importance sampling keeps the same contract: a twisted-noise proposal
(:mod:`repro.simulation.sampling`) biases each cell's noise as an affine
transform applied *after* the identical per-stream standard draw, with
the exact per-row log likelihood ratio accumulated on the fused medium.
Stream spawning and consumption never change, so cells without a
sampling spec remain bitwise-identical to the pre-sampling kernel.

Wave-schedule determinism (the adaptive-round-allocation companion of
the RNG spawn policy): when a campaign runs rounds in escalating waves
(``target_rel_error`` in :class:`repro.campaign.spec.LinkSimSpec`), the
wave boundaries are a pure function of the spec —
:func:`repro.simulation.montecarlo.wave_bounds` derives them from
``n_rounds`` and ``max_rounds`` only, never from wall-clock time,
executor choice or fusion width. Each wave draws one contiguous payload
block per cell at those spec-fixed boundaries, and noise streams are
split-safe by construction, so an adaptive cell's report is as much a
pure function of the spec as a fixed-budget cell's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.halfduplex import (
    FusedHalfDuplexMedium,
    FusedPhaseStream,
    HalfDuplexMedium,
)
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .bits import as_bit_rows, as_bits, hamming_distance, hamming_distance_rows
from .linkcodec import LinkCodec
from .relay import sic_decode_mac, sic_decode_mac_rows, xor_forward
from .terminals import arbitrate_paths, arbitrate_paths_rows

__all__ = [
    "RoundResult",
    "RoundBatch",
    "ProtocolEngine",
    "BatchedProtocolEngine",
    "FusedCellEngine",
    "PROTOCOL_PHASE_COUNTS",
    "spawn_phase_streams",
    "spawn_cell_phase_streams",
]

#: Number of half-duplex phases — and therefore independent noise streams
#: — each protocol consumes per round. The stream-per-phase policy is what
#: lets the batched engine draw a phase's noise for every round in one
#: contiguous block while a per-round loop consumes the same values.
PROTOCOL_PHASE_COUNTS = {
    Protocol.DT: 2,
    Protocol.NAIVE4: 4,
    Protocol.MABC: 2,
    Protocol.TDBC: 3,
    Protocol.HBC: 4,
}


def spawn_phase_streams(protocol, rng: np.random.Generator) -> tuple:
    """Spawn one independent child noise stream per protocol phase."""
    if protocol not in PROTOCOL_PHASE_COUNTS:
        raise InvalidParameterError(f"unknown protocol {protocol!r}")
    return tuple(rng.spawn(PROTOCOL_PHASE_COUNTS[protocol]))


def spawn_cell_phase_streams(protocol, cell_streams, rounds_per_cell: int) -> tuple:
    """Transpose per-cell phase-stream tuples into fused per-phase streams.

    ``cell_streams`` holds one :func:`spawn_phase_streams` tuple per fused
    cell; the result is one :class:`FusedPhaseStream` per protocol phase,
    each carrying every cell's generator for that phase — the shape the
    fused medium consumes. Pure bookkeeping: no generator is advanced.
    """
    if protocol not in PROTOCOL_PHASE_COUNTS:
        raise InvalidParameterError(f"unknown protocol {protocol!r}")
    cell_streams = tuple(tuple(streams) for streams in cell_streams)
    if not cell_streams:
        raise InvalidParameterError("at least one cell required")
    expected = PROTOCOL_PHASE_COUNTS[protocol]
    for streams in cell_streams:
        if len(streams) != expected:
            raise InvalidParameterError(
                f"{protocol} needs {expected} phase streams per cell, "
                f"got {len(streams)}"
            )
    return tuple(
        FusedPhaseStream(
            streams=tuple(streams[phase] for streams in cell_streams),
            rounds_per_cell=rounds_per_cell,
        )
        for phase in range(expected)
    )


@dataclass(frozen=True)
class RoundResult:
    """Outcome of one protocol round.

    Attributes
    ----------
    success_a_to_b / success_b_to_a:
        Whether the full payload was recovered bit-exactly (and the
        accepted estimate's CRC verified) in each direction.
    bit_errors_a_to_b / bit_errors_b_to_a:
        Payload bit errors in each direction.
    payload_bits:
        Payload size per direction in this round.
    n_symbols:
        Total channel symbols consumed by all phases.
    relay_ok:
        Whether the relay decoded everything it needed (``None`` for DT).
    """

    success_a_to_b: bool
    success_b_to_a: bool
    bit_errors_a_to_b: int
    bit_errors_b_to_a: int
    payload_bits: int
    n_symbols: int
    relay_ok: bool | None


@dataclass(frozen=True)
class RoundBatch:
    """Outcomes of a whole batch of protocol rounds.

    The batched counterpart of :class:`RoundResult`: scalar per-round
    fields become ``(n_rounds,)`` arrays, while the per-round constants
    (payload size, symbol spend) stay scalars.
    """

    success_a_to_b: np.ndarray
    success_b_to_a: np.ndarray
    bit_errors_a_to_b: np.ndarray
    bit_errors_b_to_a: np.ndarray
    payload_bits: int
    n_symbols: int
    relay_ok: np.ndarray | None

    def __len__(self) -> int:
        return int(self.success_a_to_b.shape[0])

    def round_result(self, index: int) -> RoundResult:
        """The scalar :class:`RoundResult` of one round of the batch."""
        relay_ok = None if self.relay_ok is None else bool(self.relay_ok[index])
        return RoundResult(
            success_a_to_b=bool(self.success_a_to_b[index]),
            success_b_to_a=bool(self.success_b_to_a[index]),
            bit_errors_a_to_b=int(self.bit_errors_a_to_b[index]),
            bit_errors_b_to_a=int(self.bit_errors_b_to_a[index]),
            payload_bits=self.payload_bits,
            n_symbols=self.n_symbols,
            relay_ok=relay_ok,
        )


@dataclass(frozen=True)
class _LinkEngine:
    """Shared state of the per-round and batched protocol engines.

    Attributes
    ----------
    medium:
        The half-duplex Gaussian medium (owns gains and noise).
    codec:
        Frame pipeline for full-size payloads (DT/MABC/TDBC). HBC derives a
        half-payload codec internally.
    power:
        Per-node transmit power ``P`` (linear); amplitude ``sqrt(P)`` is
        applied to the unit-energy modulated symbols.
    """

    medium: HalfDuplexMedium
    codec: LinkCodec
    power: float

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise InvalidParameterError(f"power must be positive, got {self.power}")

    @property
    def _amplitude(self) -> float:
        return float(np.sqrt(self.power))

    @property
    def _noise_power(self) -> float:
        return self.medium.noise.noise_power

    def _gain(self, node_i: str, node_j: str) -> complex:
        return self.medium.complex_gains[frozenset((node_i, node_j))]

    def _half_codec(self) -> LinkCodec:
        if self.codec.payload_bits % 2 != 0:
            raise InvalidParameterError(
                "HBC needs an even payload size to split across phases, "
                f"got {self.codec.payload_bits}"
            )
        return LinkCodec(
            payload_bits=self.codec.payload_bits // 2,
            code=self.codec.code,
            crc=self.codec.crc,
            modulation=self.codec.modulation,
            interleaver_seed=self.codec.interleaver_seed,
        )

    def _phase_streams(self, protocol, rng, phase_streams) -> tuple:
        """Resolve the per-phase noise streams of one round or batch."""
        if phase_streams is not None:
            streams = tuple(phase_streams)
            expected = PROTOCOL_PHASE_COUNTS[protocol]
            if len(streams) != expected:
                raise InvalidParameterError(
                    f"{protocol} needs {expected} phase streams, " f"got {len(streams)}"
                )
            return streams
        if rng is None:
            raise InvalidParameterError("either rng or phase_streams must be provided")
        return spawn_phase_streams(protocol, rng)


@dataclass(frozen=True)
class ProtocolEngine(_LinkEngine):
    """Executes protocol rounds one at a time — the reference pipeline.

    Each round consumes per-phase noise streams (either ``phase_streams``
    handed in by a campaign driver, or spawned from ``rng`` for standalone
    rounds) and decodes through the scalar codec path. Given the same
    streams, a loop over this engine reproduces
    :class:`BatchedProtocolEngine` outputs exactly.
    """

    def _check_payload(self, payload, codec: LinkCodec) -> np.ndarray:
        bits = as_bits(payload)
        if bits.size != codec.payload_bits:
            raise InvalidParameterError(
                f"payload must be {codec.payload_bits} bits, got {bits.size}"
            )
        return bits

    def _transit(
        self, transmissions: dict, listeners: tuple, stream: np.random.Generator
    ) -> dict:
        """Run one single-round phase; returns listener -> 1-D signal."""
        rows = {node: np.asarray(x)[None, :] for node, x in transmissions.items()}
        out = self.medium.run_phase_rows(rows, listeners, stream)
        return {node: out.signal_at(node)[0] for node in listeners}

    def _direction_result(self, sent, estimate) -> tuple:
        errors = hamming_distance(sent, estimate.payload)
        success = bool(estimate.crc_ok) and errors == 0
        return success, errors

    def run_dt_round(
        self, payload_a, payload_b, rng=None, *, phase_streams=None
    ) -> RoundResult:
        """Direct transmission: ``a -> b`` then ``b -> a``."""
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        s1, s2 = self._phase_streams(Protocol.DT, rng, phase_streams)

        y_b = self._transit({"a": amp * codec.encode(wa)}, ("b",), s1)["b"]
        frame_at_b = codec.decode(
            y_b, self._gain("a", "b"), self._noise_power, amplitude=amp
        )
        y_a = self._transit({"b": amp * codec.encode(wb)}, ("a",), s2)["a"]
        frame_at_a = codec.decode(
            y_a, self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        err_ab = hamming_distance(wa, frame_at_b.payload)
        err_ba = hamming_distance(wb, frame_at_a.payload)
        return RoundResult(
            success_a_to_b=frame_at_b.crc_ok and err_ab == 0,
            success_b_to_a=frame_at_a.crc_ok and err_ba == 0,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=2 * codec.n_symbols,
            relay_ok=None,
        )

    def run_naive4_round(
        self, payload_a, payload_b, rng=None, *, phase_streams=None
    ) -> RoundResult:
        """Naive four-phase store-and-forward (Fig. 1(ii) baseline).

        The relay decodes each terminal's frame in its dedicated phase and
        re-transmits it verbatim in the next; terminals use only the relay
        re-transmission (the overheard direct receptions are deliberately
        ignored — that inefficiency is what this baseline demonstrates).
        """
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        s1, s2, s3, s4 = self._phase_streams(Protocol.NAIVE4, rng, phase_streams)
        frame_a = codec.crc.append(wa)
        frame_b = codec.crc.append(wb)

        # Phase 1: a -> relay; phase 2: relay -> b.
        y_r = self._transit({"a": amp * codec.encode_frame_bits(frame_a)}, ("r",), s1)[
            "r"
        ]
        a_at_r = codec.decode(
            y_r, self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        y_b = self._transit(
            {"r": amp * codec.encode_frame_bits(a_at_r.frame_bits)}, ("b",), s2
        )["b"]
        a_at_b = codec.decode(
            y_b, self._gain("b", "r"), self._noise_power, amplitude=amp
        )

        # Phase 3: b -> relay; phase 4: relay -> a.
        y_r2 = self._transit({"b": amp * codec.encode_frame_bits(frame_b)}, ("r",), s3)[
            "r"
        ]
        b_at_r = codec.decode(
            y_r2, self._gain("b", "r"), self._noise_power, amplitude=amp
        )
        y_a = self._transit(
            {"r": amp * codec.encode_frame_bits(b_at_r.frame_bits)}, ("a",), s4
        )["a"]
        b_at_a = codec.decode(
            y_a, self._gain("a", "r"), self._noise_power, amplitude=amp
        )

        err_ab = hamming_distance(wa, a_at_b.payload)
        err_ba = hamming_distance(wb, b_at_a.payload)
        return RoundResult(
            success_a_to_b=a_at_b.crc_ok and err_ab == 0,
            success_b_to_a=b_at_a.crc_ok and err_ba == 0,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=4 * codec.n_symbols,
            relay_ok=a_at_r.crc_ok and b_at_r.crc_ok,
        )

    def run_mabc_round(
        self, payload_a, payload_b, rng=None, *, phase_streams=None
    ) -> RoundResult:
        """MABC: MAC phase into the relay, then one XOR broadcast."""
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        s1, s2 = self._phase_streams(Protocol.MABC, rng, phase_streams)
        frame_a = codec.crc.append(wa)
        frame_b = codec.crc.append(wb)

        # Phase 1: simultaneous transmission; only the relay listens.
        symbols = {
            "a": amp * codec.encode_frame_bits(frame_a),
            "b": amp * codec.encode_frame_bits(frame_b),
        }
        y_r = self._transit(symbols, ("r",), s1)["r"]
        mac = sic_decode_mac(
            codec,
            y_r,
            gain_a=self._gain("a", "r"),
            gain_b=self._gain("b", "r"),
            noise_power=self._noise_power,
            amplitude=amp,
        )

        # Phase 2: relay broadcasts the XOR of its two decoded frames.
        relay_frame = xor_forward(mac.frame_a.frame_bits, mac.frame_b.frame_bits)
        out2 = self._transit(
            {"r": amp * codec.encode_frame_bits(relay_frame)}, ("a", "b"), s2
        )
        relay_at_a = codec.decode(
            out2["a"], self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        relay_at_b = codec.decode(
            out2["b"], self._gain("b", "r"), self._noise_power, amplitude=amp
        )

        est_b_at_a = arbitrate_paths(
            codec, relay_frame=relay_at_a, own_frame_bits=frame_a, direct_frame=None
        )
        est_a_at_b = arbitrate_paths(
            codec, relay_frame=relay_at_b, own_frame_bits=frame_b, direct_frame=None
        )
        success_ab, err_ab = self._direction_result(wa, est_a_at_b)
        success_ba, err_ba = self._direction_result(wb, est_b_at_a)
        return RoundResult(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=2 * codec.n_symbols,
            relay_ok=mac.both_ok,
        )

    def run_tdbc_round(
        self, payload_a, payload_b, rng=None, *, phase_streams=None
    ) -> RoundResult:
        """TDBC: dedicated phases (overheard by the partner), XOR broadcast."""
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        s1, s2, s3 = self._phase_streams(Protocol.TDBC, rng, phase_streams)
        frame_a = codec.crc.append(wa)
        frame_b = codec.crc.append(wb)

        # Phase 1: a transmits; b and the relay listen.
        out1 = self._transit(
            {"a": amp * codec.encode_frame_bits(frame_a)}, ("b", "r"), s1
        )
        a_at_r = codec.decode(
            out1["r"], self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        a_at_b_direct = codec.decode(
            out1["b"], self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        # Phase 2: b transmits; a and the relay listen.
        out2 = self._transit(
            {"b": amp * codec.encode_frame_bits(frame_b)}, ("a", "r"), s2
        )
        b_at_r = codec.decode(
            out2["r"], self._gain("b", "r"), self._noise_power, amplitude=amp
        )
        b_at_a_direct = codec.decode(
            out2["a"], self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        # Phase 3: relay broadcasts the XOR of its two frame estimates.
        relay_frame = xor_forward(a_at_r.frame_bits, b_at_r.frame_bits)
        out3 = self._transit(
            {"r": amp * codec.encode_frame_bits(relay_frame)}, ("a", "b"), s3
        )
        relay_at_a = codec.decode(
            out3["a"], self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        relay_at_b = codec.decode(
            out3["b"], self._gain("b", "r"), self._noise_power, amplitude=amp
        )

        est_b_at_a = arbitrate_paths(
            codec,
            relay_frame=relay_at_a,
            own_frame_bits=frame_a,
            direct_frame=b_at_a_direct,
        )
        est_a_at_b = arbitrate_paths(
            codec,
            relay_frame=relay_at_b,
            own_frame_bits=frame_b,
            direct_frame=a_at_b_direct,
        )
        success_ab, err_ab = self._direction_result(wa, est_a_at_b)
        success_ba, err_ba = self._direction_result(wb, est_b_at_a)
        return RoundResult(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=3 * codec.n_symbols,
            relay_ok=a_at_r.crc_ok and b_at_r.crc_ok,
        )

    def run_hbc_round(
        self, payload_a, payload_b, rng=None, *, phase_streams=None
    ) -> RoundResult:
        """HBC: dedicated halves (overheard), MAC halves, double broadcast."""
        full = self.codec
        wa = self._check_payload(payload_a, full)
        wb = self._check_payload(payload_b, full)
        half = self._half_codec()
        amp = self._amplitude
        s1, s2, s3, s4 = self._phase_streams(Protocol.HBC, rng, phase_streams)
        k = half.payload_bits
        wa1, wa2 = wa[:k], wa[k:]
        wb1, wb2 = wb[:k], wb[k:]
        frame_a1, frame_a2 = half.crc.append(wa1), half.crc.append(wa2)
        frame_b1, frame_b2 = half.crc.append(wb1), half.crc.append(wb2)

        # Phase 1: a sends its dedicated half; b and the relay listen.
        out1 = self._transit(
            {"a": amp * half.encode_frame_bits(frame_a1)}, ("b", "r"), s1
        )
        a1_at_r = half.decode(
            out1["r"], self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        a1_at_b_direct = half.decode(
            out1["b"], self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        # Phase 2: b sends its dedicated half; a and the relay listen.
        out2 = self._transit(
            {"b": amp * half.encode_frame_bits(frame_b1)}, ("a", "r"), s2
        )
        b1_at_r = half.decode(
            out2["r"], self._gain("b", "r"), self._noise_power, amplitude=amp
        )
        b1_at_a_direct = half.decode(
            out2["a"], self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        # Phase 3: MAC halves; only the relay listens.
        symbols = {
            "a": amp * half.encode_frame_bits(frame_a2),
            "b": amp * half.encode_frame_bits(frame_b2),
        }
        y_r = self._transit(symbols, ("r",), s3)["r"]
        mac = sic_decode_mac(
            half,
            y_r,
            gain_a=self._gain("a", "r"),
            gain_b=self._gain("b", "r"),
            noise_power=self._noise_power,
            amplitude=amp,
        )

        # Phase 4: relay broadcasts both XOR-combined halves back to back.
        relay_frame_1 = xor_forward(a1_at_r.frame_bits, b1_at_r.frame_bits)
        relay_frame_2 = xor_forward(mac.frame_a.frame_bits, mac.frame_b.frame_bits)
        symbols_4 = np.concatenate(
            [
                half.encode_frame_bits(relay_frame_1),
                half.encode_frame_bits(relay_frame_2),
            ],
        )
        out4 = self._transit({"r": amp * symbols_4}, ("a", "b"), s4)
        n_half = half.n_symbols

        def _decode_broadcast(node: str):
            y = out4[node]
            gain = self._gain(node, "r")
            first = half.decode(y[:n_half], gain, self._noise_power, amplitude=amp)
            second = half.decode(y[n_half:], gain, self._noise_power, amplitude=amp)
            return first, second

        relay1_at_a, relay2_at_a = _decode_broadcast("a")
        relay1_at_b, relay2_at_b = _decode_broadcast("b")

        est_b1_at_a = arbitrate_paths(
            half,
            relay_frame=relay1_at_a,
            own_frame_bits=frame_a1,
            direct_frame=b1_at_a_direct,
        )
        est_b2_at_a = arbitrate_paths(
            half, relay_frame=relay2_at_a, own_frame_bits=frame_a2, direct_frame=None
        )
        est_a1_at_b = arbitrate_paths(
            half,
            relay_frame=relay1_at_b,
            own_frame_bits=frame_b1,
            direct_frame=a1_at_b_direct,
        )
        est_a2_at_b = arbitrate_paths(
            half, relay_frame=relay2_at_b, own_frame_bits=frame_b2, direct_frame=None
        )

        err_ab = hamming_distance(wa1, est_a1_at_b.payload)
        err_ab += hamming_distance(wa2, est_a2_at_b.payload)
        err_ba = hamming_distance(wb1, est_b1_at_a.payload)
        err_ba += hamming_distance(wb2, est_b2_at_a.payload)
        success_ab = est_a1_at_b.crc_ok and est_a2_at_b.crc_ok and err_ab == 0
        success_ba = est_b1_at_a.crc_ok and est_b2_at_a.crc_ok and err_ba == 0
        relay_ok = a1_at_r.crc_ok and b1_at_r.crc_ok and mac.both_ok
        return RoundResult(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=full.payload_bits,
            n_symbols=5 * n_half,
            relay_ok=relay_ok,
        )

    def run_round(
        self, protocol, payload_a, payload_b, rng=None, *, phase_streams=None
    ) -> RoundResult:
        """Dispatch one round of the named protocol."""
        runners = {
            Protocol.DT: self.run_dt_round,
            Protocol.NAIVE4: self.run_naive4_round,
            Protocol.MABC: self.run_mabc_round,
            Protocol.TDBC: self.run_tdbc_round,
            Protocol.HBC: self.run_hbc_round,
        }
        if protocol not in runners:
            raise InvalidParameterError(f"unknown protocol {protocol!r}")
        return runners[protocol](payload_a, payload_b, rng, phase_streams=phase_streams)


@dataclass(frozen=True)
class BatchedProtocolEngine(_LinkEngine):
    """Executes every round of a campaign at once, frames-axis vectorized.

    Payload batches are ``(n_rounds, payload_bits)`` arrays; each protocol
    phase encodes, transits the medium, demodulates and Viterbi-decodes
    the whole batch in single NumPy calls. Per-phase noise streams follow
    the module-level reproducibility policy, and every stage is
    elementwise along the rounds axis, so the outputs equal a per-round
    :class:`ProtocolEngine` loop over the same streams exactly.
    """

    def _check_payload_rows(self, payload_rows, codec: LinkCodec) -> np.ndarray:
        rows = as_bit_rows(payload_rows)
        if rows.shape[1] != codec.payload_bits:
            raise InvalidParameterError(
                f"payloads must be {codec.payload_bits} bits, " f"got {rows.shape[1]}"
            )
        return rows

    def _check_payload_batch(
        self, payload_rows_a, payload_rows_b, codec: LinkCodec
    ) -> tuple:
        wa = self._check_payload_rows(payload_rows_a, codec)
        wb = self._check_payload_rows(payload_rows_b, codec)
        if wa.shape[0] != wb.shape[0]:
            raise InvalidParameterError(
                f"payload batches disagree on the round count: "
                f"{wa.shape[0]} vs {wb.shape[0]}"
            )
        return wa, wb

    @staticmethod
    def _direction_rows(sent_rows, estimate) -> tuple:
        errors = hamming_distance_rows(sent_rows, estimate.payload)
        success = np.asarray(estimate.crc_ok) & (errors == 0)
        return success, errors

    def run_dt_rounds(
        self, payload_rows_a, payload_rows_b, rng=None, *, phase_streams=None
    ) -> RoundBatch:
        """Direct transmission for a whole batch of rounds."""
        codec = self.codec
        wa, wb = self._check_payload_batch(payload_rows_a, payload_rows_b, codec)
        amp = self._amplitude
        s1, s2 = self._phase_streams(Protocol.DT, rng, phase_streams)

        out1 = self.medium.run_phase_rows(
            {"a": amp * codec.encode_rows(wa)}, ("b",), s1
        )
        frames_at_b = codec.decode_rows(
            out1.signal_at("b"), self._gain("a", "b"), self._noise_power, amplitude=amp
        )
        out2 = self.medium.run_phase_rows(
            {"b": amp * codec.encode_rows(wb)}, ("a",), s2
        )
        frames_at_a = codec.decode_rows(
            out2.signal_at("a"), self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        err_ab = hamming_distance_rows(wa, frames_at_b.payload)
        err_ba = hamming_distance_rows(wb, frames_at_a.payload)
        return RoundBatch(
            success_a_to_b=frames_at_b.crc_ok & (err_ab == 0),
            success_b_to_a=frames_at_a.crc_ok & (err_ba == 0),
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=2 * codec.n_symbols,
            relay_ok=None,
        )

    def run_naive4_rounds(
        self, payload_rows_a, payload_rows_b, rng=None, *, phase_streams=None
    ) -> RoundBatch:
        """Naive four-phase store-and-forward for a batch of rounds."""
        codec = self.codec
        wa, wb = self._check_payload_batch(payload_rows_a, payload_rows_b, codec)
        amp = self._amplitude
        s1, s2, s3, s4 = self._phase_streams(Protocol.NAIVE4, rng, phase_streams)
        frames_a = codec.crc.append_rows(wa)
        frames_b = codec.crc.append_rows(wb)

        out1 = self.medium.run_phase_rows(
            {"a": amp * codec.encode_frame_rows(frames_a)}, ("r",), s1
        )
        a_at_r = codec.decode_rows(
            out1.signal_at("r"), self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        out2 = self.medium.run_phase_rows(
            {"r": amp * codec.encode_frame_rows(a_at_r.frame_bits)}, ("b",), s2
        )
        a_at_b = codec.decode_rows(
            out2.signal_at("b"), self._gain("b", "r"), self._noise_power, amplitude=amp
        )

        out3 = self.medium.run_phase_rows(
            {"b": amp * codec.encode_frame_rows(frames_b)}, ("r",), s3
        )
        b_at_r = codec.decode_rows(
            out3.signal_at("r"), self._gain("b", "r"), self._noise_power, amplitude=amp
        )
        out4 = self.medium.run_phase_rows(
            {"r": amp * codec.encode_frame_rows(b_at_r.frame_bits)}, ("a",), s4
        )
        b_at_a = codec.decode_rows(
            out4.signal_at("a"), self._gain("a", "r"), self._noise_power, amplitude=amp
        )

        err_ab = hamming_distance_rows(wa, a_at_b.payload)
        err_ba = hamming_distance_rows(wb, b_at_a.payload)
        return RoundBatch(
            success_a_to_b=a_at_b.crc_ok & (err_ab == 0),
            success_b_to_a=b_at_a.crc_ok & (err_ba == 0),
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=4 * codec.n_symbols,
            relay_ok=a_at_r.crc_ok & b_at_r.crc_ok,
        )

    def run_mabc_rounds(
        self, payload_rows_a, payload_rows_b, rng=None, *, phase_streams=None
    ) -> RoundBatch:
        """MABC for a batch of rounds: MAC phase, then one XOR broadcast."""
        codec = self.codec
        wa, wb = self._check_payload_batch(payload_rows_a, payload_rows_b, codec)
        amp = self._amplitude
        s1, s2 = self._phase_streams(Protocol.MABC, rng, phase_streams)
        frames_a = codec.crc.append_rows(wa)
        frames_b = codec.crc.append_rows(wb)

        out1 = self.medium.run_phase_rows(
            {
                "a": amp * codec.encode_frame_rows(frames_a),
                "b": amp * codec.encode_frame_rows(frames_b),
            },
            ("r",),
            s1,
        )
        mac = sic_decode_mac_rows(
            codec,
            out1.signal_at("r"),
            gain_a=self._gain("a", "r"),
            gain_b=self._gain("b", "r"),
            noise_power=self._noise_power,
            amplitude=amp,
        )

        relay_frames = np.bitwise_xor(mac.frame_a.frame_bits, mac.frame_b.frame_bits)
        out2 = self.medium.run_phase_rows(
            {"r": amp * codec.encode_frame_rows(relay_frames)}, ("a", "b"), s2
        )
        relay_at_a = codec.decode_rows(
            out2.signal_at("a"), self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        relay_at_b = codec.decode_rows(
            out2.signal_at("b"), self._gain("b", "r"), self._noise_power, amplitude=amp
        )

        est_b_at_a = arbitrate_paths_rows(
            codec, relay_frames=relay_at_a, own_frame_rows=frames_a, direct_frames=None
        )
        est_a_at_b = arbitrate_paths_rows(
            codec, relay_frames=relay_at_b, own_frame_rows=frames_b, direct_frames=None
        )
        success_ab, err_ab = self._direction_rows(wa, est_a_at_b)
        success_ba, err_ba = self._direction_rows(wb, est_b_at_a)
        return RoundBatch(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=2 * codec.n_symbols,
            relay_ok=mac.both_ok,
        )

    def run_tdbc_rounds(
        self, payload_rows_a, payload_rows_b, rng=None, *, phase_streams=None
    ) -> RoundBatch:
        """TDBC for a batch of rounds: overheard phases, XOR broadcast."""
        codec = self.codec
        wa, wb = self._check_payload_batch(payload_rows_a, payload_rows_b, codec)
        amp = self._amplitude
        s1, s2, s3 = self._phase_streams(Protocol.TDBC, rng, phase_streams)
        frames_a = codec.crc.append_rows(wa)
        frames_b = codec.crc.append_rows(wb)

        out1 = self.medium.run_phase_rows(
            {"a": amp * codec.encode_frame_rows(frames_a)}, ("b", "r"), s1
        )
        a_at_r = codec.decode_rows(
            out1.signal_at("r"), self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        a_at_b_direct = codec.decode_rows(
            out1.signal_at("b"), self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        out2 = self.medium.run_phase_rows(
            {"b": amp * codec.encode_frame_rows(frames_b)}, ("a", "r"), s2
        )
        b_at_r = codec.decode_rows(
            out2.signal_at("r"), self._gain("b", "r"), self._noise_power, amplitude=amp
        )
        b_at_a_direct = codec.decode_rows(
            out2.signal_at("a"), self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        relay_frames = np.bitwise_xor(a_at_r.frame_bits, b_at_r.frame_bits)
        out3 = self.medium.run_phase_rows(
            {"r": amp * codec.encode_frame_rows(relay_frames)}, ("a", "b"), s3
        )
        relay_at_a = codec.decode_rows(
            out3.signal_at("a"), self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        relay_at_b = codec.decode_rows(
            out3.signal_at("b"), self._gain("b", "r"), self._noise_power, amplitude=amp
        )

        est_b_at_a = arbitrate_paths_rows(
            codec,
            relay_frames=relay_at_a,
            own_frame_rows=frames_a,
            direct_frames=b_at_a_direct,
        )
        est_a_at_b = arbitrate_paths_rows(
            codec,
            relay_frames=relay_at_b,
            own_frame_rows=frames_b,
            direct_frames=a_at_b_direct,
        )
        success_ab, err_ab = self._direction_rows(wa, est_a_at_b)
        success_ba, err_ba = self._direction_rows(wb, est_b_at_a)
        return RoundBatch(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=3 * codec.n_symbols,
            relay_ok=a_at_r.crc_ok & b_at_r.crc_ok,
        )

    def run_hbc_rounds(
        self, payload_rows_a, payload_rows_b, rng=None, *, phase_streams=None
    ) -> RoundBatch:
        """HBC for a batch of rounds: halves, MAC halves, double broadcast."""
        full = self.codec
        wa, wb = self._check_payload_batch(payload_rows_a, payload_rows_b, full)
        half = self._half_codec()
        amp = self._amplitude
        s1, s2, s3, s4 = self._phase_streams(Protocol.HBC, rng, phase_streams)
        k = half.payload_bits
        wa1, wa2 = wa[:, :k], wa[:, k:]
        wb1, wb2 = wb[:, :k], wb[:, k:]
        frames_a1 = half.crc.append_rows(wa1)
        frames_a2 = half.crc.append_rows(wa2)
        frames_b1 = half.crc.append_rows(wb1)
        frames_b2 = half.crc.append_rows(wb2)

        out1 = self.medium.run_phase_rows(
            {"a": amp * half.encode_frame_rows(frames_a1)}, ("b", "r"), s1
        )
        a1_at_r = half.decode_rows(
            out1.signal_at("r"), self._gain("a", "r"), self._noise_power, amplitude=amp
        )
        a1_at_b_direct = half.decode_rows(
            out1.signal_at("b"), self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        out2 = self.medium.run_phase_rows(
            {"b": amp * half.encode_frame_rows(frames_b1)}, ("a", "r"), s2
        )
        b1_at_r = half.decode_rows(
            out2.signal_at("r"), self._gain("b", "r"), self._noise_power, amplitude=amp
        )
        b1_at_a_direct = half.decode_rows(
            out2.signal_at("a"), self._gain("a", "b"), self._noise_power, amplitude=amp
        )

        out3 = self.medium.run_phase_rows(
            {
                "a": amp * half.encode_frame_rows(frames_a2),
                "b": amp * half.encode_frame_rows(frames_b2),
            },
            ("r",),
            s3,
        )
        mac = sic_decode_mac_rows(
            half,
            out3.signal_at("r"),
            gain_a=self._gain("a", "r"),
            gain_b=self._gain("b", "r"),
            noise_power=self._noise_power,
            amplitude=amp,
        )

        relay_frames_1 = np.bitwise_xor(a1_at_r.frame_bits, b1_at_r.frame_bits)
        relay_frames_2 = np.bitwise_xor(mac.frame_a.frame_bits, mac.frame_b.frame_bits)
        symbols_4 = np.concatenate(
            [
                half.encode_frame_rows(relay_frames_1),
                half.encode_frame_rows(relay_frames_2),
            ],
            axis=1,
        )
        out4 = self.medium.run_phase_rows({"r": amp * symbols_4}, ("a", "b"), s4)
        n_half = half.n_symbols

        def _decode_broadcast(node: str):
            y = out4.signal_at(node)
            gain = self._gain(node, "r")
            first = half.decode_rows(
                y[:, :n_half], gain, self._noise_power, amplitude=amp
            )
            second = half.decode_rows(
                y[:, n_half:], gain, self._noise_power, amplitude=amp
            )
            return first, second

        relay1_at_a, relay2_at_a = _decode_broadcast("a")
        relay1_at_b, relay2_at_b = _decode_broadcast("b")

        est_b1_at_a = arbitrate_paths_rows(
            half,
            relay_frames=relay1_at_a,
            own_frame_rows=frames_a1,
            direct_frames=b1_at_a_direct,
        )
        est_b2_at_a = arbitrate_paths_rows(
            half, relay_frames=relay2_at_a, own_frame_rows=frames_a2, direct_frames=None
        )
        est_a1_at_b = arbitrate_paths_rows(
            half,
            relay_frames=relay1_at_b,
            own_frame_rows=frames_b1,
            direct_frames=a1_at_b_direct,
        )
        est_a2_at_b = arbitrate_paths_rows(
            half, relay_frames=relay2_at_b, own_frame_rows=frames_b2, direct_frames=None
        )

        err_ab = hamming_distance_rows(wa1, est_a1_at_b.payload)
        err_ab += hamming_distance_rows(wa2, est_a2_at_b.payload)
        err_ba = hamming_distance_rows(wb1, est_b1_at_a.payload)
        err_ba += hamming_distance_rows(wb2, est_b2_at_a.payload)
        success_ab = est_a1_at_b.crc_ok & est_a2_at_b.crc_ok & (err_ab == 0)
        success_ba = est_b1_at_a.crc_ok & est_b2_at_a.crc_ok & (err_ba == 0)
        relay_ok = a1_at_r.crc_ok & b1_at_r.crc_ok & mac.both_ok
        return RoundBatch(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=full.payload_bits,
            n_symbols=5 * n_half,
            relay_ok=relay_ok,
        )

    def run_rounds(
        self, protocol, payload_rows_a, payload_rows_b, rng=None, *, phase_streams=None
    ) -> RoundBatch:
        """Dispatch a batch of rounds of the named protocol."""
        runners = {
            Protocol.DT: self.run_dt_rounds,
            Protocol.NAIVE4: self.run_naive4_rounds,
            Protocol.MABC: self.run_mabc_rounds,
            Protocol.TDBC: self.run_tdbc_rounds,
            Protocol.HBC: self.run_hbc_rounds,
        }
        if protocol not in runners:
            raise InvalidParameterError(f"unknown protocol {protocol!r}")
        return runners[protocol](
            payload_rows_a, payload_rows_b, rng, phase_streams=phase_streams
        )


@dataclass(frozen=True)
class FusedCellEngine(BatchedProtocolEngine):
    """Executes every round of *many grid cells* at once, cells × rounds.

    Structurally this *is* the batched engine — it inherits all five
    protocol bodies unchanged — but its medium is a
    :class:`~repro.channels.halfduplex.FusedHalfDuplexMedium` whose
    per-link complex gains are ``(n_cells * rounds_per_cell, 1)`` row
    columns, and ``power`` is the matching per-row column, so every
    encode, demodulate, SIC and arbitration call broadcasts each cell's
    own SNR across the fused rows axis while the trellis recursion, the
    CRC table sweep and the GF(2) encoder run once for the whole fused
    batch. Phase streams must be the per-phase
    :class:`~repro.channels.halfduplex.FusedPhaseStream` tuples built by
    :func:`spawn_cell_phase_streams`, preserving the per-cell RNG spawn
    policy — which is what makes a fused report bitwise-identical to the
    per-cell batched path, cell for cell.
    """

    def __post_init__(self) -> None:
        power = np.asarray(self.power, dtype=float)
        if power.ndim != 2 or power.shape[1] != 1:
            raise InvalidParameterError(
                f"fused power must be an (n_rows, 1) column, got shape {power.shape}"
            )
        if not isinstance(self.medium, FusedHalfDuplexMedium):
            raise InvalidParameterError("fused engine needs a FusedHalfDuplexMedium")
        if power.shape[0] != self.medium.n_rows:
            raise InvalidParameterError(
                f"power column has {power.shape[0]} rows, "
                f"medium has {self.medium.n_rows}"
            )
        if np.any(power <= 0):
            raise InvalidParameterError("power must be positive in every cell")
        object.__setattr__(self, "power", power)

    @property
    def _amplitude(self) -> np.ndarray:
        return np.sqrt(self.power)

    @classmethod
    def for_cells(
        cls,
        codec: LinkCodec,
        gab,
        gar,
        gbr,
        power,
        rounds_per_cell: int,
        *,
        sampling=None,
    ) -> "FusedCellEngine":
        """Build the engine of one fused wave over concrete grid cells.

        ``gab``/``gar``/``gbr``/``power`` are per-cell vectors (``power``
        broadcasts from a scalar); ``rounds_per_cell`` is the wave's round
        count, shared by every cell of the wave. Construction is cheap —
        trellis tables are cached on the code object — so drivers build a
        fresh engine per wave. With a ``sampling``
        :class:`~repro.simulation.sampling.ImportanceSamplingSpec`, the
        medium carries the per-cell noise twist derived from the batch's
        gain/power columns and accumulates per-row log likelihood ratios
        (read them from ``engine.medium.log_weights`` after the wave).
        """
        gab = np.atleast_1d(np.asarray(gab, dtype=float))
        power = np.broadcast_to(np.asarray(power, dtype=float), gab.shape).copy()
        twist = None
        if sampling is not None:
            # The fused campaign medium is unit-noise-power by
            # construction (the default ComplexAwgn below).
            twist = sampling.cell_twist(gab, gar, gbr, power, noise_power=1.0)
        medium = FusedHalfDuplexMedium(
            gab=gab, gar=gar, gbr=gbr, rounds_per_cell=rounds_per_cell, twist=twist
        )
        power_rows = np.repeat(power, rounds_per_cell)[:, None]
        return cls(medium=medium, codec=codec, power=power_rows)
