"""Protocol execution engine: one full exchange over the half-duplex medium.

Runs an operational decode-and-forward round of each protocol from
Section II-C against the Gaussian half-duplex medium of
:mod:`repro.channels.halfduplex`:

* **DT** — two point-to-point frames, no relay.
* **MABC** — joint MAC phase (relay SIC-decodes both), then a single
  network-coded (XOR) relay broadcast; terminals resolve their partner's
  frame with own-message side information.
* **TDBC** — two dedicated phases (relay *and* opposite terminal listen),
  then the XOR broadcast; terminals arbitrate between the relay path and
  their overheard direct path via CRC.
* **HBC** — the four-phase hybrid: each message is split into a dedicated
  half (TDBC-like, overheard by the partner) and a MAC half (MABC-like),
  and the relay broadcasts both XOR-combined halves.

Every round reports per-direction success, bit errors and the exact number
of channel symbols spent, so campaign goodput (bits/symbol) is directly
comparable to the analytic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.halfduplex import HalfDuplexMedium
from ..exceptions import InvalidParameterError
from .bits import as_bits, hamming_distance
from .linkcodec import LinkCodec
from .relay import sic_decode_mac, xor_forward
from .terminals import arbitrate_paths

__all__ = ["RoundResult", "ProtocolEngine"]


@dataclass(frozen=True)
class RoundResult:
    """Outcome of one protocol round.

    Attributes
    ----------
    success_a_to_b / success_b_to_a:
        Whether the full payload was recovered bit-exactly (and the
        accepted estimate's CRC verified) in each direction.
    bit_errors_a_to_b / bit_errors_b_to_a:
        Payload bit errors in each direction.
    payload_bits:
        Payload size per direction in this round.
    n_symbols:
        Total channel symbols consumed by all phases.
    relay_ok:
        Whether the relay decoded everything it needed (``None`` for DT).
    """

    success_a_to_b: bool
    success_b_to_a: bool
    bit_errors_a_to_b: int
    bit_errors_b_to_a: int
    payload_bits: int
    n_symbols: int
    relay_ok: bool | None


@dataclass(frozen=True)
class ProtocolEngine:
    """Executes protocol rounds on a fixed medium with a fixed codec.

    Attributes
    ----------
    medium:
        The half-duplex Gaussian medium (owns gains and noise).
    codec:
        Frame pipeline for full-size payloads (DT/MABC/TDBC). HBC derives a
        half-payload codec internally.
    power:
        Per-node transmit power ``P`` (linear); amplitude ``sqrt(P)`` is
        applied to the unit-energy modulated symbols.
    """

    medium: HalfDuplexMedium
    codec: LinkCodec
    power: float

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise InvalidParameterError(f"power must be positive, got {self.power}")

    @property
    def _amplitude(self) -> float:
        return float(np.sqrt(self.power))

    @property
    def _noise_power(self) -> float:
        return self.medium.noise.noise_power

    def _gain(self, node_i: str, node_j: str) -> complex:
        return self.medium.complex_gains[frozenset((node_i, node_j))]

    def _check_payload(self, payload, codec: LinkCodec) -> np.ndarray:
        bits = as_bits(payload)
        if bits.size != codec.payload_bits:
            raise InvalidParameterError(
                f"payload must be {codec.payload_bits} bits, got {bits.size}"
            )
        return bits

    def _direction_result(self, sent, estimate) -> tuple[bool, int]:
        errors = hamming_distance(sent, estimate.payload)
        success = bool(estimate.crc_ok) and errors == 0
        return success, errors

    def run_dt_round(self, payload_a, payload_b,
                     rng: np.random.Generator) -> RoundResult:
        """Direct transmission: ``a -> b`` then ``b -> a``."""
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude

        out1 = self.medium.run_phase({"a": amp * codec.encode(wa)}, rng)
        frame_at_b = codec.decode(out1.signal_at("b"), self._gain("a", "b"),
                                  self._noise_power, amplitude=amp)
        out2 = self.medium.run_phase({"b": amp * codec.encode(wb)}, rng)
        frame_at_a = codec.decode(out2.signal_at("a"), self._gain("a", "b"),
                                  self._noise_power, amplitude=amp)

        err_ab = hamming_distance(wa, frame_at_b.payload)
        err_ba = hamming_distance(wb, frame_at_a.payload)
        return RoundResult(
            success_a_to_b=frame_at_b.crc_ok and err_ab == 0,
            success_b_to_a=frame_at_a.crc_ok and err_ba == 0,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=2 * codec.n_symbols,
            relay_ok=None,
        )

    def run_naive4_round(self, payload_a, payload_b,
                         rng: np.random.Generator) -> RoundResult:
        """Naive four-phase store-and-forward (Fig. 1(ii) baseline).

        The relay decodes each terminal's frame in its dedicated phase and
        re-transmits it verbatim in the next; terminals use only the relay
        re-transmission (the overheard direct receptions are deliberately
        ignored — that inefficiency is what this baseline demonstrates).
        """
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        frame_a = codec.crc.append(wa)
        frame_b = codec.crc.append(wb)

        # Phase 1: a -> relay; phase 2: relay -> b.
        out1 = self.medium.run_phase(
            {"a": amp * codec.encode_frame_bits(frame_a)}, rng
        )
        a_at_r = codec.decode(out1.signal_at("r"), self._gain("a", "r"),
                              self._noise_power, amplitude=amp)
        out2 = self.medium.run_phase(
            {"r": amp * codec.encode_frame_bits(a_at_r.frame_bits)}, rng
        )
        a_at_b = codec.decode(out2.signal_at("b"), self._gain("b", "r"),
                              self._noise_power, amplitude=amp)

        # Phase 3: b -> relay; phase 4: relay -> a.
        out3 = self.medium.run_phase(
            {"b": amp * codec.encode_frame_bits(frame_b)}, rng
        )
        b_at_r = codec.decode(out3.signal_at("r"), self._gain("b", "r"),
                              self._noise_power, amplitude=amp)
        out4 = self.medium.run_phase(
            {"r": amp * codec.encode_frame_bits(b_at_r.frame_bits)}, rng
        )
        b_at_a = codec.decode(out4.signal_at("a"), self._gain("a", "r"),
                              self._noise_power, amplitude=amp)

        err_ab = hamming_distance(wa, a_at_b.payload)
        err_ba = hamming_distance(wb, b_at_a.payload)
        return RoundResult(
            success_a_to_b=a_at_b.crc_ok and err_ab == 0,
            success_b_to_a=b_at_a.crc_ok and err_ba == 0,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=4 * codec.n_symbols,
            relay_ok=a_at_r.crc_ok and b_at_r.crc_ok,
        )

    def run_mabc_round(self, payload_a, payload_b,
                       rng: np.random.Generator) -> RoundResult:
        """MABC: MAC phase into the relay, then one XOR broadcast."""
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        frame_a = codec.crc.append(wa)
        frame_b = codec.crc.append(wb)

        # Phase 1: simultaneous transmission; only the relay listens.
        out1 = self.medium.run_phase(
            {"a": amp * codec.encode_frame_bits(frame_a),
             "b": amp * codec.encode_frame_bits(frame_b)},
            rng,
        )
        mac = sic_decode_mac(
            codec, out1.signal_at("r"),
            gain_a=self._gain("a", "r"), gain_b=self._gain("b", "r"),
            noise_power=self._noise_power, amplitude=amp,
        )

        # Phase 2: relay broadcasts the XOR of its two decoded frames.
        relay_frame = xor_forward(mac.frame_a.frame_bits, mac.frame_b.frame_bits)
        out2 = self.medium.run_phase(
            {"r": amp * codec.encode_frame_bits(relay_frame)}, rng
        )
        relay_at_a = codec.decode(out2.signal_at("a"), self._gain("a", "r"),
                                  self._noise_power, amplitude=amp)
        relay_at_b = codec.decode(out2.signal_at("b"), self._gain("b", "r"),
                                  self._noise_power, amplitude=amp)

        est_b_at_a = arbitrate_paths(codec, relay_frame=relay_at_a,
                                     own_frame_bits=frame_a, direct_frame=None)
        est_a_at_b = arbitrate_paths(codec, relay_frame=relay_at_b,
                                     own_frame_bits=frame_b, direct_frame=None)
        success_ab, err_ab = self._direction_result(wa, est_a_at_b)
        success_ba, err_ba = self._direction_result(wb, est_b_at_a)
        return RoundResult(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=2 * codec.n_symbols,
            relay_ok=mac.both_ok,
        )

    def run_tdbc_round(self, payload_a, payload_b,
                       rng: np.random.Generator) -> RoundResult:
        """TDBC: dedicated phases (overheard by the partner), XOR broadcast."""
        codec = self.codec
        wa = self._check_payload(payload_a, codec)
        wb = self._check_payload(payload_b, codec)
        amp = self._amplitude
        frame_a = codec.crc.append(wa)
        frame_b = codec.crc.append(wb)

        # Phase 1: a transmits; relay and b listen.
        out1 = self.medium.run_phase(
            {"a": amp * codec.encode_frame_bits(frame_a)}, rng
        )
        a_at_r = codec.decode(out1.signal_at("r"), self._gain("a", "r"),
                              self._noise_power, amplitude=amp)
        a_at_b_direct = codec.decode(out1.signal_at("b"), self._gain("a", "b"),
                                     self._noise_power, amplitude=amp)

        # Phase 2: b transmits; relay and a listen.
        out2 = self.medium.run_phase(
            {"b": amp * codec.encode_frame_bits(frame_b)}, rng
        )
        b_at_r = codec.decode(out2.signal_at("r"), self._gain("b", "r"),
                              self._noise_power, amplitude=amp)
        b_at_a_direct = codec.decode(out2.signal_at("a"), self._gain("a", "b"),
                                     self._noise_power, amplitude=amp)

        # Phase 3: relay broadcasts the XOR of its two frame estimates.
        relay_frame = xor_forward(a_at_r.frame_bits, b_at_r.frame_bits)
        out3 = self.medium.run_phase(
            {"r": amp * codec.encode_frame_bits(relay_frame)}, rng
        )
        relay_at_a = codec.decode(out3.signal_at("a"), self._gain("a", "r"),
                                  self._noise_power, amplitude=amp)
        relay_at_b = codec.decode(out3.signal_at("b"), self._gain("b", "r"),
                                  self._noise_power, amplitude=amp)

        est_b_at_a = arbitrate_paths(codec, relay_frame=relay_at_a,
                                     own_frame_bits=frame_a,
                                     direct_frame=b_at_a_direct)
        est_a_at_b = arbitrate_paths(codec, relay_frame=relay_at_b,
                                     own_frame_bits=frame_b,
                                     direct_frame=a_at_b_direct)
        success_ab, err_ab = self._direction_result(wa, est_a_at_b)
        success_ba, err_ba = self._direction_result(wb, est_b_at_a)
        return RoundResult(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=codec.payload_bits,
            n_symbols=3 * codec.n_symbols,
            relay_ok=a_at_r.crc_ok and b_at_r.crc_ok,
        )

    def _half_codec(self) -> LinkCodec:
        if self.codec.payload_bits % 2 != 0:
            raise InvalidParameterError(
                "HBC needs an even payload size to split across phases, "
                f"got {self.codec.payload_bits}"
            )
        return LinkCodec(
            payload_bits=self.codec.payload_bits // 2,
            code=self.codec.code,
            crc=self.codec.crc,
            modulation=self.codec.modulation,
            interleaver_seed=self.codec.interleaver_seed,
        )

    def run_hbc_round(self, payload_a, payload_b,
                      rng: np.random.Generator) -> RoundResult:
        """HBC: dedicated halves (overheard), MAC halves, double broadcast."""
        full = self.codec
        wa = self._check_payload(payload_a, full)
        wb = self._check_payload(payload_b, full)
        half = self._half_codec()
        amp = self._amplitude
        k = half.payload_bits
        wa1, wa2 = wa[:k], wa[k:]
        wb1, wb2 = wb[:k], wb[k:]
        frame_a1, frame_a2 = half.crc.append(wa1), half.crc.append(wa2)
        frame_b1, frame_b2 = half.crc.append(wb1), half.crc.append(wb2)

        # Phase 1: a sends its dedicated half; relay and b listen.
        out1 = self.medium.run_phase(
            {"a": amp * half.encode_frame_bits(frame_a1)}, rng
        )
        a1_at_r = half.decode(out1.signal_at("r"), self._gain("a", "r"),
                              self._noise_power, amplitude=amp)
        a1_at_b_direct = half.decode(out1.signal_at("b"), self._gain("a", "b"),
                                     self._noise_power, amplitude=amp)

        # Phase 2: b sends its dedicated half; relay and a listen.
        out2 = self.medium.run_phase(
            {"b": amp * half.encode_frame_bits(frame_b1)}, rng
        )
        b1_at_r = half.decode(out2.signal_at("r"), self._gain("b", "r"),
                              self._noise_power, amplitude=amp)
        b1_at_a_direct = half.decode(out2.signal_at("a"), self._gain("a", "b"),
                                     self._noise_power, amplitude=amp)

        # Phase 3: MAC halves; only the relay listens.
        out3 = self.medium.run_phase(
            {"a": amp * half.encode_frame_bits(frame_a2),
             "b": amp * half.encode_frame_bits(frame_b2)},
            rng,
        )
        mac = sic_decode_mac(
            half, out3.signal_at("r"),
            gain_a=self._gain("a", "r"), gain_b=self._gain("b", "r"),
            noise_power=self._noise_power, amplitude=amp,
        )

        # Phase 4: relay broadcasts both XOR-combined halves back to back.
        relay_frame_1 = xor_forward(a1_at_r.frame_bits, b1_at_r.frame_bits)
        relay_frame_2 = xor_forward(mac.frame_a.frame_bits, mac.frame_b.frame_bits)
        symbols_4 = np.concatenate([
            half.encode_frame_bits(relay_frame_1),
            half.encode_frame_bits(relay_frame_2),
        ])
        out4 = self.medium.run_phase({"r": amp * symbols_4}, rng)
        n_half = half.n_symbols

        def _decode_broadcast(node: str):
            y = out4.signal_at(node)
            gain = self._gain(node, "r")
            first = half.decode(y[:n_half], gain, self._noise_power, amplitude=amp)
            second = half.decode(y[n_half:], gain, self._noise_power, amplitude=amp)
            return first, second

        relay1_at_a, relay2_at_a = _decode_broadcast("a")
        relay1_at_b, relay2_at_b = _decode_broadcast("b")

        est_b1_at_a = arbitrate_paths(half, relay_frame=relay1_at_a,
                                      own_frame_bits=frame_a1,
                                      direct_frame=b1_at_a_direct)
        est_b2_at_a = arbitrate_paths(half, relay_frame=relay2_at_a,
                                      own_frame_bits=frame_a2, direct_frame=None)
        est_a1_at_b = arbitrate_paths(half, relay_frame=relay1_at_b,
                                      own_frame_bits=frame_b1,
                                      direct_frame=a1_at_b_direct)
        est_a2_at_b = arbitrate_paths(half, relay_frame=relay2_at_b,
                                      own_frame_bits=frame_b2, direct_frame=None)

        err_ab = (hamming_distance(wa1, est_a1_at_b.payload)
                  + hamming_distance(wa2, est_a2_at_b.payload))
        err_ba = (hamming_distance(wb1, est_b1_at_a.payload)
                  + hamming_distance(wb2, est_b2_at_a.payload))
        success_ab = est_a1_at_b.crc_ok and est_a2_at_b.crc_ok and err_ab == 0
        success_ba = est_b1_at_a.crc_ok and est_b2_at_a.crc_ok and err_ba == 0
        relay_ok = (a1_at_r.crc_ok and b1_at_r.crc_ok and mac.both_ok)
        return RoundResult(
            success_a_to_b=success_ab,
            success_b_to_a=success_ba,
            bit_errors_a_to_b=err_ab,
            bit_errors_b_to_a=err_ba,
            payload_bits=full.payload_bits,
            n_symbols=5 * n_half,
            relay_ok=relay_ok,
        )

    def run_round(self, protocol, payload_a, payload_b,
                  rng: np.random.Generator) -> RoundResult:
        """Dispatch one round of the named protocol."""
        from ..core.protocols import Protocol

        runners = {
            Protocol.DT: self.run_dt_round,
            Protocol.NAIVE4: self.run_naive4_round,
            Protocol.MABC: self.run_mabc_round,
            Protocol.TDBC: self.run_tdbc_round,
            Protocol.HBC: self.run_hbc_round,
        }
        if protocol not in runners:
            raise InvalidParameterError(f"unknown protocol {protocol!r}")
        return runners[protocol](payload_a, payload_b, rng)
