"""Error-rate and throughput accounting for simulation campaigns."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError

__all__ = ["LinkCounter", "wilson_interval", "ThroughputReport"]


def wilson_interval(successes: int, trials: int, *,
                    z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal approximation because simulated frame error
    counts are often near 0 or 1, where Wald intervals collapse.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise InvalidParameterError(
            f"invalid counts: {successes} successes of {trials} trials"
        )
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class LinkCounter:
    """Accumulates frame and bit error statistics for one direction."""

    frames: int = 0
    frame_errors: int = 0
    bits: int = 0
    bit_errors: int = 0

    def record(self, *, success: bool, n_bits: int, n_bit_errors: int) -> None:
        """Account one frame."""
        if n_bits < 0 or n_bit_errors < 0 or n_bit_errors > n_bits:
            raise InvalidParameterError(
                f"invalid bit counts: {n_bit_errors} errors of {n_bits} bits"
            )
        self.frames += 1
        self.frame_errors += 0 if success else 1
        self.bits += n_bits
        self.bit_errors += n_bit_errors

    @property
    def fer(self) -> float:
        """Frame error rate."""
        return self.frame_errors / self.frames if self.frames else 0.0

    @property
    def ber(self) -> float:
        """Bit error rate."""
        return self.bit_errors / self.bits if self.bits else 0.0

    def fer_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson interval for the frame error rate."""
        return wilson_interval(self.frame_errors, self.frames, z=z)


@dataclass
class ThroughputReport:
    """Delivered-information accounting across a campaign.

    Throughput is *goodput*: only payload bits of frames that were decoded
    correctly count, divided by the total channel symbols spent — directly
    comparable (in bits/symbol) to the analytic sum-rate bounds.
    """

    delivered_bits: int = 0
    total_symbols: int = 0
    per_direction: dict = field(default_factory=dict)

    def record(self, direction: str, *, delivered_bits: int) -> None:
        """Add delivered payload bits for one direction."""
        if delivered_bits < 0:
            raise InvalidParameterError(f"negative bits: {delivered_bits}")
        self.delivered_bits += delivered_bits
        self.per_direction[direction] = (
            self.per_direction.get(direction, 0) + delivered_bits
        )

    def add_symbols(self, n_symbols: int) -> None:
        """Account channel uses."""
        if n_symbols < 0:
            raise InvalidParameterError(f"negative symbol count: {n_symbols}")
        self.total_symbols += n_symbols

    @property
    def sum_throughput(self) -> float:
        """Total goodput in bits per channel symbol."""
        return self.delivered_bits / self.total_symbols if self.total_symbols else 0.0

    def direction_throughput(self, direction: str) -> float:
        """Goodput of one direction in bits per channel symbol."""
        if not self.total_symbols:
            return 0.0
        return self.per_direction.get(direction, 0) / self.total_symbols
