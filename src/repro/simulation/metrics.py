"""Error-rate and throughput accounting for simulation campaigns.

The counters accept one frame at a time (:meth:`LinkCounter.record`) or a
whole batch of rounds in one call (:meth:`LinkCounter.record_rows`); the
batched recorders reduce with exact integer sums, so a batch is
indistinguishable from the equivalent sequence of scalar records — the
property that lets the batched simulation kernel produce reports equal to
the per-round reference field for field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "LinkCounter",
    "WeightedFerCounter",
    "wilson_interval",
    "ThroughputReport",
]


def wilson_interval(
    successes: int, trials: int, *, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal approximation because simulated frame error
    counts are often near 0 or 1, where Wald intervals collapse.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise InvalidParameterError(
            f"invalid counts: {successes} successes of {trials} trials"
        )
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class LinkCounter:
    """Accumulates frame and bit error statistics for one direction."""

    frames: int = 0
    frame_errors: int = 0
    bits: int = 0
    bit_errors: int = 0

    def record(self, *, success: bool, n_bits: int, n_bit_errors: int) -> None:
        """Account one frame."""
        if n_bits < 0 or n_bit_errors < 0 or n_bit_errors > n_bits:
            raise InvalidParameterError(
                f"invalid bit counts: {n_bit_errors} errors of {n_bits} bits"
            )
        self.frames += 1
        self.frame_errors += 0 if success else 1
        self.bits += n_bits
        self.bit_errors += n_bit_errors

    def record_rows(self, *, success, n_bits: int, n_bit_errors) -> None:
        """Account a batch of frames: one success flag and error count each."""
        success = np.asarray(success, dtype=bool)
        errors = np.asarray(n_bit_errors)
        if success.shape != errors.shape or success.ndim != 1:
            raise InvalidParameterError(
                f"mismatched batch shapes: {success.shape} vs {errors.shape}"
            )
        if n_bits < 0 or (errors < 0).any() or (errors > n_bits).any():
            raise InvalidParameterError(
                f"invalid bit counts in batch of {n_bits}-bit frames"
            )
        self.frames += int(success.size)
        self.frame_errors += int((~success).sum())
        self.bits += int(success.size) * int(n_bits)
        self.bit_errors += int(errors.sum())

    @property
    def fer(self) -> float:
        """Frame error rate."""
        return self.frame_errors / self.frames if self.frames else 0.0

    @property
    def ber(self) -> float:
        """Bit error rate."""
        return self.bit_errors / self.bits if self.bits else 0.0

    def fer_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson interval for the frame error rate."""
        return wilson_interval(self.frame_errors, self.frames, z=z)


@dataclass
class WeightedFerCounter:
    """Likelihood-ratio-weighted frame-error accounting of one cell.

    The importance-sampling companion of :class:`LinkCounter`: every
    protocol round contributes its two direction outcomes as Bernoulli
    trials, each weighted by that direction's exact likelihood ratio
    ``w`` (see :mod:`repro.simulation.sampling` — for the factorizing
    protocols the two directions carry different weights). Since
    ``E_q[w * err] = FER``, the unnormalized estimator
    :attr:`weighted_fer` is unbiased at any sample size; :attr:`ess`
    exposes the effective sample size that guards weight degeneracy.

    Attributes
    ----------
    n_rounds:
        Protocol rounds recorded (each pools two direction trials).
    sum_weights / sum_sq_weights:
        Per-trial weight sums ``sum w`` and ``sum w^2`` over the pooled
        direction trials.
    weighted_errors / weighted_sq_errors:
        ``sum w * err`` and ``sum w^2 * err`` over the pooled trials
        (``err`` is the trial's 0/1 frame-error indicator).
    max_weight:
        Largest trial weight seen — the degeneracy diagnostic.
    """

    n_rounds: int = 0
    sum_weights: float = 0.0
    sum_sq_weights: float = 0.0
    weighted_errors: float = 0.0
    weighted_sq_errors: float = 0.0
    max_weight: float = 0.0

    def record_rows(
        self, *, log_weights_a, log_weights_b, success_a, success_b
    ) -> None:
        """Account a batch of rounds: per-direction log weights and outcomes."""
        log_weights_a = np.asarray(log_weights_a, dtype=float)
        log_weights_b = np.asarray(log_weights_b, dtype=float)
        success_a = np.asarray(success_a, dtype=bool)
        success_b = np.asarray(success_b, dtype=bool)
        shapes = {
            log_weights_a.shape,
            log_weights_b.shape,
            success_a.shape,
            success_b.shape,
        }
        if len(shapes) != 1 or log_weights_a.ndim != 1:
            raise InvalidParameterError(
                f"mismatched batch shapes: {log_weights_a.shape}, "
                f"{log_weights_b.shape}, {success_a.shape}, {success_b.shape}"
            )
        # A degenerate proposal can push exp() to inf; masked sums keep
        # the accumulators NaN-free (inf * 0 never forms) so the ESS
        # guard sees the degeneracy instead of a poisoned estimate.
        with np.errstate(over="ignore"):
            weights_a = np.exp(log_weights_a)
            weights_b = np.exp(log_weights_b)
        err_a = ~success_a
        err_b = ~success_b
        self.n_rounds += int(log_weights_a.size)
        self.sum_weights += float(weights_a.sum() + weights_b.sum())
        self.sum_sq_weights += float(
            (weights_a * weights_a).sum() + (weights_b * weights_b).sum()
        )
        self.weighted_errors += float(
            weights_a[err_a].sum() + weights_b[err_b].sum()
        )
        self.weighted_sq_errors += float(
            (weights_a[err_a] ** 2).sum() + (weights_b[err_b] ** 2).sum()
        )
        if weights_a.size:
            self.max_weight = max(
                self.max_weight, float(weights_a.max()), float(weights_b.max())
            )

    @property
    def frames(self) -> int:
        """Pooled Bernoulli trials: two directions per round."""
        return 2 * self.n_rounds

    @property
    def weighted_fer(self) -> float:
        """Unbiased weighted FER: ``sum(w * err) / trials``."""
        return self.weighted_errors / self.frames if self.frames else 0.0

    @property
    def mean_weight(self) -> float:
        """Average trial weight (concentrates near 1 for sane proposals)."""
        return self.sum_weights / self.frames if self.frames else 0.0

    @property
    def ess(self) -> float:
        """Effective sample size ``(sum w)^2 / sum w^2`` over the trials."""
        if self.sum_sq_weights <= 0 or not math.isfinite(self.sum_sq_weights):
            return 0.0
        return self.sum_weights * self.sum_weights / self.sum_sq_weights

    @property
    def ess_fraction(self) -> float:
        """ESS as a fraction of the pooled trial count."""
        return self.ess / self.frames if self.frames else 0.0

    @property
    def rel_std_error(self) -> float:
        """Relative standard error of :attr:`weighted_fer`.

        Sample-variance form over the ``2 * n_rounds`` weighted trials;
        ``inf`` while no weighted error mass has been observed.
        """
        if self.weighted_errors <= 0 or self.frames < 2:
            return math.inf
        n = self.frames
        variance = (self.weighted_sq_errors - self.weighted_errors**2 / n) / (n - 1)
        if variance <= 0:
            return 0.0
        return math.sqrt(variance / n) / self.weighted_fer


@dataclass
class ThroughputReport:
    """Delivered-information accounting across a campaign.

    Throughput is *goodput*: only payload bits of frames that were decoded
    correctly count, divided by the total channel symbols spent — directly
    comparable (in bits/symbol) to the analytic sum-rate bounds.
    """

    delivered_bits: int = 0
    total_symbols: int = 0
    per_direction: dict = field(default_factory=dict)

    def record(self, direction: str, *, delivered_bits: int) -> None:
        """Add delivered payload bits for one direction."""
        if delivered_bits < 0:
            raise InvalidParameterError(f"negative bits: {delivered_bits}")
        self.delivered_bits += delivered_bits
        self.per_direction[direction] = (
            self.per_direction.get(direction, 0) + delivered_bits
        )

    def record_rows(
        self, direction: str, *, delivered_bits_per_frame: int, successes
    ) -> None:
        """Add the delivered bits of a batch of rounds in one call.

        Only rounds whose frame was recovered deliver payload; a batch
        with no successes records nothing — exactly like the per-round
        conditional ``record`` calls it replaces, so reports built from
        batches compare equal to per-round reports.
        """
        count = int(np.asarray(successes, dtype=bool).sum())
        if count:
            self.record(direction, delivered_bits=count * int(delivered_bits_per_frame))

    def add_symbols(self, n_symbols: int) -> None:
        """Account channel uses."""
        if n_symbols < 0:
            raise InvalidParameterError(f"negative symbol count: {n_symbols}")
        self.total_symbols += n_symbols

    @property
    def sum_throughput(self) -> float:
        """Total goodput in bits per channel symbol."""
        return self.delivered_bits / self.total_symbols if self.total_symbols else 0.0

    def direction_throughput(self, direction: str) -> float:
        """Goodput of one direction in bits per channel symbol."""
        if not self.total_symbols:
            return 0.0
        return self.per_direction.get(direction, 0) / self.total_symbols
