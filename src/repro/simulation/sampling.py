"""Importance sampling for rare-event FER: twisted-noise proposals.

Deep-fade cells are the one workload the fused link kernel cannot
afford with vanilla Monte Carlo: a 1e-6-FER cell needs millions of
rounds before its estimate resolves, because the adaptive controller
(:mod:`repro.simulation.montecarlo`) can only stop once enough frame
errors have been *observed*. This module makes errors plentiful without
biasing the estimate — the classic twisted-proposal importance-sampling
construction of the deep-fade/outage-limited FER literature (cf.
arXiv:0903.1502).

The proposal
------------
Every listener noise component is nominally ``N(0, s^2)`` with
``s = sqrt(noise_power / 2)`` per real component. The proposal draws the
**same** standard block ``n`` the vanilla path draws — one contiguous
``stream.normal(0.0, s, ...)`` call per cell per phase, preserving the
documented RNG spawn policy bit for bit — and uses the affinely twisted
value ``x = sigma_c * n - mu_c * s * t`` as the noise instead, i.e. a
mean-shifted and/or variance-scaled complex Gaussian per phase. Here
``t`` is the sign of the listener's *noiseless* received aggregate: the
shift pushes every symbol toward its decision boundary (the simulator
knows what was transmitted, so the exponential tilt can point exactly
along the error direction — the classic mean-translation proposal of
rare-event FER estimation), while a payload-blind constant shift would
fight the random symbol signs and cancel itself on average. The twist
touches only the **in-phase** quadrature: the system modulates BPSK
over real channel gains, so the decision statistic ``Re(conj(g) * y)``
never sees quadrature noise — twisting it would add pure
likelihood-ratio variance for zero extra errors, and keeping the
proposal dimension small is exactly what keeps the weights
non-degenerate. Because the proposal is the affine map of the standard
draw, ``(x - m)^2 / sigma_c^2 = n^2`` identically and the exact
per-component log likelihood ratio of target over proposal is

    log w = log(sigma_c) + (n^2 - x^2) / (2 s^2),

whatever the (known) shift direction — summed over the twisted
components of a phase. With ``sigma_c = 1`` and ``mu_c = 0`` the twist
is the identity: the noise values are the vanilla draws and every
weight is exactly 1 — which is why cells *without* a sampling spec are
bitwise-identical to the pre-sampling kernel (the twist hook is simply
never installed).

Per-direction weights
---------------------
A fused row is one protocol round; its two direction outcomes are
reweighted separately. For the relay protocols every phase's noise can
influence both directions through the relay's decode-and-XOR, so both
directions carry the full row log-LR. Direct transmission and the naive
four-phase baseline factorize — phase 0 (phases 0-1) only ever touch
the ``a -> b`` outcome and phase 1 (phases 2-3) only ``b -> a`` — and
an independent phase's weight factor has unit mean, so dropping it from
the other direction's weight preserves unbiasedness while strictly
shrinking variance (conditional Monte Carlo). ``PHASE_DIRECTION_MASKS``
records which phases feed which direction;
:func:`direction_log_weights` applies it.

Per-cell parameterization
-------------------------
:meth:`ImportanceSamplingSpec.cell_twist` derives one ``(sigma_c,
mu_c)`` pair per fused grid cell from the cell's gain/power columns:
with ``target_snr_db`` set, each cell's noise is inflated just enough to
pull its strongest link down to the target SNR (never deflated, never
beyond ``noise_scale``), so clean high-SNR cells — the ones whose errors
are rarest — get the strongest twisting while genuine deep fades run
nearly vanilla.

The estimator
-------------
Since ``E_q[w * err] = E_p[err] = FER``, the weighted estimator
``sum(w_i err_i) / N`` over the pooled direction trials is unbiased at
any sample size. Weight degeneracy is guarded by the effective sample
size ``ESS = (sum w)^2 / sum w^2``: the adaptive controller refuses to
resolve a cell whose ESS fraction falls below
:attr:`ImportanceSamplingSpec.min_ess_fraction`, so a degenerate
proposal falls back to running the full ``max_rounds`` budget (and is
reported unresolved) instead of stopping early on a garbage estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError

__all__ = [
    "ImportanceSamplingSpec",
    "NoiseTwist",
    "PHASE_DIRECTION_MASKS",
    "direction_log_weights",
    "DEFAULT_MIN_ESS_FRACTION",
]

#: Default effective-sample-size guard: a cell may not resolve while its
#: ESS is below this fraction of its pooled frame count. Well-tuned
#: rare-event proposals legitimately sit in the few-percent range (the
#: weighted standard error already prices the weight spread in); truly
#: degenerate proposals collapse to ``ESS ~ 1/N``, far below this line.
DEFAULT_MIN_ESS_FRACTION = 0.02

#: Which protocol phases can influence which direction outcome. Only the
#: factorizing protocols appear here; every other protocol couples all
#: phases into both directions through the relay's decode-and-forward.
PHASE_DIRECTION_MASKS = {
    Protocol.DT: ((0,), (1,)),
    Protocol.NAIVE4: ((0, 1), (2, 3)),
}


def direction_log_weights(protocol: Protocol, phase_log_lrs) -> tuple:
    """Combine per-phase row log-LRs into per-direction log weights.

    ``phase_log_lrs`` is the medium's phase-ordered list of ``(n_rows,)``
    log likelihood ratios. Returns ``(log_w_ab, log_w_ba)``: for the
    relay-coupled protocols both are the full sum; for the factorizing
    protocols each direction keeps only its own phases' factors (the
    dropped factors are independent of the direction's outcome and have
    unit-mean weight, so the estimator stays unbiased with strictly
    smaller variance).
    """
    arrays = [np.asarray(lr, dtype=float) for lr in phase_log_lrs]
    if not arrays:
        raise InvalidParameterError("no phase log likelihood ratios recorded")
    masks = PHASE_DIRECTION_MASKS.get(protocol)
    if masks is None:
        total = arrays[0].copy()
        for lr in arrays[1:]:
            total += lr
        return total, total
    mask_ab, mask_ba = masks
    if max(mask_ab + mask_ba) >= len(arrays):
        raise InvalidParameterError(
            f"{protocol} direction masks need "
            f"{max(mask_ab + mask_ba) + 1} phases, got {len(arrays)}"
        )
    log_ab = sum(arrays[i] for i in mask_ab)
    log_ba = sum(arrays[i] for i in mask_ba)
    return log_ab, log_ba


@dataclass(frozen=True)
class NoiseTwist:
    """Concrete per-cell proposal parameters of one fused batch.

    Attributes
    ----------
    scales:
        Per-cell noise standard-deviation multipliers ``sigma_c``,
        shape ``(n_cells,)``; ``1`` is the identity.
    shifts:
        Per-cell mean shifts ``mu_c`` in units of the nominal
        per-component standard deviation, applied against the noiseless
        received sign of each symbol; ``0`` is the identity.
    """

    scales: np.ndarray
    shifts: np.ndarray

    def __post_init__(self) -> None:
        scales = np.atleast_1d(np.asarray(self.scales, dtype=float))
        shifts = np.atleast_1d(np.asarray(self.shifts, dtype=float))
        if scales.shape != shifts.shape or scales.ndim != 1:
            raise InvalidParameterError(
                f"twist scales/shifts must be matching vectors, got "
                f"{scales.shape} and {shifts.shape}"
            )
        if np.any(scales <= 0):
            raise InvalidParameterError("twist scales must be positive")
        object.__setattr__(self, "scales", scales)
        object.__setattr__(self, "shifts", shifts)

    @property
    def n_cells(self) -> int:
        """Number of fused cells the twist covers."""
        return int(self.scales.shape[0])

    @property
    def is_identity(self) -> bool:
        """Whether the twist leaves every draw (and weight) untouched."""
        return bool(np.all(self.scales == 1.0) and np.all(self.shifts == 0.0))

    @property
    def needs_signs(self) -> bool:
        """Whether the twist needs the noiseless received signs (any shift)."""
        return bool(np.any(self.shifts != 0.0))

    def apply(self, draws: np.ndarray, std: float, signs=None):
        """Twist one phase's standard noise block, exactly reweighted.

        Only the in-phase quadrature (component index 0) is twisted —
        see the module docstring. ``draws`` is modified in place.

        Parameters
        ----------
        draws:
            The vanilla ``(n_cells, rounds, n_listeners, 2, n_symbols)``
            noise block, drawn from the per-cell streams with
            per-component standard deviation ``std``.
        std:
            The nominal per-component standard deviation ``s``.
        signs:
            Signs of the noiseless in-phase received aggregate, shape
            ``(n_cells, rounds, n_listeners, n_symbols)`` — the shift
            direction. Required when :attr:`needs_signs`; ignored
            otherwise.

        Returns
        -------
        (twisted, log_lr):
            ``twisted`` is ``draws`` with the in-phase components
            replaced by ``sigma_c * n - mu_c * s * t``; ``log_lr`` is
            the exact per-row log likelihood ratio of target over
            proposal, shape ``(n_cells, rounds)``, summed over this
            phase's twisted components.
        """
        if draws.ndim != 5 or draws.shape[3] != 2:
            raise InvalidParameterError(
                f"expected a (cells, rounds, listeners, 2, symbols) noise "
                f"block, got shape {draws.shape}"
            )
        if draws.shape[0] != self.n_cells:
            raise InvalidParameterError(
                f"twist covers {self.n_cells} cells, draws have {draws.shape[0]}"
            )
        sigma = self.scales[:, None, None, None]
        inphase = draws[:, :, :, 0, :]
        twisted = sigma * inphase
        if self.needs_signs:
            expected = inphase.shape
            if signs is None or np.shape(signs) != expected:
                raise InvalidParameterError(
                    f"mean-shifted twist needs received signs of shape "
                    f"{expected}, got "
                    f"{None if signs is None else np.shape(signs)}"
                )
            mu = (self.shifts * std)[:, None, None, None]
            twisted = twisted - mu * signs
        n_components = int(draws.shape[2] * draws.shape[4])
        log_lr = (inphase * inphase - twisted * twisted).sum(axis=(2, 3))
        log_lr /= 2.0 * std * std
        log_lr += n_components * np.log(self.scales)[:, None]
        draws[:, :, :, 0, :] = twisted
        return draws, log_lr


@dataclass(frozen=True)
class ImportanceSamplingSpec:
    """Declarative twisted-noise proposal of an operational campaign.

    Lives on :class:`repro.campaign.spec.LinkSimSpec` and is serialized
    only when set, so every pre-existing spec hash is untouched. Only
    the ``"fer"`` metric supports reweighting (goodput and the traffic
    metrics have no weighted estimator), which
    :class:`~repro.campaign.spec.LinkSimSpec` enforces.

    Attributes
    ----------
    noise_scale:
        Proposal noise standard-deviation multiplier ``sigma`` (``> 0``;
        ``> 1`` inflates noise so frame errors become plentiful). With
        ``target_snr_db`` set it is instead the *cap* on the per-cell
        multipliers and must be ``>= 1``. Effective twists are mild —
        the likelihood-ratio variance grows with the twisted dimension,
        so ``sigma`` in the ``1.05``-``1.2`` range is where deep-fade
        gains live; far larger values degenerate the weights and trip
        the ESS guard.
    noise_shift:
        Per-component mean shift ``mu`` in units of the nominal standard
        deviation, applied *against* the sign of the noiseless received
        aggregate so every symbol is pushed toward its decision
        boundary (``0`` by default). This transmit-aware tilt is the
        sharp tool for truly rare FER — it concentrates the proposal on
        the error direction instead of inflating all noise — and
        composes with ``noise_scale``; like the scale it must stay mild
        (``0.1``-``0.3``) or the likelihood ratios degenerate.
    target_snr_db:
        Optional per-cell parameterization: each cell's multiplier is
        chosen so the cell's strongest link SNR falls to this target
        under the proposal — ``sigma_c = clip(sqrt(snr_c / target), 1,
        noise_scale)`` — deriving the twist from the cell's own
        gain/power columns.
    min_ess_fraction:
        Effective-sample-size guard in ``[0, 1)``: the adaptive
        controller refuses to resolve a cell whose
        ``ESS / pooled frames`` falls below this fraction, so degenerate
        proposals fall back to the full budget instead of resolving on a
        weight-dominated estimate.
    """

    noise_scale: float = 1.1
    noise_shift: float = 0.0
    target_snr_db: float | None = None
    min_ess_fraction: float = DEFAULT_MIN_ESS_FRACTION

    def __post_init__(self) -> None:
        if not self.noise_scale > 0:
            raise InvalidParameterError(
                f"noise_scale must be positive, got {self.noise_scale}"
            )
        if self.target_snr_db is not None and self.noise_scale < 1.0:
            raise InvalidParameterError(
                "with target_snr_db set, noise_scale caps the per-cell "
                f"multipliers and must be >= 1, got {self.noise_scale}"
            )
        if not 0.0 <= self.min_ess_fraction < 1.0:
            raise InvalidParameterError(
                f"min_ess_fraction must lie in [0, 1), got {self.min_ess_fraction}"
            )

    def cell_twist(
        self, gab, gar, gbr, power, *, noise_power: float = 1.0
    ) -> NoiseTwist:
        """Per-cell proposal parameters from the batch's gain/power columns.

        Without ``target_snr_db`` every cell gets the shared
        ``(noise_scale, noise_shift)``. With it, cell ``c``'s multiplier
        is ``clip(sqrt(snr_c / target), 1, noise_scale)`` where ``snr_c``
        is the cell's strongest-link SNR ``power_c * max(G) /
        noise_power`` — clean cells are twisted hardest, deep fades run
        nearly vanilla.
        """
        gab = np.atleast_1d(np.asarray(gab, dtype=float))
        gar = np.atleast_1d(np.asarray(gar, dtype=float))
        gbr = np.atleast_1d(np.asarray(gbr, dtype=float))
        power = np.broadcast_to(np.asarray(power, dtype=float), gab.shape)
        if self.target_snr_db is None:
            scales = np.full(gab.shape, float(self.noise_scale))
        else:
            snr = power * np.maximum(np.maximum(gab, gar), gbr) / float(noise_power)
            target = 10.0 ** (float(self.target_snr_db) / 10.0)
            scales = np.clip(np.sqrt(snr / target), 1.0, float(self.noise_scale))
        shifts = np.full(gab.shape, float(self.noise_shift))
        return NoiseTwist(scales=scales, shifts=shifts)

    def to_dict(self) -> dict:
        """Plain-data form for hashing and serialization.

        Optional knobs are emitted only when they deviate from the
        defaults, mirroring the serialize-only-when-set discipline of the
        spec layer.
        """
        data = {"noise_scale": float(self.noise_scale)}
        if self.noise_shift != 0.0:
            data["noise_shift"] = float(self.noise_shift)
        if self.target_snr_db is not None:
            data["target_snr_db"] = float(self.target_snr_db)
        if self.min_ess_fraction != DEFAULT_MIN_ESS_FRACTION:
            data["min_ess_fraction"] = float(self.min_ess_fraction)
        return data
