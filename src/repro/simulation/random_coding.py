"""Random-coding achievability for MABC (Theorem 2), made runnable.

The paper proves Theorem 2 with random codebooks: terminals encode with
independently drawn codewords, the relay decodes the *pair* ``(w_a, w_b)``
from the multiple-access phase, forwards ``w_r = w_a ⊕ w_b`` from a third
codebook, and each terminal resolves its partner's message using its own
message as side information. This module executes that construction on the
binary relay channel of :mod:`repro.channels.binary_relay`:

* phase 1 — the noisy XOR MAC ``Y_r = C_a(w_a) ⊕ C_b(w_b) ⊕ Z``;
* phase 2 — BSC broadcast of ``C_r(w_a ⊕ w_b)`` to both terminals;
* decoding — maximum-likelihood (minimum Hamming distance; exactly ML for
  binary symmetric noise and uniform messages) by default, or the paper's
  weak-typicality decoder for demonstration at small block lengths.

The Monte-Carlo error rates exhibit exactly the Theorem-2 phase
transition: rate pairs inside the region decode reliably as the block
length grows, pairs outside it fail — see the tests and
``bench_ablation_random_coding.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channels.binary_relay import BinaryRelayChannel
from ..exceptions import InvalidParameterError
from ..information.functions import binary_entropy

__all__ = [
    "RandomBinaryCodebook",
    "MabcRandomCodingReport",
    "mabc_rate_pair_feasible",
    "simulate_mabc_random_coding",
]


@dataclass(frozen=True)
class RandomBinaryCodebook:
    """A random binary codebook: ``n_messages`` i.i.d. uniform codewords.

    This is the paper's random code generation step ("we generate random
    (n·Δ)-length sequences x(w) ... according to p(x)") with the uniform
    input distribution, which is capacity-achieving for every symmetric
    binary channel in the model.
    """

    codewords: np.ndarray

    def __init__(
        self, n_messages: int, block_length: int, rng: np.random.Generator
    ) -> None:
        if n_messages < 1:
            raise InvalidParameterError(f"need >= 1 message, got {n_messages}")
        if block_length < 1:
            raise InvalidParameterError(f"need >= 1 symbol, got {block_length}")
        words = rng.integers(0, 2, size=(n_messages, block_length), dtype=np.uint8)
        object.__setattr__(self, "codewords", words)

    @property
    def n_messages(self) -> int:
        """Codebook size."""
        return self.codewords.shape[0]

    @property
    def block_length(self) -> int:
        """Codeword length in channel uses."""
        return self.codewords.shape[1]

    def codeword(self, message: int) -> np.ndarray:
        """The codeword of one message index."""
        if not 0 <= message < self.n_messages:
            raise InvalidParameterError(
                f"message {message} outside {{0..{self.n_messages - 1}}}"
            )
        return self.codewords[message]

    def ml_decode(self, received: np.ndarray) -> int:
        """Minimum-Hamming-distance decoding (ML for BSC noise < 1/2)."""
        y = np.asarray(received, dtype=np.uint8)
        distances = np.bitwise_xor(self.codewords, y[None, :]).sum(axis=1)
        return int(np.argmin(distances))


@dataclass(frozen=True)
class MabcRandomCodingReport:
    """Monte-Carlo outcome of the Theorem-2 random-coding construction.

    Attributes
    ----------
    n_trials:
        Number of independent codebook/message/noise draws.
    relay_error_rate:
        Fraction of trials where the relay mis-decoded the message pair
        (the events ``E_a,r ∪ E_b,r`` of the paper's error analysis).
    error_rate_a_to_b / error_rate_b_to_a:
        End-to-end message error rates per direction (``E_{a,b}``,
        ``E_{b,a}``).
    """

    n_trials: int
    relay_error_rate: float
    error_rate_a_to_b: float
    error_rate_b_to_a: float

    @property
    def max_error_rate(self) -> float:
        """The worse of the two directions."""
        return max(self.error_rate_a_to_b, self.error_rate_b_to_a)


def mabc_rate_pair_feasible(
    channel: BinaryRelayChannel, n_mac: int, n_broadcast: int, bits_a: int, bits_b: int
) -> bool:
    """Whether ``(bits_a, bits_b)`` lies inside the Theorem-2 region.

    Evaluates the MABC constraints on the binary channel with the given
    split of channel uses (``Δ1 = n_mac / n``, ``Δ2 = n_broadcast / n``):
    the relay must decode both messages from the XOR MAC and each terminal
    must decode the (XOR-combined) broadcast.
    """
    if min(n_mac, n_broadcast, bits_a, bits_b) < 0:
        raise InvalidParameterError("block lengths and bit counts must be >= 0")
    mac_capacity = 1.0 - binary_entropy(channel.p_mac)
    cap_ra_relay = n_mac * mac_capacity       # I(Xa; Yr | Xb) per use
    cap_rb_relay = n_mac * mac_capacity
    cap_sum_relay = n_mac * mac_capacity      # XOR MAC: sum = individual
    cap_a_bc = n_broadcast * (1.0 - binary_entropy(channel.crossover("b", "r")))
    cap_b_bc = n_broadcast * (1.0 - binary_entropy(channel.crossover("a", "r")))
    return (bits_a <= cap_ra_relay and bits_a <= cap_a_bc
            and bits_b <= cap_rb_relay and bits_b <= cap_b_bc
            and bits_a + bits_b <= cap_sum_relay)


def _bsc_noise(rng: np.random.Generator, p: float, n: int) -> np.ndarray:
    return (rng.random(n) < p).astype(np.uint8)


def simulate_mabc_random_coding(
    channel: BinaryRelayChannel,
    *,
    n_mac: int,
    n_broadcast: int,
    bits_a: int,
    bits_b: int,
    n_trials: int,
    rng: np.random.Generator,
) -> MabcRandomCodingReport:
    """Run the Theorem-2 construction end to end ``n_trials`` times.

    Each trial draws fresh codebooks (the random-coding ensemble average),
    uniform messages and channel noise, then:

    1. terminals transmit their codewords simultaneously; the relay
       ML-decodes the pair from ``y_r = c_a ⊕ c_b ⊕ z``;
    2. the relay broadcasts ``C_r(ŵ_a ⊕ ŵ_b)`` (XOR of message indices,
       the group ``L`` of the paper with ``L = 2^max(bits)``);
    3. each terminal ML-decodes ``w_r`` and resolves the partner message
       by XOR-ing its own message back out.
    """
    if n_trials < 1:
        raise InvalidParameterError(f"need >= 1 trial, got {n_trials}")
    if bits_a < 1 or bits_b < 1:
        raise InvalidParameterError("each terminal needs at least one bit")
    size_a, size_b = 1 << bits_a, 1 << bits_b
    size_r = max(size_a, size_b)
    # The relay's exhaustive pair decoder materializes a
    # (size_a, size_b, n_mac) array; refuse configurations that would
    # silently exhaust memory (this is a proof-of-theorem tool, not a
    # production decoder).
    pair_bytes = size_a * size_b * n_mac
    if pair_bytes > (1 << 27):
        raise InvalidParameterError(
            f"pair decoding would allocate {pair_bytes / 2 ** 20:.0f} MiB "
            f"(bits_a={bits_a}, bits_b={bits_b}, n_mac={n_mac}); keep "
            "2^(bits_a+bits_b) * n_mac below 128 MiB"
        )

    relay_errors = errors_ab = errors_ba = 0
    p_mac = channel.p_mac
    p_ra = channel.crossover("a", "r")
    p_rb = channel.crossover("b", "r")

    for _ in range(n_trials):
        book_a = RandomBinaryCodebook(size_a, n_mac, rng)
        book_b = RandomBinaryCodebook(size_b, n_mac, rng)
        book_r = RandomBinaryCodebook(size_r, n_broadcast, rng)
        w_a = int(rng.integers(size_a))
        w_b = int(rng.integers(size_b))

        # Phase 1: XOR MAC into the relay; ML decoding over message pairs.
        y_r = (
            book_a.codeword(w_a) ^ book_b.codeword(w_b) ^ _bsc_noise(rng, p_mac, n_mac)
        )
        xor_words = np.bitwise_xor(
            book_a.codewords[:, None, :], book_b.codewords[None, :, :]
        )
        distances = np.bitwise_xor(xor_words, y_r[None, None, :]).sum(axis=2)
        flat = int(np.argmin(distances))
        w_a_hat, w_b_hat = divmod(flat, size_b)
        relay_ok = (w_a_hat == w_a and w_b_hat == w_b)
        if not relay_ok:
            relay_errors += 1

        # Phase 2: network-coded broadcast of the XOR of message indices.
        w_r = w_a_hat ^ w_b_hat
        c_r = book_r.codeword(w_r)
        y_a = c_r ^ _bsc_noise(rng, p_ra, n_broadcast)
        y_b = c_r ^ _bsc_noise(rng, p_rb, n_broadcast)

        # Terminals: decode w_r, strip own message by XOR (side info).
        w_b_at_a = book_r.ml_decode(y_a) ^ w_a
        w_a_at_b = book_r.ml_decode(y_b) ^ w_b
        if w_a_at_b != w_a:
            errors_ab += 1
        if w_b_at_a != w_b:
            errors_ba += 1

    return MabcRandomCodingReport(
        n_trials=n_trials,
        relay_error_rate=relay_errors / n_trials,
        error_rate_a_to_b=errors_ab / n_trials,
        error_rate_b_to_a=errors_ba / n_trials,
    )
