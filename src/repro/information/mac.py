"""Two-user multiple-access channel (MAC) rate regions.

Phase 1 of the MABC protocol and phase 3 of the HBC protocol are two-user
MAC phases into the relay: both bounds feature the individual constraints
``I(X_a; Y_r | X_b)``, ``I(X_b; Y_r | X_a)`` and the sum constraint
``I(X_a, X_b; Y_r)``. This module provides the corresponding pentagon
regions, both for the Gaussian case (closed form) and for discrete channels
(from a joint distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from .discrete import conditional_mutual_information, mutual_information
from .functions import gaussian_capacity

__all__ = ["MacPentagon", "gaussian_mac_pentagon", "discrete_mac_pentagon"]


@dataclass(frozen=True)
class MacPentagon:
    """The pentagon region ``{R1 <= c1, R2 <= c2, R1+R2 <= c12}``.

    Attributes
    ----------
    rate1_max:
        Individual bound on user 1's rate (``I(X1; Y | X2)``).
    rate2_max:
        Individual bound on user 2's rate (``I(X2; Y | X1)``).
    sum_max:
        Sum-rate bound (``I(X1, X2; Y)``).
    """

    rate1_max: float
    rate2_max: float
    sum_max: float

    def __post_init__(self) -> None:
        for name, value in (("rate1_max", self.rate1_max),
                            ("rate2_max", self.rate2_max),
                            ("sum_max", self.sum_max)):
            if value < 0:
                raise InvalidParameterError(f"{name} must be non-negative, got {value}")
        if self.sum_max > self.rate1_max + self.rate2_max + 1e-9:
            raise InvalidParameterError(
                "sum bound cannot exceed the sum of individual bounds: "
                f"{self.sum_max} > {self.rate1_max} + {self.rate2_max}"
            )

    def contains(self, rate1: float, rate2: float, *, atol: float = 1e-9) -> bool:
        """Whether the rate pair lies in the (closed) pentagon."""
        return (
            rate1 >= -atol
            and rate2 >= -atol
            and rate1 <= self.rate1_max + atol
            and rate2 <= self.rate2_max + atol
            and rate1 + rate2 <= self.sum_max + atol
        )

    def vertices(self) -> list[tuple[float, float]]:
        """Corner points of the pentagon, counter-clockwise from the origin.

        Degenerate cases (where the sum constraint is inactive or an
        individual constraint is inactive) collapse duplicate vertices.
        """
        c1, c2, c12 = self.rate1_max, self.rate2_max, self.sum_max
        pts: list[tuple[float, float]] = [(0.0, 0.0)]
        pts.append((min(c1, c12), 0.0))
        if c1 + c2 > c12:  # sum constraint active: two distinct corner points
            if c1 < c12:
                pts.append((c1, c12 - c1))
            if c2 < c12:
                pts.append((c12 - c2, c2))
        else:
            pts.append((c1, c2))
        pts.append((0.0, min(c2, c12)))
        # Deduplicate while preserving order.
        seen: set[tuple[float, float]] = set()
        unique = []
        for p in pts:
            key = (round(p[0], 12), round(p[1], 12))
            if key not in seen:
                seen.add(key)
                unique.append(p)
        return unique

    def max_sum_rate(self) -> float:
        """Largest achievable ``R1 + R2`` in the pentagon."""
        return min(self.sum_max, self.rate1_max + self.rate2_max)


def gaussian_mac_pentagon(snr1: float, snr2: float) -> MacPentagon:
    """Gaussian MAC pentagon for two users with receive SNRs ``snr1, snr2``.

    This is the region used by the paper for MABC phase 1 with
    ``snr1 = P*G_ar`` and ``snr2 = P*G_br``.
    """
    if snr1 < 0 or snr2 < 0:
        raise InvalidParameterError(f"SNRs must be non-negative, got {snr1}, {snr2}")
    return MacPentagon(
        rate1_max=gaussian_capacity(snr1),
        rate2_max=gaussian_capacity(snr2),
        sum_max=gaussian_capacity(snr1 + snr2),
    )


def discrete_mac_pentagon(p_joint: np.ndarray) -> MacPentagon:
    """MAC pentagon evaluated at a joint distribution ``p(x1, x2, y)``.

    The inputs must be independent for the region to be achievable without
    time sharing; this function evaluates the information quantities at
    whatever joint distribution it is given (axis 0 = X1, axis 1 = X2,
    axis 2 = Y).
    """
    arr = np.asarray(p_joint, dtype=float)
    if arr.ndim != 3:
        raise InvalidParameterError(
            f"joint distribution must have 3 axes (x1, x2, y), got {arr.ndim}"
        )
    r1 = conditional_mutual_information(arr, [0], [2], [1])
    r2 = conditional_mutual_information(arr, [1], [2], [0])
    rsum = mutual_information(arr, [0, 1], [2])
    # Numerical safety: MI computations can produce sum_max infinitesimally
    # above r1 + r2; clamp to keep the pentagon well-formed.
    rsum = min(rsum, r1 + r2)
    return MacPentagon(rate1_max=r1, rate2_max=r2, sum_max=rsum)
