"""Entropy and mutual information for discrete distributions.

The paper's Section II formulates the bidirectional relay channel over
*discrete memoryless channels*; Section IV then specializes to the Gaussian
case. This module provides the discrete machinery: entropies, mutual
informations and conditional mutual informations of finite-alphabet joint
distributions represented as numpy arrays whose axes are the random
variables.

Conventions
-----------
* A joint distribution over variables ``(X_0, ..., X_{k-1})`` is a
  ``k``-dimensional array ``p`` with ``p[x_0, ..., x_{k-1}] >= 0`` summing to
  one.
* All information quantities are in **bits**.
* ``0 log 0 = 0`` by continuity everywhere.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidDistributionError

__all__ = [
    "validate_distribution",
    "normalize_distribution",
    "entropy",
    "joint_entropy",
    "marginal",
    "conditional_entropy",
    "mutual_information",
    "conditional_mutual_information",
    "kl_divergence",
    "product_distribution",
    "joint_from_channel",
]

_ATOL = 1e-9


def validate_distribution(p: np.ndarray, *, atol: float = _ATOL) -> np.ndarray:
    """Validate that ``p`` is a probability array; return it as ``float64``.

    Raises
    ------
    InvalidDistributionError
        If any entry is negative (beyond ``-atol``) or the total mass is not
        1 within ``atol``.
    """
    arr = np.asarray(p, dtype=float)
    if arr.size == 0:
        raise InvalidDistributionError("distribution must be non-empty")
    if np.any(arr < -atol):
        raise InvalidDistributionError(f"negative probability entries in {arr!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, atol * arr.size):
        raise InvalidDistributionError(f"probabilities sum to {total}, expected 1")
    return np.clip(arr, 0.0, None)


def normalize_distribution(weights: np.ndarray) -> np.ndarray:
    """Normalize non-negative weights into a probability array."""
    arr = np.asarray(weights, dtype=float)
    if np.any(arr < 0):
        raise InvalidDistributionError(f"weights must be non-negative, got {arr!r}")
    total = float(arr.sum())
    if total <= 0:
        raise InvalidDistributionError("weights must have positive total mass")
    return arr / total


def _xlogx(p: np.ndarray) -> np.ndarray:
    """Elementwise ``p * log2(p)`` with the convention ``0 log 0 = 0``."""
    with np.errstate(divide="ignore", invalid="ignore"):
        out = p * np.log2(p)
    return np.where(p > 0, out, 0.0)


def entropy(p: np.ndarray) -> float:
    """Shannon entropy ``H(p)`` in bits of a (possibly multi-axis) distribution."""
    arr = validate_distribution(p)
    return float(-_xlogx(arr).sum())


def joint_entropy(p_joint: np.ndarray) -> float:
    """Alias of :func:`entropy` for readability with joint arrays."""
    return entropy(p_joint)


def marginal(p_joint: np.ndarray, keep_axes: Sequence[int]) -> np.ndarray:
    """Marginalize a joint distribution onto the given axes.

    Parameters
    ----------
    p_joint:
        Joint distribution array.
    keep_axes:
        Axes (variable indices) to keep, in the order they should appear in
        the result.
    """
    arr = validate_distribution(p_joint)
    keep = list(keep_axes)
    if len(set(keep)) != len(keep):
        raise InvalidDistributionError(f"duplicate axes in {keep!r}")
    for axis in keep:
        if not -arr.ndim <= axis < arr.ndim:
            raise InvalidDistributionError(
                f"axis {axis} out of range for ndim={arr.ndim}"
            )
    keep = [axis % arr.ndim for axis in keep]
    drop = tuple(axis for axis in range(arr.ndim) if axis not in keep)
    summed = arr.sum(axis=drop)
    # ``sum`` preserves the relative order of the kept axes; permute to match
    # the caller's requested order.
    remaining = [axis for axis in range(arr.ndim) if axis not in drop]
    perm = [remaining.index(axis) for axis in keep]
    return np.transpose(summed, perm)


def conditional_entropy(p_joint: np.ndarray, target_axes: Sequence[int],
                        given_axes: Sequence[int]) -> float:
    """Conditional entropy ``H(X_target | X_given)`` in bits.

    Computed as ``H(target, given) - H(given)``.
    """
    target = list(target_axes)
    given = list(given_axes)
    if set(target) & set(given):
        raise InvalidDistributionError(
            f"target {target!r} and conditioning {given!r} axes overlap"
        )
    h_joint = entropy(marginal(p_joint, target + given))
    if not given:
        return h_joint
    h_given = entropy(marginal(p_joint, given))
    return h_joint - h_given


def mutual_information(p_joint: np.ndarray, axes_x: Sequence[int],
                       axes_y: Sequence[int]) -> float:
    """Mutual information ``I(X; Y)`` in bits between two groups of axes."""
    h_x = entropy(marginal(p_joint, axes_x))
    h_x_given_y = conditional_entropy(p_joint, axes_x, axes_y)
    return max(0.0, h_x - h_x_given_y)


def conditional_mutual_information(p_joint: np.ndarray, axes_x: Sequence[int],
                                   axes_y: Sequence[int],
                                   axes_z: Sequence[int]) -> float:
    """Conditional mutual information ``I(X; Y | Z)`` in bits.

    Computed as ``H(X|Z) - H(X|Y,Z)``. This is the quantity appearing in the
    paper's Lemma 1 cut-set bound,
    ``I(X_S; Y_{S^c} | X_{S^c}, Q)``.
    """
    axes_x = list(axes_x)
    axes_y = list(axes_y)
    axes_z = list(axes_z)
    h_x_given_z = conditional_entropy(p_joint, axes_x, axes_z)
    h_x_given_yz = conditional_entropy(p_joint, axes_x, axes_y + axes_z)
    return max(0.0, h_x_given_z - h_x_given_yz)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback–Leibler divergence ``D(p || q)`` in bits.

    Returns ``inf`` when ``p`` puts mass where ``q`` does not.
    """
    p_arr = validate_distribution(p)
    q_arr = validate_distribution(q)
    if p_arr.shape != q_arr.shape:
        raise InvalidDistributionError(
            f"shape mismatch: {p_arr.shape} vs {q_arr.shape}"
        )
    if np.any((p_arr > 0) & (q_arr == 0)):
        return float("inf")
    mask = p_arr > 0
    return float(np.sum(p_arr[mask] * np.log2(p_arr[mask] / q_arr[mask])))


def product_distribution(*marginals: np.ndarray) -> np.ndarray:
    """Outer product of independent marginals into a joint array."""
    result = None
    for m in marginals:
        arr = validate_distribution(m)
        result = arr if result is None else np.multiply.outer(result, arr)
    if result is None:
        raise InvalidDistributionError("at least one marginal required")
    return result


def joint_from_channel(p_input: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """Joint distribution ``p(x, y) = p(x) W(y|x)`` of an input and a DMC.

    Parameters
    ----------
    p_input:
        Input distribution, shape ``(|X|,)``.
    channel:
        Transition matrix ``W[x, y] = P(y | x)``, rows summing to one.
    """
    p_x = validate_distribution(p_input)
    w = np.asarray(channel, dtype=float)
    if w.ndim != 2 or w.shape[0] != p_x.shape[0]:
        raise InvalidDistributionError(
            f"channel shape {w.shape} incompatible with input {p_x.shape}"
        )
    if np.any(w < 0) or not np.allclose(w.sum(axis=1), 1.0, atol=1e-8):
        raise InvalidDistributionError("channel rows must be distributions")
    return p_x[:, None] * w
