"""Information-theoretic primitives (substrate).

Public surface:

* :func:`repro.information.gaussian_capacity` and friends — scalar closed
  forms for the Gaussian evaluation of Section IV.
* :mod:`repro.information.discrete` — entropies and (conditional) mutual
  information of finite joint distributions, used by the discrete
  formulation of Section II and by the Lemma-1 cut-set engine.
* :func:`repro.information.blahut_arimoto` — DMC capacity.
* :class:`repro.information.MacPentagon` — two-user MAC regions.
* :mod:`repro.information.typicality` — weak-typicality verification tools.
"""

from .blahut_arimoto import BlahutArimotoResult, blahut_arimoto, channel_capacity
from .discrete import (
    conditional_entropy,
    conditional_mutual_information,
    entropy,
    joint_entropy,
    joint_from_channel,
    kl_divergence,
    marginal,
    mutual_information,
    normalize_distribution,
    product_distribution,
    validate_distribution,
)
from .functions import (
    awgn_ber_bpsk,
    binary_entropy,
    db_to_linear,
    gaussian_capacity,
    inverse_binary_entropy,
    inverse_gaussian_capacity,
    linear_to_db,
    q_function,
    q_function_inverse,
    snr_for_bpsk_ber,
)
from .mac import MacPentagon, discrete_mac_pentagon, gaussian_mac_pentagon
from .typicality import (
    empirical_log_likelihood,
    is_jointly_typical,
    is_weakly_typical,
    typical_set_size,
    typicality_probability,
)

__all__ = [
    "BlahutArimotoResult",
    "blahut_arimoto",
    "channel_capacity",
    "conditional_entropy",
    "conditional_mutual_information",
    "entropy",
    "joint_entropy",
    "joint_from_channel",
    "kl_divergence",
    "marginal",
    "mutual_information",
    "normalize_distribution",
    "product_distribution",
    "validate_distribution",
    "awgn_ber_bpsk",
    "binary_entropy",
    "db_to_linear",
    "gaussian_capacity",
    "inverse_binary_entropy",
    "inverse_gaussian_capacity",
    "linear_to_db",
    "q_function",
    "q_function_inverse",
    "snr_for_bpsk_ber",
    "MacPentagon",
    "discrete_mac_pentagon",
    "gaussian_mac_pentagon",
    "empirical_log_likelihood",
    "is_jointly_typical",
    "is_weakly_typical",
    "typical_set_size",
    "typicality_probability",
]
