"""Weak typicality tools for finite alphabets.

The achievability proofs of Theorems 2, 3 and 5 use jointly
(weakly) typical decoding: the decoder searches for the unique message whose
codeword is ``eps``-weakly typical with the received sequence. This module
implements the corresponding set computations for small alphabets so the
random-coding machinery can be exercised and tested end to end (it is also
used by the educational example in ``examples/two_way_dmc.py``).

For a distribution ``p`` over alphabet ``X``, a sequence ``x^n`` is
``eps``-weakly typical when::

    | -(1/n) log2 p(x^n) - H(X) | <= eps

Joint typicality applies the same test to every non-empty subset of the
variables, following the standard definition (Cover & Thomas, Section 15.2,
which is exactly the reference the paper's error analysis invokes).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from .discrete import entropy, marginal, validate_distribution

__all__ = [
    "empirical_log_likelihood",
    "is_weakly_typical",
    "is_jointly_typical",
    "typical_set_size",
    "typicality_probability",
]


def empirical_log_likelihood(p: np.ndarray, sequence: Sequence[int]) -> float:
    """``-(1/n) log2 p(x^n)`` for an i.i.d. source with marginal ``p``.

    Returns ``inf`` if the sequence uses a zero-probability symbol.
    """
    arr = validate_distribution(p)
    seq = np.asarray(sequence, dtype=int)
    if seq.ndim != 1 or seq.size == 0:
        raise InvalidParameterError("sequence must be a non-empty 1-D index array")
    if np.any((seq < 0) | (seq >= arr.shape[0])):
        raise InvalidParameterError(
            f"sequence symbols must index the alphabet of size {arr.shape[0]}"
        )
    probs = arr[seq]
    if np.any(probs == 0):
        return float("inf")
    return float(-np.mean(np.log2(probs)))


def is_weakly_typical(p: np.ndarray, sequence: Sequence[int], eps: float) -> bool:
    """Whether ``sequence`` is ``eps``-weakly typical for marginal ``p``."""
    if eps <= 0:
        raise InvalidParameterError(f"eps must be positive, got {eps}")
    ll = empirical_log_likelihood(p, sequence)
    return abs(ll - entropy(p)) <= eps


def is_jointly_typical(p_joint: np.ndarray, sequences: Sequence[Sequence[int]],
                       eps: float) -> bool:
    """Joint weak typicality of parallel sequences w.r.t. a joint distribution.

    Parameters
    ----------
    p_joint:
        Joint distribution with one axis per variable.
    sequences:
        One index sequence per variable, all the same length.
    eps:
        Typicality slack.
    """
    if eps <= 0:
        raise InvalidParameterError(f"eps must be positive, got {eps}")
    arr = validate_distribution(p_joint)
    seqs = [np.asarray(s, dtype=int) for s in sequences]
    if len(seqs) != arr.ndim:
        raise InvalidParameterError(
            f"expected {arr.ndim} sequences (one per axis), got {len(seqs)}"
        )
    lengths = {s.size for s in seqs}
    if len(lengths) != 1:
        raise InvalidParameterError(f"sequences must share a length, got {lengths}")
    axes = list(range(arr.ndim))
    for size in range(1, arr.ndim + 1):
        for subset in itertools.combinations(axes, size):
            sub_marginal = marginal(arr, list(subset))
            stacked = np.stack([seqs[axis] for axis in subset], axis=1)
            probs = sub_marginal[tuple(stacked.T)]
            if np.any(probs == 0):
                return False
            ll = float(-np.mean(np.log2(probs)))
            if abs(ll - entropy(sub_marginal)) > eps:
                return False
    return True


def typical_set_size(p: np.ndarray, n: int, eps: float) -> int:
    """Exact size of the ``eps``-weakly typical set of block length ``n``.

    Exponential in ``n * |X|``; intended for the small instances used in
    tests (this is a verification tool, not a production code path).
    """
    arr = validate_distribution(p)
    if n <= 0:
        raise InvalidParameterError(f"block length must be positive, got {n}")
    alphabet = range(arr.shape[0])
    count = 0
    for seq in itertools.product(alphabet, repeat=n):
        if is_weakly_typical(arr, list(seq), eps):
            count += 1
    return count


def typicality_probability(p: np.ndarray, n: int, eps: float) -> float:
    """Probability that an i.i.d. draw of length ``n`` is weakly typical.

    By the AEP this tends to one as ``n`` grows; the tests check the
    monotone trend on small alphabets.
    """
    arr = validate_distribution(p)
    if n <= 0:
        raise InvalidParameterError(f"block length must be positive, got {n}")
    total = 0.0
    alphabet = range(arr.shape[0])
    for seq in itertools.product(alphabet, repeat=n):
        seq_arr = np.asarray(seq, dtype=int)
        prob = float(np.prod(arr[seq_arr]))
        if prob > 0 and is_weakly_typical(arr, seq_arr, eps):
            total += prob
    return total
