"""Scalar information-theoretic functions used throughout the library.

This module collects the closed-form quantities that the paper's Gaussian
evaluation (Section IV) relies on:

* :func:`gaussian_capacity` — the paper's ``C(x) = log2(1 + x)``,
* decibel conversions (:func:`db_to_linear`, :func:`linear_to_db`),
* the binary entropy function and its inverse,
* Gaussian tail probability helpers used by the link-level simulator.

All functions accept scalars or numpy arrays and are vectorized.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "gaussian_capacity",
    "inverse_gaussian_capacity",
    "db_to_linear",
    "linear_to_db",
    "binary_entropy",
    "inverse_binary_entropy",
    "q_function",
    "q_function_inverse",
    "awgn_ber_bpsk",
    "snr_for_bpsk_ber",
]

#: Natural-log to bits conversion factor (1 / ln 2).
LOG2E = 1.0 / math.log(2.0)


def gaussian_capacity(snr):
    """Shannon capacity ``C(x) = log2(1 + x)`` of a complex AWGN channel.

    The paper defines ``C(x) := log2(1 + x)`` for a circularly-symmetric
    complex Gaussian channel with signal-to-noise ratio ``x`` (Section IV).

    Parameters
    ----------
    snr:
        Linear (not dB) signal-to-noise ratio, ``snr >= 0``. Scalar or array.

    Returns
    -------
    Capacity in bits per channel use, same shape as the input.

    Raises
    ------
    InvalidParameterError
        If any SNR value is negative.
    """
    snr_arr = np.asarray(snr, dtype=float)
    if np.any(snr_arr < 0):
        raise InvalidParameterError(f"SNR must be non-negative, got {snr!r}")
    result = np.log1p(snr_arr) * LOG2E
    if np.isscalar(snr) or snr_arr.ndim == 0:
        return float(result)
    return result


def inverse_gaussian_capacity(rate):
    """Inverse of :func:`gaussian_capacity`: the SNR needed for ``rate`` bits.

    Satisfies ``gaussian_capacity(inverse_gaussian_capacity(r)) == r``.

    Parameters
    ----------
    rate:
        Rate in bits per channel use, ``rate >= 0``.
    """
    rate_arr = np.asarray(rate, dtype=float)
    if np.any(rate_arr < 0):
        raise InvalidParameterError(f"rate must be non-negative, got {rate!r}")
    result = np.expm1(rate_arr / LOG2E)
    if np.isscalar(rate) or rate_arr.ndim == 0:
        return float(result)
    return result


def db_to_linear(value_db):
    """Convert a power quantity from decibels to linear scale."""
    value_arr = np.asarray(value_db, dtype=float)
    result = np.power(10.0, value_arr / 10.0)
    if np.isscalar(value_db) or value_arr.ndim == 0:
        return float(result)
    return result


def linear_to_db(value):
    """Convert a positive power quantity from linear scale to decibels."""
    value_arr = np.asarray(value, dtype=float)
    if np.any(value_arr <= 0):
        raise InvalidParameterError(
            f"linear power must be strictly positive for dB conversion, got {value!r}"
        )
    result = 10.0 * np.log10(value_arr)
    if np.isscalar(value) or value_arr.ndim == 0:
        return float(result)
    return result


def binary_entropy(p):
    """Binary entropy ``h(p) = -p log2 p - (1-p) log2 (1-p)`` in bits.

    Defined by continuity as 0 at ``p in {0, 1}``.
    """
    p_arr = np.asarray(p, dtype=float)
    if np.any((p_arr < 0) | (p_arr > 1)):
        raise InvalidParameterError(f"probability must lie in [0, 1], got {p!r}")
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = -p_arr * np.log2(p_arr) - (1.0 - p_arr) * np.log2(1.0 - p_arr)
    result = np.where((p_arr == 0) | (p_arr == 1), 0.0, terms)
    if np.isscalar(p) or p_arr.ndim == 0:
        return float(result)
    return result


def inverse_binary_entropy(h, tol: float = 1e-12, max_iter: int = 200) -> float:
    """Inverse binary entropy on the branch ``p in [0, 1/2]``.

    Solves ``binary_entropy(p) == h`` by bisection.

    Parameters
    ----------
    h:
        Entropy value in ``[0, 1]`` bits.
    tol:
        Absolute tolerance on ``p``.
    max_iter:
        Bisection iteration budget.
    """
    h = float(h)
    if not 0.0 <= h <= 1.0:
        raise InvalidParameterError(f"entropy must lie in [0, 1], got {h}")
    if h == 0.0:
        return 0.0
    if h == 1.0:
        return 0.5
    lo, hi = 0.0, 0.5
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if binary_entropy(mid) < h:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


def q_function(x):
    """Gaussian tail probability ``Q(x) = P[N(0,1) > x]``."""
    x_arr = np.asarray(x, dtype=float)
    result = 0.5 * np.array(erfc_vec(x_arr / math.sqrt(2.0)))
    if np.isscalar(x) or x_arr.ndim == 0:
        return float(result)
    return result


def erfc_vec(x):
    """Vectorized complementary error function (thin wrapper over math/scipy)."""
    from scipy.special import erfc

    return erfc(x)


def q_function_inverse(p: float) -> float:
    """Inverse of the Gaussian tail probability :func:`q_function`."""
    from scipy.special import erfcinv

    p = float(p)
    if not 0.0 < p < 1.0:
        raise InvalidParameterError(f"tail probability must lie in (0, 1), got {p}")
    return math.sqrt(2.0) * float(erfcinv(2.0 * p))


def awgn_ber_bpsk(snr):
    """Uncoded BPSK bit error rate on a real AWGN channel: ``Q(sqrt(2*snr))``.

    Used by the link-level simulator's sanity checks (the Monte-Carlo BER of
    the :mod:`repro.simulation` stack must track this curve in the uncoded
    configuration).
    """
    snr_arr = np.asarray(snr, dtype=float)
    if np.any(snr_arr < 0):
        raise InvalidParameterError(f"SNR must be non-negative, got {snr!r}")
    result = q_function(np.sqrt(2.0 * snr_arr))
    return result


def snr_for_bpsk_ber(ber: float) -> float:
    """SNR at which uncoded BPSK achieves the target bit error rate."""
    ber = float(ber)
    if not 0.0 < ber < 0.5:
        raise InvalidParameterError(f"BPSK BER must lie in (0, 0.5), got {ber}")
    return q_function_inverse(ber) ** 2 / 2.0
