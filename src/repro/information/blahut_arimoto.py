"""Blahut–Arimoto computation of discrete memoryless channel capacity.

The general (pre-Gaussian) formulation of the paper's bounds maximizes
mutual-information expressions over input distributions. For single-input
discrete channels that maximization is exactly the channel capacity problem,
solved here with the classical Blahut–Arimoto alternating-maximization
algorithm.

The implementation follows the standard iteration:

.. math::

    q_{t}(x|y) \\propto p_t(x) W(y|x), \\qquad
    p_{t+1}(x) \\propto \\exp\\Big(\\sum_y W(y|x) \\ln q_t(x|y)\\Big)

with capacity bracketing via the standard lower/upper bounds
(max over ``x`` of the divergence gives an upper bound, the current mutual
information a lower bound), so convergence is certified, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConvergenceError, InvalidDistributionError
from .discrete import joint_from_channel, mutual_information

__all__ = ["BlahutArimotoResult", "blahut_arimoto", "channel_capacity"]


@dataclass(frozen=True)
class BlahutArimotoResult:
    """Outcome of a Blahut–Arimoto run.

    Attributes
    ----------
    capacity:
        Channel capacity in bits per channel use.
    input_distribution:
        Capacity-achieving input distribution.
    iterations:
        Number of iterations performed.
    gap:
        Final certified gap between the upper and lower capacity bounds.
    """

    capacity: float
    input_distribution: np.ndarray
    iterations: int
    gap: float


def blahut_arimoto(channel: np.ndarray, *, tol: float = 1e-10,
                   max_iter: int = 10_000) -> BlahutArimotoResult:
    """Compute the capacity of a DMC with transition matrix ``W[x, y]``.

    Parameters
    ----------
    channel:
        Row-stochastic transition matrix, shape ``(|X|, |Y|)``.
    tol:
        Certified absolute gap (in bits) at which to stop.
    max_iter:
        Iteration budget; :class:`~repro.exceptions.ConvergenceError` is
        raised if the gap has not closed by then.

    Returns
    -------
    BlahutArimotoResult
    """
    w = np.asarray(channel, dtype=float)
    if w.ndim != 2:
        raise InvalidDistributionError(f"channel must be a matrix, got ndim={w.ndim}")
    if np.any(w < 0) or not np.allclose(w.sum(axis=1), 1.0, atol=1e-8):
        raise InvalidDistributionError("channel rows must be probability vectors")
    n_inputs = w.shape[0]
    p = np.full(n_inputs, 1.0 / n_inputs)

    # Precompute W log W rows (natural log for numerical convenience).
    with np.errstate(divide="ignore", invalid="ignore"):
        w_log_w = np.where(w > 0, w * np.log(w), 0.0).sum(axis=1)

    last_lower = 0.0
    for iteration in range(1, max_iter + 1):
        q_y = p @ w  # output distribution
        with np.errstate(divide="ignore", invalid="ignore"):
            log_q_y = np.where(q_y > 0, np.log(q_y), 0.0)
        # d[x] = D(W(.|x) || q) in nats: sum_y W(y|x) ln(W(y|x)/q(y))
        d = w_log_w - (w * log_q_y[None, :]).sum(axis=1)
        # Bounds (converted to bits): lower = I(p, W), upper = max_x d[x].
        lower = float(np.dot(p, d)) / np.log(2.0)
        upper = float(np.max(d)) / np.log(2.0)
        last_lower = lower
        if upper - lower < tol:
            return BlahutArimotoResult(
                capacity=lower,
                input_distribution=p.copy(),
                iterations=iteration,
                gap=upper - lower,
            )
        # Multiplicative update; subtract max(d) for numerical stability.
        scaled = p * np.exp(d - np.max(d))
        p = scaled / scaled.sum()

    raise ConvergenceError(
        f"Blahut–Arimoto did not converge to tol={tol} in {max_iter} iterations "
        f"(last lower bound {last_lower:.12f} bits)"
    )


def channel_capacity(channel: np.ndarray, *, tol: float = 1e-10,
                     max_iter: int = 10_000) -> float:
    """Capacity in bits of the DMC ``channel``; thin wrapper over BA.

    The result is cross-checkable against :func:`mutual_information` with the
    returned input distribution; tests do exactly that.
    """
    result = blahut_arimoto(channel, tol=tol, max_iter=max_iter)
    # Defensive cross-check: MI of the returned distribution must match.
    joint = joint_from_channel(
        result.input_distribution, np.asarray(channel, dtype=float)
    )
    mi = mutual_information(joint, [0], [1])
    if abs(mi - result.capacity) > 1e-6:
        raise ConvergenceError(
            f"BA self-check failed: MI={mi} vs capacity={result.capacity}"
        )
    return result.capacity
