"""Batched analytic solver for the phase-duration sum-rate LP.

Every ensemble/sweep workload in this library reduces to the same tiny
linear program, solved once per (protocol, channel) work unit::

    maximize   Ra + Rb
    over       Ra, Rb >= 0,  Δ in the duration simplex
    subject to the theorem constraints  sum(rates) <= c(Δ)

At fixed durations the optimum is the closed form
``min(cap_Ra + cap_Rb, cap_sum)`` (see
:func:`repro.core.optimize.sum_rate_fixed_durations`), so the LP is
equivalent to maximizing a *minimum of linear functions of Δ* over the
simplex — a max-min problem whose optimum sits at an equalization point of
at most ``L`` active functions. This module solves **many such problems at
once** by stacking the candidate equalization systems of every ensemble
member into batched NumPy linear solves; no per-unit Python LP calls, no
scipy round trips.

Correctness does not rest on tolerance thresholds: every candidate duration
vector is clipped to the simplex and its *achieved* value recomputed as the
true min over all functions, so each candidate is a certified lower bound
and the enumeration attains the optimum at the optimal support. The kernel
is cross-validated against both LP backends in the test suite.

All operations are elementwise along the batch axis, so evaluating a batch
of ``N`` units produces bit-for-bit the same values as ``N`` batch-of-one
evaluations — the property the campaign executors rely on to make serial,
multiprocessing and vectorized execution interchangeable.
"""

from __future__ import annotations

from collections.abc import Mapping
from functools import lru_cache
from itertools import combinations

import numpy as np

from ..channels.power import NodePowers
from ..core.bounds import bound_for
from ..core.protocols import Protocol, protocol_phases
from ..core.terms import BoundKind, MiKey, transmitter_for
from ..exceptions import InvalidParameterError

__all__ = ["KERNEL_VERSION", "batched_sum_rates", "mi_value_table"]

#: Bumped whenever the numeric semantics of a campaign result change —
#: this kernel's arithmetic *or* the spec-to-ensemble expansion (the
#: draw-sampling procedure in :func:`repro.channels.fading
#: .sample_gain_ensemble` and :meth:`CampaignSpec.sample_gain_draws`).
#: Part of the campaign cache key, so stale on-disk results are never
#: served across versions.
KERNEL_VERSION = 1

_MI_KEYS = tuple(MiKey)
_MI_INDEX = {key: i for i, key in enumerate(_MI_KEYS)}

#: Determinants smaller than this are treated as exactly singular and the
#: corresponding candidate system skipped (its support is represented by
#: another candidate).  Ill-conditioned systems above the floor are solved
#: anyway: their candidates are re-certified from scratch, so a bad solve
#: can only yield a suboptimal feasible point, never an overestimate.
_DET_FLOOR = 1e-30


def _node_power_columns(power):
    """Normalize a power argument to per-node columns, or ``None``.

    Returns ``(pa, pb, pr)`` arrays when ``power`` expresses *asymmetric*
    per-node powers — a :class:`~repro.channels.power.NodePowers`, a
    ``{"a": ..., "b": ..., "r": ...}`` mapping, or an ``(n, 3)`` array in
    ``(a, b, r)`` node order. Scalars and 1-d arrays (one shared power per
    unit — the paper's model) return ``None`` and take the classic path.
    """
    if isinstance(power, Mapping):
        power = NodePowers.from_mapping(power)
    if isinstance(power, NodePowers):
        return (
            np.asarray(power.pa),
            np.asarray(power.pb),
            np.asarray(power.pr),
        )
    arr = np.asarray(power, dtype=float)
    if arr.ndim == 2:
        if arr.shape[1] != 3:
            raise InvalidParameterError(
                f"a per-node power batch must have shape (n, 3) in (a, b, r) "
                f"order, got {arr.shape}"
            )
        return arr[:, 0], arr[:, 1], arr[:, 2]
    return None


def _mac_sum_snr(pa, pb, gar, gbr):
    """Multiple-access sum SNR ``P_a·g_ar + P_b·g_br``.

    Where the two source powers are exactly equal this is computed as the
    classic factored form ``P·(g_ar + g_br)`` elementwise, so uniform
    per-node powers reproduce the scalar-power kernel bit for bit.
    """
    return np.where(pa == pb, pa * (gar + gbr), pa * gar + pb * gbr)


def mi_value_table(gab, gar, gbr, power) -> np.ndarray:
    """Per-unit mutual-information values for all :class:`MiKey` terms.

    Vectorized counterpart of :meth:`GaussianChannel.mi_values`: gains and
    power are broadcastable arrays of shape ``(n,)`` and the result has
    shape ``(n, len(MiKey))`` in ``MiKey`` declaration order.

    ``power`` may also express asymmetric per-node transmit powers — a
    :class:`~repro.channels.power.NodePowers`, a node mapping, or an
    ``(n, 3)`` array in ``(a, b, r)`` order. Each key is then evaluated
    under its *terminal transmitter* convention (``a`` drives ``a-r``,
    ``a-b`` and ``a-rb``; ``b`` drives ``b-r`` and ``b-ra``; the MAC sum
    is ``P_a·g_ar + P_b·g_br``); phase-dependent directions, e.g. the
    relay re-using a link, are handled internally by
    :func:`batched_sum_rates`.
    """
    gab = np.asarray(gab, dtype=float)
    gar = np.asarray(gar, dtype=float)
    gbr = np.asarray(gbr, dtype=float)
    columns = _node_power_columns(power)
    if columns is None:
        power = np.asarray(power, dtype=float)
        snrs = {
            MiKey.LINK_AR: power * gar,
            MiKey.LINK_BR: power * gbr,
            MiKey.LINK_AB: power * gab,
            MiKey.MAC_SUM: power * (gar + gbr),
            MiKey.CUT_A_RB: power * (gar + gab),
            MiKey.CUT_B_RA: power * (gbr + gab),
        }
    else:
        pa, pb, _ = columns
        snrs = {
            MiKey.LINK_AR: pa * gar,
            MiKey.LINK_BR: pb * gbr,
            MiKey.LINK_AB: pa * gab,
            MiKey.MAC_SUM: _mac_sum_snr(pa, pb, gar, gbr),
            MiKey.CUT_A_RB: pa * (gar + gab),
            MiKey.CUT_B_RA: pb * (gbr + gab),
        }
    return np.stack(
        [np.log2(1.0 + snrs[key]) for key in _MI_KEYS],
        axis=-1,
    )


#: The directional MI vocabulary under asymmetric per-node powers: each
#: ``(key, transmitter)`` pair is one distinct SNR expression. Under a
#: scalar power the two directions of a link coincide (reciprocity), which
#: is why the classic table needs only ``len(MiKey)`` columns.
_DIRECTIONAL_TERMS = (
    (MiKey.LINK_AR, "a"),
    (MiKey.LINK_AR, "r"),
    (MiKey.LINK_BR, "b"),
    (MiKey.LINK_BR, "r"),
    (MiKey.LINK_AB, "a"),
    (MiKey.LINK_AB, "b"),
    (MiKey.MAC_SUM, "ab"),
    (MiKey.CUT_A_RB, "a"),
    (MiKey.CUT_B_RA, "b"),
)
_DIRECTIONAL_INDEX = {term: i for i, term in enumerate(_DIRECTIONAL_TERMS)}


def _directional_mi_table(gab, gar, gbr, pa, pb, pr) -> np.ndarray:
    """MI values for every :data:`_DIRECTIONAL_TERMS` entry, shape ``(n, 9)``.

    All expressions reduce elementwise to the classic
    :func:`mi_value_table` columns when ``pa == pb == pr`` (the MAC sum via
    :func:`_mac_sum_snr`), which is what makes uniform per-node powers
    bitwise-identical to the scalar path.
    """
    snrs = {
        (MiKey.LINK_AR, "a"): pa * gar,
        (MiKey.LINK_AR, "r"): pr * gar,
        (MiKey.LINK_BR, "b"): pb * gbr,
        (MiKey.LINK_BR, "r"): pr * gbr,
        (MiKey.LINK_AB, "a"): pa * gab,
        (MiKey.LINK_AB, "b"): pb * gab,
        (MiKey.MAC_SUM, "ab"): _mac_sum_snr(pa, pb, gar, gbr),
        (MiKey.CUT_A_RB, "a"): pa * (gar + gab),
        (MiKey.CUT_B_RA, "b"): pb * (gbr + gab),
    }
    return np.stack(
        [np.log2(1.0 + snrs[term]) for term in _DIRECTIONAL_TERMS],
        axis=-1,
    )


@lru_cache(maxsize=None)
def _bound_structure(protocol: Protocol, kind: BoundKind):
    """Constraint skeleton of a bound, grouped by rate family.

    Returns ``(n_phases, ra_terms, rb_terms, sum_terms)`` where each entry
    of a term group describes one constraint as a tuple of
    ``(phase, mi_index)`` pairs.
    """
    spec = bound_for(protocol, kind)
    groups: dict[tuple, list] = {("Ra",): [], ("Rb",): [], ("Ra", "Rb"): []}
    for constraint in spec.constraints:
        key = tuple(sorted(constraint.rates))
        terms = tuple((p, _MI_INDEX[k]) for p, k in constraint.form.terms)
        groups[key].append(terms)
    return (
        spec.n_phases,
        tuple(groups[("Ra",)]),
        tuple(groups[("Rb",)]),
        tuple(groups[("Ra", "Rb")]),
    )


@lru_cache(maxsize=None)
def _directional_bound_structure(protocol: Protocol, kind: BoundKind):
    """Like :func:`_bound_structure`, with directional MI column indices.

    Each ``(phase, mi_index)`` pair indexes :data:`_DIRECTIONAL_TERMS`
    instead of :class:`MiKey`: the transmitter driving each term is
    resolved from the protocol's phase schedule, so e.g. ``Δ2·I[a-r]`` in
    a relay-broadcast phase draws on the *relay's* power.
    """
    spec = bound_for(protocol, kind)
    phases = protocol_phases(protocol)
    groups: dict[tuple, list] = {("Ra",): [], ("Rb",): [], ("Ra", "Rb"): []}
    for constraint in spec.constraints:
        key = tuple(sorted(constraint.rates))
        terms = tuple(
            (p, _DIRECTIONAL_INDEX[(k, transmitter_for(k, phases[p]))])
            for p, k in constraint.form.terms
        )
        groups[key].append(terms)
    return (
        spec.n_phases,
        tuple(groups[("Ra",)]),
        tuple(groups[("Rb",)]),
        tuple(groups[("Ra", "Rb")]),
    )


def _constraint_rows(term_groups, mi: np.ndarray, n_phases: int) -> np.ndarray:
    """Stack one rate family's constraints as ``(n, n_constraints, L)``."""
    n = mi.shape[0]
    rows = np.zeros((n, len(term_groups), n_phases))
    for m, terms in enumerate(term_groups):
        for phase, mi_index in terms:
            rows[:, m, phase] += mi[:, mi_index]
    return rows


def _objective_functions(
    protocol: Protocol, mi: np.ndarray, *, directional: bool = False
) -> np.ndarray:
    """The linear functions whose min over the simplex is the sum rate.

    The fixed-duration optimum is ``min(min_i a_i·Δ + min_j b_j·Δ,
    min_k s_k·Δ)``; since the pairwise mins distribute, this equals the min
    over the function family ``{a_i + b_j} ∪ {s_k}``. Returns shape
    ``(n, n_functions, L)``. With ``directional=True``, ``mi`` is a
    :func:`_directional_mi_table` and the constraint skeleton indexes it
    through :func:`_directional_bound_structure`.
    """
    structure = _directional_bound_structure if directional else _bound_structure
    n_phases, ra_terms, rb_terms, sum_terms = structure(protocol, BoundKind.INNER)
    ra_rows = _constraint_rows(ra_terms, mi, n_phases)
    rb_rows = _constraint_rows(rb_terms, mi, n_phases)
    sum_rows = _constraint_rows(sum_terms, mi, n_phases)
    n = mi.shape[0]
    paired = ra_rows[:, :, None, :] + rb_rows[:, None, :, :]
    paired = paired.reshape(n, -1, n_phases)
    if sum_rows.shape[1]:
        return np.concatenate([paired, sum_rows], axis=1)
    return paired


@lru_cache(maxsize=None)
def _support_candidates(n_functions: int, n_phases: int):
    """All (function subset, phase subset) pairs of equal size ``k >= 2``."""
    candidates = []
    for k in range(2, n_phases + 1):
        if k > n_functions:
            break
        phase_sets = np.array(list(combinations(range(n_phases), k)), dtype=np.intp)
        function_sets = np.array(
            list(combinations(range(n_functions), k)), dtype=np.intp
        )
        n_pairs = len(phase_sets) * len(function_sets)
        phases = np.repeat(phase_sets, len(function_sets), axis=0)
        functions = np.tile(function_sets, (len(phase_sets), 1))
        assert phases.shape == functions.shape == (n_pairs, k)
        candidates.append((k, phases, functions))
    return tuple(candidates)


def _equalization_values(functions: np.ndarray) -> np.ndarray:
    """Best certified value over all equalization supports, per unit.

    ``functions`` has shape ``(n, F, L)``; the result has shape ``(n,)`` and
    equals ``max_{Δ in simplex} min_f functions[n, f] · Δ`` exactly (up to
    floating-point rounding of the candidate systems).
    """
    n, n_functions, n_phases = functions.shape
    # k = 1 candidates are the simplex corners: value = min_f F[n, f, l].
    corner_values = functions.min(axis=1)
    best = corner_values.max(axis=1)
    for k, phase_sets, function_sets in _support_candidates(n_functions, n_phases):
        n_cand = phase_sets.shape[0]
        # Equalization system per candidate: the k selected functions share
        # a common value v on the k selected phases, and durations sum to 1:
        #   [ F_sub  -1 ] [Δ_S]   [0]
        #   [ 1^T     0 ] [ v ] = [1]
        sub = functions[:, function_sets[:, :, None], phase_sets[:, None, :]]
        systems = np.zeros((n, n_cand, k + 1, k + 1))
        systems[:, :, :k, :k] = sub
        systems[:, :, :k, k] = -1.0
        systems[:, :, k, :k] = 1.0
        rhs = np.zeros((n, n_cand, k + 1, 1))
        rhs[:, :, k, 0] = 1.0
        dets = np.linalg.det(systems)
        singular = ~(np.abs(dets) > _DET_FLOOR)
        if singular.any():
            systems[singular] = np.eye(k + 1)
        solutions = np.linalg.solve(systems, rhs)[..., 0]
        # Project each candidate back onto the simplex and certify it by
        # recomputing the min over *all* functions; garbage solutions from
        # ill-conditioned systems therefore only ever lose.
        durations = np.zeros((n, n_cand, n_phases))
        np.put_along_axis(
            durations,
            np.broadcast_to(phase_sets[None, :, :], (n, n_cand, k)),
            np.maximum(solutions[:, :, :k], 0.0),
            axis=2,
        )
        totals = durations.sum(axis=2)
        usable = (totals > 0.0) & ~singular
        safe_totals = np.where(usable, totals, 1.0)
        durations /= safe_totals[:, :, None]
        achieved = np.einsum("nfl,ncl->ncf", functions, durations).min(axis=2)
        achieved = np.where(usable, achieved, -np.inf)
        best = np.maximum(best, achieved.max(axis=1))
    return best


def batched_sum_rates(protocol: Protocol, gab, gar, gbr, power) -> np.ndarray:
    """LP-optimal achievable sum rates for a batch of channel instances.

    Parameters
    ----------
    protocol:
        The protocol whose inner bound is optimized.
    gab, gar, gbr:
        Linear link gains, arrays of shape ``(n,)`` (scalars broadcast).
    power:
        Transmit power (linear). A scalar or shape-``(n,)`` array applies
        one shared power to every node (the paper's model); a
        :class:`~repro.channels.power.NodePowers`, a
        ``{"a": ..., "b": ..., "r": ...}`` mapping, or an ``(n, 3)``
        array in ``(a, b, r)`` order gives each node its own power. Equal
        per-node powers reproduce the shared-power results bit for bit.

    Returns
    -------
    np.ndarray
        Shape ``(n,)``; entry ``i`` equals
        ``optimal_sum_rate(protocol, GaussianChannel(gains_i, power_i))``
        up to LP tolerance, computed without any per-unit solver calls.
    """
    columns = _node_power_columns(power)
    if columns is None:
        gab, gar, gbr, power = np.broadcast_arrays(
            np.asarray(gab, dtype=float),
            np.asarray(gar, dtype=float),
            np.asarray(gbr, dtype=float),
            np.asarray(power, dtype=float),
        )
        if gab.ndim != 1:
            raise InvalidParameterError(
                f"expected 1-d gain/power arrays, got shape {gab.shape}"
            )
        if gab.size == 0:
            return np.zeros(0)
        if np.any(gab <= 0) or np.any(gar <= 0) or np.any(gbr <= 0):
            raise InvalidParameterError("link gains must be strictly positive")
        if np.any(power < 0):
            raise InvalidParameterError("power must be non-negative")
        mi = mi_value_table(gab, gar, gbr, power)
        functions = _objective_functions(protocol, mi)
        return _equalization_values(functions)
    pa, pb, pr = columns
    gab, gar, gbr, pa, pb, pr = np.broadcast_arrays(
        np.asarray(gab, dtype=float),
        np.asarray(gar, dtype=float),
        np.asarray(gbr, dtype=float),
        np.asarray(pa, dtype=float),
        np.asarray(pb, dtype=float),
        np.asarray(pr, dtype=float),
    )
    if gab.ndim != 1:
        raise InvalidParameterError(
            f"expected 1-d gain/power arrays, got shape {gab.shape}"
        )
    if gab.size == 0:
        return np.zeros(0)
    if np.any(gab <= 0) or np.any(gar <= 0) or np.any(gbr <= 0):
        raise InvalidParameterError("link gains must be strictly positive")
    if np.any(pa < 0) or np.any(pb < 0) or np.any(pr < 0):
        raise InvalidParameterError("power must be non-negative")
    mi = _directional_mi_table(gab, gar, gbr, pa, pb, pr)
    functions = _objective_functions(protocol, mi, directional=True)
    return _equalization_values(functions)
