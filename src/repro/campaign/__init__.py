"""Batched campaign execution: sweeps and ensembles at hardware speed.

This subsystem turns the library's embarrassingly parallel workloads —
channel-quality sweeps, power sweeps, quasi-static fading ensembles —
into declarative grids evaluated through pluggable executors:

* describe the grid with a :class:`CampaignSpec`
  (``protocols × powers × geometries × fading draws``),
* evaluate it with :func:`run_campaign` through the serial,
  multiprocessing or vectorized executor (all bitwise-equivalent),
* repeated specs are served from a content-addressed on-disk cache.

Quickstart::

    from repro.campaign import CampaignSpec, FadingSpec, run_campaign
    from repro import LinkGains, Protocol

    spec = CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(0.0, 10.0, 20.0),
        gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        fading=FadingSpec(n_draws=500, seed=7),
    )
    result = run_campaign(spec, executor="vectorized", cache=True)
    print(result.ergodic_mean(Protocol.HBC, 10.0))
"""

from .cache import CampaignCache, default_cache_dir
from .engine import CampaignResult, evaluate_ensemble, run_campaign
from .executors import (
    EXECUTOR_NAMES,
    MultiprocessExecutor,
    SerialExecutor,
    UnitBatch,
    VectorizedExecutor,
    get_executor,
)
from .kernel import KERNEL_VERSION, batched_sum_rates
from .spec import GRID_AXES, CampaignSpec, FadingSpec, WorkUnit

__all__ = [
    "CampaignCache",
    "default_cache_dir",
    "CampaignResult",
    "evaluate_ensemble",
    "run_campaign",
    "EXECUTOR_NAMES",
    "MultiprocessExecutor",
    "SerialExecutor",
    "UnitBatch",
    "VectorizedExecutor",
    "get_executor",
    "KERNEL_VERSION",
    "batched_sum_rates",
    "GRID_AXES",
    "CampaignSpec",
    "FadingSpec",
    "WorkUnit",
]
