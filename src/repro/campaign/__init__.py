"""Batched campaign execution: sweeps and ensembles at hardware speed.

This subsystem turns the library's embarrassingly parallel workloads —
channel-quality sweeps, power sweeps, quasi-static fading ensembles —
into declarative grids evaluated through pluggable executors:

* describe the grid with a :class:`CampaignSpec`
  (``protocols × powers × geometries × fading draws``),
* evaluate it with :func:`run_campaign` through the serial,
  multiprocessing or vectorized executor (all bitwise-equivalent),
* repeated specs are served from a content-addressed on-disk cache,
* with a cache, execution is chunk-checkpointed: interrupted campaigns
  resume instead of restarting, ``run_campaign(spec, shard=spec.shard(i, n))``
  splits the grid across processes/machines that share only a cache
  directory, and :func:`gather_campaign` merges shard artifacts into a
  result bitwise-identical to an unsharded run.

Quickstart::

    from repro.campaign import CampaignSpec, FadingSpec, run_campaign
    from repro import LinkGains, Protocol

    spec = CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(0.0, 10.0, 20.0),
        gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        fading=FadingSpec(n_draws=500, seed=7),
    )
    result = run_campaign(spec, executor="vectorized", cache=True)
    print(result.ergodic_mean(Protocol.HBC, 10.0))
"""

from .cache import CampaignCache, default_cache_dir
from .engine import (
    CampaignResult,
    RetryPolicy,
    evaluate_ensemble,
    gather_campaign,
    run_campaign,
)
from .executors import (
    EXECUTOR_NAMES,
    AsyncExecutor,
    ChunkFailure,
    MultiprocessExecutor,
    SerialExecutor,
    UnitBatch,
    VectorizedExecutor,
    get_executor,
)
from .kernel import KERNEL_VERSION, batched_sum_rates
from .spec import (
    AXIS_OVERRIDE_KEYS,
    DEFAULT_CHUNK_SIZE,
    GRID_AXES,
    CampaignShard,
    CampaignSpec,
    FadingSpec,
    GridAxis,
    LinkSimSpec,
    WorkUnit,
    chunk_ranges,
)

__all__ = [
    "CampaignCache",
    "default_cache_dir",
    "CampaignResult",
    "RetryPolicy",
    "evaluate_ensemble",
    "gather_campaign",
    "run_campaign",
    "EXECUTOR_NAMES",
    "AsyncExecutor",
    "ChunkFailure",
    "MultiprocessExecutor",
    "SerialExecutor",
    "UnitBatch",
    "VectorizedExecutor",
    "get_executor",
    "KERNEL_VERSION",
    "batched_sum_rates",
    "GRID_AXES",
    "AXIS_OVERRIDE_KEYS",
    "DEFAULT_CHUNK_SIZE",
    "chunk_ranges",
    "CampaignShard",
    "CampaignSpec",
    "FadingSpec",
    "GridAxis",
    "LinkSimSpec",
    "WorkUnit",
]
