"""Declarative campaign specifications and their expansion into work units.

A :class:`CampaignSpec` describes a full evaluation grid —
``protocols × powers × channel geometries × fading draws`` — as plain data.
Expansion is deterministic: the fading ensemble is drawn once from the
spec's seed (paired across protocols and powers, so per-realization
comparisons like "HBC dominates MABC" hold draw by draw), and the resulting
work units are pure ``(protocol, gains, power)`` triples with no hidden
state. That determinism is what makes the content-addressed result cache
(:mod:`repro.campaign.cache`) sound: the spec hash fully determines the
numbers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..channels.pathloss import linear_relay_gains
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear

__all__ = ["FadingSpec", "CampaignSpec", "WorkUnit", "GRID_AXES"]

#: Axis order of every campaign result array.
GRID_AXES = ("protocol", "power", "gains", "draw")


@dataclass(frozen=True)
class FadingSpec:
    """Quasi-static fading ensemble parameters of a campaign.

    Attributes
    ----------
    n_draws:
        Ensemble size per channel-geometry grid point.
    seed:
        Seed of the ensemble RNG; the spec owns all randomness.
    k_factor:
        Rician K-factor (0 = Rayleigh) shared by all links.
    """

    n_draws: int
    seed: int = 0
    k_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.n_draws < 1:
            raise InvalidParameterError(
                f"need at least one draw, got {self.n_draws}"
            )
        if self.k_factor < 0:
            raise InvalidParameterError(
                f"K-factor must be non-negative, got {self.k_factor}"
            )

    def to_dict(self) -> dict:
        """Plain-data form for hashing and serialization."""
        return {
            "n_draws": int(self.n_draws),
            "seed": int(self.seed),
            "k_factor": float(self.k_factor),
        }


@dataclass(frozen=True)
class WorkUnit:
    """One grid point: evaluate a protocol on one concrete channel.

    ``index`` is the flat position in the campaign's
    ``(protocol, power, gains, draw)`` C-order grid, so results can be
    reassembled regardless of execution order.
    """

    index: int
    protocol: Protocol
    gains: LinkGains
    power: float


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative evaluation grid over protocols, powers and channels.

    Attributes
    ----------
    protocols:
        Protocols to evaluate (grid axis 0).
    powers_db:
        Per-node transmit powers in dB (grid axis 1).
    gains:
        Mean channel geometries — path-loss gains of the three links
        (grid axis 2). Use :meth:`from_placements` for a relay-position
        sweep.
    fading:
        Optional quasi-static fading ensemble drawn around each geometry
        (grid axis 3). ``None`` evaluates the means themselves
        (``n_draws = 1``).
    """

    protocols: tuple
    powers_db: tuple
    gains: tuple
    fading: FadingSpec | None = None

    def __post_init__(self) -> None:
        protocols = tuple(self.protocols)
        powers_db = tuple(float(p) for p in self.powers_db)
        gains = tuple(self.gains)
        object.__setattr__(self, "protocols", protocols)
        object.__setattr__(self, "powers_db", powers_db)
        object.__setattr__(self, "gains", gains)
        if not protocols:
            raise InvalidParameterError("at least one protocol required")
        for p in protocols:
            if not isinstance(p, Protocol):
                raise InvalidParameterError(f"{p!r} is not a Protocol")
        if len(set(protocols)) != len(protocols):
            raise InvalidParameterError(f"duplicate protocols in {protocols}")
        if not powers_db:
            raise InvalidParameterError("at least one power point required")
        if not gains:
            raise InvalidParameterError("at least one channel geometry required")
        for g in gains:
            if not isinstance(g, LinkGains):
                raise InvalidParameterError(f"{g!r} is not a LinkGains")

    @classmethod
    def from_placements(cls, protocols, powers_db, n_placements: int, *,
                        path_loss_exponent: float = 3.0,
                        fading: FadingSpec | None = None) -> "CampaignSpec":
        """A relay-placement sweep along the ``a``–``b`` segment.

        Places the relay at ``n_placements`` evenly spaced interior
        positions and derives the gains from the log-distance path-loss law
        (the Fig. 3 cellular scenario).
        """
        if n_placements < 1:
            raise InvalidParameterError(
                f"need at least one placement, got {n_placements}"
            )
        fractions = np.linspace(0.1, 0.9, n_placements)
        gains = tuple(
            linear_relay_gains(float(f), exponent=path_loss_exponent)
            for f in fractions
        )
        return cls(
            protocols=tuple(protocols),
            powers_db=tuple(powers_db),
            gains=gains,
            fading=fading,
        )

    @property
    def n_draws(self) -> int:
        """Fading draws per geometry (1 when no fading is configured)."""
        return self.fading.n_draws if self.fading is not None else 1

    @property
    def grid_shape(self) -> tuple:
        """Result-array shape ``(protocols, powers, gains, draws)``."""
        return (
            len(self.protocols),
            len(self.powers_db),
            len(self.gains),
            self.n_draws,
        )

    @property
    def n_units(self) -> int:
        """Total number of work units in the grid."""
        return int(np.prod(self.grid_shape))

    def to_dict(self) -> dict:
        """Canonical plain-data form (stable across processes)."""
        return {
            "protocols": [p.value for p in self.protocols],
            "powers_db": [float(p) for p in self.powers_db],
            "gains": [
                [float(g.gab), float(g.gar), float(g.gbr)] for g in self.gains
            ],
            "fading": self.fading.to_dict() if self.fading else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        fading = data.get("fading")
        return cls(
            protocols=tuple(Protocol(p) for p in data["protocols"]),
            powers_db=tuple(data["powers_db"]),
            gains=tuple(LinkGains(*triple) for triple in data["gains"]),
            fading=FadingSpec(**fading) if fading else None,
        )

    def spec_hash(self) -> str:
        """Content hash of the spec (hex SHA-256 of its canonical JSON).

        Floats are serialized via ``repr`` round-tripping inside ``json``,
        which is exact for IEEE doubles, so two specs hash equal iff they
        describe bit-identical grids.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def sample_gain_draws(self) -> np.ndarray:
        """The campaign's channel realizations, shape ``(G, D, 3)``.

        Geometry ``g``'s draws occupy ``[g, :, :]`` with the last axis
        ordered ``(gab, gar, gbr)``. Without fading this is just the means
        with ``D = 1``. Draws are paired across protocols and powers by
        construction (those axes do not consume randomness).
        """
        if self.fading is None:
            return np.array(
                [[[g.gab, g.gar, g.gbr]] for g in self.gains]
            )
        rng = np.random.default_rng(self.fading.seed)
        draws = np.empty((len(self.gains), self.fading.n_draws, 3))
        for gi, mean in enumerate(self.gains):
            ensemble = sample_gain_ensemble(
                mean, self.fading.n_draws, rng,
                k_factor=self.fading.k_factor,
            )
            for di, realized in enumerate(ensemble):
                draws[gi, di] = (realized.gab, realized.gar, realized.gbr)
        return draws

    def expand(self, gain_draws: np.ndarray | None = None):
        """Yield every :class:`WorkUnit` in C order of the grid.

        ``gain_draws`` (from :meth:`sample_gain_draws`) can be passed in to
        avoid re-sampling; it is sampled on demand otherwise.
        """
        if gain_draws is None:
            gain_draws = self.sample_gain_draws()
        index = 0
        for protocol in self.protocols:
            for power_db in self.powers_db:
                power = db_to_linear(power_db)
                for gi in range(len(self.gains)):
                    for di in range(self.n_draws):
                        gab, gar, gbr = gain_draws[gi, di]
                        yield WorkUnit(
                            index=index,
                            protocol=protocol,
                            gains=LinkGains(gab, gar, gbr),
                            power=power,
                        )
                        index += 1
