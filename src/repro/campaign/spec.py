"""Declarative campaign specifications and their expansion into work units.

A :class:`CampaignSpec` describes a full evaluation grid —
``protocols × powers × channel geometries × fading draws`` — as plain data.
Expansion is deterministic: the fading ensemble is drawn once from the
spec's seed (paired across protocols and powers, so per-realization
comparisons like "HBC dominates MABC" hold draw by draw), and the resulting
work units are pure ``(protocol, gains, power)`` triples with no hidden
state. That determinism is what makes the content-addressed result cache
(:mod:`repro.campaign.cache`) sound: the spec hash fully determines the
numbers.

Two further consequences of that determinism power distributed execution
(:mod:`repro.campaign.engine`):

* the flat C-order unit space can be partitioned into balanced contiguous
  :class:`CampaignShard` slices (``spec.shard(index, count)``) that
  independent processes evaluate without any coordination beyond a shared
  cache directory, and
* any unit range can be checkpointed as chunks whose boundaries are
  aligned to the *global* grid (:func:`chunk_ranges`), so interior chunks
  written by a shard are interchangeable with those of an unsharded run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..channels.pathloss import linear_relay_gains
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear

__all__ = [
    "FadingSpec",
    "CampaignSpec",
    "CampaignShard",
    "WorkUnit",
    "GRID_AXES",
    "DEFAULT_CHUNK_SIZE",
    "chunk_ranges",
]

#: Axis order of every campaign result array.
GRID_AXES = ("protocol", "power", "gains", "draw")

#: Default number of flat grid cells per checkpointed chunk. Small enough
#: that an interrupted campaign loses little work, large enough that the
#: vectorized kernel still amortizes its per-call overhead.
DEFAULT_CHUNK_SIZE = 256


def chunk_ranges(start: int, stop: int, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Split the flat unit range ``[start, stop)`` into checkpoint chunks.

    Boundaries land on global multiples of ``chunk_size`` (not offsets from
    ``start``), so shards of the same spec produce interior chunks that are
    byte-interchangeable with an unsharded run's — only the one chunk a
    shard boundary cuts through differs. Returns ``(start, stop)`` pairs in
    grid order; empty for an empty range.
    """
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk size must be positive, got {chunk_size}")
    if start < 0 or stop < start:
        raise InvalidParameterError(f"invalid unit range [{start}, {stop})")
    if stop == start:
        return ()
    bounds = [start]
    bounds.extend(range((start // chunk_size + 1) * chunk_size, stop, chunk_size))
    bounds.append(stop)
    return tuple(zip(bounds[:-1], bounds[1:]))


@dataclass(frozen=True)
class FadingSpec:
    """Quasi-static fading ensemble parameters of a campaign.

    Attributes
    ----------
    n_draws:
        Ensemble size per channel-geometry grid point.
    seed:
        Seed of the ensemble RNG; the spec owns all randomness.
    k_factor:
        Rician K-factor (0 = Rayleigh) shared by all links.
    """

    n_draws: int
    seed: int = 0
    k_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.n_draws < 1:
            raise InvalidParameterError(f"need at least one draw, got {self.n_draws}")
        if self.k_factor < 0:
            raise InvalidParameterError(
                f"K-factor must be non-negative, got {self.k_factor}"
            )

    def to_dict(self) -> dict:
        """Plain-data form for hashing and serialization."""
        return {
            "n_draws": int(self.n_draws),
            "seed": int(self.seed),
            "k_factor": float(self.k_factor),
        }


@dataclass(frozen=True)
class WorkUnit:
    """One grid point: evaluate a protocol on one concrete channel.

    ``index`` is the flat position in the campaign's
    ``(protocol, power, gains, draw)`` C-order grid, so results can be
    reassembled regardless of execution order.
    """

    index: int
    protocol: Protocol
    gains: LinkGains
    power: float


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative evaluation grid over protocols, powers and channels.

    Attributes
    ----------
    protocols:
        Protocols to evaluate (grid axis 0).
    powers_db:
        Per-node transmit powers in dB (grid axis 1).
    gains:
        Mean channel geometries — path-loss gains of the three links
        (grid axis 2). Use :meth:`from_placements` for a relay-position
        sweep.
    fading:
        Optional quasi-static fading ensemble drawn around each geometry
        (grid axis 3). ``None`` evaluates the means themselves
        (``n_draws = 1``).
    """

    protocols: tuple
    powers_db: tuple
    gains: tuple
    fading: FadingSpec | None = None

    def __post_init__(self) -> None:
        protocols = tuple(self.protocols)
        powers_db = tuple(float(p) for p in self.powers_db)
        gains = tuple(self.gains)
        object.__setattr__(self, "protocols", protocols)
        object.__setattr__(self, "powers_db", powers_db)
        object.__setattr__(self, "gains", gains)
        if not protocols:
            raise InvalidParameterError("at least one protocol required")
        for p in protocols:
            if not isinstance(p, Protocol):
                raise InvalidParameterError(f"{p!r} is not a Protocol")
        if len(set(protocols)) != len(protocols):
            raise InvalidParameterError(f"duplicate protocols in {protocols}")
        if not powers_db:
            raise InvalidParameterError("at least one power point required")
        if not gains:
            raise InvalidParameterError("at least one channel geometry required")
        for g in gains:
            if not isinstance(g, LinkGains):
                raise InvalidParameterError(f"{g!r} is not a LinkGains")

    @classmethod
    def from_placements(
        cls,
        protocols,
        powers_db,
        n_placements: int,
        *,
        path_loss_exponent: float = 3.0,
        fading: FadingSpec | None = None,
    ) -> "CampaignSpec":
        """A relay-placement sweep along the ``a``–``b`` segment.

        Places the relay at ``n_placements`` evenly spaced interior
        positions and derives the gains from the log-distance path-loss law
        (the Fig. 3 cellular scenario).
        """
        if n_placements < 1:
            raise InvalidParameterError(
                f"need at least one placement, got {n_placements}"
            )
        fractions = np.linspace(0.1, 0.9, n_placements)
        gains = tuple(
            linear_relay_gains(float(f), exponent=path_loss_exponent)
            for f in fractions
        )
        return cls(
            protocols=tuple(protocols),
            powers_db=tuple(powers_db),
            gains=gains,
            fading=fading,
        )

    @property
    def n_draws(self) -> int:
        """Fading draws per geometry (1 when no fading is configured)."""
        return self.fading.n_draws if self.fading is not None else 1

    @property
    def grid_shape(self) -> tuple:
        """Result-array shape ``(protocols, powers, gains, draws)``."""
        return (
            len(self.protocols),
            len(self.powers_db),
            len(self.gains),
            self.n_draws,
        )

    @property
    def n_units(self) -> int:
        """Total number of work units in the grid."""
        return int(np.prod(self.grid_shape))

    def shard(self, index: int, count: int) -> "CampaignShard":
        """Deterministic slice ``index`` of ``count`` of the flat grid.

        The flat C-order unit space is partitioned into ``count`` balanced
        contiguous ranges (sizes differ by at most one unit); the parent
        spec rides along, so every shard artifact stays attributable to —
        and cache-keyed by — the parent spec hash.
        """
        return CampaignShard(spec=self, index=index, count=count)

    def to_dict(self) -> dict:
        """Canonical plain-data form (stable across processes)."""
        return {
            "protocols": [p.value for p in self.protocols],
            "powers_db": [float(p) for p in self.powers_db],
            "gains": [[float(g.gab), float(g.gar), float(g.gbr)] for g in self.gains],
            "fading": self.fading.to_dict() if self.fading else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        fading = data.get("fading")
        return cls(
            protocols=tuple(Protocol(p) for p in data["protocols"]),
            powers_db=tuple(data["powers_db"]),
            gains=tuple(LinkGains(*triple) for triple in data["gains"]),
            fading=FadingSpec(**fading) if fading else None,
        )

    def spec_hash(self) -> str:
        """Content hash of the spec (hex SHA-256 of its canonical JSON).

        Floats are serialized via ``repr`` round-tripping inside ``json``,
        which is exact for IEEE doubles, so two specs hash equal iff they
        describe bit-identical grids.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def sample_gain_draws(self) -> np.ndarray:
        """The campaign's channel realizations, shape ``(G, D, 3)``.

        Geometry ``g``'s draws occupy ``[g, :, :]`` with the last axis
        ordered ``(gab, gar, gbr)``. Without fading this is just the means
        with ``D = 1``. Draws are paired across protocols and powers by
        construction (those axes do not consume randomness).
        """
        if self.fading is None:
            return np.array([[[g.gab, g.gar, g.gbr]] for g in self.gains])
        rng = np.random.default_rng(self.fading.seed)
        draws = np.empty((len(self.gains), self.fading.n_draws, 3))
        for gi, mean in enumerate(self.gains):
            ensemble = sample_gain_ensemble(
                mean,
                self.fading.n_draws,
                rng,
                k_factor=self.fading.k_factor,
            )
            for di, realized in enumerate(ensemble):
                draws[gi, di] = (realized.gab, realized.gar, realized.gbr)
        return draws

    def expand(self, gain_draws: np.ndarray | None = None):
        """Yield every :class:`WorkUnit` in C order of the grid.

        ``gain_draws`` (from :meth:`sample_gain_draws`) can be passed in to
        avoid re-sampling; it is sampled on demand otherwise.
        """
        if gain_draws is None:
            gain_draws = self.sample_gain_draws()
        index = 0
        for protocol in self.protocols:
            for power_db in self.powers_db:
                power = db_to_linear(power_db)
                for gi in range(len(self.gains)):
                    for di in range(self.n_draws):
                        gab, gar, gbr = gain_draws[gi, di]
                        yield WorkUnit(
                            index=index,
                            protocol=protocol,
                            gains=LinkGains(gab, gar, gbr),
                            power=power,
                        )
                        index += 1


@dataclass(frozen=True)
class CampaignShard:
    """One contiguous slice of a campaign's flattened evaluation grid.

    ``spec.shard(index, count)`` partitions the flat C-order unit space
    into ``count`` balanced contiguous ranges; shard ``index`` (0-based)
    owns ``unit_range``. Because the parent spec — and therefore its
    content hash — rides along, independent shard processes coordinate
    solely through the content-addressed cache directory: each writes the
    chunks it computed under the parent key, and a gather step
    (:func:`repro.campaign.engine.gather_campaign`) reassembles the full
    grid bitwise-identically to an unsharded run.
    """

    spec: CampaignSpec
    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise InvalidParameterError(f"need at least one shard, got {self.count}")
        if not 0 <= self.index < self.count:
            raise InvalidParameterError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    @property
    def unit_range(self) -> tuple:
        """Flat ``(start, stop)`` unit range owned by this shard."""
        base, extra = divmod(self.spec.n_units, self.count)
        start = self.index * base + min(self.index, extra)
        stop = start + base + (1 if self.index < extra else 0)
        return (start, stop)

    @property
    def start(self) -> int:
        """First flat unit index owned by this shard."""
        return self.unit_range[0]

    @property
    def stop(self) -> int:
        """One past the last flat unit index owned by this shard."""
        return self.unit_range[1]

    @property
    def n_units(self) -> int:
        """Number of grid cells this shard evaluates."""
        start, stop = self.unit_range
        return stop - start

    @property
    def parent_hash(self) -> str:
        """Content hash of the parent spec (shared by all shards)."""
        return self.spec.spec_hash()

    @property
    def label(self) -> str:
        """Operator-facing 1-based name, e.g. ``"shard 2/3"``."""
        return f"shard {self.index + 1}/{self.count}"
