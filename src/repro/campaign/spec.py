"""Declarative campaign specifications and their expansion into work units.

A :class:`CampaignSpec` describes a full evaluation grid as plain data:
the classic axes ``protocols × powers × channel geometries × fading
draws`` plus any number of named extensible axes (:class:`GridAxis`)
inserted between ``power`` and ``gains`` — e.g. a node-pair axis for
multi-pair networks or a power-policy axis for backoff studies.
Expansion is deterministic: the fading ensemble is drawn once from the
spec's seed (paired across protocols and powers, so per-realization
comparisons like "HBC dominates MABC" hold draw by draw), and the resulting
work units are pure ``(protocol, gains, power)`` triples with no hidden
state. That determinism is what makes the content-addressed result cache
(:mod:`repro.campaign.cache`) sound: the spec hash fully determines the
numbers.

Two further consequences of that determinism power distributed execution
(:mod:`repro.campaign.engine`):

* the flat C-order unit space can be partitioned into balanced contiguous
  :class:`CampaignShard` slices (``spec.shard(index, count)``) that
  independent processes evaluate without any coordination beyond a shared
  cache directory, and
* any unit range can be checkpointed as chunks whose boundaries are
  aligned to the *global* grid (:func:`chunk_ranges`), so interior chunks
  written by a shard are interchangeable with those of an unsharded run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..channels.fading import sample_gain_ensemble
from ..channels.gains import LinkGains
from ..channels.pathloss import linear_relay_gains
from ..channels.power import NodePowers
from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear

__all__ = [
    "FadingSpec",
    "LinkSimSpec",
    "TrafficSpec",
    "GridAxis",
    "CampaignSpec",
    "CampaignShard",
    "WorkUnit",
    "GRID_AXES",
    "AXIS_OVERRIDE_KEYS",
    "LINK_CODES",
    "LINK_CRCS",
    "LINK_MODULATIONS",
    "LINK_METRICS",
    "TRAFFIC_METRICS",
    "TRAFFIC_ARRIVALS",
    "TRAFFIC_SCHEDULERS",
    "DEFAULT_CHUNK_SIZE",
    "chunk_ranges",
]

#: Convolutional codes an operational (link-level) campaign may name.
LINK_CODES = ("nasa", "test")

#: CRC codes an operational campaign may name.
LINK_CRCS = ("crc8", "crc16-ccitt", "crc32")

#: Modulations an operational campaign may name.
LINK_MODULATIONS = ("bpsk", "qpsk")

#: Cell-value metrics a traffic (event-driven) campaign may report; each
#: requires a :class:`TrafficSpec` on the link spec.
TRAFFIC_METRICS = ("latency", "stable_throughput")

#: Cell-value metrics an operational campaign may report.
LINK_METRICS = ("goodput", "fer") + TRAFFIC_METRICS

#: Arrival processes a :class:`TrafficSpec` may name
#: (realized by :func:`repro.traffic.generators.arrival_times`).
TRAFFIC_ARRIVALS = ("poisson", "periodic", "bursty")

#: Relay scheduling disciplines a :class:`TrafficSpec` may name (kept in
#: lockstep with :data:`repro.traffic.schedulers.SCHEDULERS`).
TRAFFIC_SCHEDULERS = ("round-robin", "longest-queue", "opportunistic")

#: Canonical axis names of the classic campaign grid. Extensible axes
#: (:attr:`CampaignSpec.extra_axes`) are inserted between ``power`` and
#: ``gains``; :attr:`CampaignSpec.axes` gives the full ordered tuple.
GRID_AXES = ("protocol", "power", "gains", "draw")

#: Override keys an extensible axis value may carry. Each value of an
#: extra axis is a mapping from these keys to per-cell parameter deltas:
#:
#: * ``gain_offsets_db`` — per-link ``(ab, ar, br)`` dB offsets applied to
#:   the drawn channel gains (e.g. a node-pair axis where every pair sits
#:   at its own geometry relative to the swept base geometry);
#: * ``power_db_offset`` — a dB offset added to the grid's transmit power
#:   (e.g. a power-policy axis for finite-SNR backoff studies);
#: * ``node_powers_db`` — per-node ``(a, b, r)`` dB offsets added to the
#:   cell's transmit power, giving each node its own power (e.g. a
#:   power-allocation axis splitting a sum-power budget, arXiv:0810.2746).
#:   Cells whose accumulated offsets are present — even all-zero — take
#:   the per-node kernel path; cells without the key keep the classic
#:   scalar power, so allocation-free specs hash and evaluate as before.
AXIS_OVERRIDE_KEYS = ("gain_offsets_db", "power_db_offset", "node_powers_db")

#: Default number of flat grid cells per checkpointed chunk. Small enough
#: that an interrupted campaign loses little work, large enough that the
#: vectorized kernel still amortizes its per-call overhead.
DEFAULT_CHUNK_SIZE = 256


def chunk_ranges(start: int, stop: int, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Split the flat unit range ``[start, stop)`` into checkpoint chunks.

    Boundaries land on global multiples of ``chunk_size`` (not offsets from
    ``start``), so shards of the same spec produce interior chunks that are
    byte-interchangeable with an unsharded run's — only the one chunk a
    shard boundary cuts through differs. Returns ``(start, stop)`` pairs in
    grid order; empty for an empty range.
    """
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk size must be positive, got {chunk_size}")
    if start < 0 or stop < start:
        raise InvalidParameterError(f"invalid unit range [{start}, {stop})")
    if stop == start:
        return ()
    bounds = [start]
    bounds.extend(range((start // chunk_size + 1) * chunk_size, stop, chunk_size))
    bounds.append(stop)
    return tuple(zip(bounds[:-1], bounds[1:]))


@dataclass(frozen=True)
class FadingSpec:
    """Quasi-static fading ensemble parameters of a campaign.

    Attributes
    ----------
    n_draws:
        Ensemble size per channel-geometry grid point.
    seed:
        Seed of the ensemble RNG; the spec owns all randomness.
    k_factor:
        Rician K-factor (0 = Rayleigh) shared by all links.
    """

    n_draws: int
    seed: int = 0
    k_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.n_draws < 1:
            raise InvalidParameterError(f"need at least one draw, got {self.n_draws}")
        if self.k_factor < 0:
            raise InvalidParameterError(
                f"K-factor must be non-negative, got {self.k_factor}"
            )

    def to_dict(self) -> dict:
        """Plain-data form for hashing and serialization."""
        return {
            "n_draws": int(self.n_draws),
            "seed": int(self.seed),
            "k_factor": float(self.k_factor),
        }


@dataclass(frozen=True)
class TrafficSpec:
    """Event-driven traffic parameters of a queueing campaign cell.

    When a :class:`LinkSimSpec` carries one of these, every grid cell
    runs the discrete-event traffic simulation of
    :func:`repro.traffic.simulator.simulate_traffic` — ``K`` terminal
    pairs sharing the relay for ``n_rounds`` slots, with spec-seeded
    arrivals, finite FIFO buffers, stop-and-wait ARQ and a named
    scheduling discipline — and the cell value is the link spec's
    traffic metric (:data:`TRAFFIC_METRICS`). All randomness descends
    from the cell's ``(seed, flat index)`` generator through a
    documented spawn tree, so traffic values keep the campaign engine's
    bitwise executor/shard/cache guarantees.

    Attributes
    ----------
    rates:
        Per-pair arrival rate in frames per slot, applied to *each*
        direction of the pair. Either one rate per pair or a single rate
        shared by all pairs.
    arrival:
        Arrival process (:data:`TRAFFIC_ARRIVALS`).
    scheduler:
        Relay scheduling discipline (:data:`TRAFFIC_SCHEDULERS`).
    buffer_frames:
        Per-flow FIFO capacity; arrivals beyond it are buffer drops.
    arq_limit:
        Stop-and-wait attempt limit per frame (1 = no retransmission).
    pair_offsets_db:
        Per-pair ``(ab, ar, br)`` dB offsets on the cell's base
        geometry — one triple per pair sharing the relay, the
        arXiv:1002.0123 multi-pair layout. The pairs live *inside* the
        cell (they contend for the same relay), unlike the analytic
        ``pair`` grid axis whose pairs are evaluated independently.
    burst_size:
        Frames per burst of the ``bursty`` arrival process (serialized
        only then).
    latency_quantile:
        The delivery-latency quantile the ``latency`` metric reports.
    offered_loads:
        Rate scale factors of the ``stable_throughput`` sweep (required
        by — and only meaningful with — that metric).
    knee_tolerance:
        Delivered/offered shortfall tolerated before a load counts as
        unstable.
    """

    rates: tuple = (0.5,)
    arrival: str = "poisson"
    scheduler: str = "round-robin"
    buffer_frames: int = 16
    arq_limit: int = 4
    pair_offsets_db: tuple = ((0.0, 0.0, 0.0),)
    burst_size: int = 4
    latency_quantile: float = 0.95
    offered_loads: tuple | None = None
    knee_tolerance: float = 0.05

    def __post_init__(self) -> None:
        rates = tuple(float(r) for r in self.rates)
        offsets = tuple(
            tuple(float(x) for x in triple) for triple in self.pair_offsets_db
        )
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "pair_offsets_db", offsets)
        if self.offered_loads is not None:
            loads = tuple(float(s) for s in self.offered_loads)
            object.__setattr__(self, "offered_loads", loads)
        if self.arrival not in TRAFFIC_ARRIVALS:
            raise InvalidParameterError(
                f"unknown arrival kind {self.arrival!r}; "
                f"choose from {TRAFFIC_ARRIVALS}"
            )
        if self.scheduler not in TRAFFIC_SCHEDULERS:
            raise InvalidParameterError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {TRAFFIC_SCHEDULERS}"
            )
        if not offsets:
            raise InvalidParameterError("at least one pair required")
        for triple in offsets:
            if len(triple) != 3:
                raise InvalidParameterError(
                    f"a pair needs one dB offset per link (ab, ar, br), "
                    f"got {triple!r}"
                )
        if not rates or any(r <= 0 for r in rates):
            raise InvalidParameterError(
                f"arrival rates must be positive, got {rates!r}"
            )
        if len(rates) not in (1, len(offsets)):
            raise InvalidParameterError(
                f"{len(offsets)} pairs need one shared rate or one rate "
                f"each, got {len(rates)}"
            )
        if self.buffer_frames < 1:
            raise InvalidParameterError(
                f"buffer capacity must be positive, got {self.buffer_frames}"
            )
        if self.arq_limit < 1:
            raise InvalidParameterError(
                f"ARQ attempt limit must be positive, got {self.arq_limit}"
            )
        if self.burst_size < 1:
            raise InvalidParameterError(
                f"burst size must be positive, got {self.burst_size}"
            )
        if not 0.0 < self.latency_quantile <= 1.0:
            raise InvalidParameterError(
                f"latency quantile must be in (0, 1], "
                f"got {self.latency_quantile}"
            )
        if not 0.0 <= self.knee_tolerance < 1.0:
            raise InvalidParameterError(
                f"knee tolerance must be in [0, 1), got {self.knee_tolerance}"
            )
        if self.offered_loads is not None:
            if not self.offered_loads or any(s <= 0 for s in self.offered_loads):
                raise InvalidParameterError(
                    f"offered loads must be positive scale factors, "
                    f"got {self.offered_loads!r}"
                )

    @property
    def n_pairs(self) -> int:
        """Number of terminal pairs sharing the relay."""
        return len(self.pair_offsets_db)

    def pair_rates(self) -> tuple:
        """Per-pair arrival rates, broadcast to one rate per pair."""
        if len(self.rates) == self.n_pairs:
            return self.rates
        return self.rates * self.n_pairs

    def to_dict(self) -> dict:
        """Plain-data form for hashing and serialization.

        The optional knobs (``burst_size``, ``latency_quantile``,
        ``offered_loads`` with its tolerance) are emitted only when they
        matter, following the serialize-only-when-set discipline: adding
        a knob later can never move the hash of a spec that does not use
        it.
        """
        data = {
            "rates": [float(r) for r in self.rates],
            "arrival": self.arrival,
            "scheduler": self.scheduler,
            "buffer_frames": int(self.buffer_frames),
            "arq_limit": int(self.arq_limit),
            "pair_offsets_db": [list(triple) for triple in self.pair_offsets_db],
        }
        if self.arrival == "bursty":
            data["burst_size"] = int(self.burst_size)
        if self.latency_quantile != 0.95:
            data["latency_quantile"] = float(self.latency_quantile)
        if self.offered_loads is not None:
            data["offered_loads"] = [float(s) for s in self.offered_loads]
            data["knee_tolerance"] = float(self.knee_tolerance)
        return data


@dataclass(frozen=True)
class LinkSimSpec:
    """Link-level simulation parameters of an *operational* campaign.

    When a :class:`CampaignSpec` carries one of these, every grid cell is
    evaluated by running the concrete decode-and-forward system
    (:func:`repro.simulation.montecarlo.simulate_protocol`) instead of the
    analytic LP kernel, and the cell value is the campaign's total
    goodput in bits per channel symbol. Cell ``i`` of the flat grid seeds
    its generator from ``(seed, i)``, so operational values — like
    analytic ones — are a pure function of the spec, which keeps every
    executor, chunking, sharding and the content-addressed cache bitwise
    interchangeable.

    Attributes
    ----------
    n_rounds:
        Protocol rounds simulated per grid cell — the fixed budget, or
        the initial wave when adaptive allocation is on.
    payload_bits:
        Payload size per direction and round.
    seed:
        Base seed of the per-cell generators.
    code / crc / modulation:
        Named codec components (:data:`LINK_CODES`, :data:`LINK_CRCS`,
        :data:`LINK_MODULATIONS`); the default is the production codec.
    metric:
        Cell value reported into the grid (:data:`LINK_METRICS`):
        ``"goodput"`` (bits/symbol, the default), ``"fer"`` (combined
        frame error rate of both directions), or — with ``traffic``
        set — ``"latency"`` (the configured delivery-latency quantile in
        slots) or ``"stable_throughput"`` (the largest sustained offered
        load in frames/slot, from the offered-load sweep).
    target_rel_error / max_rounds:
        Optional adaptive round allocation (set both or neither): cells
        run in the escalating spec-derived waves of
        :func:`repro.simulation.montecarlo.wave_bounds` and stop at the
        first boundary where the combined-FER relative standard error
        meets the target, never exceeding ``max_rounds`` rounds. The
        schedule is a pure function of these (hashed) fields, so
        adaptive cell values stay cacheable and shard-stable. All three
        optional fields serialize only when set, so pre-existing
        operational spec hashes are untouched.
    traffic:
        Optional :class:`TrafficSpec` switching the cell evaluation from
        bare link rounds to the event-driven traffic simulation
        (queues, ARQ, multi-pair scheduling); ``n_rounds`` then counts
        the slot horizon — one potential protocol round per slot.
        Required by (and only valid with) the traffic metrics
        (:data:`TRAFFIC_METRICS`); incompatible with adaptive round
        budgets. Serialized only when set, so every pre-existing link
        spec hash is untouched.
    importance_sampling:
        Optional
        :class:`~repro.simulation.sampling.ImportanceSamplingSpec`
        switching the cell evaluation to a twisted-noise proposal with
        exact likelihood-ratio reweighting — the rare-event estimator
        for deep-fade FER campaigns. Requires ``metric="fer"`` (the
        weighted estimator reweights frame errors; goodput and the
        traffic metrics have no weighted form). Serialized only when
        set, so every pre-existing link spec hash is untouched.
    """

    n_rounds: int
    payload_bits: int = 128
    seed: int = 0
    code: str = "nasa"
    crc: str = "crc16-ccitt"
    modulation: str = "bpsk"
    metric: str = "goodput"
    target_rel_error: float | None = None
    max_rounds: int | None = None
    traffic: TrafficSpec | None = None
    importance_sampling: "object | None" = None

    def __post_init__(self) -> None:
        if isinstance(self.traffic, dict):
            object.__setattr__(self, "traffic", TrafficSpec(**self.traffic))
        if self.traffic is not None and not isinstance(self.traffic, TrafficSpec):
            raise InvalidParameterError(f"{self.traffic!r} is not a TrafficSpec")
        if self.importance_sampling is not None:
            from ..simulation.sampling import ImportanceSamplingSpec

            if isinstance(self.importance_sampling, dict):
                object.__setattr__(
                    self,
                    "importance_sampling",
                    ImportanceSamplingSpec(**self.importance_sampling),
                )
            if not isinstance(self.importance_sampling, ImportanceSamplingSpec):
                raise InvalidParameterError(
                    f"{self.importance_sampling!r} is not an ImportanceSamplingSpec"
                )
            if self.traffic is not None or self.metric in TRAFFIC_METRICS:
                raise InvalidParameterError(
                    "importance sampling reweights bare link rounds; it is "
                    "incompatible with traffic coupling "
                    f"(metric {self.metric!r})"
                )
            if self.metric != "fer":
                raise InvalidParameterError(
                    "importance sampling reweights the FER estimator; "
                    f'metric must be "fer", got {self.metric!r}'
                )
        if self.n_rounds < 1:
            raise InvalidParameterError(
                f"need at least one round per cell, got {self.n_rounds}"
            )
        if self.payload_bits < 1:
            raise InvalidParameterError(
                f"payload must be at least one bit, got {self.payload_bits}"
            )
        for value, options, label in (
            (self.code, LINK_CODES, "code"),
            (self.crc, LINK_CRCS, "crc"),
            (self.modulation, LINK_MODULATIONS, "modulation"),
            (self.metric, LINK_METRICS, "metric"),
        ):
            if value not in options:
                raise InvalidParameterError(
                    f"unknown {label} {value!r}; choose from {options}"
                )
        if (self.metric in TRAFFIC_METRICS) != (self.traffic is not None):
            raise InvalidParameterError(
                f"traffic parameters and a traffic metric "
                f"({TRAFFIC_METRICS}) go together: set both or neither"
            )
        if self.metric == "stable_throughput" and self.traffic.offered_loads is None:
            raise InvalidParameterError(
                "the stable_throughput metric sweeps offered loads; set "
                "TrafficSpec.offered_loads"
            )
        if self.target_rel_error is not None or self.max_rounds is not None:
            if self.traffic is not None:
                raise InvalidParameterError(
                    "traffic campaigns run a fixed slot horizon; adaptive "
                    "round budgets apply to bare link campaigns only"
                )
            # One source of truth for the adaptive-budget rules: the wave
            # schedule itself. A spec validates iff its schedule derives.
            from ..simulation.montecarlo import wave_bounds

            wave_bounds(
                self.n_rounds,
                target_rel_error=self.target_rel_error,
                max_rounds=self.max_rounds,
            )

    def codec(self):
        """Build the named :class:`~repro.simulation.linkcodec.LinkCodec`."""
        from ..simulation.convolutional import NASA_CODE, TEST_CODE
        from ..simulation.crc import CRC8, CRC16_CCITT, CRC32
        from ..simulation.linkcodec import LinkCodec
        from ..simulation.modulation import Bpsk, Qpsk

        codes = {"nasa": NASA_CODE, "test": TEST_CODE}
        crcs = {"crc8": CRC8, "crc16-ccitt": CRC16_CCITT, "crc32": CRC32}
        modulations = {"bpsk": Bpsk, "qpsk": Qpsk}
        return LinkCodec(
            payload_bits=self.payload_bits,
            code=codes[self.code],
            crc=crcs[self.crc],
            modulation=modulations[self.modulation](),
        )

    def to_dict(self) -> dict:
        """Plain-data form for hashing and serialization.

        The post-fusion fields (``metric``, ``target_rel_error``,
        ``max_rounds``) are emitted only when they deviate from the
        defaults, so every pre-existing operational spec serializes —
        and hashes — exactly as before (golden-tested).
        """
        data = {
            "n_rounds": int(self.n_rounds),
            "payload_bits": int(self.payload_bits),
            "seed": int(self.seed),
            "code": self.code,
            "crc": self.crc,
            "modulation": self.modulation,
        }
        if self.metric != "goodput":
            data["metric"] = self.metric
        if self.target_rel_error is not None:
            data["target_rel_error"] = float(self.target_rel_error)
            data["max_rounds"] = int(self.max_rounds)
        if self.traffic is not None:
            data["traffic"] = self.traffic.to_dict()
        if self.importance_sampling is not None:
            data["importance_sampling"] = self.importance_sampling.to_dict()
        return data


def _jsonable(value):
    """Canonical plain-data form of an axis value (stable across runs)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    raise InvalidParameterError(
        f"axis value {value!r} is not JSON-serializable plain data"
    )


@dataclass(frozen=True)
class GridAxis:
    """One named, ordered dimension of a campaign grid.

    Attributes
    ----------
    name:
        Axis name; unique within a spec and distinct from the canonical
        :data:`GRID_AXES` names when used as an extensible axis.
    values:
        The axis points, in grid order. For extensible axes each value is
        a mapping of :data:`AXIS_OVERRIDE_KEYS` to parameter deltas.
    labels:
        Optional operator-facing labels, aligned with ``values``;
        ``display_labels`` falls back to ``str(value)``. Labels are
        cosmetic: they serialize with the axis but are excluded from the
        content hash, since they can never change the evaluated numbers.

    The axis contributes to the campaign's content hash through
    :meth:`to_dict` with ``labels=False``, which canonicalizes every
    value to plain JSON data — two axes hash equal iff they describe
    numerically identical grid dimensions.
    """

    name: str
    values: tuple
    labels: tuple | None = None

    def __post_init__(self) -> None:
        # Canonicalize values to plain JSON data up front, so equality and
        # hashing are representation-independent (tuple vs list, numpy
        # scalar vs float) and ``from_dict(to_dict(...))`` round-trips
        # to an equal axis.
        object.__setattr__(self, "values", tuple(_jsonable(v) for v in self.values))
        if self.labels is not None:
            object.__setattr__(
                self, "labels", tuple(str(label) for label in self.labels)
            )
        if not isinstance(self.name, str) or not self.name:
            raise InvalidParameterError(
                f"axis name must be a non-empty string, got {self.name!r}"
            )
        if not self.values:
            raise InvalidParameterError(f"axis {self.name!r} needs at least one value")
        if self.labels is not None and len(self.labels) != len(self.values):
            raise InvalidParameterError(
                f"axis {self.name!r} has {len(self.values)} values but "
                f"{len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.values)

    @property
    def display_labels(self) -> tuple:
        """The per-value labels (``str(value)`` where none were given)."""
        if self.labels is not None:
            return self.labels
        return tuple(str(value) for value in self.values)

    def to_dict(self, *, labels: bool = True) -> dict:
        """Canonical plain-data form.

        With ``labels=False`` the cosmetic labels are omitted — the form
        used for content hashing, so axes that differ only in labeling
        share cache entries (their numbers are identical by construction).
        """
        data = {
            "name": self.name,
            "values": [_jsonable(value) for value in self.values],
        }
        if labels:
            data["labels"] = list(self.labels) if self.labels is not None else None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "GridAxis":
        """Inverse of :meth:`to_dict`."""
        labels = data.get("labels")
        return cls(
            name=data["name"],
            values=tuple(data["values"]),
            labels=tuple(labels) if labels is not None else None,
        )


@dataclass(frozen=True)
class WorkUnit:
    """One grid point: evaluate a protocol on one concrete channel.

    ``index`` is the flat position in the campaign's
    ``(protocol, power, gains, draw)`` C-order grid, so results can be
    reassembled regardless of execution order. ``power`` is the classic
    linear scalar, or a :class:`~repro.channels.power.NodePowers` when the
    spec carries a ``node_powers_db`` allocation axis.
    """

    index: int
    protocol: Protocol
    gains: LinkGains
    power: float | NodePowers


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative evaluation grid over protocols, powers and channels.

    Attributes
    ----------
    protocols:
        Protocols to evaluate (grid axis 0).
    powers_db:
        Per-node transmit powers in dB (grid axis 1).
    gains:
        Mean channel geometries — path-loss gains of the three links
        (grid axis 2). Use :meth:`from_placements` for a relay-position
        sweep.
    fading:
        Optional quasi-static fading ensemble drawn around each geometry
        (the trailing ``draw`` axis). ``None`` evaluates the means
        themselves (``n_draws = 1``).
    extra_axes:
        Extensible named axes inserted between ``power`` and ``gains`` in
        grid order. Each axis is a :class:`GridAxis` whose values are
        mappings of :data:`AXIS_OVERRIDE_KEYS` to per-cell parameter
        deltas (e.g. a ``pair`` axis of per-pair gain offsets, or a
        power-policy axis of dB backoffs). Specs without extra axes keep
        the exact classic 4-axis content hash, so existing cache entries
        and shard artifacts survive the generalization.
    link:
        Optional :class:`LinkSimSpec` switching the campaign from the
        analytic LP kernel to the operational link-level simulator: each
        cell's value becomes the measured goodput (bits/symbol) of an
        independently seeded simulation campaign. ``None`` (the default)
        keeps the classic analytic evaluation — and, like ``extra_axes``,
        is omitted from the serialized form, so analytic spec hashes are
        untouched.
    """

    protocols: tuple
    powers_db: tuple
    gains: tuple
    fading: FadingSpec | None = None
    extra_axes: tuple = ()
    link: LinkSimSpec | None = None

    def __post_init__(self) -> None:
        if self.link is not None and not isinstance(self.link, LinkSimSpec):
            raise InvalidParameterError(f"{self.link!r} is not a LinkSimSpec")
        protocols = tuple(self.protocols)
        powers_db = tuple(float(p) for p in self.powers_db)
        gains = tuple(self.gains)
        extra_axes = tuple(self.extra_axes)
        object.__setattr__(self, "protocols", protocols)
        object.__setattr__(self, "powers_db", powers_db)
        object.__setattr__(self, "gains", gains)
        object.__setattr__(self, "extra_axes", extra_axes)
        if not protocols:
            raise InvalidParameterError("at least one protocol required")
        for p in protocols:
            if not isinstance(p, Protocol):
                raise InvalidParameterError(f"{p!r} is not a Protocol")
        if len(set(protocols)) != len(protocols):
            raise InvalidParameterError(f"duplicate protocols in {protocols}")
        if not powers_db:
            raise InvalidParameterError("at least one power point required")
        if not gains:
            raise InvalidParameterError("at least one channel geometry required")
        for g in gains:
            if not isinstance(g, LinkGains):
                raise InvalidParameterError(f"{g!r} is not a LinkGains")
        self._validate_extra_axes(extra_axes)
        if self.link is not None and any(
            "node_powers_db" in value
            for axis in extra_axes
            for value in axis.values
        ):
            raise InvalidParameterError(
                "operational (link-level) campaigns model one shared transmit "
                "power; node_powers_db axes require the analytic kernel"
            )

    @staticmethod
    def _validate_extra_axes(extra_axes: tuple) -> None:
        seen = set(GRID_AXES)
        for axis in extra_axes:
            if not isinstance(axis, GridAxis):
                raise InvalidParameterError(f"{axis!r} is not a GridAxis")
            if axis.name in seen:
                raise InvalidParameterError(
                    f"duplicate or reserved axis name {axis.name!r}"
                )
            seen.add(axis.name)
            for value in axis.values:
                if not isinstance(value, dict):
                    raise InvalidParameterError(
                        f"axis {axis.name!r} value {value!r} must be a mapping "
                        f"of override keys {AXIS_OVERRIDE_KEYS}"
                    )
                unknown = set(value) - set(AXIS_OVERRIDE_KEYS)
                if unknown:
                    raise InvalidParameterError(
                        f"axis {axis.name!r} has unsupported override keys "
                        f"{sorted(unknown)}; supported: {AXIS_OVERRIDE_KEYS}"
                    )
                offsets = value.get("gain_offsets_db")
                if offsets is not None and len(tuple(offsets)) != 3:
                    raise InvalidParameterError(
                        f"axis {axis.name!r} gain_offsets_db must have one "
                        f"offset per link (ab, ar, br), got {offsets!r}"
                    )
                node_offsets = value.get("node_powers_db")
                if node_offsets is not None and len(tuple(node_offsets)) != 3:
                    raise InvalidParameterError(
                        f"axis {axis.name!r} node_powers_db must have one "
                        f"offset per node (a, b, r), got {node_offsets!r}"
                    )

    @classmethod
    def from_placements(
        cls,
        protocols,
        powers_db,
        n_placements: int,
        *,
        path_loss_exponent: float = 3.0,
        fading: FadingSpec | None = None,
    ) -> "CampaignSpec":
        """A relay-placement sweep along the ``a``–``b`` segment.

        Places the relay at ``n_placements`` evenly spaced interior
        positions and derives the gains from the log-distance path-loss law
        (the Fig. 3 cellular scenario).
        """
        if n_placements < 1:
            raise InvalidParameterError(
                f"need at least one placement, got {n_placements}"
            )
        fractions = np.linspace(0.1, 0.9, n_placements)
        gains = tuple(
            linear_relay_gains(float(f), exponent=path_loss_exponent)
            for f in fractions
        )
        return cls(
            protocols=tuple(protocols),
            powers_db=tuple(powers_db),
            gains=gains,
            fading=fading,
        )

    @property
    def n_draws(self) -> int:
        """Fading draws per geometry (1 when no fading is configured)."""
        return self.fading.n_draws if self.fading is not None else 1

    @property
    def grid_shape(self) -> tuple:
        """Result-array shape ``(protocols, powers, *extra, gains, draws)``."""
        return (
            len(self.protocols),
            len(self.powers_db),
            *(len(axis) for axis in self.extra_axes),
            len(self.gains),
            self.n_draws,
        )

    @property
    def axes(self) -> tuple:
        """Every grid dimension as a named :class:`GridAxis`, in order.

        Canonical axes carry their :data:`GRID_AXES` names (``gains``
        values are ``(gab, gar, gbr)`` triples, ``draw`` values are the
        draw indices); extensible axes appear verbatim between ``power``
        and ``gains``.
        """
        return (
            GridAxis(
                name="protocol",
                values=tuple(p.value for p in self.protocols),
                labels=tuple(p.name for p in self.protocols),
            ),
            GridAxis(
                name="power",
                values=self.powers_db,
                labels=tuple(f"{p:g} dB" for p in self.powers_db),
            ),
            *self.extra_axes,
            GridAxis(
                name="gains",
                values=tuple((g.gab, g.gar, g.gbr) for g in self.gains),
            ),
            GridAxis(name="draw", values=tuple(range(self.n_draws))),
        )

    @property
    def axis_names(self) -> tuple:
        """Ordered names of every grid dimension."""
        return (
            "protocol",
            "power",
            *(axis.name for axis in self.extra_axes),
            "gains",
            "draw",
        )

    @property
    def n_channels(self) -> int:
        """Concrete channels per block: geometries times draws."""
        return len(self.gains) * self.n_draws

    @property
    def block_shape(self) -> tuple:
        """Shape of the leading block axes ``(protocols, powers, *extra)``.

        The flat C-order unit index factors as ``(block, channel)``: a
        block fixes the protocol, the transmit power and every extensible
        axis value, a channel is one ``(geometry, draw)`` pair. This
        factorization is what keeps the execution engine axis-agnostic.
        """
        return (
            len(self.protocols),
            len(self.powers_db),
            *(len(axis) for axis in self.extra_axes),
        )

    @property
    def n_blocks(self) -> int:
        """Number of ``(protocol, power, *extra)`` blocks in the grid."""
        return int(np.prod(self.block_shape))

    def block_params(self, block: int):
        """Evaluation parameters of one block of the flat grid.

        Returns ``(protocol, power, gain_scale)`` where ``gain_scale`` is
        either ``None`` or the per-link linear factors accumulated from
        every extensible axis's ``gain_offsets_db``. ``power`` is the
        classic linear scalar unless some axis set ``node_powers_db``, in
        which case it is a :class:`~repro.channels.power.NodePowers` whose
        node powers apply the accumulated per-node dB offsets on top of
        the cell's base power. Deterministic elementwise arithmetic, so
        how the grid is chunked or sharded can never change the evaluated
        numbers.
        """
        if not 0 <= block < self.n_blocks:
            raise InvalidParameterError(
                f"block index {block} outside [0, {self.n_blocks})"
            )
        indices = np.unravel_index(block, self.block_shape)
        power_db = self.powers_db[indices[1]]
        gain_scale = None
        node_db = None
        for axis, value_index in zip(self.extra_axes, indices[2:]):
            value = axis.values[value_index]
            offset = value.get("power_db_offset")
            if offset is not None:
                power_db = power_db + float(offset)
            node_offsets = value.get("node_powers_db")
            if node_offsets is not None:
                deltas = tuple(float(x) for x in node_offsets)
                if node_db is None:
                    node_db = deltas
                else:
                    node_db = tuple(base + d for base, d in zip(node_db, deltas))
            gain_offsets = value.get("gain_offsets_db")
            if gain_offsets is not None:
                scale = np.array([db_to_linear(float(x)) for x in gain_offsets])
                gain_scale = scale if gain_scale is None else gain_scale * scale
        if node_db is None:
            power = db_to_linear(power_db)
        else:
            power = NodePowers(
                pa=db_to_linear(power_db + node_db[0]),
                pb=db_to_linear(power_db + node_db[1]),
                pr=db_to_linear(power_db + node_db[2]),
            )
        return self.protocols[indices[0]], power, gain_scale

    @property
    def n_units(self) -> int:
        """Total number of work units in the grid."""
        return int(np.prod(self.grid_shape))

    def shard(self, index: int, count: int) -> "CampaignShard":
        """Deterministic slice ``index`` of ``count`` of the flat grid.

        The flat C-order unit space is partitioned into ``count`` balanced
        contiguous ranges (sizes differ by at most one unit); the parent
        spec rides along, so every shard artifact stays attributable to —
        and cache-keyed by — the parent spec hash.
        """
        return CampaignShard(spec=self, index=index, count=count)

    def to_dict(self, *, labels: bool = True) -> dict:
        """Canonical plain-data form (stable across processes).

        The ``axes`` key is only present when extensible axes exist, so a
        classic 4-axis spec serializes — and therefore hashes — exactly as
        it did before axes became extensible (golden-hash tested).
        ``labels=False`` is the hashing form: axis labels are cosmetic
        and excluded from the content key.
        """
        data = {
            "protocols": [p.value for p in self.protocols],
            "powers_db": [float(p) for p in self.powers_db],
            "gains": [[float(g.gab), float(g.gar), float(g.gbr)] for g in self.gains],
            "fading": self.fading.to_dict() if self.fading else None,
        }
        if self.extra_axes:
            data["axes"] = [axis.to_dict(labels=labels) for axis in self.extra_axes]
        if self.link is not None:
            data["link"] = self.link.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        fading = data.get("fading")
        link = data.get("link")
        return cls(
            protocols=tuple(Protocol(p) for p in data["protocols"]),
            powers_db=tuple(data["powers_db"]),
            gains=tuple(LinkGains(*triple) for triple in data["gains"]),
            fading=FadingSpec(**fading) if fading else None,
            extra_axes=tuple(
                GridAxis.from_dict(axis) for axis in data.get("axes", ())
            ),
            link=LinkSimSpec(**link) if link else None,
        )

    def spec_hash(self) -> str:
        """Content hash of the spec (hex SHA-256 of its canonical JSON).

        Floats are serialized via ``repr`` round-tripping inside ``json``,
        which is exact for IEEE doubles, so two specs hash equal iff they
        describe bit-identical grids. Cosmetic axis labels are excluded:
        relabeling an axis can never change the numbers, so it must not
        move the cache key.
        """
        canonical = json.dumps(
            self.to_dict(labels=False), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def sample_gain_draws(self) -> np.ndarray:
        """The campaign's channel realizations, shape ``(G, D, 3)``.

        Geometry ``g``'s draws occupy ``[g, :, :]`` with the last axis
        ordered ``(gab, gar, gbr)``. Without fading this is just the means
        with ``D = 1``. Draws are paired across protocols and powers by
        construction (those axes do not consume randomness).
        """
        if self.fading is None:
            return np.array([[[g.gab, g.gar, g.gbr]] for g in self.gains])
        rng = np.random.default_rng(self.fading.seed)
        draws = np.empty((len(self.gains), self.fading.n_draws, 3))
        for gi, mean in enumerate(self.gains):
            ensemble = sample_gain_ensemble(
                mean,
                self.fading.n_draws,
                rng,
                k_factor=self.fading.k_factor,
            )
            for di, realized in enumerate(ensemble):
                draws[gi, di] = (realized.gab, realized.gar, realized.gbr)
        return draws

    def expand(self, gain_draws: np.ndarray | None = None):
        """Yield every :class:`WorkUnit` in C order of the grid.

        ``gain_draws`` (from :meth:`sample_gain_draws`) can be passed in to
        avoid re-sampling; it is sampled on demand otherwise. Draws are
        shared across extensible axes (each axis value sees the same fade,
        transformed by its own per-link offsets), so per-realization
        comparisons stay paired along every non-channel axis.
        """
        if gain_draws is None:
            gain_draws = self.sample_gain_draws()
        index = 0
        for block in range(self.n_blocks):
            protocol, power, gain_scale = self.block_params(block)
            for gi in range(len(self.gains)):
                for di in range(self.n_draws):
                    gab, gar, gbr = gain_draws[gi, di]
                    if gain_scale is not None:
                        gab = gab * gain_scale[0]
                        gar = gar * gain_scale[1]
                        gbr = gbr * gain_scale[2]
                    yield WorkUnit(
                        index=index,
                        protocol=protocol,
                        gains=LinkGains(gab, gar, gbr),
                        power=power,
                    )
                    index += 1


@dataclass(frozen=True)
class CampaignShard:
    """One contiguous slice of a campaign's flattened evaluation grid.

    ``spec.shard(index, count)`` partitions the flat C-order unit space
    into ``count`` balanced contiguous ranges; shard ``index`` (0-based)
    owns ``unit_range``. Because the parent spec — and therefore its
    content hash — rides along, independent shard processes coordinate
    solely through the content-addressed cache directory: each writes the
    chunks it computed under the parent key, and a gather step
    (:func:`repro.campaign.engine.gather_campaign`) reassembles the full
    grid bitwise-identically to an unsharded run.
    """

    spec: CampaignSpec
    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise InvalidParameterError(f"need at least one shard, got {self.count}")
        if not 0 <= self.index < self.count:
            raise InvalidParameterError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    @property
    def unit_range(self) -> tuple:
        """Flat ``(start, stop)`` unit range owned by this shard."""
        base, extra = divmod(self.spec.n_units, self.count)
        start = self.index * base + min(self.index, extra)
        stop = start + base + (1 if self.index < extra else 0)
        return (start, stop)

    @property
    def start(self) -> int:
        """First flat unit index owned by this shard."""
        return self.unit_range[0]

    @property
    def stop(self) -> int:
        """One past the last flat unit index owned by this shard."""
        return self.unit_range[1]

    @property
    def n_units(self) -> int:
        """Number of grid cells this shard evaluates."""
        start, stop = self.unit_range
        return stop - start

    @property
    def parent_hash(self) -> str:
        """Content hash of the parent spec (shared by all shards)."""
        return self.spec.spec_hash()

    @property
    def label(self) -> str:
        """Operator-facing 1-based name, e.g. ``"shard 2/3"``."""
        return f"shard {self.index + 1}/{self.count}"
