"""On-disk content-addressed store for campaign results.

Results are keyed by the campaign spec's content hash (plus the kernel
version), so a repeated benchmark or CI run of the same grid is a cache
hit and costs one ``np.load``. Because every executor produces bitwise
identical values (see :mod:`repro.campaign.executors`), the key does not —
and must not — include the executor.

Layout: one ``<key>.npz`` per campaign under the cache directory,
containing the result array and the spec's canonical JSON for post-hoc
inspection. Writes are atomic (temp file + rename) so concurrent runs and
interrupted processes can never serve a torn entry; unreadable entries are
treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

__all__ = ["CampaignCache", "default_cache_dir"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CAMPAIGN_CACHE"


def default_cache_dir() -> Path:
    """The campaign cache directory.

    ``$REPRO_CAMPAIGN_CACHE`` when set, otherwise
    ``~/.cache/repro/campaigns``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "campaigns"


class CampaignCache:
    """A directory of content-addressed campaign result files."""

    def __init__(self, directory=None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """The entry file for a content key."""
        return self.directory / f"{key}.npz"

    def load(self, key: str) -> np.ndarray | None:
        """The cached value array for ``key``, or ``None`` on a miss.

        Corrupt or truncated entries count as misses: the caller recomputes
        and overwrites them.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as entry:
                return np.asarray(entry["values"])
        except (OSError, ValueError, KeyError, BadZipFile):
            return None

    def store(self, key: str, values: np.ndarray, spec_dict: dict) -> Path:
        """Atomically persist a result array under ``key``.

        The spec's canonical JSON rides along inside the archive so cache
        entries remain self-describing.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    values=values,
                    spec_json=np.array(json.dumps(spec_dict, sort_keys=True)),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for entry in self.directory.glob("*.npz"):
            entry.unlink()
            removed += 1
        return removed
