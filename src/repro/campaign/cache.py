"""On-disk content-addressed store for campaign results.

Results are keyed by the campaign spec's content hash (plus the kernel
version), so a repeated benchmark or CI run of the same grid is a cache
hit and costs one ``np.load``. Because every executor produces bitwise
identical values (see :mod:`repro.campaign.executors`), the key does not —
and must not — include the executor.

Layout: one ``<key>.npz`` per full campaign under the cache directory,
containing the result array and the spec's canonical JSON for post-hoc
inspection — plus, for sharded/resumable execution, a ``<key>.chunks/``
directory of per-chunk entries (``units-<start>-<stop>.npz``) covering
flat unit ranges of the grid. Independent shard processes coordinate only
through this directory: each writes the chunks it computed, and a gather
reassembles them.

Every entry carries a SHA-256 digest of its value bytes. Entries whose
digest (or declared unit range) does not verify — bit rot, truncation,
torn concurrent copies — are *discarded and recomputed*, never served.
Writes are atomic (temp file + rename) so concurrent runs and interrupted
processes can never publish a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

__all__ = ["CampaignCache", "default_cache_dir"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CAMPAIGN_CACHE"

#: Chunk entry file names inside a ``<key>.chunks/`` directory.
_CHUNK_NAME_RE = re.compile(r"^units-(\d+)-(\d+)\.npz$")

#: Errors that mean "this entry is unreadable", not "the caller misused us".
_ENTRY_ERRORS = (OSError, ValueError, KeyError, BadZipFile)


def default_cache_dir() -> Path:
    """The campaign cache directory.

    ``$REPRO_CAMPAIGN_CACHE`` when set, otherwise
    ``~/.cache/repro/campaigns``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "campaigns"


def _digest(values: np.ndarray) -> str:
    """Hex SHA-256 of an array's raw little-endian float bytes."""
    contiguous = np.ascontiguousarray(values)
    return hashlib.sha256(contiguous.tobytes()).hexdigest()


class CampaignCache:
    """A directory of content-addressed campaign result files."""

    def __init__(self, directory=None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self._fault_injector = None

    def with_injector(self, injector) -> "CampaignCache":
        """A view of this store whose writes consult a fault injector.

        Chaos-testing seam: the engine wraps the store per run so
        ``torn-write`` rules can sabotage entry writes deterministically.
        The returned view shares the directory; the original store stays
        fault-free.
        """
        view = CampaignCache(self.directory)
        view._fault_injector = injector
        return view

    def path_for(self, key: str) -> Path:
        """The full-campaign entry file for a content key."""
        return self.directory / f"{key}.npz"

    def chunk_dir_for(self, key: str) -> Path:
        """The per-chunk entry directory for a content key."""
        return self.directory / f"{key}.chunks"

    def chunk_path_for(self, key: str, start: int, stop: int) -> Path:
        """The chunk entry file covering flat units ``[start, stop)``."""
        return self.chunk_dir_for(key) / f"units-{start:010d}-{stop:010d}.npz"

    def _write_entry(self, path: Path, arrays: dict) -> Path:
        """Atomically write an ``.npz`` entry (temp file + rename).

        The entry only ever becomes visible through ``os.replace`` of a
        fully-written temp file, so no reader — concurrent or subsequent —
        can observe a half-written entry at the final path.  An armed
        fault injector can sabotage the write for chaos tests:
        ``crash`` discards the temp file before publication (a writer
        killed mid-write), ``corrupt`` truncates the entry *after*
        publication (bit rot / torn copy), which digest verification must
        catch on the next read.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            fault = (
                self._fault_injector.cache_write(path.name)
                if self._fault_injector is not None
                else None
            )
            if fault is not None and fault.mode == "crash":
                os.unlink(tmp_name)
                return path
            os.replace(tmp_name, path)
            if fault is not None:
                try:
                    data = path.read_bytes()
                    path.write_bytes(data[: max(1, len(data) // 2)])
                except OSError:
                    pass  # a concurrent reader already discarded the entry
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def _discard(path: Path) -> None:
        """Delete a corrupt entry so it is recomputed, not re-served."""
        try:
            path.unlink()
        except OSError:
            pass

    def load(self, key: str) -> np.ndarray | None:
        """The cached full-campaign array for ``key``, or ``None`` on a miss.

        Corrupt or truncated entries are discarded and count as misses:
        the caller recomputes and overwrites them.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as entry:
                values = np.asarray(entry["values"])
                if "digest" in entry and str(entry["digest"]) != _digest(values):
                    raise ValueError("digest mismatch")
                return values
        except _ENTRY_ERRORS:
            self._discard(path)
            return None

    def store(self, key: str, values: np.ndarray, spec_dict: dict) -> Path:
        """Atomically persist a full-campaign array under ``key``.

        The spec's canonical JSON rides along inside the archive so cache
        entries remain self-describing; a digest of the value bytes makes
        corruption detectable on load.
        """
        return self._write_entry(
            self.path_for(key),
            {
                "values": values,
                "digest": np.array(_digest(values)),
                "spec_json": np.array(json.dumps(spec_dict, sort_keys=True)),
            },
        )

    def _read_chunk(self, path: Path, start: int, stop: int) -> np.ndarray | None:
        """Load and verify one chunk entry; discard it on any mismatch."""
        try:
            with np.load(path) as entry:
                values = np.asarray(entry["values"])
                if int(entry["start"]) != start or int(entry["stop"]) != stop:
                    raise ValueError("unit range mismatch")
                if values.shape != (stop - start,):
                    raise ValueError("chunk length mismatch")
                if str(entry["digest"]) != _digest(values):
                    raise ValueError("digest mismatch")
                return values
        except _ENTRY_ERRORS:
            self._discard(path)
            return None

    def load_chunk(self, key: str, start: int, stop: int) -> np.ndarray | None:
        """The cached values of flat units ``[start, stop)``, or ``None``.

        A chunk whose digest, declared range or length does not verify is
        deleted and reported as a miss, so a corrupted checkpoint is
        recomputed — never silently returned.
        """
        path = self.chunk_path_for(key, start, stop)
        if not path.exists():
            return None
        return self._read_chunk(path, start, stop)

    def store_chunk(
        self, key: str, start: int, stop: int, values: np.ndarray, spec_dict: dict
    ) -> Path:
        """Atomically persist the values of flat units ``[start, stop)``."""
        return self._write_entry(
            self.chunk_path_for(key, start, stop),
            {
                "values": values,
                "digest": np.array(_digest(values)),
                "start": np.array(int(start)),
                "stop": np.array(int(stop)),
                "spec_json": np.array(json.dumps(spec_dict, sort_keys=True)),
            },
        )

    def iter_chunks(self, key: str):
        """Yield every valid ``(start, stop, values)`` chunk under ``key``.

        Entries are yielded in ascending unit order; corrupt entries are
        discarded and skipped.
        """
        chunk_dir = self.chunk_dir_for(key)
        if not chunk_dir.is_dir():
            return
        for path in sorted(chunk_dir.iterdir()):
            match = _CHUNK_NAME_RE.match(path.name)
            if match is None:
                continue
            start, stop = int(match.group(1)), int(match.group(2))
            values = self._read_chunk(path, start, stop)
            if values is not None:
                yield start, stop, values

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for entry in self.directory.glob("*.npz"):
            entry.unlink()
            removed += 1
        for chunk_dir in self.directory.glob("*.chunks"):
            for entry in chunk_dir.glob("*.npz"):
                entry.unlink()
                removed += 1
            try:
                chunk_dir.rmdir()
            except OSError:
                pass
        return removed
