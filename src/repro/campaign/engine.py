"""The campaign engine: expand a spec, execute it, checkpoint, cache.

:func:`run_campaign` is the one entry point every batch workload routes
through — the Fig. 3 sweeps, the power sweeps, the fading ensembles of
Section IV and the ``repro campaign`` CLI. It expands the declarative
grid into per-protocol unit batches, evaluates them through a pluggable
executor, and stores the result array in a content-addressed cache so a
repeated spec costs one file read.

Execution is *chunked* whenever a cache is in play: the flat grid is
split at global chunk boundaries (:func:`repro.campaign.spec.chunk_ranges`)
and every completed chunk is written to the cache immediately, so an
interrupted or partially-failed campaign resumes from its checkpoints
instead of restarting. The same mechanism makes campaigns *shardable*:
``run_campaign(spec, shard=spec.shard(i, n))`` evaluates only shard
``i``'s slice of the grid, independent shard processes coordinate solely
through the shared cache directory, and :func:`gather_campaign` merges
their chunk artifacts into a result bitwise-identical to an unsharded
run (executors are bitwise-equivalent and chunking is elementwise, so
how the grid was partitioned can never change the numbers).

:func:`evaluate_ensemble` is the lower-level building block for callers
that already hold concrete channel realizations (e.g. the Monte-Carlo
drivers, which own their RNG for backward compatibility); given a cache
it checkpoints chunks under a content hash of the realizations
themselves, so huge ensembles are resumable too.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Mapping
from concurrent.futures import BrokenExecutor
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..channels.power import NodePowers
from ..core.protocols import Protocol
from ..exceptions import (
    CampaignTimeoutError,
    ChunkRetryExhaustedError,
    IncompleteCampaignError,
    InvalidParameterError,
    RetryableChunkError,
)
from ..faults import FaultInjector, FaultPlan, FaultToken
from .cache import CampaignCache
from .executors import (
    AsyncExecutor,
    ChunkFailure,
    MultiprocessExecutor,
    SerialExecutor,
    UnitBatch,
    VectorizedExecutor,
    get_executor,
)
from .kernel import KERNEL_VERSION
from .spec import DEFAULT_CHUNK_SIZE, CampaignShard, CampaignSpec, chunk_ranges

#: Executors whose outputs are bitwise-verified against each other; only
#: their results may be written to the shared content-addressed cache.
#: A user-supplied executor still *reads* cache entries (they are ground
#: truth for the spec) but must not poison them.
_CACHE_TRUSTED_EXECUTORS = (
    SerialExecutor,
    MultiprocessExecutor,
    VectorizedExecutor,
    AsyncExecutor,
)

__all__ = [
    "CampaignResult",
    "RetryPolicy",
    "run_campaign",
    "gather_campaign",
    "evaluate_ensemble",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries chunks that fail *retryably*.

    Retryable means :class:`~repro.exceptions.RetryableChunkError` or a
    broken process pool (:class:`concurrent.futures.BrokenExecutor`);
    every other exception is fatal and propagates on the first occurrence.
    The backoff before attempt ``k+1`` is the capped, deterministic
    ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds — no jitter, so
    a replayed campaign retries on an identical schedule.  When the budget
    runs out the engine raises
    :class:`~repro.exceptions.ChunkRetryExhaustedError` naming the chunk;
    chunks that already completed stay checkpointed in the cache.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"need at least one attempt, got {self.max_attempts}"
            )
        if self.backoff_base < 0.0 or self.backoff_cap < 0.0:
            raise InvalidParameterError("backoff times must be >= 0")

    def delay(self, failures: int) -> float:
        """Seconds to wait after the ``failures``-th consecutive failure."""
        if failures < 1:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (failures - 1))


DEFAULT_RETRY_POLICY = RetryPolicy()

#: Failures the engine is allowed to retry; everything else is fatal.
_RETRYABLE_ERRORS = (RetryableChunkError, BrokenExecutor)


@dataclass
class _ExecutionContext:
    """Per-run fault, retry and deadline state threaded through chunk loops."""

    plan: FaultPlan | None = None
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: float | None = None
    chunk_retries: int = 0


def _resolve_retry(retry) -> RetryPolicy:
    """Normalize the ``retry`` argument of :func:`run_campaign`."""
    if retry is None:
        return DEFAULT_RETRY_POLICY
    if isinstance(retry, RetryPolicy):
        return retry
    return RetryPolicy(max_attempts=int(retry))


def _check_deadline(ctx: _ExecutionContext, completed: int, total: int):
    """Abort at a chunk boundary once the campaign deadline has passed."""
    if ctx.deadline is not None and time.monotonic() >= ctx.deadline:
        raise CampaignTimeoutError(
            f"campaign deadline exceeded with {completed} of {total} cells "
            "evaluated; completed chunks are checkpointed, so rerunning "
            "resumes from them",
            completed=completed,
            total=total,
        )


def _retry_exhausted(chunk, failures: int, error) -> ChunkRetryExhaustedError:
    lo, hi = chunk
    return ChunkRetryExhaustedError(
        f"chunk [{lo}, {hi}) still failing after {failures} attempts; "
        f"last error: {error}",
        chunk=chunk,
        attempts=failures,
    )


@dataclass(frozen=True)
class CampaignResult:
    """The evaluated campaign grid plus execution metadata.

    Attributes
    ----------
    spec:
        The spec that produced the values.
    values:
        Optimal sum rates, shape ``spec.grid_shape`` — the classic
        ``(protocols, powers, gains, draws)`` plus any extensible axes
        in spec order. For a shard run, cells outside the shard's unit
        range are ``NaN`` — the authoritative artifact of a shard run is
        the chunk entries it wrote to the cache, not this array.
    executor_name:
        Which executor computed the values ("cache" on a hit is *not*
        recorded — results are executor-independent by construction;
        ``"gather"`` marks a merge of shard artifacts).
    from_cache:
        Whether every evaluated cell was served from the on-disk store.
    elapsed_seconds:
        Wall-clock time of the evaluation (or cache read).
    shard:
        The grid slice this run evaluated (``None`` = the whole grid).
    cells_from_cache:
        Grid cells served from cached chunk or full entries.
    cells_computed:
        Grid cells freshly evaluated by the executor this run.
    unresolved_cells:
        Adaptive accounting: of the cells computed this run, how many
        exhausted their ``max_rounds`` budget without meeting
        ``target_rel_error`` (the silent-resolution bugfix). ``None``
        when unknown — the campaign is not adaptive, every cell came
        from cache (values alone cannot tell), or evaluation ran in
        worker processes outside the in-process tally.
    chunk_retries:
        Chunk dispatches that failed retryably and were re-dispatched
        this run (transient chunk errors, broken pools). Zero on a
        fault-free run; values are unaffected either way — a retried
        chunk recomputes the exact same numbers.
    pool_rebuilds:
        Broken process pools the executor replaced during this run (a
        dead worker breaks a ``concurrent.futures`` pool permanently).
        Completed chunks are never recomputed by a rebuild — they are
        already checkpointed in the cache.
    """

    spec: CampaignSpec
    values: np.ndarray
    executor_name: str
    from_cache: bool
    elapsed_seconds: float
    shard: CampaignShard | None = None
    cells_from_cache: int = 0
    cells_computed: int = 0
    unresolved_cells: int | None = None
    chunk_retries: int = 0
    pool_rebuilds: int = 0

    def _protocol_index(self, protocol: Protocol) -> int:
        try:
            return self.spec.protocols.index(protocol)
        except ValueError:
            raise InvalidParameterError(
                f"{protocol} is not part of this campaign"
            ) from None

    def _power_index(self, power_db: float) -> int:
        try:
            return self.spec.powers_db.index(float(power_db))
        except ValueError:
            raise InvalidParameterError(
                f"power {power_db} dB is not part of this campaign"
            ) from None

    def values_for(self, protocol: Protocol, power_db: float) -> np.ndarray:
        """Sum rates of one (protocol, power) slice.

        Shape ``(G, D)`` for a classic spec; specs with extensible axes
        keep those dimensions in front: ``(*extra, G, D)``.
        """
        return self.values[self._protocol_index(protocol), self._power_index(power_db)]

    def ergodic_mean(self, protocol: Protocol, power_db: float) -> float:
        """Ensemble/grid average sum rate of the slice."""
        return float(self.values_for(protocol, power_db).mean())

    def outage_rate(self, protocol: Protocol, power_db: float, epsilon: float) -> float:
        """ε-quantile of the slice's sum-rate distribution."""
        if not 0.0 <= epsilon <= 1.0:
            raise InvalidParameterError(
                f"outage level must lie in [0, 1], got {epsilon}"
            )
        return float(np.quantile(self.values_for(protocol, power_db), epsilon))

    def summary_rows(self, *, epsilon: float = 0.1) -> list:
        """Per (protocol, power) table rows for reports.

        Columns: protocol, power [dB], ergodic mean, std error, ε-outage
        rate, median.
        """
        rows = []
        for protocol in self.spec.protocols:
            for power_db in self.spec.powers_db:
                samples = self.values_for(protocol, power_db).ravel()
                std_error = (
                    float(samples.std(ddof=1) / np.sqrt(samples.size))
                    if samples.size > 1
                    else 0.0
                )
                rows.append(
                    [
                        protocol.name,
                        float(power_db),
                        float(samples.mean()),
                        std_error,
                        float(np.quantile(samples, epsilon)),
                        float(np.quantile(samples, 0.5)),
                    ]
                )
        return rows


@contextmanager
def _adaptive_tally(spec: CampaignSpec):
    """Install adaptive resolution accounting when the spec calls for it."""
    if spec.link is None or spec.link.target_rel_error is None:
        yield None
        return
    from ..simulation.montecarlo import collect_adaptive_accounting

    with collect_adaptive_accounting() as tally:
        yield tally


def _unresolved_count(tally, cells_computed: int) -> int | None:
    """Resolve the tally into a count, or ``None`` when it cannot be known.

    The tally only sees in-process evaluations; a process-pool executor
    computes cells the tally never observes, which shows up as a
    shortfall against ``cells_computed`` — reported as unknown rather
    than a wrong zero. All-cache runs are unknown too: cached values
    carry no resolution flags.
    """
    if tally is None or cells_computed == 0:
        return None
    if tally.adaptive_cells != cells_computed:
        return None
    return tally.unresolved_cells


def _cache_key(spec: CampaignSpec) -> str:
    return f"v{KERNEL_VERSION}-{spec.spec_hash()}"


def _ensemble_key(protocol: Protocol, gains: np.ndarray, power: np.ndarray) -> str:
    """Content key of a concrete-realization ensemble evaluation."""
    hasher = hashlib.sha256()
    hasher.update(protocol.value.encode("utf-8"))
    hasher.update(np.ascontiguousarray(gains).tobytes())
    hasher.update(np.ascontiguousarray(power).tobytes())
    return f"v{KERNEL_VERSION}-ensemble-{hasher.hexdigest()}"


def _resolve_cache(cache):
    """Normalize the ``cache`` argument of :func:`run_campaign`."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return CampaignCache()
    if isinstance(cache, CampaignCache):
        return cache
    return CampaignCache(cache)


def _resolve_shard(spec: CampaignSpec, shard) -> CampaignShard | None:
    """Normalize the ``shard`` argument of :func:`run_campaign`."""
    if shard is None:
        return None
    if isinstance(shard, CampaignShard):
        if shard.spec != spec:
            raise InvalidParameterError("shard belongs to a different spec")
        return shard
    index, count = shard
    return spec.shard(int(index), int(count))


def _offset_progress(progress, base: int, total: int):
    """Adapt an executor's call-local progress to campaign-global counts."""

    def advanced(done_in_call: int, _total_in_call: int) -> None:
        progress(base + done_in_call, total)

    return advanced


def _grid_batches(spec, flat_gains, start, stop):
    """Unit batches covering flat grid units ``[start, stop)``, in order.

    The flat C-order index factors as ``(block, channel)`` where a block
    fixes one value of every non-channel axis (protocol, power and each
    extensible axis) and a channel is one ``(geometry, draw)`` pair, so
    any contiguous range decomposes into at most one partial batch per
    block. Block parameters come from :meth:`CampaignSpec.block_params`,
    which keeps this loop agnostic of how many axes the spec declares.
    """
    n_channels = flat_gains.shape[0]
    batches = []
    for block in range(start // n_channels, (stop - 1) // n_channels + 1):
        lo = max(start, block * n_channels) - block * n_channels
        hi = min(stop, (block + 1) * n_channels) - block * n_channels
        protocol, power, gain_scale = spec.block_params(block)
        gab = flat_gains[lo:hi, 0]
        gar = flat_gains[lo:hi, 1]
        gbr = flat_gains[lo:hi, 2]
        if gain_scale is not None:
            gab = gab * gain_scale[0]
            gar = gar * gain_scale[1]
            gbr = gbr * gain_scale[2]
        indices = None
        if spec.link is not None:
            # Operational cells seed their simulations by flat grid index.
            base = block * n_channels
            indices = np.arange(base + lo, base + hi)
        if isinstance(power, NodePowers):
            # Allocation blocks carry an (n, 3) per-node power batch.
            power_array = np.tile(power.as_array(), (hi - lo, 1))
        else:
            power_array = np.full(hi - lo, power)
        batches.append(
            UnitBatch(
                protocol=protocol,
                gab=gab,
                gar=gar,
                gbr=gbr,
                power=power_array,
                link=spec.link,
                indices=indices,
            )
        )
    return batches


def _run_chunk_futures(
    key,
    unit_range,
    batches_for,
    meta,
    store,
    trusted,
    executor,
    chunk_size,
    progress,
    ctx=None,
):
    """Evaluate a flat unit range as concurrent chunk futures.

    The chunk-future seam: every chunk missing from ``store`` is handed
    to ``executor.run_chunks`` in one submission, results arrive in
    completion order (whichever worker frees up first steals the next
    chunk), and each finished chunk is checkpointed immediately — a slow
    chunk never delays the durability of a fast one. Reassembly is by
    chunk range, so completion order cannot change the result.

    Failed chunks arrive as :class:`ChunkFailure` outcomes: retryable
    ones (transient chunk errors, a broken pool — by then healed by the
    executor) are re-submitted in the next round with per-chunk attempt
    accounting and deterministic backoff, everything else propagates
    immediately.  Chunks that completed before a failure stay
    checkpointed either way.  Returns ``(flat_values, cells_from_cache,
    cells_computed)``.
    """
    if ctx is None:
        ctx = _ExecutionContext()
    start, stop = unit_range
    total = stop - start
    ranges = chunk_ranges(start, stop, chunk_size)
    values_by_range = {}
    pending = []
    cells_from_cache = 0
    for lo, hi in ranges:
        values = store.load_chunk(key, lo, hi) if store is not None else None
        if values is None:
            pending.append((lo, hi))
        else:
            values_by_range[(lo, hi)] = values
            cells_from_cache += hi - lo
    done = cells_from_cache
    if progress is not None and total and (done or not pending):
        progress(done, total)
    cells_computed = 0
    failures: dict[tuple, int] = {}
    if pending:
        with ExitStack() as stack:
            reserve = getattr(executor, "reserve", None)
            if reserve is not None:
                stack.enter_context(reserve())
            while pending:
                _check_deadline(ctx, done, total)
                jobs = []
                for tag in pending:
                    if ctx.plan is None:
                        jobs.append((tag, batches_for(*tag)))
                    else:
                        token = FaultToken(ctx.plan, tag, failures.get(tag, 0))
                        jobs.append((tag, batches_for(*tag), token))
                retry_tags = []
                for tag, outcome in executor.run_chunks(jobs):
                    if isinstance(outcome, ChunkFailure):
                        error = outcome.error
                        if not isinstance(error, _RETRYABLE_ERRORS):
                            raise error
                        count = failures.get(tag, 0) + 1
                        failures[tag] = count
                        if count >= ctx.policy.max_attempts:
                            raise _retry_exhausted(tag, count, error) from error
                        ctx.chunk_retries += 1
                        retry_tags.append(tag)
                        continue
                    lo, hi = tag
                    values_by_range[tag] = outcome
                    cells_computed += hi - lo
                    done += hi - lo
                    if store is not None and trusted:
                        store.store_chunk(key, lo, hi, outcome, meta)
                    if progress is not None:
                        progress(done, total)
                pending = retry_tags
                if pending:
                    delay = ctx.policy.delay(max(failures[t] for t in pending))
                    if delay > 0.0:
                        time.sleep(delay)
    flat = (
        np.concatenate([values_by_range[r] for r in ranges])
        if ranges
        else np.zeros(0)
    )
    return flat, cells_from_cache, cells_computed


def _run_chunk_with_retry(executor, batches_for, chunk, sub_progress, ctx):
    """One chunk through ``executor.run``, retrying retryable failures.

    Fault injection is armed per attempt: pool executors receive a
    picklable :class:`FaultToken` (so the fault fires inside the worker),
    in-process executors get the engine-side ``chunk_guard``.  Backoff is
    the policy's deterministic schedule; exhaustion raises a single typed
    :class:`ChunkRetryExhaustedError` naming the chunk.
    """
    lo, hi = chunk
    failures = 0
    in_worker = getattr(executor, "supports_fault_injection", False)
    while True:
        try:
            kwargs = {}
            if ctx.plan is not None:
                if in_worker:
                    kwargs["fault"] = FaultToken(ctx.plan, chunk, failures)
                else:
                    ctx.plan.chunk_guard(chunk, failures)
            value_arrays = executor.run(
                batches_for(lo, hi), progress=sub_progress, **kwargs
            )
            return np.concatenate(value_arrays)
        except _RETRYABLE_ERRORS as error:
            failures += 1
            if failures >= ctx.policy.max_attempts:
                raise _retry_exhausted(chunk, failures, error) from error
            ctx.chunk_retries += 1
            delay = ctx.policy.delay(failures)
            if delay > 0.0:
                time.sleep(delay)


def _run_chunked(
    key,
    unit_range,
    batches_for,
    meta,
    store,
    trusted,
    executor,
    chunk_size,
    progress,
    ctx=None,
):
    """Evaluate a flat unit range chunk by chunk, checkpointing each one.

    Every chunk is first looked up in ``store`` (a verified hit skips the
    executor entirely); freshly computed chunks are written back
    immediately when the executor is cache-trusted, so an interrupted run
    resumes from its last completed chunk. Executors exposing the
    chunk-future seam (``run_chunks``) evaluate their chunks concurrently
    via :func:`_run_chunk_futures` instead of this sequential loop —
    either way, chunking is elementwise and the values are identical.
    Retry, deadline and fault-injection state ride in ``ctx``.  Returns
    ``(flat_values, cells_from_cache, cells_computed)``.
    """
    if hasattr(executor, "run_chunks"):
        return _run_chunk_futures(
            key,
            unit_range,
            batches_for,
            meta,
            store,
            trusted,
            executor,
            chunk_size,
            progress,
            ctx,
        )
    if ctx is None:
        ctx = _ExecutionContext()
    start, stop = unit_range
    total = stop - start
    pieces = []
    done = 0
    cells_from_cache = 0
    cells_computed = 0
    reserve = getattr(executor, "reserve", None)
    with ExitStack() as stack:
        reserved = False
        for lo, hi in chunk_ranges(start, stop, chunk_size):
            values = store.load_chunk(key, lo, hi) if store is not None else None
            if values is None:
                _check_deadline(ctx, done, total)
                if reserve is not None and not reserved:
                    # Executors with per-call setup cost (e.g. a process
                    # pool) keep it alive across the remaining chunks.
                    stack.enter_context(reserve())
                    reserved = True
                sub_progress = None
                if progress is not None:
                    sub_progress = _offset_progress(progress, done, total)
                values = _run_chunk_with_retry(
                    executor, batches_for, (lo, hi), sub_progress, ctx
                )
                cells_computed += hi - lo
                if store is not None and trusted:
                    store.store_chunk(key, lo, hi, values, meta)
                done += hi - lo
            else:
                cells_from_cache += hi - lo
                done += hi - lo
                if progress is not None:
                    progress(done, total)
            pieces.append(values)
    flat = np.concatenate(pieces) if pieces else np.zeros(0)
    return flat, cells_from_cache, cells_computed


def run_campaign(
    spec: CampaignSpec,
    *,
    executor=None,
    cache=None,
    progress=None,
    shard=None,
    chunk_size=None,
    fault_plan=None,
    retry=None,
    deadline=None,
) -> CampaignResult:
    """Evaluate a campaign spec end to end.

    Parameters
    ----------
    spec:
        The declarative grid to evaluate.
    executor:
        Executor name (``"serial"``, ``"process"``, ``"vectorized"``) or
        instance; defaults to the vectorized fast path.
    cache:
        ``None``/``False`` disables caching, ``True`` uses the default
        cache directory, and a path or :class:`CampaignCache` selects an
        explicit store. Results are keyed by the spec hash, so any
        executor can serve any cache entry. With a cache, execution is
        chunked and every completed chunk is checkpointed immediately —
        an interrupted campaign resumes from cache instead of restarting.
    progress:
        Optional callable ``progress(done_units, total_units)`` invoked as
        evaluation advances (and once on a cache hit). For a shard run the
        totals are shard-local.
    shard:
        ``None`` evaluates the whole grid. A :class:`CampaignShard` (or
        ``(index, count)`` pair, 0-based) evaluates only that balanced
        contiguous slice of the flat grid; combine with a shared ``cache``
        directory and :func:`gather_campaign` to split one campaign
        across processes or machines.
    chunk_size:
        Checkpoint granularity in grid cells (default
        :data:`repro.campaign.spec.DEFAULT_CHUNK_SIZE`). Chunk boundaries
        are aligned to the global grid, so all shards and the unsharded
        run produce interchangeable interior chunks.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` arming deterministic
        fault injection for this run (chaos testing only); defaults to
        the plan in the ``REPRO_FAULT_PLAN`` environment variable, or
        none. Injected faults never change values — a faulted run either
        completes bitwise-identical to the fault-free run or raises one
        typed error.
    retry:
        :class:`RetryPolicy` (or a bare ``max_attempts`` int) governing
        chunk retries on transient failures; defaults to three attempts
        with capped deterministic exponential backoff.
    deadline:
        Optional ``time.monotonic()`` timestamp after which the run
        aborts at the next chunk boundary with
        :class:`~repro.exceptions.CampaignTimeoutError`. Completed chunks
        stay checkpointed, and a fully-cached spec is still served even
        past the deadline (reads are cheap; only fresh compute is cut).
    """
    executor = get_executor(executor)
    store = _resolve_cache(cache)
    shard = _resolve_shard(spec, shard)
    if chunk_size is not None and chunk_size < 1:
        raise InvalidParameterError(f"chunk size must be positive, got {chunk_size}")
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    ctx = _ExecutionContext(
        plan=plan, policy=_resolve_retry(retry), deadline=deadline
    )
    if plan is not None and store is not None and plan.has("torn-write"):
        store = store.with_injector(FaultInjector(plan))
    rebuilds_before = getattr(executor, "pool_rebuilds", 0)
    key = _cache_key(spec)

    started = time.perf_counter()
    if store is not None and (shard is None or shard.n_units > 0):
        cached = store.load(key)
        if cached is not None and cached.shape == spec.grid_shape:
            # A verified full entry serves any slice — including a shard
            # rerun whose chunk boundaries would not line up with the
            # entries on disk.
            if shard is None:
                values = cached
                served = spec.n_units
            else:
                lo, hi = shard.unit_range
                full = np.full(spec.n_units, np.nan)
                full[lo:hi] = cached.ravel()[lo:hi]
                values = full.reshape(spec.grid_shape)
                served = shard.n_units
            if progress is not None:
                progress(served, served)
            return CampaignResult(
                spec=spec,
                values=values,
                executor_name=executor.name,
                from_cache=True,
                elapsed_seconds=time.perf_counter() - started,
                shard=shard,
                cells_from_cache=served,
            )

    flat_gains = spec.sample_gain_draws().reshape(-1, 3)

    if (
        shard is None
        and store is None
        and chunk_size is None
        and plan is None
        and deadline is None
    ):
        # Nothing to checkpoint, resume, inject or abort: evaluate the
        # grid in one pass.
        batches = _grid_batches(spec, flat_gains, 0, spec.n_units)
        with _adaptive_tally(spec) as tally:
            value_arrays = executor.run(batches, progress=progress)
        values = np.concatenate(value_arrays).reshape(spec.grid_shape)
        return CampaignResult(
            spec=spec,
            values=values,
            executor_name=executor.name,
            from_cache=False,
            elapsed_seconds=time.perf_counter() - started,
            cells_computed=spec.n_units,
            unresolved_cells=_unresolved_count(tally, spec.n_units),
        )

    unit_range = shard.unit_range if shard is not None else (0, spec.n_units)
    trusted = isinstance(executor, _CACHE_TRUSTED_EXECUTORS)

    def batches_for(lo: int, hi: int):
        return _grid_batches(spec, flat_gains, lo, hi)

    with _adaptive_tally(spec) as tally:
        flat, cells_from_cache, cells_computed = _run_chunked(
            key,
            unit_range,
            batches_for,
            spec.to_dict(),
            store,
            trusted,
            executor,
            chunk_size or DEFAULT_CHUNK_SIZE,
            progress,
            ctx,
        )

    if shard is None:
        values = flat.reshape(spec.grid_shape)
        if store is not None and (trusted or cells_computed == 0):
            store.store(key, values, spec.to_dict())
    else:
        lo, hi = unit_range
        full = np.full(spec.n_units, np.nan)
        full[lo:hi] = flat
        values = full.reshape(spec.grid_shape)

    total = unit_range[1] - unit_range[0]
    return CampaignResult(
        spec=spec,
        values=values,
        executor_name=executor.name,
        from_cache=total > 0 and cells_computed == 0,
        elapsed_seconds=time.perf_counter() - started,
        shard=shard,
        cells_from_cache=cells_from_cache,
        cells_computed=cells_computed,
        unresolved_cells=_unresolved_count(tally, cells_computed),
        chunk_retries=ctx.chunk_retries,
        pool_rebuilds=getattr(executor, "pool_rebuilds", 0) - rebuilds_before,
    )


def _uncovered_ranges(covered: np.ndarray):
    """Maximal ``(start, stop)`` runs of ``False`` in a coverage mask."""
    ranges = []
    run_start = None
    for index, is_covered in enumerate(covered):
        if not is_covered and run_start is None:
            run_start = index
        elif is_covered and run_start is not None:
            ranges.append((run_start, index))
            run_start = None
    if run_start is not None:
        ranges.append((run_start, covered.size))
    return tuple(ranges)


def gather_campaign(spec: CampaignSpec, cache=True) -> CampaignResult:
    """Merge shard chunk artifacts into the full campaign result.

    Reads every verified chunk entry under the spec's content key from
    ``cache``, reassembles the flat grid, stores the merged array as the
    campaign's full entry (so subsequent ``run_campaign`` calls hit it
    directly) and returns it. Because chunk entries are only ever written
    by bitwise-verified executors and chunking is elementwise, the merged
    result is bitwise-identical to an unsharded run of the same spec.

    Raises
    ------
    IncompleteCampaignError
        If the available chunks do not cover the whole grid; the
        exception's ``missing`` attribute lists the uncovered
        ``(start, stop)`` unit ranges.
    """
    store = _resolve_cache(cache)
    if store is None:
        raise InvalidParameterError("gather requires a cache directory")
    key = _cache_key(spec)

    started = time.perf_counter()
    cached = store.load(key)
    if cached is not None and cached.shape == spec.grid_shape:
        return CampaignResult(
            spec=spec,
            values=cached,
            executor_name="gather",
            from_cache=True,
            elapsed_seconds=time.perf_counter() - started,
            cells_from_cache=spec.n_units,
        )

    n_units = spec.n_units
    flat = np.zeros(n_units)
    covered = np.zeros(n_units, dtype=bool)
    for lo, hi, values in store.iter_chunks(key):
        if hi > n_units:
            continue  # stale entry from an older layout of this key
        flat[lo:hi] = values
        covered[lo:hi] = True
    if not covered.all():
        missing = _uncovered_ranges(covered)
        ranges_text = ", ".join(f"[{lo}, {hi})" for lo, hi in missing)
        raise IncompleteCampaignError(
            f"campaign {spec.spec_hash()[:12]} is missing "
            f"{int(n_units - covered.sum())} of {n_units} cells "
            f"(units {ranges_text}); run the remaining shards first",
            missing=missing,
        )

    values = flat.reshape(spec.grid_shape)
    store.store(key, values, spec.to_dict())
    return CampaignResult(
        spec=spec,
        values=values,
        executor_name="gather",
        from_cache=True,
        elapsed_seconds=time.perf_counter() - started,
        cells_from_cache=n_units,
    )


def evaluate_ensemble(
    protocol: Protocol,
    gains_ensemble,
    power,
    *,
    executor=None,
    cache=None,
    chunk_size=None,
    progress=None,
) -> np.ndarray:
    """Optimal sum rates of one protocol over concrete channel draws.

    Parameters
    ----------
    protocol:
        The protocol to evaluate.
    gains_ensemble:
        Iterable of :class:`~repro.channels.gains.LinkGains` (or an
        ``(n, 3)`` array of linear gains).
    power:
        Transmit power (linear): a scalar or per-draw ``(n,)`` array
        applies one shared power to every node; a
        :class:`~repro.channels.power.NodePowers`, a
        ``{"a": ..., "b": ..., "r": ...}`` mapping, or an ``(n, 3)``
        array in ``(a, b, r)`` order gives each node its own power.
    executor:
        Executor name or instance; defaults to the vectorized fast path.
    cache:
        Optional :class:`CampaignCache` (or path / ``True``). With a
        cache the evaluation is chunk-checkpointed under a content hash
        of the realizations themselves, so repeated or interrupted
        ensemble evaluations resume instead of recomputing.
    chunk_size:
        Checkpoint granularity in draws (default
        :data:`repro.campaign.spec.DEFAULT_CHUNK_SIZE`).
    progress:
        Optional callable ``progress(done_draws, total_draws)``.

    Returns
    -------
    np.ndarray
        One optimal sum rate per draw, in draw order.
    """
    executor = get_executor(executor)
    if chunk_size is not None and chunk_size < 1:
        raise InvalidParameterError(f"chunk size must be positive, got {chunk_size}")
    array = np.asarray(
        [
            (g.gab, g.gar, g.gbr) if hasattr(g, "gab") else tuple(g)
            for g in gains_ensemble
        ],
        dtype=float,
    )
    if array.ndim != 2 or array.shape[1] != 3:
        raise InvalidParameterError(
            f"expected an (n, 3) gain ensemble, got shape {array.shape}"
        )
    if isinstance(power, Mapping):
        power = NodePowers.from_mapping(power)
    if isinstance(power, NodePowers):
        power = np.tile(power.as_array(), (array.shape[0], 1))
    else:
        power = np.asarray(power, dtype=float)
        if power.ndim == 2:
            if power.shape != (array.shape[0], 3):
                raise InvalidParameterError(
                    f"a per-node power batch must have shape "
                    f"({array.shape[0]}, 3) in (a, b, r) order, got "
                    f"{power.shape}"
                )
            power = power.copy()
        else:
            power = np.broadcast_to(power, (array.shape[0],)).copy()
    store = _resolve_cache(cache)
    if store is None and chunk_size is None:
        batch = UnitBatch(
            protocol=protocol,
            gab=array[:, 0],
            gar=array[:, 1],
            gbr=array[:, 2],
            power=power,
        )
        return executor.run([batch], progress=progress)[0]

    def batches_for(lo: int, hi: int):
        return [
            UnitBatch(
                protocol=protocol,
                gab=array[lo:hi, 0],
                gar=array[lo:hi, 1],
                gbr=array[lo:hi, 2],
                power=power[lo:hi],
            )
        ]

    flat, _, _ = _run_chunked(
        _ensemble_key(protocol, array, power),
        (0, array.shape[0]),
        batches_for,
        {"protocol": protocol.value, "n_units": int(array.shape[0])},
        store,
        isinstance(executor, _CACHE_TRUSTED_EXECUTORS),
        executor,
        chunk_size or DEFAULT_CHUNK_SIZE,
        progress,
    )
    return flat
