"""The campaign engine: expand a spec, execute it, cache the results.

:func:`run_campaign` is the one entry point every batch workload routes
through — the Fig. 3 sweeps, the power sweeps, the fading ensembles of
Section IV and the ``repro campaign`` CLI. It expands the declarative
grid into per-protocol unit batches, evaluates them through a pluggable
executor, and stores the result array in a content-addressed cache so a
repeated spec costs one file read.

:func:`evaluate_ensemble` is the lower-level building block for callers
that already hold concrete channel realizations (e.g. the Monte-Carlo
drivers, which own their RNG for backward compatibility).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from ..information.functions import db_to_linear
from .cache import CampaignCache
from .executors import (
    MultiprocessExecutor,
    SerialExecutor,
    UnitBatch,
    VectorizedExecutor,
    get_executor,
)
from .kernel import KERNEL_VERSION
from .spec import CampaignSpec

#: Executors whose outputs are bitwise-verified against each other; only
#: their results may be written to the shared content-addressed cache.
#: A user-supplied executor still *reads* cache entries (they are ground
#: truth for the spec) but must not poison them.
_CACHE_TRUSTED_EXECUTORS = (
    SerialExecutor,
    MultiprocessExecutor,
    VectorizedExecutor,
)

__all__ = ["CampaignResult", "run_campaign", "evaluate_ensemble"]


@dataclass(frozen=True)
class CampaignResult:
    """The evaluated campaign grid plus execution metadata.

    Attributes
    ----------
    spec:
        The spec that produced the values.
    values:
        Optimal sum rates, shape ``(protocols, powers, gains, draws)``
        in spec order.
    executor_name:
        Which executor computed the values ("cache" on a hit is *not*
        recorded — results are executor-independent by construction).
    from_cache:
        Whether the values were served from the on-disk store.
    elapsed_seconds:
        Wall-clock time of the evaluation (or cache read).
    """

    spec: CampaignSpec
    values: np.ndarray
    executor_name: str
    from_cache: bool
    elapsed_seconds: float

    def _protocol_index(self, protocol: Protocol) -> int:
        try:
            return self.spec.protocols.index(protocol)
        except ValueError:
            raise InvalidParameterError(
                f"{protocol} is not part of this campaign"
            ) from None

    def _power_index(self, power_db: float) -> int:
        try:
            return self.spec.powers_db.index(float(power_db))
        except ValueError:
            raise InvalidParameterError(
                f"power {power_db} dB is not part of this campaign"
            ) from None

    def values_for(self, protocol: Protocol, power_db: float) -> np.ndarray:
        """Sum rates of one (protocol, power) slice, shape ``(G, D)``."""
        return self.values[
            self._protocol_index(protocol), self._power_index(power_db)
        ]

    def ergodic_mean(self, protocol: Protocol, power_db: float) -> float:
        """Ensemble/grid average sum rate of the slice."""
        return float(self.values_for(protocol, power_db).mean())

    def outage_rate(self, protocol: Protocol, power_db: float,
                    epsilon: float) -> float:
        """ε-quantile of the slice's sum-rate distribution."""
        if not 0.0 <= epsilon <= 1.0:
            raise InvalidParameterError(
                f"outage level must lie in [0, 1], got {epsilon}"
            )
        return float(np.quantile(self.values_for(protocol, power_db), epsilon))

    def summary_rows(self, *, epsilon: float = 0.1) -> list:
        """Per (protocol, power) table rows for reports.

        Columns: protocol, power [dB], ergodic mean, std error, ε-outage
        rate, median.
        """
        rows = []
        for protocol in self.spec.protocols:
            for power_db in self.spec.powers_db:
                samples = self.values_for(protocol, power_db).ravel()
                std_error = (
                    float(samples.std(ddof=1) / np.sqrt(samples.size))
                    if samples.size > 1 else 0.0
                )
                rows.append([
                    protocol.name,
                    float(power_db),
                    float(samples.mean()),
                    std_error,
                    float(np.quantile(samples, epsilon)),
                    float(np.quantile(samples, 0.5)),
                ])
        return rows


def _cache_key(spec: CampaignSpec) -> str:
    return f"v{KERNEL_VERSION}-{spec.spec_hash()}"


def _resolve_cache(cache):
    """Normalize the ``cache`` argument of :func:`run_campaign`."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return CampaignCache()
    if isinstance(cache, CampaignCache):
        return cache
    return CampaignCache(cache)


def run_campaign(spec: CampaignSpec, *, executor=None, cache=None,
                 progress=None) -> CampaignResult:
    """Evaluate a campaign spec end to end.

    Parameters
    ----------
    spec:
        The declarative grid to evaluate.
    executor:
        Executor name (``"serial"``, ``"process"``, ``"vectorized"``) or
        instance; defaults to the vectorized fast path.
    cache:
        ``None``/``False`` disables caching, ``True`` uses the default
        cache directory, and a path or :class:`CampaignCache` selects an
        explicit store. Results are keyed by the spec hash, so any
        executor can serve any cache entry.
    progress:
        Optional callable ``progress(done_units, total_units)`` invoked as
        evaluation advances (and once on a cache hit).
    """
    executor = get_executor(executor)
    store = _resolve_cache(cache)
    key = _cache_key(spec)

    started = time.perf_counter()
    if store is not None:
        cached = store.load(key)
        if cached is not None and cached.shape == spec.grid_shape:
            if progress is not None:
                progress(spec.n_units, spec.n_units)
            return CampaignResult(
                spec=spec,
                values=cached,
                executor_name=executor.name,
                from_cache=True,
                elapsed_seconds=time.perf_counter() - started,
            )

    gain_draws = spec.sample_gain_draws()
    n_channels = gain_draws.shape[0] * gain_draws.shape[1]
    flat = gain_draws.reshape(n_channels, 3)
    batches = []
    for protocol in spec.protocols:
        for power_db in spec.powers_db:
            batches.append(UnitBatch(
                protocol=protocol,
                gab=flat[:, 0],
                gar=flat[:, 1],
                gbr=flat[:, 2],
                power=np.full(n_channels, db_to_linear(power_db)),
            ))
    value_arrays = executor.run(batches, progress=progress)
    values = np.stack(value_arrays).reshape(spec.grid_shape)

    if store is not None and isinstance(executor, _CACHE_TRUSTED_EXECUTORS):
        store.store(key, values, spec.to_dict())
    return CampaignResult(
        spec=spec,
        values=values,
        executor_name=executor.name,
        from_cache=False,
        elapsed_seconds=time.perf_counter() - started,
    )


def evaluate_ensemble(protocol: Protocol, gains_ensemble, power, *,
                      executor=None) -> np.ndarray:
    """Optimal sum rates of one protocol over concrete channel draws.

    Parameters
    ----------
    protocol:
        The protocol to evaluate.
    gains_ensemble:
        Iterable of :class:`~repro.channels.gains.LinkGains` (or an
        ``(n, 3)`` array of linear gains).
    power:
        Per-node transmit power (linear), scalar or per-draw array.
    executor:
        Executor name or instance; defaults to the vectorized fast path.

    Returns
    -------
    np.ndarray
        One optimal sum rate per draw, in draw order.
    """
    executor = get_executor(executor)
    array = np.asarray([
        (g.gab, g.gar, g.gbr) if hasattr(g, "gab") else tuple(g)
        for g in gains_ensemble
    ], dtype=float)
    if array.ndim != 2 or array.shape[1] != 3:
        raise InvalidParameterError(
            f"expected an (n, 3) gain ensemble, got shape {array.shape}"
        )
    power = np.broadcast_to(
        np.asarray(power, dtype=float), (array.shape[0],)
    ).copy()
    batch = UnitBatch(
        protocol=protocol,
        gab=array[:, 0],
        gar=array[:, 1],
        gbr=array[:, 2],
        power=power,
    )
    return executor.run([batch])[0]
