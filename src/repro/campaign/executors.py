"""Pluggable execution backends for campaign work units.

Four executors share one numeric kernel
(:func:`repro.campaign.kernel.batched_sum_rates`):

* :class:`SerialExecutor` — one unit at a time, in process. The reference
  path every other executor must reproduce bit for bit.
* :class:`MultiprocessExecutor` — chunks units across a
  ``concurrent.futures`` process pool. Each worker evaluates its chunk
  with exactly the serial per-unit arithmetic, so results are bitwise
  identical to serial regardless of process count or chunking.
* :class:`VectorizedExecutor` — stacks whole batches through the kernel's
  batched linear algebra. The kernel is elementwise along the batch axis,
  so this too is bitwise identical to serial (asserted in the tests).
* :class:`AsyncExecutor` — schedules *chunk futures* over a
  ``concurrent.futures`` process pool: work units are claimed by whichever
  worker frees up first (work-stealing) instead of being pre-split, and
  the engine checkpoints each chunk the moment its future lands. Each
  future runs the serial per-unit arithmetic, so completion order can
  never change the numbers.

Because all executors agree exactly, cached campaign results are keyed by
the spec alone — never by how they were computed.

Both pool executors are *self-healing*: a dead worker (OOM kill, signal,
``os._exit``) breaks a ``concurrent.futures`` pool permanently, so when a
reserved pool surfaces :class:`concurrent.futures.BrokenExecutor` the
executor swaps in a fresh pool (counted in ``pool_rebuilds``) and reports
the failed chunks to the engine, which re-dispatches only those — completed
chunks are already checkpointed in the cache and are never recomputed.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..core.protocols import Protocol
from ..exceptions import InvalidParameterError
from .kernel import batched_sum_rates

__all__ = [
    "UnitBatch",
    "ChunkFailure",
    "SerialExecutor",
    "MultiprocessExecutor",
    "VectorizedExecutor",
    "AsyncExecutor",
    "EXECUTOR_NAMES",
    "get_executor",
]


class ChunkFailure:
    """A chunk job's failure, yielded by ``run_chunks`` in place of values.

    The chunk-future seam reports per-chunk outcomes rather than raising
    mid-iteration: the caller learns *which* chunk failed (its tag arrives
    with the failure) and can retry exactly that chunk while other chunks'
    results keep streaming in.  ``error`` is the underlying exception —
    :class:`~repro.exceptions.RetryableChunkError` and
    :class:`concurrent.futures.BrokenExecutor` are safe to retry, anything
    else is fatal.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error

    def __repr__(self) -> str:
        return f"ChunkFailure({self.error!r})"


@dataclass(frozen=True)
class UnitBatch:
    """A contiguous run of work units sharing one protocol.

    The array fields are aligned: unit ``i`` of the batch is
    ``(protocol, gains=(gab[i], gar[i], gbr[i]), power=power[i])``.

    Operational (link-level) campaigns additionally carry the
    :class:`~repro.campaign.spec.LinkSimSpec` and each unit's flat grid
    index: the index seeds the unit's simulation generator, so a cell's
    value never depends on how the grid was batched, chunked or sharded.
    """

    protocol: Protocol
    gab: np.ndarray
    gar: np.ndarray
    gbr: np.ndarray
    power: np.ndarray
    link: object = None
    indices: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.gab.shape[0])

    def slice(self, start: int, stop: int) -> "UnitBatch":
        """The sub-batch covering units ``[start, stop)``."""
        return UnitBatch(
            protocol=self.protocol,
            gab=self.gab[start:stop],
            gar=self.gar[start:stop],
            gbr=self.gbr[start:stop],
            power=self.power[start:stop],
            link=self.link,
            indices=None if self.indices is None else self.indices[start:stop],
        )


def _evaluate_link_units(batch: UnitBatch) -> np.ndarray:
    """Operational cells: independently seeded link campaigns, cells-fused.

    Every cell of the batch keeps its own ``(seed, flat index)``
    generator, but the decode arithmetic of all cells runs through one
    fused kernel pass per wave
    (:func:`repro.simulation.montecarlo.fused_link_values`) — bitwise
    identical to the historical per-cell loop, benchmark-asserted. The
    executor's batch slicing (``VectorizedExecutor.max_batch``, pool
    chunks, the serial unit loop) therefore bounds the fused width too.

    Cells whose link spec carries a ``TrafficSpec`` run the event-driven
    traffic simulation instead (:func:`repro.traffic.simulator
    .traffic_link_values`) — same seeding contract, so this one dispatch
    point covers every executor, chunking and sharding path.
    """
    from ..simulation.montecarlo import fused_link_values

    if batch.indices is None:
        raise InvalidParameterError(
            "operational unit batches need flat grid indices for seeding"
        )
    if batch.link.traffic is not None:
        from ..traffic.simulator import traffic_link_values

        return traffic_link_values(
            batch.protocol,
            batch.gab,
            batch.gar,
            batch.gbr,
            batch.power,
            link=batch.link,
            indices=batch.indices,
        )
    return fused_link_values(
        batch.protocol,
        batch.gab,
        batch.gar,
        batch.gbr,
        batch.power,
        link=batch.link,
        indices=batch.indices,
    )


def _evaluate_units_one_by_one(batch: UnitBatch) -> np.ndarray:
    """Evaluate every unit of a batch with batch-of-one kernel calls.

    This is the shared reference arithmetic: the serial executor calls it
    directly and pool workers call it on their chunks, which is what makes
    serial and multiprocess results bitwise identical by construction.
    Operational units are independently seeded by flat grid index, so the
    same argument covers them with no per-unit slicing needed.
    """
    if batch.link is not None:
        return _evaluate_link_units(batch)
    values = np.empty(len(batch))
    for i in range(len(batch)):
        values[i] = batched_sum_rates(
            batch.protocol,
            batch.gab[i : i + 1],
            batch.gar[i : i + 1],
            batch.gbr[i : i + 1],
            batch.power[i : i + 1],
        )[0]
    return values


class SerialExecutor:
    """Evaluate units one at a time in the calling process."""

    name = "serial"

    def run(self, batches, progress=None) -> list:
        """Evaluate ``batches`` and return one value array per batch."""
        total = sum(len(batch) for batch in batches)
        done = 0
        results = []
        for batch in batches:
            values = np.empty(len(batch))
            for i in range(len(batch)):
                values[i] = _evaluate_units_one_by_one(batch.slice(i, i + 1))[0]
                done += 1
                if progress is not None:
                    progress(done, total)
            results.append(values)
        return results


class _SelfHealingPoolMixin:
    """Reserved-pool lifecycle shared by the two process-pool executors.

    A ``concurrent.futures`` pool whose worker dies is *permanently* broken
    — every subsequent future raises :class:`BrokenExecutor`.  Reservations
    are counted (reentrant and thread-safe; the outermost one owns the
    pool's lifetime), and :meth:`_heal` swaps a broken reserved pool for a
    fresh one so the next dispatch round runs on live workers.  The swap is
    identity-guarded: concurrent failures on the same pool trigger exactly
    one rebuild, tallied in ``pool_rebuilds``.
    """

    def _init_pool_state(self):
        self._pool = None
        self._lock = threading.Lock()
        self._reservations = 0
        #: Broken pools replaced over this executor's lifetime.  The engine
        #: snapshots it around a campaign to report per-run rebuilds.
        self.pool_rebuilds = 0

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.processes)

    @contextmanager
    def reserve(self):
        """Hold one worker pool open across consecutive calls.

        The engine's chunk-checkpointed loop issues one dispatch per chunk;
        without a reservation every dispatch would spawn and tear down its
        own pool.  Reentrant and thread-safe — only the outermost
        reservation owns the pool's lifetime, so the serving daemon can
        reserve once at startup and let every concurrent request share the
        workers.  Exit tears down whatever pool is current, including one
        swapped in by :meth:`_heal`.
        """
        with self._lock:
            outermost = self._reservations == 0
            self._reservations += 1
            if outermost:
                self._pool = self._make_pool()
        try:
            yield self
        finally:
            closing = None
            with self._lock:
                self._reservations -= 1
                if self._reservations == 0:
                    closing, self._pool = self._pool, None
            if closing is not None:
                closing.shutdown(wait=True)

    def _reserved_pool(self):
        with self._lock:
            return self._pool

    def _heal(self, broken) -> bool:
        """Replace ``broken`` with a fresh pool if it is still the one.

        Returns whether a rebuild happened.  The identity check makes the
        call idempotent: many in-flight futures of one broken pool all
        report the breakage, but only the first caller rebuilds.  Unreserved
        (per-call) pools are never healed — the next call builds a fresh
        pool anyway.
        """
        with self._lock:
            if broken is None or self._pool is not broken:
                return False
            self._pool = self._make_pool()
            self.pool_rebuilds += 1
        broken.shutdown(wait=False)
        return True


class MultiprocessExecutor(_SelfHealingPoolMixin):
    """Evaluate chunks of units across a process pool.

    Parameters
    ----------
    processes:
        Worker count; defaults to ``os.cpu_count()``.
    chunksize:
        Units per dispatched chunk; defaults to spreading each batch over
        roughly ``4 × processes`` chunks (bounded below by 1) so progress
        stays responsive without drowning in IPC.
    """

    name = "process"
    supports_fault_injection = True

    def __init__(
        self, processes: int | None = None, chunksize: int | None = None
    ) -> None:
        if processes is not None and processes < 1:
            raise InvalidParameterError(f"need at least one process, got {processes}")
        if chunksize is not None and chunksize < 1:
            raise InvalidParameterError(f"chunk size must be positive, got {chunksize}")
        self.processes = processes or os.cpu_count() or 1
        self.chunksize = chunksize
        self._init_pool_state()

    def _chunks(self, batch: UnitBatch) -> list:
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(batch) // (4 * self.processes)))
        return [
            batch.slice(start, min(start + chunksize, len(batch)))
            for start in range(0, len(batch), chunksize)
        ]

    def _collect(self, pool, chunks, total, progress, fault) -> list:
        try:
            futures = [
                pool.submit(_evaluate_pool_chunk, chunk, fault) for chunk in chunks
            ]
            pieces = []
            done = 0
            for future in futures:
                piece = future.result()
                pieces.append(piece)
                done += piece.shape[0]
                if progress is not None:
                    progress(done, total)
            return pieces
        except BrokenExecutor:
            self._heal(pool)
            raise

    def run(self, batches, progress=None, fault=None) -> list:
        """Evaluate ``batches`` and return one value array per batch.

        ``fault`` is an optional :class:`repro.faults.FaultToken` forwarded
        into every worker invocation of this call (the engine arms it per
        chunk attempt).  A broken pool is healed before the failure
        propagates, so the engine's retry lands on live workers.
        """
        total = sum(len(batch) for batch in batches)
        chunks = []
        owners = []
        for bi, batch in enumerate(batches):
            for chunk in self._chunks(batch):
                chunks.append(chunk)
                owners.append(bi)
        reserved = self._reserved_pool()
        if reserved is not None:
            pieces = self._collect(reserved, chunks, total, progress, fault)
        else:
            with self._make_pool() as pool:
                pieces = self._collect(pool, chunks, total, progress, fault)
        results = []
        for bi in range(len(batches)):
            parts = [p for p, owner in zip(pieces, owners) if owner == bi]
            results.append(np.concatenate(parts) if parts else np.zeros(0))
        return results


class VectorizedExecutor:
    """Evaluate whole batches through the kernel's batched linear algebra.

    Parameters
    ----------
    max_batch:
        Optional upper bound on units per kernel call (memory control for
        very large ensembles); ``None`` sends each batch in one call. The
        bound applies to operational (link-level) batches too: a fused
        link evaluation never sees more than ``max_batch`` cells per
        kernel call, so the cap limits the fused decoder's working set
        exactly as it limits the analytic kernel's (regression-tested).
    """

    name = "vectorized"

    def __init__(self, max_batch: int | None = None) -> None:
        if max_batch is not None and max_batch < 1:
            raise InvalidParameterError(
                f"batch bound must be positive, got {max_batch}"
            )
        self.max_batch = max_batch

    def run(self, batches, progress=None) -> list:
        """Evaluate ``batches`` and return one value array per batch."""
        total = sum(len(batch) for batch in batches)
        done = 0
        results = []
        for batch in batches:
            step = self.max_batch or max(len(batch), 1)
            pieces = []
            for start in range(0, len(batch), step):
                piece = batch.slice(start, start + step)
                if piece.link is not None:
                    pieces.append(_evaluate_link_units(piece))
                else:
                    pieces.append(
                        batched_sum_rates(
                            piece.protocol, piece.gab, piece.gar, piece.gbr,
                            piece.power,
                        )
                    )
                done += len(piece)
                if progress is not None:
                    progress(done, total)
            results.append(np.concatenate(pieces) if pieces else np.zeros(0))
        return results


def _evaluate_pool_chunk(chunk: UnitBatch, fault=None) -> np.ndarray:
    """Worker entry of :class:`MultiprocessExecutor`: one chunk, serially.

    ``fault`` is an armed :class:`repro.faults.FaultToken` (or ``None``);
    applying it first means injected worker deaths and transient errors hit
    before any arithmetic, exactly like a crash on entry would.
    """
    if fault is not None:
        fault.apply(in_worker=True)
    return _evaluate_units_one_by_one(chunk)


def _evaluate_batch_list(batches, fault=None) -> np.ndarray:
    """Worker entry of a chunk future: serial arithmetic, concatenated.

    One pickled call evaluates a whole chunk's batches with exactly the
    per-unit reference arithmetic, so a chunk future's values are bitwise
    identical to the serial executor's regardless of which worker ran it
    or when it completed.  ``fault`` (an optional
    :class:`repro.faults.FaultToken`) is applied before evaluation.
    """
    if fault is not None:
        fault.apply(in_worker=True)
    return np.concatenate([_evaluate_units_one_by_one(batch) for batch in batches])


class AsyncExecutor(_SelfHealingPoolMixin):
    """Schedule chunk futures over a process pool with work-stealing.

    Where :class:`MultiprocessExecutor` pre-splits each ``run`` call over
    a pool, this executor exposes the *chunk-future seam* the engine and
    the serving daemon build on: :meth:`run_chunks` submits every pending
    chunk as one future and yields results **in completion order**, so

    * idle workers steal whichever chunk is next rather than being bound
      to a static ``--shard I/N`` split of the grid, and
    * the engine checkpoints each chunk the moment it lands — a slow
      chunk never delays the durability of a fast one.

    One reserved pool can be shared by many concurrent campaigns (the
    ``repro serve`` daemon holds one open for its lifetime), in which
    case chunks of all in-flight requests interleave across the workers.
    Every future runs the serial per-unit arithmetic
    (:func:`_evaluate_batch_list`), so scheduling, completion order and
    pool size can never change the numbers.

    Parameters
    ----------
    processes:
        Worker count; defaults to ``os.cpu_count()``.
    """

    name = "async"
    supports_fault_injection = True

    def __init__(self, processes: int | None = None) -> None:
        if processes is not None and processes < 1:
            raise InvalidParameterError(f"need at least one process, got {processes}")
        self.processes = processes or os.cpu_count() or 1
        self._init_pool_state()

    def _submit_completions(self, pool, jobs):
        """Submit one future per job; yield per-job outcomes as they land.

        A job whose future raises yields ``(tag, ChunkFailure(error))``
        instead of aborting the whole round — other chunks' values keep
        streaming, and the caller retries exactly the failed tags.  A
        broken pool is healed immediately (identity-guarded, so the many
        failures one dead worker causes rebuild only once).
        """
        futures = {}
        for job in jobs:
            tag, batches, *rest = job
            fault = rest[0] if rest else None
            try:
                futures[pool.submit(_evaluate_batch_list, batches, fault)] = tag
            except BrokenExecutor as error:
                self._heal(pool)
                yield tag, ChunkFailure(error)
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                tag = futures[future]
                try:
                    values = future.result()
                except BrokenExecutor as error:
                    self._heal(pool)
                    yield tag, ChunkFailure(error)
                except Exception as error:
                    yield tag, ChunkFailure(error)
                else:
                    yield tag, values

    def run_chunks(self, jobs):
        """Evaluate chunk jobs, yielding outcomes in completion order.

        The engine's chunk-future seam: each job — ``(tag, batches)`` or
        ``(tag, batches, fault_token)`` — becomes one pool future and is
        yielded as ``(tag, values)`` the moment it completes, so the caller
        can checkpoint finished chunks while slower ones are still in
        flight.  A failed job yields ``(tag, ChunkFailure(error))`` rather
        than raising, so one bad chunk never discards its siblings' finished
        work.  Values per tag are bitwise identical to the serial
        executor's for the same batches.
        """
        jobs = list(jobs)
        if not jobs:
            return
        pool = self._reserved_pool()
        if pool is not None:
            yield from self._submit_completions(pool, jobs)
            return
        with self._make_pool() as own:
            yield from self._submit_completions(own, jobs)

    def run(self, batches, progress=None) -> list:
        """Evaluate ``batches`` and return one value array per batch.

        The plain-executor protocol (used for unchunked runs): each batch
        is sliced into roughly ``4 × processes`` sub-batches which are all
        submitted up front; workers drain them in whatever order they free
        up, and the results reassemble in submission order.
        """
        total = sum(len(batch) for batch in batches)
        jobs = []
        for bi, batch in enumerate(batches):
            step = max(1, -(-len(batch) // (4 * self.processes)))
            for start in range(0, len(batch), step):
                piece = batch.slice(start, min(start + step, len(batch)))
                jobs.append(((bi, start), [piece]))
        pieces = {}
        done = 0
        for (bi, start), values in self.run_chunks(jobs):
            if isinstance(values, ChunkFailure):
                raise values.error
            pieces[(bi, start)] = values
            done += values.shape[0]
            if progress is not None:
                progress(done, total)
        results = []
        for bi, batch in enumerate(batches):
            parts = [pieces[key] for key in sorted(pieces) if key[0] == bi]
            results.append(np.concatenate(parts) if parts else np.zeros(0))
        return results


#: Executor registry used by the engine and the CLI.
EXECUTOR_NAMES = ("serial", "process", "vectorized", "async")


def get_executor(executor, **kwargs):
    """Resolve an executor name (or pass through an executor instance).

    ``kwargs`` are forwarded to the named executor's constructor, e.g.
    ``get_executor("process", processes=4)``.
    """
    if executor is None:
        executor = "vectorized"
    if not isinstance(executor, str):
        return executor
    registry = {
        "serial": SerialExecutor,
        "process": MultiprocessExecutor,
        "vectorized": VectorizedExecutor,
        "async": AsyncExecutor,
    }
    if executor not in registry:
        raise InvalidParameterError(
            f"unknown executor {executor!r}; available: {EXECUTOR_NAMES}"
        )
    return registry[executor](**kwargs)
