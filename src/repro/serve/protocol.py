"""The serve wire protocol: JSON-lines frames over a local socket.

One connection carries one conversation: the client writes a single
request frame (one JSON object, one line), the daemon answers with a
stream of event frames and closes the exchange with a terminal event.
Frames are UTF-8 JSON objects separated by ``\\n``; no frame may exceed
:data:`MAX_FRAME_BYTES`.

Request frames (``op`` selects the operation)::

    {"op": "evaluate", "id": "r-1", "scenario": {...}, "options": {...}}
    {"op": "ping", "id": "r-2"}
    {"op": "stats", "id": "r-3"}
    {"op": "health", "id": "r-4"}
    {"op": "shutdown", "id": "r-5"}

The ``scenario`` mapping is the scenario reference format of
:mod:`repro.scenarios.wire` (registered name or inline campaign spec);
``options`` may carry ``executor`` (campaign executor name),
``chunk_size`` (checkpoint granularity) and ``timeout`` (seconds the
client is willing to wait for the result).

Event frames for an ``evaluate`` request, in order::

    {"event": "accepted", "id": ..., "spec_hash": ..., "n_units": ...,
     "deduplicated": false}
    {"event": "progress", "id": ..., "done": 128, "total": 400}   # repeated
    {"event": "result", "id": ..., "result": {...}}               # terminal

or the terminal ``{"event": "error", "id": ..., "code": ..., "message":
..., "retryable": ...}`` with ``code`` one of :data:`ERROR_CODES` and
``retryable`` telling the client whether an identical re-request is a
sensible recovery (safe by construction: identical requests dedup on the
spec's cache key, so a retry joins or re-reads, never recomputes
divergently). ``ping`` answers ``pong``, ``stats`` answers ``stats``,
``health`` answers ``health`` (a liveness/fault-counter snapshot) and
``shutdown`` answers ``bye``.

Result payloads ship the grid as a flat ``values`` list plus its
``shape``. JSON is an *exact* transport for IEEE-754 doubles here:
Python serializes floats via ``repr`` (shortest round-trip form) and
parses them back to the identical bits, with ``NaN``/``Infinity`` tokens
for the non-finite values — so a served grid is bitwise-identical to the
locally computed one, the same guarantee the executors give each other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "OPS",
    "ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "ProtocolError",
    "Request",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "accepted_event",
    "progress_event",
    "result_event",
    "error_event",
    "result_payload",
    "values_from_payload",
]

#: Version stamped into ``ping`` responses; bumped on breaking changes.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's encoded size (a line, including newline).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Supported request operations.
OPS = ("evaluate", "ping", "stats", "health", "shutdown")

#: Error codes a terminal ``error`` event may carry.
#:
#: * ``invalid`` — malformed frame, unknown scenario, bad options;
#: * ``busy`` — the daemon's in-flight job table is full (backpressure:
#:   retry later or raise ``max_pending``);
#: * ``timeout`` — the request's deadline passed before the result;
#: * ``shutting-down`` — the daemon is draining and accepts no new work;
#: * ``internal`` — the evaluation itself failed.
ERROR_CODES = ("invalid", "busy", "timeout", "shutting-down", "internal")

#: Codes whose default ``retryable`` flag is true: the failure is a
#: transient condition of the daemon (load), not of the request.  The
#: daemon may override per event — e.g. a ``timeout`` becomes retryable
#: when the aborted campaign left checkpoints a retry would resume from.
RETRYABLE_ERROR_CODES = frozenset({"busy"})

#: Keys an ``evaluate`` request's ``options`` mapping may carry.
OPTION_KEYS = frozenset({"executor", "chunk_size", "timeout"})


class ProtocolError(ReproError):
    """A frame violated the serve wire protocol."""


@dataclass(frozen=True)
class Request:
    """A parsed, structurally valid request frame."""

    op: str
    id: str
    scenario: dict | None = None
    options: dict = field(default_factory=dict)


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame to its wire form (JSON line, UTF-8)."""
    data = json.dumps(frame, separators=(",", ":"), allow_nan=True)
    encoded = data.encode("utf-8") + b"\n"
    if len(encoded) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(encoded)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return encoded


def decode_frame(line: bytes | str) -> dict:
    """Parse one wire line back into a frame mapping."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not valid UTF-8: {error}") from error
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    return frame


def parse_request(frame: dict) -> Request:
    """Validate a request frame's structure (not its scenario semantics).

    Scenario resolution is deliberately left to the daemon — it owns the
    registry — so this layer only guarantees shape: a known ``op``, a
    string ``id``, a mapping ``scenario`` exactly when the op needs one,
    and only recognized option keys with sane types.
    """
    op = frame.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; supported: {OPS}")
    request_id = frame.get("id", "")
    if not isinstance(request_id, str):
        raise ProtocolError(f"request id must be a string, got {request_id!r}")
    scenario = frame.get("scenario")
    if op == "evaluate":
        if not isinstance(scenario, dict):
            raise ProtocolError("an evaluate request carries a 'scenario' mapping")
    elif scenario is not None:
        raise ProtocolError(f"op {op!r} takes no scenario")
    options = frame.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError(f"options must be a mapping, got {options!r}")
    unknown = set(options) - OPTION_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown option keys {sorted(unknown)}; supported: {sorted(OPTION_KEYS)}"
        )
    executor = options.get("executor")
    if executor is not None and not isinstance(executor, str):
        raise ProtocolError(f"option 'executor' must be a string, got {executor!r}")
    chunk_size = options.get("chunk_size")
    if chunk_size is not None:
        if not isinstance(chunk_size, int) or isinstance(chunk_size, bool):
            raise ProtocolError(
                f"option 'chunk_size' must be an integer, got {chunk_size!r}"
            )
        if chunk_size < 1:
            raise ProtocolError(
                f"option 'chunk_size' must be positive, got {chunk_size}"
            )
    timeout = options.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ProtocolError(f"option 'timeout' must be a number, got {timeout!r}")
        if timeout <= 0:
            raise ProtocolError(f"option 'timeout' must be positive, got {timeout}")
    return Request(op=op, id=request_id, scenario=scenario, options=dict(options))


def accepted_event(
    request_id: str, *, spec_hash: str, n_units: int, deduplicated: bool
) -> dict:
    """The daemon's first answer: the request is queued (or joined)."""
    return {
        "event": "accepted",
        "id": request_id,
        "spec_hash": spec_hash,
        "n_units": int(n_units),
        "deduplicated": bool(deduplicated),
    }


def progress_event(request_id: str, done: int, total: int) -> dict:
    """A per-chunk progress tick: ``done`` of ``total`` grid cells."""
    return {
        "event": "progress",
        "id": request_id,
        "done": int(done),
        "total": int(total),
    }


def result_event(request_id: str, payload: dict) -> dict:
    """The terminal success event carrying the result payload."""
    return {"event": "result", "id": request_id, "result": payload}


def error_event(
    request_id: str, code: str, message: str, *, retryable: bool | None = None
) -> dict:
    """The terminal failure event.

    ``retryable`` defaults from the code (:data:`RETRYABLE_ERROR_CODES`);
    pass an explicit value when the daemon knows better — the structured
    flag is what lets clients retry transient failures without having to
    pattern-match message text.
    """
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}; supported: {ERROR_CODES}")
    if retryable is None:
        retryable = code in RETRYABLE_ERROR_CODES
    return {
        "event": "error",
        "id": request_id,
        "code": code,
        "message": str(message),
        "retryable": bool(retryable),
    }


def result_payload(
    *,
    scenario_name: str,
    objective: str,
    spec_hash: str,
    values: np.ndarray,
    served_from: str,
    executor_name: str,
    cells_from_cache: int,
    cells_computed: int,
    elapsed_seconds: float,
    chunk_retries: int = 0,
    pool_rebuilds: int = 0,
) -> dict:
    """Build a result payload from an evaluated grid.

    ``served_from`` records how the daemon satisfied the request:
    ``"cache"`` (read straight from the content-addressed store),
    ``"computed"`` (this request triggered the evaluation) or
    ``"joined"`` (deduplicated onto another request's in-flight
    evaluation).  ``chunk_retries``/``pool_rebuilds`` carry the engine's
    fault-recovery accounting for the computing run (zero for cache and
    joined serves — recovery happened, if at all, on the computing side).
    """
    array = np.asarray(values, dtype=float)
    return {
        "scenario": scenario_name,
        "objective": objective,
        "spec_hash": spec_hash,
        "shape": list(array.shape),
        "values": array.ravel().tolist(),
        "served_from": served_from,
        "executor": executor_name,
        "cells_from_cache": int(cells_from_cache),
        "cells_computed": int(cells_computed),
        "elapsed_seconds": float(elapsed_seconds),
        "chunk_retries": int(chunk_retries),
        "pool_rebuilds": int(pool_rebuilds),
    }


def values_from_payload(payload: dict) -> np.ndarray:
    """Reassemble a payload's flat value list into its grid array."""
    try:
        shape = tuple(int(n) for n in payload["shape"])
        flat = payload["values"]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed result payload: {error}") from error
    array = np.asarray(flat, dtype=float)
    expected = int(np.prod(shape)) if shape else 1
    if array.size != expected:
        raise ProtocolError(
            f"payload carries {array.size} values but shape {shape} needs {expected}"
        )
    return array.reshape(shape)
