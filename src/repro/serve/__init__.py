"""Campaign-as-a-service: a local evaluation daemon and its client.

The serving layer turns the campaign engine into a long-lived local
service: ``repro serve`` runs a :class:`CampaignServer` on a Unix-domain
socket — one warm executor pool, one content-addressed cache, in-flight
request deduplication by spec hash — and :class:`ServeClient` (or
``repro.api.evaluate(..., server=...)``) talks to it over the JSON-lines
protocol of :mod:`repro.serve.protocol`. Served grids are
bitwise-identical to local evaluation; see ``docs/serving.md`` for the
protocol, the dedup/cache semantics and the failure modes.

Quickstart::

    repro serve --socket /tmp/repro.sock &          # the daemon

    from repro.serve import ServeClient             # a client
    client = ServeClient("/tmp/repro.sock")
    result = client.evaluate("fig4-operating-points")
    print(result.served_from, result.values.shape)
"""

from .client import ServeClient, ServedResult, ServeError
from .daemon import CampaignServer, ServeConfig, serve
from .protocol import PROTOCOL_VERSION, ProtocolError

__all__ = [
    "CampaignServer",
    "ServeConfig",
    "serve",
    "ServeClient",
    "ServedResult",
    "ServeError",
    "ProtocolError",
    "PROTOCOL_VERSION",
]
