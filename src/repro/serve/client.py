"""A synchronous client for the ``repro serve`` daemon.

One :class:`ServeClient` call is one connection: connect to the daemon's
Unix socket, write the request frame, consume the event stream, return
the terminal event's contents. Progress events are surfaced through an
optional callback, terminal ``error`` events raise :class:`ServeError`
carrying the daemon's error code, and result grids are reassembled into
arrays bitwise-identical to a local evaluation (see
:mod:`repro.serve.protocol` on why JSON is an exact float transport).

With ``retries > 0`` the client transparently reconnects and re-sends
after *retryable* failures — a connection that died mid-stream, a torn
frame, or a terminal error the daemon flagged ``retryable`` (e.g.
``busy``).  Re-sending an identical request is safe by construction:
requests dedup on the spec's cache key server-side, so a retry joins the
still-running job or reads the finished result from the cache — it can
never fork a second divergent evaluation.  A *refused connection* is not
retried: no daemon is listening, and that needs an operator, not
patience.
"""

from __future__ import annotations

import itertools
import socket as socket_module
import time

import numpy as np

from ..exceptions import ReproError
from ..scenarios.wire import scenario_to_request
from .protocol import ProtocolError, decode_frame, encode_frame, values_from_payload

__all__ = ["ServeError", "ServeClient", "ServedResult"]

#: Grace added to the client socket timeout over the server-side request
#: deadline, so the server's ``timeout`` error arrives before the socket
#: gives up.
_TIMEOUT_GRACE_SECONDS = 5.0

#: Client-side codes whose failures default to retryable.  ``unreachable``
#: (connection refused — no daemon) is deliberately NOT here.
_RETRYABLE_CLIENT_CODES = frozenset({"disconnected", "busy"})


class ServeError(ReproError):
    """The daemon answered with an error event (or the wire broke).

    Attributes
    ----------
    code:
        The protocol error code (see
        :data:`repro.serve.protocol.ERROR_CODES`), ``"disconnected"``
        when the connection died without a terminal event, or
        ``"unreachable"`` when no daemon accepted the connection at all.
    retryable:
        Whether re-sending the identical request is a sensible recovery.
        Server error events carry the flag explicitly; client-detected
        failures default by code (:data:`_RETRYABLE_CLIENT_CODES`).
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "disconnected",
        retryable: bool | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        if retryable is None:
            retryable = code in _RETRYABLE_CLIENT_CODES
        self.retryable = bool(retryable)


class ServedResult:
    """A daemon-evaluated grid plus its serving metadata.

    Attributes
    ----------
    values:
        The evaluated grid, shape ``spec.grid_shape`` — bitwise-identical
        to a local evaluation of the same scenario.
    payload:
        The raw result payload (scenario name, objective, spec hash,
        serving accounting).
    """

    def __init__(self, payload: dict) -> None:
        self.payload = payload
        self.values: np.ndarray = values_from_payload(payload)

    @property
    def served_from(self) -> str:
        """``"cache"``, ``"computed"`` or ``"joined"`` (deduplicated)."""
        return self.payload.get("served_from", "computed")

    @property
    def spec_hash(self) -> str:
        """Content hash of the campaign spec that was evaluated."""
        return self.payload.get("spec_hash", "")

    @property
    def elapsed_seconds(self) -> float:
        """Server-side wall-clock seconds of the evaluation."""
        return float(self.payload.get("elapsed_seconds", 0.0))


class ServeClient:
    """Talk to a :class:`~repro.serve.daemon.CampaignServer` socket.

    Parameters
    ----------
    socket_path:
        The daemon's Unix-domain socket.
    timeout:
        Client-side socket timeout in seconds (``None`` = block).
    retries:
        How many times a *retryable* failure is retried by reconnecting
        and re-sending the identical request (safe — see the module
        docstring).  The default 0 preserves strict one-shot semantics;
        the CLI front door passes 2.
    backoff_base / backoff_cap:
        Deterministic exponential backoff between retries:
        ``min(cap, base * 2**(k-1))`` seconds after the ``k``-th failure.
        No jitter — retry schedules replay exactly.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        self.socket_path = socket_path
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._request_ids = itertools.count(1)

    # -- operations ---------------------------------------------------

    def evaluate(
        self,
        scenario_or_name,
        *,
        executor: str | None = None,
        chunk_size: int | None = None,
        timeout: float | None = None,
        progress=None,
    ) -> ServedResult:
        """Evaluate a scenario on the daemon and return its grid.

        ``scenario_or_name`` is a registered name or a
        :class:`~repro.scenarios.base.Scenario` (shipped inline).
        ``timeout`` is enforced server-side; ``progress`` receives the
        daemon's per-chunk ``(done, total)`` ticks. Raises
        :class:`ServeError` on any terminal error event.
        """
        options = {}
        if executor is not None:
            options["executor"] = executor
        if chunk_size is not None:
            options["chunk_size"] = chunk_size
        if timeout is not None:
            options["timeout"] = float(timeout)
        frame = {
            "op": "evaluate",
            "id": self._next_id(),
            "scenario": scenario_to_request(scenario_or_name),
        }
        if options:
            frame["options"] = options
        socket_timeout = self.timeout
        if timeout is not None:
            socket_timeout = float(timeout) + _TIMEOUT_GRACE_SECONDS
        event = self._roundtrip(frame, progress=progress, timeout=socket_timeout)
        return ServedResult(event["result"])

    def ping(self) -> dict:
        """Liveness probe; returns the daemon's ``pong`` frame."""
        return self._roundtrip({"op": "ping", "id": self._next_id()})

    def stats(self) -> dict:
        """The daemon's serving counters (requests, dedup, cache hits...)."""
        return self._roundtrip({"op": "stats", "id": self._next_id()})

    def health(self) -> dict:
        """The daemon's liveness snapshot: pool, queue and fault counters."""
        return self._roundtrip({"op": "health", "id": self._next_id()})

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit; returns its ``bye`` frame."""
        return self._roundtrip({"op": "shutdown", "id": self._next_id()})

    # -- plumbing -----------------------------------------------------

    def _next_id(self) -> str:
        return f"req-{next(self._request_ids)}"

    def _roundtrip(self, frame: dict, *, progress=None, timeout=None) -> dict:
        """One request through the retry loop; returns the terminal event.

        Each attempt is a fresh connection sending the identical frame.
        Only failures marked retryable are retried, up to ``self.retries``
        times, with the deterministic backoff schedule; a retried
        evaluate's progress ticks restart from the daemon's current state
        (usually further along — completed chunks are checkpointed).
        """
        failures = 0
        while True:
            try:
                return self._attempt(frame, progress=progress, timeout=timeout)
            except ServeError as error:
                if not error.retryable or failures >= self.retries:
                    raise
                failures += 1
                delay = min(self.backoff_cap, self.backoff_base * 2 ** (failures - 1))
                if delay > 0.0:
                    time.sleep(delay)

    def _attempt(self, frame: dict, *, progress=None, timeout=None) -> dict:
        """One request, one event stream, one terminal event."""
        if timeout is None:
            timeout = self.timeout
        sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as error:
                # Nobody listening (missing/stale socket, refused
                # connection): not retryable — start the daemon first.
                raise ServeError(
                    f"daemon not running at {self.socket_path} ({error})",
                    code="unreachable",
                ) from error
            sock.sendall(encode_frame(frame))
            with sock.makefile("rb") as stream:
                for line in stream:
                    try:
                        event = decode_frame(line)
                    except ProtocolError as error:
                        # A torn frame: the server died (or the injected
                        # chaos plan severed the socket) mid-write.
                        raise ServeError(
                            f"malformed frame from {self.socket_path}: {error}",
                            code="disconnected",
                        ) from error
                    kind = event.get("event")
                    if kind == "progress":
                        if progress is not None:
                            progress(event.get("done", 0), event.get("total", 0))
                        continue
                    if kind == "accepted":
                        continue
                    if kind == "error":
                        raise ServeError(
                            event.get("message", "request failed"),
                            code=event.get("code", "internal"),
                            retryable=event.get("retryable"),
                        )
                    return event
        except socket_module.timeout as error:
            raise ServeError(
                f"no response from {self.socket_path} within {timeout} s",
                code="disconnected",
            ) from error
        except OSError as error:
            raise ServeError(
                f"connection to {self.socket_path} failed mid-stream: {error}",
                code="disconnected",
            ) from error
        finally:
            sock.close()
        raise ServeError(
            "the server closed the connection before a terminal event",
            code="disconnected",
        )
