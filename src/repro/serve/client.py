"""A synchronous client for the ``repro serve`` daemon.

One :class:`ServeClient` call is one connection: connect to the daemon's
Unix socket, write the request frame, consume the event stream, return
the terminal event's contents. Progress events are surfaced through an
optional callback, terminal ``error`` events raise :class:`ServeError`
carrying the daemon's error code, and result grids are reassembled into
arrays bitwise-identical to a local evaluation (see
:mod:`repro.serve.protocol` on why JSON is an exact float transport).
"""

from __future__ import annotations

import itertools
import socket as socket_module

import numpy as np

from ..exceptions import ReproError
from ..scenarios.wire import scenario_to_request
from .protocol import decode_frame, encode_frame, values_from_payload

__all__ = ["ServeError", "ServeClient", "ServedResult"]

#: Grace added to the client socket timeout over the server-side request
#: deadline, so the server's ``timeout`` error arrives before the socket
#: gives up.
_TIMEOUT_GRACE_SECONDS = 5.0


class ServeError(ReproError):
    """The daemon answered with an error event (or the wire broke).

    Attributes
    ----------
    code:
        The protocol error code (see
        :data:`repro.serve.protocol.ERROR_CODES`), or ``"disconnected"``
        when the connection died without a terminal event.
    """

    def __init__(self, message: str, *, code: str = "disconnected") -> None:
        super().__init__(message)
        self.code = code


class ServedResult:
    """A daemon-evaluated grid plus its serving metadata.

    Attributes
    ----------
    values:
        The evaluated grid, shape ``spec.grid_shape`` — bitwise-identical
        to a local evaluation of the same scenario.
    payload:
        The raw result payload (scenario name, objective, spec hash,
        serving accounting).
    """

    def __init__(self, payload: dict) -> None:
        self.payload = payload
        self.values: np.ndarray = values_from_payload(payload)

    @property
    def served_from(self) -> str:
        """``"cache"``, ``"computed"`` or ``"joined"`` (deduplicated)."""
        return self.payload.get("served_from", "computed")

    @property
    def spec_hash(self) -> str:
        """Content hash of the campaign spec that was evaluated."""
        return self.payload.get("spec_hash", "")

    @property
    def elapsed_seconds(self) -> float:
        """Server-side wall-clock seconds of the evaluation."""
        return float(self.payload.get("elapsed_seconds", 0.0))


class ServeClient:
    """Talk to a :class:`~repro.serve.daemon.CampaignServer` socket."""

    def __init__(self, socket_path: str, *, timeout: float | None = None) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self._request_ids = itertools.count(1)

    # -- operations ---------------------------------------------------

    def evaluate(
        self,
        scenario_or_name,
        *,
        executor: str | None = None,
        chunk_size: int | None = None,
        timeout: float | None = None,
        progress=None,
    ) -> ServedResult:
        """Evaluate a scenario on the daemon and return its grid.

        ``scenario_or_name`` is a registered name or a
        :class:`~repro.scenarios.base.Scenario` (shipped inline).
        ``timeout`` is enforced server-side; ``progress`` receives the
        daemon's per-chunk ``(done, total)`` ticks. Raises
        :class:`ServeError` on any terminal error event.
        """
        options = {}
        if executor is not None:
            options["executor"] = executor
        if chunk_size is not None:
            options["chunk_size"] = chunk_size
        if timeout is not None:
            options["timeout"] = float(timeout)
        frame = {
            "op": "evaluate",
            "id": self._next_id(),
            "scenario": scenario_to_request(scenario_or_name),
        }
        if options:
            frame["options"] = options
        socket_timeout = self.timeout
        if timeout is not None:
            socket_timeout = float(timeout) + _TIMEOUT_GRACE_SECONDS
        event = self._roundtrip(frame, progress=progress, timeout=socket_timeout)
        return ServedResult(event["result"])

    def ping(self) -> dict:
        """Liveness probe; returns the daemon's ``pong`` frame."""
        return self._roundtrip({"op": "ping", "id": self._next_id()})

    def stats(self) -> dict:
        """The daemon's serving counters (requests, dedup, cache hits...)."""
        return self._roundtrip({"op": "stats", "id": self._next_id()})

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit; returns its ``bye`` frame."""
        return self._roundtrip({"op": "shutdown", "id": self._next_id()})

    # -- plumbing -----------------------------------------------------

    def _next_id(self) -> str:
        return f"req-{next(self._request_ids)}"

    def _roundtrip(self, frame: dict, *, progress=None, timeout=None) -> dict:
        """One request, one event stream, one terminal event."""
        if timeout is None:
            timeout = self.timeout
        sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as error:
                raise ServeError(
                    f"cannot reach a server at {self.socket_path}: {error}",
                    code="disconnected",
                ) from error
            sock.sendall(encode_frame(frame))
            with sock.makefile("rb") as stream:
                for line in stream:
                    event = decode_frame(line)
                    kind = event.get("event")
                    if kind == "progress":
                        if progress is not None:
                            progress(event.get("done", 0), event.get("total", 0))
                        continue
                    if kind == "accepted":
                        continue
                    if kind == "error":
                        raise ServeError(
                            event.get("message", "request failed"),
                            code=event.get("code", "internal"),
                        )
                    return event
        except socket_module.timeout as error:
            raise ServeError(
                f"no response from {self.socket_path} within {timeout} s",
                code="disconnected",
            ) from error
        finally:
            sock.close()
        raise ServeError(
            "the server closed the connection before a terminal event",
            code="disconnected",
        )
